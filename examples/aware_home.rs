//! Aware-Home scenario (paper §2, class 1): non-shared, confidential data.
//!
//! A resident stores encrypted medical records in the secure store. The
//! values are sealed client-side — servers (even compromised ones) only
//! ever see ciphertext — and the client's context makes reads monotonic.
//! Midway the resident's device "crashes", losing the in-memory context,
//! and recovers it with the reconstruction protocol.
//!
//! Run with: `cargo run --example aware_home`

use sstore_core::confidential::ValueCipher;
use sstore_core::types::{Consistency, DataId, GroupId};
use sstore_transport::LocalCluster;

const RECORDS: GroupId = GroupId(10);
const BLOOD_TYPE: DataId = DataId(1);
const MEDICATION: DataId = DataId(2);

fn main() {
    let cluster = LocalCluster::start(4, 1, 1);
    let mut resident = cluster.client(0);

    // The master secret never leaves the client device.
    let cipher = ValueCipher::new(b"resident master secret", b"medical-records");

    resident.connect(RECORDS, false).expect("connect");

    // Store two encrypted records. The nonce is the write timestamp, which
    // the client knows before sealing: next version = context version + 1.
    for (item, plaintext) in [
        (BLOOD_TYPE, &b"blood type: O+"[..]),
        (MEDICATION, &b"medication: 5mg lisinopril daily"[..]),
    ] {
        let next =
            sstore_core::Timestamp::Version(resident.context(RECORDS).timestamp(item).time() + 1);
        let sealed = cipher.encrypt(plaintext, &next);
        let ts = resident
            .write(item, RECORDS, Consistency::Mrc, sealed)
            .expect("write");
        assert_eq!(ts, next);
        println!("stored {item} (encrypted) at {ts}");
    }

    // The device crashes without a clean disconnect: context lost.
    resident.simulate_crash();
    println!("device crashed — in-memory context lost");

    // Recovery: reconstruct the context by scanning item metadata at all
    // servers (paper §5.1's expensive path), then read the records back.
    resident.connect(RECORDS, true).expect("reconstruct");
    println!(
        "context reconstructed with {} entries",
        resident.context(RECORDS).len()
    );

    for item in [BLOOD_TYPE, MEDICATION] {
        let (ts, sealed) = resident
            .read(item, RECORDS, Consistency::Mrc)
            .expect("read");
        let plaintext = cipher.decrypt(&sealed, &ts).expect("decrypt");
        println!("{item} at {ts}: {}", String::from_utf8_lossy(&plaintext));
    }

    resident.disconnect(RECORDS).expect("disconnect");
    cluster.shutdown();
}
