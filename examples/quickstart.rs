//! Quickstart: a 4-server / b=1 secure store on real threads.
//!
//! Run with: `cargo run --example quickstart`

use sstore_core::types::{Consistency, DataId, GroupId};
use sstore_transport::LocalCluster;

fn main() {
    // 4 replicated servers, at most 1 Byzantine, 1 client.
    let cluster = LocalCluster::start(4, 1, 1);
    let mut client = cluster.client(0);
    let group = GroupId(1);

    // A session starts by acquiring the client's context for the group.
    let connected = client.connect(group, false).expect("connect");
    println!(
        "connected: context has {} entries, took {}",
        client.context(group).len(),
        connected.latency()
    );

    // Writes go to b+1 = 2 servers; everything is signed by the client.
    let ts = client
        .write(
            DataId(1),
            group,
            Consistency::Mrc,
            b"hello, secure store".to_vec(),
        )
        .expect("write");
    println!("wrote x1 at {ts}");

    // Reads query b+1 servers for timestamps, then fetch and verify.
    let (ts, value) = client
        .read(DataId(1), group, Consistency::Mrc)
        .expect("read");
    println!("read x1 at {ts}: {:?}", String::from_utf8_lossy(&value));
    assert_eq!(value, b"hello, secure store");

    // Disconnect stores the signed context at a ⌈(n+b+1)/2⌉ quorum.
    client.disconnect(group).expect("disconnect");
    println!("session closed; context persisted");

    cluster.shutdown();
}
