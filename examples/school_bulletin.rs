//! School-bulletin scenario (paper §2, class 2): one writer, many readers.
//!
//! The school posts announcements; families read them with MRC — each
//! family sees a monotonically advancing bulletin even though different
//! reads hit different `b+1` server subsets and dissemination is
//! asynchronous. Integrity comes from the school's signature: no server
//! can forge an announcement.
//!
//! Run with: `cargo run --example school_bulletin`

use std::thread;
use std::time::Duration;

use sstore_core::types::{Consistency, DataId, GroupId};
use sstore_transport::LocalCluster;

const BULLETIN: GroupId = GroupId(20);
const ANNOUNCEMENTS: DataId = DataId(1);

fn main() {
    // 7 servers tolerating 2 Byzantine; client 0 = school, 1..=3 families.
    let cluster = LocalCluster::start(7, 2, 4);

    let mut school = cluster.client(0);
    school.connect(BULLETIN, false).expect("school connect");

    let posts = [
        "Week 1: science fair sign-ups open",
        "Week 2: science fair this Friday!",
        "Week 3: congratulations to all participants",
    ];

    // Families poll in their own threads (handles are independent).
    let readers: Vec<_> = (1..=3u16)
        .map(|i| {
            let mut family = cluster.client(i);
            thread::spawn(move || {
                family.connect(BULLETIN, false).expect("family connect");
                let mut last_seen = 0u64;
                let mut versions_seen = Vec::new();
                for _ in 0..12 {
                    thread::sleep(Duration::from_millis(150));
                    match family.read(ANNOUNCEMENTS, BULLETIN, Consistency::Mrc) {
                        Ok((ts, value)) => {
                            let v = ts.time();
                            // MRC guarantee: never goes backwards.
                            assert!(v >= last_seen, "bulletin went backwards!");
                            if v > last_seen {
                                println!(
                                    "family {i} sees v{v}: {}",
                                    String::from_utf8_lossy(&value)
                                );
                                versions_seen.push(v);
                                last_seen = v;
                            }
                        }
                        Err(e) => println!("family {i}: read pending ({e})"),
                    }
                }
                family.disconnect(BULLETIN).expect("family disconnect");
                versions_seen
            })
        })
        .collect();

    for (i, post) in posts.iter().enumerate() {
        let ts = school
            .write(
                ANNOUNCEMENTS,
                BULLETIN,
                Consistency::Mrc,
                post.as_bytes().to_vec(),
            )
            .expect("post");
        println!("school posted v{} ({post})", ts.time());
        thread::sleep(Duration::from_millis(400));
        let _ = i;
    }
    school.disconnect(BULLETIN).expect("school disconnect");

    for (i, r) in readers.into_iter().enumerate() {
        let versions = r.join().expect("reader thread");
        println!("family {} observed versions {versions:?}", i + 1);
        assert!(
            versions.windows(2).all(|w| w[0] < w[1]),
            "monotonic reads violated"
        );
    }
    cluster.shutdown();
}
