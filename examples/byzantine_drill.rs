//! Byzantine fault-injection tour: every adversary in the menu, against
//! the secure store and both baselines.
//!
//! Shows the availability story of the paper end to end: the secure store
//! and the baselines all mask up to their advertised fault bounds, and the
//! failure modes beyond the bounds differ (stale reads and unavailability,
//! never forged data).
//!
//! Run with: `cargo run --example byzantine_drill`

use sstore_baselines::masking::MaskCluster;
use sstore_baselines::pbft::PbftCluster;
use sstore_core::client::{ClientOp, Outcome};
use sstore_core::faults::Behavior;
use sstore_core::sim::{ClusterBuilder, Step};
use sstore_core::types::{Consistency, DataId, GroupId};
use sstore_simnet::SimConfig;

const G: GroupId = GroupId(1);

fn secure_store_run(behavior: Behavior) -> (bool, Vec<u8>) {
    let mut cluster = ClusterBuilder::new(4, 1)
        .seed(7)
        .behavior(0, behavior)
        .client(vec![
            Step::Do(ClientOp::Connect {
                group: G,
                recover: false,
            }),
            Step::Do(ClientOp::Write {
                data: DataId(1),
                group: G,
                consistency: Consistency::Mrc,
                value: b"ground truth".to_vec(),
            }),
            Step::Do(ClientOp::Read {
                data: DataId(1),
                group: G,
                consistency: Consistency::Mrc,
            }),
            Step::Do(ClientOp::Disconnect { group: G }),
        ])
        .build();
    cluster.run_to_quiescence();
    let results = cluster.client_results(0);
    let ok = results.iter().all(|r| r.outcome.is_ok());
    let value = results
        .iter()
        .find_map(|r| match &r.outcome {
            Outcome::ReadOk { value, .. } => Some(value.clone()),
            _ => None,
        })
        .unwrap_or_default();
    (ok, value)
}

fn main() {
    println!("=== secure store: one Byzantine server (b=1 of n=4) ===");
    for behavior in [
        Behavior::Honest,
        Behavior::Crash,
        Behavior::Stale,
        Behavior::CorruptValue,
        Behavior::CorruptSig,
        Behavior::Equivocate,
    ] {
        let (ok, value) = secure_store_run(behavior);
        println!(
            "  {:?}: all ops ok = {ok}, read = {:?}",
            behavior,
            String::from_utf8_lossy(&value)
        );
        assert!(ok, "{behavior:?} must be masked");
        assert_eq!(
            value, b"ground truth",
            "{behavior:?} must not corrupt reads"
        );
    }

    println!("\n=== masking-quorum baseline: b crash faults of n=5 ===");
    let mut mask = MaskCluster::new(5, 1, SimConfig::lan(9));
    mask.crash_server(4);
    let w = mask.write(DataId(1), b"masked");
    let r = mask.read(DataId(1));
    println!(
        "  1 crash: write ok = {}, read = {:?}",
        w.ok,
        r.value.as_deref().map(String::from_utf8_lossy)
    );
    assert!(w.ok && r.ok);

    let mut mask2 = MaskCluster::new(5, 1, SimConfig::lan(10));
    mask2.crash_server(0);
    mask2.crash_server(1);
    let w = mask2.write(DataId(1), b"too many");
    println!(
        "  2 crashes (quorum 4 of 5 impossible): write ok = {}",
        w.ok
    );
    assert!(!w.ok);

    println!("\n=== PBFT-lite baseline: f=1 of n=4 ===");
    let mut pbft = PbftCluster::new(1, SimConfig::lan(11));
    pbft.crash_replica(2);
    let w = pbft.put(DataId(1), b"ordered");
    let r = pbft.get(DataId(1));
    println!(
        "  backup crash: put ok = {}, get = {:?}",
        w.ok,
        r.value.as_deref().map(String::from_utf8_lossy)
    );
    assert!(w.ok && r.ok);

    let mut pbft2 = PbftCluster::new(1, SimConfig::lan(12));
    pbft2.crash_replica(0);
    let w = pbft2.put(DataId(1), b"no primary");
    println!(
        "  primary crash (no view change in -lite): put ok = {}",
        w.ok
    );
    assert!(!w.ok);

    println!("\nall drills passed: faults within bounds are masked, beyond bounds fail safe");
}
