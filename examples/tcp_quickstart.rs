//! TCP quickstart: the same secure store, but over real sockets.
//!
//! Run with: `cargo run --example tcp_quickstart`
//!
//! This starts a 4-server / b=1 cluster on loopback ephemeral ports inside
//! one process — the exact same [`NetServer`] that the standalone
//! `sstore-server` binary runs, one per process, in a real deployment:
//!
//! ```text
//! for i in 0 1 2 3; do
//!   cargo run --release --bin sstore-server -- --id $i --b 1 \
//!     --listen 127.0.0.1:745$i \
//!     --peers 127.0.0.1:7450,127.0.0.1:7451,127.0.0.1:7452,127.0.0.1:7453 \
//!     --data-dir /tmp/sstore/s$i &
//! done
//! ```
//!
//! `--data-dir` (one directory per server) makes a server durable: it
//! write-ahead-logs admitted state and replays it on start, so a killed
//! process restarted at the same directory rejoins with everything it had
//! acknowledged (`--fsync always|never|interval:N` picks the durability /
//! throughput trade-off). Omit it for a memory-only server, which is what
//! this in-process example uses.
//!
//! Servers run a non-blocking event loop with request pipelining
//! (`--serving threaded` keeps the legacy thread-per-connection path).
//! To push a cluster like this one hard — thousands of pipelined
//! sessions, latency percentiles appended to `BENCH_protocol.json`:
//!
//! ```text
//! cargo run --release -p sstore-load -- --sessions 1024 --duration 10 --compare
//! ```
//!
//! And to shake a real deployment down under wire-level faults — added
//! latency, throttling, corrupted bytes, resets, half-open sockets,
//! partitions, timed SIGKILL/restart — run the seeded campaign driver
//! against real `sstore-server` processes through its fault-injecting
//! proxy (DESIGN.md §9); failing seeds shrink to minimal replay files:
//!
//! ```text
//! cargo build --release -p sstore-net --bins
//! ./target/release/sstore-wirechaos --seeds 0..100 --jobs 4 --markdown
//! ```

use std::net::{SocketAddr, TcpListener};

use sstore_core::directory::{generate_client_keys, Directory};
use sstore_core::types::{Consistency, DataId, GroupId, ServerId};
use sstore_core::{ClientConfig, ServerConfig, ServerNode};
use sstore_net::{NetClientConfig, NetCluster, NetServer, NetServerConfig};

fn main() {
    // Bind 4 ephemeral listeners first so every server knows the full
    // address list, then start one repository server per listener.
    let listeners: Vec<TcpListener> = (0..4)
        .map(|_| TcpListener::bind("127.0.0.1:0").expect("bind"))
        .collect();
    let addrs: Vec<SocketAddr> = listeners
        .iter()
        .map(|l| l.local_addr().expect("local addr"))
        .collect();
    // Client keys are derived from a shared (count, seed) pair — the
    // reproduction's stand-in for the paper's well-known public keys.
    let (_, verifying) = generate_client_keys(1, 0x7ea1);
    let dir = Directory::new(4, 1, verifying);
    let servers: Vec<NetServer> = listeners
        .into_iter()
        .enumerate()
        .map(|(i, listener)| {
            let node = ServerNode::new(ServerId(i as u16), dir.clone(), ServerConfig::default());
            NetServer::start(node, listener, addrs.clone(), NetServerConfig::default())
                .expect("server start")
        })
        .collect();
    for s in &servers {
        println!("server {} listening on {}", s.id(), s.local_addr());
    }

    // The client side only needs the address list and the key parameters.
    let cluster = NetCluster::connect_with(
        addrs,
        1,
        1,
        0x7ea1,
        ClientConfig::default(),
        NetClientConfig::default(),
    );
    let mut client = cluster.client(0);
    let group = GroupId(1);

    client.connect(group, false).expect("connect");
    let ts = client
        .write(
            DataId(1),
            group,
            Consistency::Mrc,
            b"hello over tcp".to_vec(),
        )
        .expect("write");
    println!("wrote x1 at {ts}");
    let (ts, value) = client
        .read(DataId(1), group, Consistency::Mrc)
        .expect("read");
    println!("read x1 at {ts}: {:?}", String::from_utf8_lossy(&value));
    client.disconnect(group).expect("disconnect");

    // Measured wire bytes per message kind, next to the §6 formula figures.
    println!("\nclient wire bytes:\n{}", client.wire_stats());

    drop(client);
    for s in servers {
        s.shutdown();
    }
}
