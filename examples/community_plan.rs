//! Community-plan scenario (paper §2, class 3): multi-writer causal data.
//!
//! Citizens collaboratively edit a plan: multiple writers, causal
//! consistency, `(time, uid, d(v))` timestamps, `2b+1` quorums with `b+1`
//! agreement. Runs in the deterministic simulator so we can also show a
//! malicious client mounting the spurious-context attack from §5.3 —
//! honest servers hold the poisoned write back and readers stay live.
//!
//! Run with: `cargo run --example community_plan`

use sstore_core::client::{ClientOp, OpKind, Outcome};
use sstore_core::item::StoredItem;
use sstore_core::metrics::CryptoCounters;
use sstore_core::sim::{ClusterBuilder, Step};
use sstore_core::types::{ClientId, Consistency, DataId, GroupId, ServerId, Timestamp};
use sstore_core::wire::Msg;
use sstore_crypto::sha256::digest;
use sstore_simnet::SimTime;

const PLAN: GroupId = GroupId(30);
const DRAFT: DataId = DataId(1);
const BUDGET: DataId = DataId(2);

fn step_connect() -> Step {
    Step::Do(ClientOp::Connect {
        group: PLAN,
        recover: false,
    })
}

fn step_mw_write(data: DataId, text: &str) -> Step {
    Step::Do(ClientOp::MwWrite {
        data,
        group: PLAN,
        value: text.as_bytes().to_vec(),
    })
}

fn step_mw_read(data: DataId) -> Step {
    Step::Do(ClientOp::MwRead {
        data,
        group: PLAN,
        consistency: Consistency::Cc,
    })
}

fn main() {
    // Alice drafts; Bob reads the draft and then writes a budget that
    // causally depends on it; Carol reads both — CC guarantees she never
    // sees Bob's budget with a pre-draft view of the plan.
    let alice = vec![
        step_connect(),
        step_mw_write(DRAFT, "draft: build a community garden"),
        Step::Do(ClientOp::Disconnect { group: PLAN }),
    ];
    let bob = vec![
        Step::Wait(SimTime::from_millis(300)),
        step_connect(),
        step_mw_read(DRAFT),
        step_mw_write(BUDGET, "budget: $2,400 for soil and seeds"),
        Step::Do(ClientOp::Disconnect { group: PLAN }),
    ];
    let carol = vec![
        Step::Wait(SimTime::from_millis(900)),
        step_connect(),
        step_mw_read(BUDGET),
        step_mw_read(DRAFT),
        Step::Do(ClientOp::Disconnect { group: PLAN }),
    ];

    let mut cluster = ClusterBuilder::new(7, 2)
        .seed(2001)
        .client(alice)
        .client(bob)
        .client(carol)
        .client(vec![]) // C3: the attacker, driven by hand below
        .build();

    // The attacker injects a write whose context references a phantom
    // timestamp, trying to poison every future reader's context.
    let poison_value = b"sabotage".to_vec();
    let mut phantom = sstore_core::Context::new(PLAN);
    phantom.observe(
        DRAFT,
        Timestamp::Multi {
            time: 999_999,
            writer: ClientId(3),
            digest: digest(b"never-written"),
        },
    );
    let poison = StoredItem::create(
        DataId(7),
        PLAN,
        Timestamp::Multi {
            time: 1_000_000,
            writer: ClientId(3),
            digest: digest(&poison_value),
        },
        ClientId(3),
        Some(phantom),
        poison_value,
        cluster.signing_key(3),
        &mut CryptoCounters::new(),
    );
    for s in 0..7 {
        cluster.inject_from_client(
            3,
            ServerId(s),
            Msg::WriteReq {
                op: sstore_core::OpId(4242),
                item: poison.clone(),
            },
        );
    }

    cluster.run_to_quiescence();

    for (idx, name) in ["alice", "bob", "carol"].iter().enumerate() {
        println!("--- {name} ---");
        for r in cluster.client_results(idx) {
            match &r.outcome {
                Outcome::ReadOk {
                    ts,
                    value,
                    confirmations,
                } => println!(
                    "  {:?} -> {} ({} servers vouched): {}",
                    r.kind,
                    ts,
                    confirmations,
                    String::from_utf8_lossy(value)
                ),
                Outcome::WriteOk { ts } => println!("  {:?} -> {}", r.kind, ts),
                other => println!("  {:?} -> {other:?}", r.kind),
            }
            assert!(r.outcome.is_ok(), "{name}: {:?}", r.outcome);
        }
    }

    // Carol's causal guarantee: if she saw Bob's budget, her draft read
    // returned Alice's draft, not nothing.
    let carol_results = cluster.client_results(2);
    let reads: Vec<_> = carol_results
        .iter()
        .filter(|r| r.kind == OpKind::MwRead)
        .collect();
    if let (Outcome::ReadOk { value: budget, .. }, Outcome::ReadOk { value: draft, .. }) =
        (&reads[0].outcome, &reads[1].outcome)
    {
        assert!(budget.starts_with(b"budget"));
        assert!(draft.starts_with(b"draft"));
        println!("CC held: carol saw the draft her budget read depended on");
    }

    // The attack was contained: servers hold the poisoned write pending.
    for s in 0..7 {
        cluster.with_server(s, |node| {
            assert_eq!(node.log_len(DataId(7)), 0);
        });
    }
    println!("spurious-context attack contained: poison write never served");
}
