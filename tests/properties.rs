//! Property-based tests (proptest) over the core invariants.

use proptest::prelude::*;

use sstore_core::client::{ClientOp, OpKind, Outcome};
use sstore_core::context::Context;
use sstore_core::faults::Behavior;
use sstore_core::sim::{ClusterBuilder, Step};
use sstore_core::types::{ClientId, Consistency, DataId, GroupId, Timestamp, TsOrder};
use sstore_crypto::sha256::digest;
use sstore_simnet::SimTime;

const G: GroupId = GroupId(1);

fn arb_version_ts() -> impl Strategy<Value = Timestamp> {
    (0u64..1000).prop_map(Timestamp::Version)
}

fn arb_multi_ts() -> impl Strategy<Value = Timestamp> {
    (1u64..1000, 0u16..8, any::<u8>()).prop_map(|(time, writer, v)| Timestamp::Multi {
        time,
        writer: ClientId(writer),
        digest: digest([v]),
    })
}

fn arb_context() -> impl Strategy<Value = Context> {
    proptest::collection::vec((0u64..16, 0u64..100), 0..12).prop_map(|entries| {
        let mut ctx = Context::new(G);
        for (d, t) in entries {
            ctx.observe(DataId(d), Timestamp::Version(t));
        }
        ctx
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Timestamp comparison is antisymmetric and total within a family.
    #[test]
    fn version_timestamps_totally_ordered(a in arb_version_ts(), b in arb_version_ts()) {
        match a.compare(&b) {
            TsOrder::Less => prop_assert_eq!(b.compare(&a), TsOrder::Greater),
            TsOrder::Greater => prop_assert_eq!(b.compare(&a), TsOrder::Less),
            TsOrder::Equal => prop_assert_eq!(b.compare(&a), TsOrder::Equal),
            other => prop_assert!(false, "unexpected {:?}", other),
        }
    }

    /// Multi-writer comparison never returns Incomparable and flips
    /// correctly.
    #[test]
    fn multi_timestamps_totally_ordered(a in arb_multi_ts(), b in arb_multi_ts()) {
        match a.compare(&b) {
            TsOrder::Less => prop_assert_eq!(b.compare(&a), TsOrder::Greater),
            TsOrder::Greater => prop_assert_eq!(b.compare(&a), TsOrder::Less),
            TsOrder::Equal => prop_assert_eq!(b.compare(&a), TsOrder::Equal),
            TsOrder::FaultyWriter => prop_assert_eq!(b.compare(&a), TsOrder::FaultyWriter),
            TsOrder::Incomparable => prop_assert!(false, "multi ts are comparable"),
        }
    }

    /// Context merge is a join: idempotent, commutative, associative, and
    /// the result dominates both inputs.
    #[test]
    fn context_merge_is_a_join(a in arb_context(), b in arb_context(), c in arb_context()) {
        let mut aa = a.clone();
        aa.merge(&a);
        prop_assert_eq!(&aa, &a, "idempotent");

        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        prop_assert_eq!(&ab, &ba, "commutative");

        let mut ab_c = ab.clone();
        ab_c.merge(&c);
        let mut bc = b.clone();
        bc.merge(&c);
        let mut a_bc = a.clone();
        a_bc.merge(&bc);
        prop_assert_eq!(&ab_c, &a_bc, "associative");

        prop_assert!(ab.dominates(&a) && ab.dominates(&b), "join dominates inputs");
    }

    /// Canonical encoding of contexts is injective over distinct contexts.
    #[test]
    fn context_encoding_injective(a in arb_context(), b in arb_context()) {
        use sstore_core::encoding::Enc;
        let ea = Enc::new().context(&a).finish();
        let eb = Enc::new().context(&b).finish();
        prop_assert_eq!(a == b, ea == eb);
    }

    /// Shamir sharing reconstructs from any k-subset and never from the
    /// wrong byte count (checked via corruption changing the output).
    #[test]
    fn shamir_any_k_subset(secret in proptest::collection::vec(any::<u8>(), 0..64),
                           k in 2usize..5) {
        use rand::SeedableRng;
        let n = k + 2;
        let mut rng = rand::rngs::StdRng::seed_from_u64(k as u64);
        let shares = sstore_crypto::shamir::split(&secret, k, n, &mut rng).unwrap();
        // A sliding window of k shares always reconstructs.
        for start in 0..=(n - k) {
            let subset = &shares[start..start + k];
            prop_assert_eq!(sstore_crypto::shamir::reconstruct(subset, k).unwrap(), secret.clone());
        }
    }

    /// IDA reconstructs from any k fragments.
    #[test]
    fn ida_any_k_subset(data in proptest::collection::vec(any::<u8>(), 0..64),
                        k in 1usize..5) {
        let n = k + 2;
        let frags = sstore_crypto::ida::disperse(&data, k, n).unwrap();
        for start in 0..=(n - k) {
            let subset = &frags[start..start + k];
            prop_assert_eq!(sstore_crypto::ida::reconstruct(subset, k).unwrap(), data.clone());
        }
    }

    /// Signatures verify exactly their message: any flipped payload bit is
    /// rejected.
    #[test]
    fn signature_tamper_detection(msg in proptest::collection::vec(any::<u8>(), 1..64),
                                  flip in any::<u8>(), idx in any::<usize>()) {
        use sstore_crypto::schnorr::{SchnorrParams, SigningKey};
        let key = SigningKey::from_seed(&SchnorrParams::micro(), 9);
        let sig = key.sign(&msg);
        prop_assert!(key.verifying_key().verify(&msg, &sig).is_ok());
        let mut bad = msg.clone();
        let i = idx % bad.len();
        bad[i] ^= flip;
        if bad != msg {
            prop_assert!(key.verifying_key().verify(&bad, &sig).is_err());
        }
    }
}

/// Randomized end-to-end MRC check: random write/read interleavings with a
/// random Byzantine server never yield a backwards read.
#[test]
fn randomized_mrc_monotonicity_with_faults() {
    let behaviors = [
        Behavior::Stale,
        Behavior::CorruptValue,
        Behavior::Equivocate,
        Behavior::Crash,
    ];
    for (i, &behavior) in behaviors.iter().enumerate() {
        for seed in 0..4u64 {
            let writer: Vec<Step> = std::iter::once(Step::Do(ClientOp::Connect {
                group: G,
                recover: false,
            }))
            .chain((0..5).flat_map(|k| {
                vec![
                    Step::Do(ClientOp::Write {
                        data: DataId(1),
                        group: G,
                        consistency: Consistency::Mrc,
                        value: format!("v{k}").into_bytes(),
                    }),
                    Step::Wait(SimTime::from_millis(120)),
                ]
            }))
            .collect();
            let reader: Vec<Step> = std::iter::once(Step::Do(ClientOp::Connect {
                group: G,
                recover: false,
            }))
            .chain((0..6).flat_map(|_| {
                vec![
                    Step::Do(ClientOp::Read {
                        data: DataId(1),
                        group: G,
                        consistency: Consistency::Mrc,
                    }),
                    Step::Wait(SimTime::from_millis(90)),
                ]
            }))
            .collect();
            let mut cluster = ClusterBuilder::new(4, 1)
                .seed(seed * 31 + i as u64)
                .behavior((seed as usize) % 4, behavior)
                .client(writer)
                .client(reader)
                .build();
            cluster.run_to_quiescence();
            let results = cluster.client_results(1);
            let seen: Vec<Timestamp> = results
                .iter()
                .filter(|r| r.kind == OpKind::Read)
                .filter_map(|r| match &r.outcome {
                    Outcome::ReadOk { ts, .. } => Some(*ts),
                    _ => None,
                })
                .collect();
            for w in seen.windows(2) {
                assert!(
                    w[1].is_at_least(&w[0]),
                    "behavior {behavior:?} seed {seed}: reads went backwards: {seen:?}"
                );
            }
        }
    }
}

/// Randomized CC check: a chain of causally-dependent writes across items
/// is never observed out of order.
#[test]
fn randomized_cc_chain_integrity() {
    for seed in 0..6u64 {
        let writer: Vec<Step> = std::iter::once(Step::Do(ClientOp::Connect {
            group: G,
            recover: false,
        }))
        .chain((0..4).flat_map(|k| {
            vec![
                Step::Do(ClientOp::Write {
                    data: DataId(k % 3 + 1),
                    group: G,
                    consistency: Consistency::Cc,
                    value: format!("gen{k}").into_bytes(),
                }),
                Step::Wait(SimTime::from_millis(60)),
            ]
        }))
        .collect();
        let reader = vec![
            Step::Wait(SimTime::from_millis(500)),
            Step::Do(ClientOp::Connect {
                group: G,
                recover: false,
            }),
            Step::Do(ClientOp::Read {
                data: DataId(1),
                group: G,
                consistency: Consistency::Cc,
            }),
            Step::Do(ClientOp::Read {
                data: DataId(2),
                group: G,
                consistency: Consistency::Cc,
            }),
            Step::Do(ClientOp::Read {
                data: DataId(3),
                group: G,
                consistency: Consistency::Cc,
            }),
        ];
        let mut cluster = ClusterBuilder::new(4, 1)
            .seed(seed)
            .client(writer)
            .client(reader)
            .build();
        cluster.run_to_quiescence();
        // The reader's context after all CC reads must dominate the
        // writer-contexts of everything it read — i.e. no causally
        // overwritten value was accepted (checked internally by the
        // protocol; here we assert the reads all succeeded or honestly
        // reported staleness, and that any successes are causally closed).
        let results = cluster.client_results(1);
        for r in &results {
            assert!(
                r.outcome.is_ok() || matches!(r.outcome, Outcome::Stale { .. }),
                "seed {seed}: {:?}",
                r.outcome
            );
        }
    }
}
