//! Cross-crate integration: simulator and threaded transport must agree,
//! baselines behave, and the confidentiality layer composes with the
//! protocol stack.

use sstore_baselines::masking::MaskCluster;
use sstore_baselines::pbft::PbftCluster;
use sstore_core::client::{ClientOp, Outcome};
use sstore_core::confidential::{FragmentStore, ValueCipher};
use sstore_core::sim::{ClusterBuilder, Step};
use sstore_core::types::{Consistency, DataId, GroupId, Timestamp};
use sstore_simnet::SimConfig;
use sstore_transport::LocalCluster;

const G: GroupId = GroupId(1);

/// The same logical workload gives the same values on the simulator and on
/// real threads — the state machines are shared, only the I/O differs.
#[test]
fn sim_and_transport_agree_on_values() {
    // Simulator run.
    let mut sim = ClusterBuilder::new(4, 1)
        .seed(5)
        .client(vec![
            Step::Do(ClientOp::Connect {
                group: G,
                recover: false,
            }),
            Step::Do(ClientOp::Write {
                data: DataId(1),
                group: G,
                consistency: Consistency::Cc,
                value: b"agreed".to_vec(),
            }),
            Step::Do(ClientOp::Read {
                data: DataId(1),
                group: G,
                consistency: Consistency::Cc,
            }),
        ])
        .build();
    sim.run_to_quiescence();
    let sim_read = sim
        .client_results(0)
        .iter()
        .find_map(|r| match &r.outcome {
            Outcome::ReadOk { ts, value, .. } => Some((*ts, value.clone())),
            _ => None,
        })
        .expect("sim read");

    // Threaded run.
    let cluster = LocalCluster::start(4, 1, 1);
    let mut c = cluster.client(0);
    c.connect(G, false).unwrap();
    c.write(DataId(1), G, Consistency::Cc, b"agreed".to_vec())
        .unwrap();
    let threaded_read = c.read(DataId(1), G, Consistency::Cc).unwrap();
    cluster.shutdown();

    assert_eq!(sim_read.0, threaded_read.0, "same timestamp");
    assert_eq!(sim_read.1, threaded_read.1, "same value");
}

/// Encrypted values flow through the full protocol stack unchanged.
#[test]
fn encrypted_values_through_threaded_stack() {
    let cluster = LocalCluster::start(4, 1, 1);
    let mut c = cluster.client(0);
    c.connect(G, false).unwrap();
    let cipher = ValueCipher::new(b"master", b"it");
    let ts = Timestamp::Version(c.context(G).timestamp(DataId(3)).time() + 1);
    let sealed = cipher.encrypt(b"private", &ts);
    let got_ts = c.write(DataId(3), G, Consistency::Mrc, sealed).unwrap();
    assert_eq!(got_ts, ts);
    let (rts, blob) = c.read(DataId(3), G, Consistency::Mrc).unwrap();
    assert_eq!(cipher.decrypt(&blob, &rts).unwrap(), b"private");
    cluster.shutdown();
}

/// All three systems store and return the same value for the same fault
/// budget — the comparison in T4 is apples-to-apples.
#[test]
fn all_three_systems_roundtrip() {
    // Secure store.
    let mut ss = ClusterBuilder::new(5, 1)
        .seed(6)
        .client(vec![
            Step::Do(ClientOp::Connect {
                group: G,
                recover: false,
            }),
            Step::Do(ClientOp::Write {
                data: DataId(1),
                group: G,
                consistency: Consistency::Mrc,
                value: b"same".to_vec(),
            }),
            Step::Do(ClientOp::Read {
                data: DataId(1),
                group: G,
                consistency: Consistency::Mrc,
            }),
        ])
        .build();
    ss.run_to_quiescence();
    assert!(ss.client_results(0).iter().all(|r| r.outcome.is_ok()));

    // Masking quorum.
    let mut mask = MaskCluster::new(5, 1, SimConfig::lan(6));
    assert!(mask.write(DataId(1), b"same").ok);
    assert_eq!(mask.read(DataId(1)).value.unwrap(), b"same");

    // PBFT-lite.
    let mut pbft = PbftCluster::new(1, SimConfig::lan(6));
    assert!(pbft.put(DataId(1), b"same").ok);
    assert_eq!(pbft.get(DataId(1)).value.unwrap(), b"same");
}

/// Fragmentation backends compose with per-server distribution: store one
/// fragment per server id, reconstruct from any k.
#[test]
fn fragmented_storage_across_servers() {
    use rand::SeedableRng;
    let mut rng = rand::rngs::StdRng::seed_from_u64(3);
    for store in [FragmentStore::shamir(2, 4), FragmentStore::ida(2, 4)] {
        let frags = store
            .split(b"fragment across the cluster", &mut rng)
            .unwrap();
        assert_eq!(frags.len(), 4);
        // Lose any two fragments; the rest reconstructs.
        for keep in [[0usize, 1], [1, 3], [2, 0]] {
            let subset = vec![frags[keep[0]].clone(), frags[keep[1]].clone()];
            assert_eq!(
                store.reconstruct(&subset).unwrap(),
                b"fragment across the cluster"
            );
        }
    }
}

/// The paper's headline quorum comparison holds for every valid (n, b).
#[test]
fn quorum_sizes_ordered_across_systems() {
    for n in 5..30 {
        for b in 1..=(n - 1) / 4 {
            let ctx = sstore_core::quorum::context_quorum(n, b);
            let mask = sstore_core::quorum::masking_quorum(n, b);
            let data = sstore_core::quorum::data_quorum(b);
            let mw = sstore_core::quorum::multi_writer_quorum(b);
            assert!(data <= mw, "n={n} b={b}");
            assert!(ctx <= mask, "n={n} b={b}");
            assert!(data < ctx, "n={n} b={b}: data path beats context path");
        }
    }
}
