//! F3: cryptographic-primitive micro-benchmarks.
//!
//! Grounds the paper's §6 cost discussion: signatures dominate protocol
//! CPU cost, MACs (PBFT's tool) are orders of magnitude cheaper, digests
//! sit in between. Run with `cargo bench --bench crypto_ops`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use sstore_crypto::cipher::SealKey;
use sstore_crypto::hmac::hmac_sha256;
use sstore_crypto::schnorr::{SchnorrParams, SigningKey};
use sstore_crypto::sha256::digest;
use sstore_crypto::{ida, shamir};

fn bench_digest(c: &mut Criterion) {
    let mut g = c.benchmark_group("sha256");
    for size in [64usize, 1024, 16 * 1024, 64 * 1024] {
        let data = vec![0xabu8; size];
        g.throughput(Throughput::Bytes(size as u64));
        g.bench_with_input(BenchmarkId::from_parameter(size), &data, |b, data| {
            b.iter(|| digest(data));
        });
    }
    g.finish();
}

fn bench_hmac(c: &mut Criterion) {
    let mut g = c.benchmark_group("hmac_sha256");
    for size in [64usize, 1024] {
        let data = vec![0xcdu8; size];
        g.throughput(Throughput::Bytes(size as u64));
        g.bench_with_input(BenchmarkId::from_parameter(size), &data, |b, data| {
            b.iter(|| hmac_sha256(b"pairwise key", data));
        });
    }
    g.finish();
}

fn bench_schnorr(c: &mut Criterion) {
    let mut g = c.benchmark_group("schnorr");
    g.sample_size(10);
    for (label, params) in [
        ("micro-128", SchnorrParams::micro()),
        ("toy-256", SchnorrParams::toy()),
        ("group-512", SchnorrParams::group_512()),
        ("group-1024", SchnorrParams::group_1024()),
    ] {
        let key = SigningKey::from_seed(&params, 1);
        let msg = vec![0x11u8; 256];
        let sig = key.sign(&msg);
        // Warm the lazily-built fixed-base tables outside the timed region.
        key.verifying_key().verify(&msg, &sig).unwrap();
        g.bench_function(BenchmarkId::new("sign", label), |b| {
            b.iter(|| key.sign(&msg));
        });
        g.bench_function(BenchmarkId::new("verify", label), |b| {
            b.iter(|| key.verifying_key().verify(&msg, &sig).unwrap());
        });
        // The pre-Montgomery implementation, kept as the speedup baseline.
        g.bench_function(BenchmarkId::new("verify-schoolbook", label), |b| {
            b.iter(|| key.verifying_key().verify_schoolbook(&msg, &sig).unwrap());
        });
    }
    g.finish();
}

fn bench_seal(c: &mut Criterion) {
    let key = SealKey::derive(b"master", b"bench");
    let value = vec![0x5au8; 1024];
    let sealed = key.seal(&value, 1);
    let mut g = c.benchmark_group("value_cipher_1k");
    g.throughput(Throughput::Bytes(1024));
    g.bench_function("seal", |b| b.iter(|| key.seal(&value, 1)));
    g.bench_function("open", |b| b.iter(|| key.open(&sealed).unwrap()));
    g.finish();
}

fn bench_fragmentation(c: &mut Criterion) {
    let value = vec![0x77u8; 1024];
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(1);
    let shares = shamir::split(&value, 3, 7, &mut rng).unwrap();
    let frags = ida::disperse(&value, 3, 7).unwrap();
    let mut g = c.benchmark_group("fragmentation_1k_3of7");
    g.throughput(Throughput::Bytes(1024));
    g.bench_function("shamir_split", |b| {
        b.iter(|| shamir::split(&value, 3, 7, &mut rng).unwrap())
    });
    g.bench_function("shamir_reconstruct", |b| {
        b.iter(|| shamir::reconstruct(&shares[..3], 3).unwrap())
    });
    g.bench_function("ida_disperse", |b| {
        b.iter(|| ida::disperse(&value, 3, 7).unwrap())
    });
    g.bench_function("ida_reconstruct", |b| {
        b.iter(|| ida::reconstruct(&frags[..3], 3).unwrap())
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_digest, bench_hmac, bench_schnorr, bench_seal, bench_fragmentation
}
criterion_main!(benches);
