//! `cargo bench` entry point that regenerates every evaluation table
//! (T1–T4, F1–F7). Criterion micro-benches live in `crypto_ops` and
//! `protocol_fastpath`; this harness prints the paper-reproduction tables.

fn main() {
    // Criterion passes --bench/--test flags; we ignore all arguments.
    for table in sstore_bench::experiments::run_all() {
        table.print();
    }
}
