//! Protocol fast-path micro-benchmarks: whole client operations measured
//! end-to-end inside the simulator (LAN, fault-free), plus core data
//! structure hot paths (context merge, canonical encoding, quorum math).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use sstore_core::client::ClientOp;
use sstore_core::config::{GossipConfig, ServerConfig};
use sstore_core::context::Context;
use sstore_core::encoding::Enc;
use sstore_core::sim::{ClusterBuilder, Step};
use sstore_core::types::{Consistency, DataId, GroupId, Timestamp};

const G: GroupId = GroupId(1);

fn quiet() -> ServerConfig {
    ServerConfig {
        gossip: GossipConfig {
            enabled: false,
            ..GossipConfig::default()
        },
        ..ServerConfig::default()
    }
}

/// One full session (connect, write, read, disconnect) in the simulator.
fn bench_session(c: &mut Criterion) {
    let mut g = c.benchmark_group("session_roundtrip");
    g.sample_size(10);
    for (n, b) in [(4usize, 1usize), (7, 2)] {
        g.bench_with_input(
            BenchmarkId::from_parameter(format!("n{n}_b{b}")),
            &(n, b),
            |bencher, &(n, b)| {
                bencher.iter(|| {
                    let mut cluster = ClusterBuilder::new(n, b)
                        .seed(1)
                        .server_config(quiet())
                        .client(vec![
                            Step::Do(ClientOp::Connect {
                                group: G,
                                recover: false,
                            }),
                            Step::Do(ClientOp::Write {
                                data: DataId(1),
                                group: G,
                                consistency: Consistency::Mrc,
                                value: vec![0xab; 64],
                            }),
                            Step::Do(ClientOp::Read {
                                data: DataId(1),
                                group: G,
                                consistency: Consistency::Mrc,
                            }),
                            Step::Do(ClientOp::Disconnect { group: G }),
                        ])
                        .build();
                    cluster.run_to_quiescence();
                    assert!(cluster.client_results(0).iter().all(|r| r.outcome.is_ok()));
                });
            },
        );
    }
    g.finish();
}

fn big_context(entries: u64) -> Context {
    let mut ctx = Context::new(G);
    for i in 0..entries {
        ctx.observe(DataId(i), Timestamp::Version(i * 3 + 1));
    }
    ctx
}

fn bench_context_ops(c: &mut Criterion) {
    let mut g = c.benchmark_group("context");
    for size in [8u64, 64, 512] {
        let a = big_context(size);
        let mut b = big_context(size / 2);
        for i in 0..size / 2 {
            b.observe(DataId(i + size / 2), Timestamp::Version(i + 9));
        }
        g.bench_with_input(BenchmarkId::new("merge", size), &size, |bencher, _| {
            bencher.iter(|| {
                let mut m = a.clone();
                m.merge(&b);
                m
            });
        });
        g.bench_with_input(BenchmarkId::new("encode", size), &size, |bencher, _| {
            bencher.iter(|| Enc::new().context(&a).finish());
        });
        g.bench_with_input(BenchmarkId::new("dominates", size), &size, |bencher, _| {
            bencher.iter(|| a.dominates(&b));
        });
    }
    g.finish();
}

fn bench_quorum_math(c: &mut Criterion) {
    c.bench_function("quorum_sweep_n400", |b| {
        b.iter(|| {
            let mut acc = 0usize;
            for n in 4..400 {
                for bb in 1..=(n - 1) / 3 {
                    acc += sstore_core::quorum::context_quorum(n, bb);
                    acc += sstore_core::quorum::masking_quorum(n, bb);
                }
            }
            acc
        });
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_session, bench_context_ops, bench_quorum_math
}
criterion_main!(benches);
