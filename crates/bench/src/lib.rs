//! Benchmark harness regenerating the paper's evaluation (§6).
//!
//! The DSN 2001 paper's evaluation is *analytical*: it derives message and
//! cryptographic-operation counts per protocol and argues response-time
//! consequences. Each function in [`experiments`] regenerates one of those
//! claims as a measured table (experiment ids T1–T4, F1–F7; see DESIGN.md
//! for the index and EXPERIMENTS.md for paper-vs-measured records).
//!
//! Every experiment runs on the deterministic simulator, so tables are
//! exactly reproducible; run them all with `cargo bench -p sstore-bench`
//! or individually via the `t*`/`f*` binaries.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod table;

pub use table::Table;
