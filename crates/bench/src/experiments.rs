//! The experiment suite: one function per table/figure of EXPERIMENTS.md.
//!
//! Experiments T1–T3 check the secure store's §6 cost formulas; T4 and F4
//! compare against the masking-quorum and PBFT-lite baselines; F1/F5 sweep
//! the dissemination substrate; F2 sweeps fault injection; F6 measures the
//! context-reconstruction path; F7 the confidentiality backends.
//!
//! All simulator experiments are deterministic: same build, same tables.

use std::time::Instant;

use rand::rngs::StdRng;
use rand::SeedableRng;

use sstore_baselines::masking::MaskCluster;
use sstore_baselines::pbft::PbftCluster;
use sstore_core::client::{ClientOp, OpKind, OpResult, Outcome};
use sstore_core::confidential::{FragmentStore, ValueCipher};
use sstore_core::config::{ClientConfig, GossipConfig, ServerConfig};
use sstore_core::faults::Behavior;
use sstore_core::metrics::CryptoCounters;
use sstore_core::quorum;
use sstore_core::sim::{Cluster, ClusterBuilder, Step};
use sstore_core::types::{Consistency, DataId, GroupId, Timestamp};
use sstore_simnet::{NetStats, SimConfig, SimTime};

use crate::table::{f2, ratio, Table};

const G: GroupId = GroupId(1);

fn connect() -> Step {
    Step::Do(ClientOp::Connect {
        group: G,
        recover: false,
    })
}

fn reconnect_recover() -> Step {
    Step::Do(ClientOp::Connect {
        group: G,
        recover: true,
    })
}

fn disconnect() -> Step {
    Step::Do(ClientOp::Disconnect { group: G })
}

fn write(data: u64, consistency: Consistency) -> Step {
    Step::Do(ClientOp::Write {
        data: DataId(data),
        group: G,
        consistency,
        value: vec![0xab; 64],
    })
}

fn read(data: u64, consistency: Consistency) -> Step {
    Step::Do(ClientOp::Read {
        data: DataId(data),
        group: G,
        consistency,
    })
}

fn mw_write(data: u64) -> Step {
    Step::Do(ClientOp::MwWrite {
        data: DataId(data),
        group: G,
        value: vec![0xcd; 64],
    })
}

fn mw_read(data: u64) -> Step {
    Step::Do(ClientOp::MwRead {
        data: DataId(data),
        group: G,
        consistency: Consistency::Cc,
    })
}

fn quiet_server_cfg() -> ServerConfig {
    ServerConfig {
        gossip: GossipConfig {
            enabled: false,
            ..GossipConfig::default()
        },
        ..ServerConfig::default()
    }
}

/// Sticky clients reuse the same quorum across ops: the paper's cost
/// formulas assume the contacted quorum holds the client's own prior
/// writes, which stickiness guarantees without dissemination.
fn sticky_client_cfg() -> ClientConfig {
    ClientConfig {
        sticky_rotation: true,
        ..ClientConfig::default()
    }
}

/// Outcome of one measured run.
struct RunOutput {
    stats: NetStats,
    client: CryptoCounters,
    servers: CryptoCounters,
    results: Vec<OpResult>,
}

fn run_script(
    n: usize,
    b: usize,
    seed: u64,
    server_cfg: ServerConfig,
    script: Vec<Step>,
) -> RunOutput {
    let mut cluster = ClusterBuilder::new(n, b)
        .seed(seed)
        .server_config(server_cfg)
        .client_config(sticky_client_cfg())
        .client(script)
        .build();
    cluster.run_to_quiescence();
    RunOutput {
        stats: cluster.sim.stats().clone(),
        client: cluster.client_counters(0),
        servers: cluster.total_server_counters(),
        results: cluster.client_results(0),
    }
}

/// Runs `base` and `base + tail` with identical seeds; returns the marginal
/// cost of `tail` (determinism makes the prefix byte-identical).
fn marginal(
    n: usize,
    b: usize,
    seed: u64,
    server_cfg: ServerConfig,
    base: Vec<Step>,
    tail: Vec<Step>,
) -> RunOutput {
    let base_run = run_script(n, b, seed, server_cfg.clone(), base.clone());
    let mut full = base;
    let base_ops = base_run.results.len();
    full.extend(tail);
    let full_run = run_script(n, b, seed, server_cfg, full);
    RunOutput {
        stats: full_run.stats.since(&base_run.stats),
        client: full_run.client.since(base_run.client),
        servers: full_run.servers.since(base_run.servers),
        results: full_run.results[base_ops..].to_vec(),
    }
}

fn mean_latency_ms(results: &[OpResult]) -> f64 {
    if results.is_empty() {
        return 0.0;
    }
    results
        .iter()
        .map(|r| r.latency().as_millis_f64())
        .sum::<f64>()
        / results.len() as f64
}

// ---------------------------------------------------------------------
// T1 — context operation costs (paper §6 ¶2–3)
// ---------------------------------------------------------------------

/// T1: context read/write message and crypto costs vs. `(n, b)`.
///
/// Paper claims: `2⌈(n+b+1)/2⌉` messages per context op; a context write
/// costs 1 client signature + `⌈(n+b+1)/2⌉` server verifications; a warm
/// context read costs one client verification in the best case.
pub fn t1_context_costs() -> Table {
    let mut t = Table::new(
        "T1: context operation costs (messages and crypto ops per operation)",
        &[
            "n",
            "b",
            "q=⌈(n+b+1)/2⌉",
            "paper msgs (2q)",
            "ctx-read msgs",
            "ctx-write msgs",
            "client signs",
            "server verifies",
            "warm-read verifies",
        ],
    );
    for (n, b) in [(4, 1), (7, 1), (7, 2), (10, 2), (10, 3), (13, 3), (16, 3)] {
        // Warm session measured marginally after a priming session.
        let base = vec![connect(), write(1, Consistency::Mrc), disconnect()];
        let tail = vec![connect(), disconnect()];
        let m = marginal(n, b, 1000 + n as u64, quiet_server_cfg(), base, tail);
        let q = quorum::context_quorum(n, b);
        let read_msgs =
            m.stats.sent_by_kind("ctx-read-req") + m.stats.sent_by_kind("ctx-read-resp");
        let write_msgs =
            m.stats.sent_by_kind("ctx-write-req") + m.stats.sent_by_kind("ctx-write-ack");
        t.row(vec![
            n.to_string(),
            b.to_string(),
            q.to_string(),
            (2 * q).to_string(),
            read_msgs.to_string(),
            write_msgs.to_string(),
            m.client.signs.to_string(),
            m.servers.logical_verifies().to_string(),
            m.client.logical_verifies().to_string(),
        ]);
    }
    t.note("warm session: context already stored; paper best case = 1 warm-read verify");
    t
}

// ---------------------------------------------------------------------
// T2 — single-writer data operation costs (paper §6 ¶4–6)
// ---------------------------------------------------------------------

/// T2: single-writer read/write costs vs. `b`, for MRC and CC.
///
/// Paper claims: writes complete with `b+1` messages (1 sign, `b+1` server
/// verifies); best-case reads cost `b+1` timestamp queries + 1 fetch + 1
/// client verification.
pub fn t2_data_costs() -> Table {
    let mut t = Table::new(
        "T2: single-writer data costs per operation (K=8 ops averaged)",
        &[
            "b",
            "n",
            "mode",
            "paper write msgs (b+1)",
            "write msgs",
            "write signs",
            "srv verifies/write",
            "read ts-queries",
            "read fetches",
            "read verifies",
            "write ms",
            "read ms",
        ],
    );
    const K: u64 = 8;
    for b in [1usize, 2, 3, 4] {
        let n = 3 * b + 1;
        for consistency in [Consistency::Mrc, Consistency::Cc] {
            let base = vec![connect()];
            let writes: Vec<Step> = (0..K).map(|i| write(i + 1, consistency)).collect();
            let wm = marginal(
                n,
                b,
                2000 + b as u64,
                quiet_server_cfg(),
                base.clone(),
                writes.clone(),
            );

            let mut base_r = base.clone();
            base_r.extend(writes);
            let reads: Vec<Step> = (0..K).map(|i| read(i + 1, consistency)).collect();
            let rm = marginal(n, b, 2000 + b as u64, quiet_server_cfg(), base_r, reads);

            let kf = K as f64;
            t.row(vec![
                b.to_string(),
                n.to_string(),
                consistency.to_string(),
                (b + 1).to_string(),
                f2(wm.stats.sent_by_kind("write-req") as f64 / kf),
                f2(wm.client.signs as f64 / kf),
                f2(wm.servers.logical_verifies() as f64 / kf),
                f2(rm.stats.sent_by_kind("ts-query-req") as f64 / kf),
                f2(rm.stats.sent_by_kind("read-req") as f64 / kf),
                f2(rm.client.logical_verifies() as f64 / kf),
                f2(mean_latency_ms(&wm.results)),
                f2(mean_latency_ms(&rm.results)),
            ]);
        }
    }
    t.note("gossip disabled; fault-free; LAN latencies (100-300us one-way)");
    t
}

// ---------------------------------------------------------------------
// T3 — multi-writer costs (paper §5.3, §6 ¶8)
// ---------------------------------------------------------------------

/// T3: multi-writer costs become `2b+1`; server-side validation replaces
/// client read verification; per-item logs stay bounded.
pub fn t3_multi_writer_costs() -> Table {
    let mut t = Table::new(
        "T3: multi-writer data costs per operation (K=8 ops averaged)",
        &[
            "b",
            "n",
            "paper msgs (2b+1)",
            "write msgs",
            "read msgs",
            "accept thresh (b+1)",
            "client read verifies",
            "srv verifies/write",
            "max log len",
            "write ms",
            "read ms",
        ],
    );
    const K: u64 = 8;
    for b in [1usize, 2, 3, 4] {
        let n = 3 * b + 1;
        let base = vec![connect()];
        let writes: Vec<Step> = (0..K).map(|i| mw_write(i + 1)).collect();
        let wm = marginal(
            n,
            b,
            3000 + b as u64,
            quiet_server_cfg(),
            base.clone(),
            writes.clone(),
        );

        let mut base_r = base.clone();
        base_r.extend(writes);
        let reads: Vec<Step> = (0..K).map(|i| mw_read(i + 1)).collect();
        let rm = marginal(
            n,
            b,
            3000 + b as u64,
            quiet_server_cfg(),
            base_r.clone(),
            reads,
        );

        // Log length inspection on a fresh full run.
        let mut full = base_r;
        full.push(mw_write(1));
        full.push(mw_write(1));
        let mut cluster = ClusterBuilder::new(n, b)
            .seed(3000 + b as u64)
            .server_config(quiet_server_cfg())
            .client_config(sticky_client_cfg())
            .client(full)
            .build();
        cluster.run_to_quiescence();
        let max_log = (0..n)
            .map(|s| cluster.with_server(s, |node| node.log_len(DataId(1))))
            .max()
            .unwrap_or(0);

        let kf = K as f64;
        t.row(vec![
            b.to_string(),
            n.to_string(),
            sstore_core::quorum::multi_writer_quorum(b).to_string(),
            f2(wm.stats.sent_by_kind("write-req") as f64 / kf),
            f2(rm.stats.sent_by_kind("mw-read-req") as f64 / kf),
            (b + 1).to_string(),
            f2(rm.client.logical_verifies() as f64 / kf),
            f2(wm.servers.logical_verifies() as f64 / kf),
            max_log.to_string(),
            f2(mean_latency_ms(&wm.results)),
            f2(mean_latency_ms(&rm.results)),
        ]);
    }
    t.note("clients skip read verification: b+1 matching server reports mask liars (paper §6)");
    t
}

// ---------------------------------------------------------------------
// T4 — comparison with masking quorums and PBFT (paper §6 ¶9–11)
// ---------------------------------------------------------------------

fn secure_store_op_costs(n: usize, b: usize, net: SimConfig) -> (f64, f64, f64, f64) {
    const K: u64 = 6;
    let mut cluster = ClusterBuilder::new(n, b)
        .seed(net.seed)
        .network(net)
        .server_config(quiet_server_cfg())
        .client_config(sticky_client_cfg())
        .client(
            std::iter::once(connect())
                .chain((0..K).map(|i| write(i + 1, Consistency::Mrc)))
                .chain((0..K).map(|i| read(i + 1, Consistency::Mrc)))
                .collect(),
        )
        .build();
    cluster.run_to_quiescence();
    let stats = cluster.sim.stats().clone();
    let results = cluster.client_results(0);
    let writes: Vec<&OpResult> = results.iter().filter(|r| r.kind == OpKind::Write).collect();
    let reads: Vec<&OpResult> = results.iter().filter(|r| r.kind == OpKind::Read).collect();
    let kf = K as f64;
    let write_msgs =
        (stats.sent_by_kind("write-req") + stats.sent_by_kind("write-ack")) as f64 / kf;
    let read_msgs = (stats.sent_by_kind("ts-query-req")
        + stats.sent_by_kind("ts-query-resp")
        + stats.sent_by_kind("read-req")
        + stats.sent_by_kind("read-resp")) as f64
        / kf;
    (
        write_msgs,
        read_msgs,
        writes
            .iter()
            .map(|r| r.latency().as_millis_f64())
            .sum::<f64>()
            / kf,
        reads
            .iter()
            .map(|r| r.latency().as_millis_f64())
            .sum::<f64>()
            / kf,
    )
}

fn masking_op_costs(n: usize, b: usize, net: SimConfig) -> (f64, f64, f64, f64) {
    const K: usize = 6;
    let mut cluster = MaskCluster::new(n, b, net);
    let mut wl = 0.0;
    let mut rl = 0.0;
    for i in 0..K {
        wl += cluster
            .write(DataId(i as u64 + 1), &[0xab; 64])
            .latency
            .as_millis_f64();
    }
    let snap = cluster.sim.stats().clone();
    let write_msgs =
        (snap.sent_by_kind("mask-write") + snap.sent_by_kind("mask-write-ack")) as f64 / K as f64;
    for i in 0..K {
        rl += cluster.read(DataId(i as u64 + 1)).latency.as_millis_f64();
    }
    let diff = cluster.sim.stats().since(&snap);
    let read_msgs =
        (diff.sent_by_kind("mask-read") + diff.sent_by_kind("mask-read-resp")) as f64 / K as f64;
    (write_msgs, read_msgs, wl / K as f64, rl / K as f64)
}

fn pbft_op_costs(f: usize, net: SimConfig) -> (f64, f64, f64, f64) {
    const K: usize = 6;
    let mut cluster = PbftCluster::new(f, net);
    let mut wl = 0.0;
    let mut rl = 0.0;
    for i in 0..K {
        wl += cluster
            .put(DataId(i as u64 + 1), &[0xab; 64])
            .latency
            .as_millis_f64();
    }
    let snap = cluster.sim.stats().clone();
    let write_msgs = snap.total_messages as f64 / K as f64;
    for i in 0..K {
        rl += cluster.get(DataId(i as u64 + 1)).latency.as_millis_f64();
    }
    let read_msgs = cluster.sim.stats().since(&snap).total_messages as f64 / K as f64;
    (write_msgs, read_msgs, wl / K as f64, rl / K as f64)
}

/// T4: the secure store vs. masking quorums vs. PBFT-lite — messages per
/// operation and mean latency, LAN and WAN.
///
/// Paper claims: masking quorums need `⌈(n+2b+1)/2⌉`-server round trips;
/// PBFT needs `O(n²)` messages; the secure store needs `b+1` for data ops,
/// with the gap mattering most at WAN latencies.
pub fn t4_baseline_comparison() -> Table {
    let mut t = Table::new(
        "T4: system comparison (per-op messages and mean latency)",
        &[
            "system",
            "b/f",
            "n",
            "write msgs",
            "read msgs",
            "LAN write ms",
            "LAN read ms",
            "WAN write ms",
            "WAN read ms",
        ],
    );
    for b in [1usize, 2, 3] {
        // Each system at its minimum replication for the fault budget.
        let n_ss = 3 * b + 1;
        let lan = secure_store_op_costs(n_ss, b, SimConfig::lan(40));
        let wan = secure_store_op_costs(n_ss, b, SimConfig::wan(40));
        t.row(vec![
            "secure-store".into(),
            b.to_string(),
            n_ss.to_string(),
            f2(lan.0),
            f2(lan.1),
            f2(lan.2),
            f2(lan.3),
            f2(wan.2),
            f2(wan.3),
        ]);
        let n_mask = 4 * b + 1;
        let lan = masking_op_costs(n_mask, b, SimConfig::lan(41));
        let wan = masking_op_costs(n_mask, b, SimConfig::wan(41));
        t.row(vec![
            "masking-quorum".into(),
            b.to_string(),
            n_mask.to_string(),
            f2(lan.0),
            f2(lan.1),
            f2(lan.2),
            f2(lan.3),
            f2(wan.2),
            f2(wan.3),
        ]);
        let lan = pbft_op_costs(b, SimConfig::lan(42));
        let wan = pbft_op_costs(b, SimConfig::wan(42));
        t.row(vec![
            "pbft-lite".into(),
            b.to_string(),
            (3 * b + 1).to_string(),
            f2(lan.0),
            f2(lan.1),
            f2(lan.2),
            f2(lan.3),
            f2(wan.2),
            f2(wan.3),
        ]);
    }
    t.note("message counts include responses; WAN = 40-80ms one-way");
    t
}

// ---------------------------------------------------------------------
// F1 — read cost vs. dissemination rate (paper §6 ¶6)
// ---------------------------------------------------------------------

/// F1: a reader that has seen version `v` must find a server holding
/// `≥ v`; how hard that is depends on the gossip period and write rate.
pub fn f1_dissemination() -> Table {
    let mut t = Table::new(
        "F1: read retries vs. gossip period (n=7, b=1, writer at 5 writes/s)",
        &[
            "gossip period ms",
            "reads",
            "mean rounds",
            "stale-fail rate",
            "mean read ms",
        ],
    );
    for period_ms in [25u64, 50, 100, 200, 400, 800] {
        let mut server_cfg = ServerConfig::default();
        server_cfg.gossip.period = SimTime::from_millis(period_ms);
        server_cfg.gossip.fanout = 1;
        let writer: Vec<Step> = std::iter::once(connect())
            .chain((0..20).flat_map(|_| {
                vec![
                    write(1, Consistency::Mrc),
                    Step::Wait(SimTime::from_millis(200)),
                ]
            }))
            .collect();
        let reader: Vec<Step> = std::iter::once(connect())
            .chain((0..20).flat_map(|_| {
                vec![
                    read(1, Consistency::Mrc),
                    Step::Wait(SimTime::from_millis(200)),
                ]
            }))
            .collect();
        let mut cluster = ClusterBuilder::new(7, 1)
            .seed(5000 + period_ms)
            .server_config(server_cfg)
            .client(writer)
            .client(reader)
            .build();
        cluster.run_to_quiescence();
        let results = cluster.client_results(1);
        let reads: Vec<&OpResult> = results.iter().filter(|r| r.kind == OpKind::Read).collect();
        let stale = reads
            .iter()
            .filter(|r| matches!(r.outcome, Outcome::Stale { .. }))
            .count();
        t.row(vec![
            period_ms.to_string(),
            reads.len().to_string(),
            f2(reads.iter().map(|r| r.rounds as f64).sum::<f64>() / reads.len() as f64),
            f2(stale as f64 / reads.len() as f64),
            f2(reads
                .iter()
                .map(|r| r.latency().as_millis_f64())
                .sum::<f64>()
                / reads.len() as f64),
        ]);
    }
    t.note(
        "rounds > 1 mean the b+1 quorum lacked a fresh-enough copy and the client widened/retried",
    );
    t
}

// ---------------------------------------------------------------------
// F2 — availability under faults (paper §1, §4)
// ---------------------------------------------------------------------

fn secure_store_success_rate(n: usize, b: usize, faulty: usize, behavior: Behavior) -> f64 {
    let script: Vec<Step> = std::iter::once(connect())
        .chain((0..6u64).flat_map(|i| {
            vec![
                write(i % 3 + 1, Consistency::Mrc),
                read(i % 3 + 1, Consistency::Mrc),
            ]
        }))
        .chain(std::iter::once(disconnect()))
        .collect();
    let mut builder = ClusterBuilder::new(n, b)
        .seed(6000 + faulty as u64)
        .client_config(ClientConfig {
            retry: sstore_core::RetryPolicy {
                phase_timeout: SimTime::from_millis(200),
                stale_retry_delay: SimTime::from_millis(100),
                max_rounds: 4,
                ..sstore_core::RetryPolicy::default()
            },
            ..ClientConfig::default()
        })
        .client(script);
    for i in 0..faulty {
        builder = builder.behavior(i * 2 % n, behavior);
    }
    let mut cluster = builder.build();
    cluster.run_to_quiescence();
    let results = cluster.client_results(0);
    results.iter().filter(|r| r.outcome.is_ok()).count() as f64 / results.len() as f64
}

/// F2: operation success rate as the number of actually-faulty servers
/// grows past the design bound `b`.
pub fn f2_availability() -> Table {
    let mut t = Table::new(
        "F2: availability under faults (n=7, design bound b=2)",
        &[
            "faulty servers",
            "ss crash",
            "ss stale-byz",
            "ss corrupt-byz",
            "masking(n=9) crash",
            "pbft(n=7) crash",
        ],
    );
    for f in 0..=4usize {
        let ss_crash = secure_store_success_rate(7, 2, f, Behavior::Crash);
        let ss_stale = secure_store_success_rate(7, 2, f, Behavior::Stale);
        let ss_corrupt = secure_store_success_rate(7, 2, f, Behavior::CorruptValue);
        // Masking with the same fault budget needs n=9.
        let mask_rate = {
            let mut c = MaskCluster::new(9, 2, SimConfig::lan(60 + f as u64));
            for i in 0..f {
                c.crash_server(i);
            }
            let mut ok = 0;
            for i in 0..6u64 {
                if c.write(DataId(i % 3 + 1), b"v").ok {
                    ok += 1;
                }
                if c.read(DataId(i % 3 + 1)).ok {
                    ok += 1;
                }
            }
            ok as f64 / 12.0
        };
        let pbft_rate = {
            let mut c = PbftCluster::new(2, SimConfig::lan(70 + f as u64));
            // Crash backups first (primary crash = total loss in -lite).
            for i in 0..f {
                c.crash_replica(c.n() - 1 - i);
            }
            let mut ok = 0;
            for i in 0..6u64 {
                if c.put(DataId(i % 3 + 1), b"v").ok {
                    ok += 1;
                }
                if c.get(DataId(i % 3 + 1)).ok {
                    ok += 1;
                }
            }
            ok as f64 / 12.0
        };
        t.row(vec![
            f.to_string(),
            f2(ss_crash),
            f2(ss_stale),
            f2(ss_corrupt),
            f2(mask_rate),
            f2(pbft_rate),
        ]);
    }
    t.note("success within a 4-round retry budget; beyond b the store's safety bound no longer holds even where ops succeed");
    t
}

// ---------------------------------------------------------------------
// F4 — cost vs consistency (paper §6 conclusion)
// ---------------------------------------------------------------------

/// F4: end-to-end operation latency by consistency level, under WAN
/// latencies — the paper's "weaker consistency buys response time" claim.
pub fn f4_consistency_tradeoff() -> Table {
    let mut t = Table::new(
        "F4: latency by consistency level (b=1, WAN 40-80ms one-way)",
        &[
            "protocol / consistency",
            "n",
            "write ms",
            "read ms",
            "write msgs",
            "read msgs",
        ],
    );
    let (wm, rm, wl, rl) = secure_store_op_costs(4, 1, SimConfig::wan(80));
    t.row(vec![
        "secure-store MRC".into(),
        "4".into(),
        f2(wl),
        f2(rl),
        f2(wm),
        f2(rm),
    ]);
    // CC measured via its own run.
    {
        const K: u64 = 6;
        let mut cluster = ClusterBuilder::new(4, 1)
            .seed(81)
            .network(SimConfig::wan(81))
            .server_config(quiet_server_cfg())
            .client_config(sticky_client_cfg())
            .client(
                std::iter::once(connect())
                    .chain((0..K).map(|i| write(i + 1, Consistency::Cc)))
                    .chain((0..K).map(|i| read(i + 1, Consistency::Cc)))
                    .collect(),
            )
            .build();
        cluster.run_to_quiescence();
        let results = cluster.client_results(0);
        let w: Vec<&OpResult> = results.iter().filter(|r| r.kind == OpKind::Write).collect();
        let r: Vec<&OpResult> = results.iter().filter(|r| r.kind == OpKind::Read).collect();
        let stats = cluster.sim.stats();
        t.row(vec![
            "secure-store CC".into(),
            "4".into(),
            f2(w.iter().map(|x| x.latency().as_millis_f64()).sum::<f64>() / K as f64),
            f2(r.iter().map(|x| x.latency().as_millis_f64()).sum::<f64>() / K as f64),
            f2(
                (stats.sent_by_kind("write-req") + stats.sent_by_kind("write-ack")) as f64
                    / K as f64,
            ),
            f2((stats.sent_by_kind("ts-query-req")
                + stats.sent_by_kind("ts-query-resp")
                + stats.sent_by_kind("read-req")
                + stats.sent_by_kind("read-resp")) as f64
                / K as f64),
        ]);
    }
    // Multi-writer.
    {
        const K: u64 = 6;
        let mut cluster = ClusterBuilder::new(4, 1)
            .seed(82)
            .network(SimConfig::wan(82))
            .server_config(quiet_server_cfg())
            .client_config(sticky_client_cfg())
            .client(
                std::iter::once(connect())
                    .chain((0..K).map(|i| mw_write(i + 1)))
                    .chain((0..K).map(|i| mw_read(i + 1)))
                    .collect(),
            )
            .build();
        cluster.run_to_quiescence();
        let results = cluster.client_results(0);
        let w: Vec<&OpResult> = results
            .iter()
            .filter(|r| r.kind == OpKind::MwWrite)
            .collect();
        let r: Vec<&OpResult> = results
            .iter()
            .filter(|r| r.kind == OpKind::MwRead)
            .collect();
        let stats = cluster.sim.stats();
        t.row(vec![
            "secure-store multi-writer CC".into(),
            "4".into(),
            f2(w.iter().map(|x| x.latency().as_millis_f64()).sum::<f64>() / K as f64),
            f2(r.iter().map(|x| x.latency().as_millis_f64()).sum::<f64>() / K as f64),
            f2(
                (stats.sent_by_kind("write-req") + stats.sent_by_kind("write-ack")) as f64
                    / K as f64,
            ),
            f2(
                (stats.sent_by_kind("mw-read-req") + stats.sent_by_kind("mw-read-resp")) as f64
                    / K as f64,
            ),
        ]);
    }
    let (wm, rm, wl, rl) = masking_op_costs(5, 1, SimConfig::wan(83));
    t.row(vec![
        "masking-quorum (safe/strong)".into(),
        "5".into(),
        f2(wl),
        f2(rl),
        f2(wm),
        f2(rm),
    ]);
    let (wm, rm, wl, rl) = pbft_op_costs(1, SimConfig::wan(84));
    t.row(vec![
        "pbft-lite (linearizable)".into(),
        "4".into(),
        f2(wl),
        f2(rl),
        f2(wm),
        f2(rm),
    ]);
    t.note(
        "same WAN model for all systems; weaker consistency = fewer servers on the critical path",
    );
    t
}

// ---------------------------------------------------------------------
// F5 — staleness vs gossip fanout (MRC eventual-freshness, paper §4.2)
// ---------------------------------------------------------------------

/// F5: version lag of MRC reads as gossip fanout and period vary.
pub fn f5_staleness() -> Table {
    let mut t = Table::new(
        "F5: read staleness vs gossip aggressiveness (n=7, b=1, 25 writes at 10/s)",
        &[
            "fanout",
            "period ms",
            "mean version lag",
            "max lag",
            "fresh-read rate",
        ],
    );
    for fanout in [1usize, 2, 3] {
        for period_ms in [100u64, 400] {
            let mut server_cfg = ServerConfig::default();
            server_cfg.gossip.fanout = fanout;
            server_cfg.gossip.period = SimTime::from_millis(period_ms);
            let writer: Vec<Step> = std::iter::once(connect())
                .chain((0..25).flat_map(|_| {
                    vec![
                        write(1, Consistency::Mrc),
                        Step::Wait(SimTime::from_millis(100)),
                    ]
                }))
                .collect();
            let reader: Vec<Step> = std::iter::once(connect())
                .chain((0..25).flat_map(|_| {
                    vec![
                        read(1, Consistency::Mrc),
                        Step::Wait(SimTime::from_millis(100)),
                    ]
                }))
                .collect();
            let mut cluster = ClusterBuilder::new(7, 1)
                .seed(9000 + fanout as u64 * 17 + period_ms)
                .server_config(server_cfg)
                .client(writer)
                .client(reader)
                .build();
            cluster.run_to_quiescence();
            let writer_results = cluster.client_results(0);
            let write_times: Vec<(SimTime, u64)> = writer_results
                .iter()
                .filter_map(|r| match &r.outcome {
                    Outcome::WriteOk { ts } => Some((r.finished, ts.time())),
                    _ => None,
                })
                .collect();
            let newest_at = |t: SimTime| -> u64 {
                write_times
                    .iter()
                    .filter(|(wt, _)| *wt <= t)
                    .map(|(_, v)| *v)
                    .max()
                    .unwrap_or(0)
            };
            let reads: Vec<(SimTime, u64)> = cluster
                .client_results(1)
                .iter()
                .filter_map(|r| match &r.outcome {
                    Outcome::ReadOk { ts, .. } => Some((r.finished, ts.time())),
                    _ => None,
                })
                .collect();
            if reads.is_empty() {
                continue;
            }
            let lags: Vec<f64> = reads
                .iter()
                .map(|(t, v)| (newest_at(*t).saturating_sub(*v)) as f64)
                .collect();
            let fresh = lags.iter().filter(|&&l| l == 0.0).count() as f64 / lags.len() as f64;
            t.row(vec![
                fanout.to_string(),
                period_ms.to_string(),
                f2(lags.iter().sum::<f64>() / lags.len() as f64),
                f2(lags.iter().cloned().fold(0.0, f64::max)),
                f2(fresh),
            ]);
        }
    }
    t.note("lag = versions behind the newest completed write at read completion time");
    t
}

// ---------------------------------------------------------------------
// F6 — context reconstruction cost (paper §5.1)
// ---------------------------------------------------------------------

/// F6: the crash-recovery reconstruction path (all-server metadata scan)
/// vs. the normal warm connect, as the group grows.
pub fn f6_reconstruction() -> Table {
    let mut t = Table::new(
        "F6: context acquisition vs reconstruction (n=7, b=2)",
        &[
            "group size",
            "warm msgs",
            "warm verifies",
            "warm ms",
            "reconstruct msgs",
            "reconstruct verifies",
            "reconstruct ms",
            "latency ratio",
        ],
    );
    for m in [2usize, 4, 8, 16, 32, 64] {
        let mut prime: Vec<Step> = vec![connect()];
        for i in 0..m as u64 {
            prime.push(write(i + 1, Consistency::Mrc));
        }
        prime.push(disconnect());

        // Warm connect.
        let warm = marginal(
            7,
            2,
            7000 + m as u64,
            quiet_server_cfg(),
            prime.clone(),
            vec![connect()],
        );
        // Crash + reconstruction.
        let rec = marginal(
            7,
            2,
            7000 + m as u64,
            quiet_server_cfg(),
            prime,
            vec![Step::Crash, reconnect_recover()],
        );
        let warm_msgs =
            warm.stats.sent_by_kind("ctx-read-req") + warm.stats.sent_by_kind("ctx-read-resp");
        let rec_msgs =
            rec.stats.sent_by_kind("ts-scan-req") + rec.stats.sent_by_kind("ts-scan-resp");
        let warm_ms = mean_latency_ms(&warm.results);
        let rec_ms = mean_latency_ms(&rec.results);
        t.row(vec![
            m.to_string(),
            warm_msgs.to_string(),
            warm.client.logical_verifies().to_string(),
            f2(warm_ms),
            rec_msgs.to_string(),
            rec.client.logical_verifies().to_string(),
            f2(rec_ms),
            ratio(rec_ms, warm_ms),
        ]);
    }
    t.note("reconstruction reads all n servers and verifies one metadata signature per item");
    t
}

// ---------------------------------------------------------------------
// F7 — confidentiality backends (paper §5.2 end; related work [14,18])
// ---------------------------------------------------------------------

/// F7: client-side encryption vs Shamir sharing vs Rabin IDA — CPU cost
/// and storage blowup.
pub fn f7_confidentiality() -> Table {
    let mut t = Table::new(
        "F7: confidentiality backends (1 KiB values, wall-clock on this host)",
        &[
            "backend",
            "k/n",
            "protect us/op",
            "recover us/op",
            "storage blowup",
        ],
    );
    let value = vec![0x5a; 1024];
    let iters = 50u32;

    // Encrypt-then-MAC (key never at servers): storage 1x (+40B framing).
    let cipher = ValueCipher::new(b"master", b"bench");
    let ts = Timestamp::Version(1);
    let start = Instant::now();
    let mut blob = Vec::new();
    for _ in 0..iters {
        blob = cipher.encrypt(&value, &ts);
    }
    let enc_us = start.elapsed().as_micros() as f64 / iters as f64;
    let start = Instant::now();
    for _ in 0..iters {
        let _ = cipher.decrypt(&blob, &ts).unwrap();
    }
    let dec_us = start.elapsed().as_micros() as f64 / iters as f64;
    t.row(vec![
        "encrypt (hash-CTR + HMAC)".into(),
        "—".into(),
        f2(enc_us),
        f2(dec_us),
        f2(blob.len() as f64 / value.len() as f64),
    ]);

    let mut rng = StdRng::seed_from_u64(7);
    for (k, n) in [(2usize, 4usize), (3, 7), (4, 10)] {
        for store in [FragmentStore::shamir(k, n), FragmentStore::ida(k, n)] {
            let label = match store.scheme() {
                sstore_core::confidential::FragmentScheme::Shamir => "shamir",
                sstore_core::confidential::FragmentScheme::Ida => "ida",
            };
            let start = Instant::now();
            let mut frags = Vec::new();
            for _ in 0..iters {
                frags = store.split(&value, &mut rng).unwrap();
            }
            let split_us = start.elapsed().as_micros() as f64 / iters as f64;
            let subset: Vec<_> = frags[..k].to_vec();
            let start = Instant::now();
            for _ in 0..iters {
                let _ = store.reconstruct(&subset).unwrap();
            }
            let join_us = start.elapsed().as_micros() as f64 / iters as f64;
            t.row(vec![
                label.into(),
                format!("{k}/{n}"),
                f2(split_us),
                f2(join_us),
                f2(store.storage_bytes(value.len()) as f64 / value.len() as f64),
            ]);
        }
    }
    t.note(
        "shamir = information-theoretic at n× storage; ida = n/k× storage, computational secrecy",
    );
    t
}

// ---------------------------------------------------------------------
// F8 (ablation) — two-phase read vs. piggybacked one-round-trip read
// ---------------------------------------------------------------------

/// F8: §6 claims "in the best case, the message cost and response time of
/// read operations could also be the same as write operations" — that best
/// case requires servers to piggyback small values on timestamp replies.
/// This ablation compares the paper's literal two-phase Fig. 2 read with
/// the piggybacked variant.
pub fn f8_read_ablation() -> Table {
    let mut t = Table::new(
        "F8 (ablation): two-phase read vs piggybacked read (b=1, n=4)",
        &[
            "variant",
            "value B",
            "read msgs",
            "read bytes",
            "LAN read ms",
            "WAN read ms",
        ],
    );
    for (label, limit, value_len) in [
        ("two-phase (Fig. 2)", 0usize, 64usize),
        ("piggyback", 1 << 20, 64),
        ("two-phase (Fig. 2)", 0, 8192),
        ("piggyback", 1 << 20, 8192),
    ] {
        let mut server_cfg = quiet_server_cfg();
        server_cfg.read_inline_limit = limit;
        let run = |net: SimConfig| {
            const K: u64 = 6;
            let script: Vec<Step> = std::iter::once(connect())
                .chain((0..K).map(|i| {
                    Step::Do(ClientOp::Write {
                        data: DataId(i + 1),
                        group: G,
                        consistency: Consistency::Mrc,
                        value: vec![0xab; value_len],
                    })
                }))
                .chain((0..K).map(|i| read(i + 1, Consistency::Mrc)))
                .collect();
            let mut cluster = ClusterBuilder::new(4, 1)
                .seed(net.seed)
                .network(net)
                .server_config(server_cfg.clone())
                .client_config(sticky_client_cfg())
                .client(script)
                .build();
            cluster.run_to_quiescence();
            let stats = cluster.sim.stats().clone();
            let reads: Vec<OpResult> = cluster
                .client_results(0)
                .into_iter()
                .filter(|r| r.kind == OpKind::Read)
                .collect();
            let msgs = (stats.sent_by_kind("ts-query-req")
                + stats.sent_by_kind("ts-query-resp")
                + stats.sent_by_kind("read-req")
                + stats.sent_by_kind("read-resp")) as f64
                / K as f64;
            let bytes = (stats.bytes_by_kind("ts-query-req")
                + stats.bytes_by_kind("ts-query-resp")
                + stats.bytes_by_kind("read-req")
                + stats.bytes_by_kind("read-resp")) as f64
                / K as f64;
            (msgs, bytes, mean_latency_ms(&reads))
        };
        let lan = run(SimConfig::lan(90));
        let wan = run(SimConfig::wan(90));
        t.row(vec![
            label.into(),
            value_len.to_string(),
            f2(lan.0),
            f2(lan.1),
            f2(lan.2),
            f2(wan.2),
        ]);
    }
    t.note("piggyback halves read round trips at the cost of shipping b+1 value copies");
    t
}

/// Runs every experiment and returns the rendered tables in order.
pub fn run_all() -> Vec<Table> {
    vec![
        t1_context_costs(),
        t2_data_costs(),
        t3_multi_writer_costs(),
        t4_baseline_comparison(),
        f1_dissemination(),
        f2_availability(),
        f4_consistency_tradeoff(),
        f5_staleness(),
        f6_reconstruction(),
        f7_confidentiality(),
        f8_read_ablation(),
    ]
}

/// Convenience: `Cluster` re-export for binaries that post-process.
pub type SecureCluster = Cluster;
