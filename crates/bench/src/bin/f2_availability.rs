//! Regenerates experiment f2 (see DESIGN.md / EXPERIMENTS.md).

fn main() {
    let table = sstore_bench::experiments::f2_availability();
    if std::env::args().any(|a| a == "--markdown") {
        println!("{}", table.to_markdown());
    } else {
        table.print();
    }
}
