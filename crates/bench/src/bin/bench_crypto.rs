//! Wall-clock crypto micro-benchmark with a persistent record.
//!
//! Times Schnorr sign / verify (and the schoolbook verify baseline the
//! Montgomery rewrite replaced) at every preset group size and appends one
//! entry to `BENCH_crypto.json` at the repository root, so the perf history
//! of the signature hot path survives across changes. EXPERIMENTS.md quotes
//! these numbers.
//!
//! Usage: `cargo run --release -p sstore-bench --bin bench_crypto
//! [-- --out PATH] [--note TEXT]`

use std::time::{Instant, SystemTime, UNIX_EPOCH};

use sstore_crypto::schnorr::{SchnorrParams, SigningKey};

/// Median-of-runs nanoseconds per operation. One untimed warmup call, then
/// enough iterations to spend ~100ms or `max_iters`, whichever is first.
fn time_ns(mut op: impl FnMut(), max_iters: u32) -> u64 {
    op(); // warmup (also builds any lazy tables)
    let probe = Instant::now();
    op();
    let est = probe.elapsed().as_nanos().max(1);
    let iters = ((100_000_000 / est) as u32).clamp(3, max_iters);
    let mut samples: Vec<u64> = (0..iters)
        .map(|_| {
            let t = Instant::now();
            op();
            t.elapsed().as_nanos() as u64
        })
        .collect();
    samples.sort_unstable();
    samples[samples.len() / 2]
}

struct GroupResult {
    label: &'static str,
    p_bits: usize,
    q_bits: usize,
    sign_ns: u64,
    verify_ns: u64,
    verify_schoolbook_ns: u64,
}

fn measure(label: &'static str, params: std::sync::Arc<SchnorrParams>) -> GroupResult {
    let key = SigningKey::from_seed(&params, 1);
    let vk = key.verifying_key().clone();
    let msg = vec![0x11u8; 256];
    let sig = key.sign(&msg);
    let sign_ns = time_ns(
        || {
            key.sign(&msg);
        },
        500,
    );
    let verify_ns = time_ns(
        || {
            vk.verify(&msg, &sig).unwrap();
        },
        500,
    );
    let verify_schoolbook_ns = time_ns(
        || {
            vk.verify_schoolbook(&msg, &sig).unwrap();
        },
        100,
    );
    GroupResult {
        label,
        p_bits: params.modulus().bit_len(),
        q_bits: params.order().bit_len(),
        sign_ns,
        verify_ns,
        verify_schoolbook_ns,
    }
}

fn entry_json(results: &[GroupResult], note: &str) -> String {
    let recorded = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let mut out = String::new();
    out.push_str("  {\n");
    out.push_str(&format!("    \"recorded_unix\": {recorded},\n"));
    out.push_str(&format!("    \"note\": \"{}\",\n", note.replace('"', "'")));
    out.push_str("    \"groups\": [\n");
    for (i, r) in results.iter().enumerate() {
        let speedup = r.verify_schoolbook_ns as f64 / r.verify_ns.max(1) as f64;
        out.push_str(&format!(
            "      {{\"group\": \"{}\", \"p_bits\": {}, \"q_bits\": {}, \
             \"sign_ns\": {}, \"verify_ns\": {}, \"verify_schoolbook_ns\": {}, \
             \"verify_speedup\": {:.2}}}{}\n",
            r.label,
            r.p_bits,
            r.q_bits,
            r.sign_ns,
            r.verify_ns,
            r.verify_schoolbook_ns,
            speedup,
            if i + 1 < results.len() { "," } else { "" },
        ));
    }
    out.push_str("    ]\n  }");
    out
}

/// Appends `entry` to the JSON array in `path`, creating the file if absent.
fn append_entry(path: &str, entry: &str) -> std::io::Result<()> {
    let new_content = match std::fs::read_to_string(path) {
        Ok(existing) => {
            let trimmed = existing.trim_end();
            let without_close = trimmed
                .strip_suffix(']')
                .map(str::trim_end)
                .unwrap_or(trimmed);
            if without_close.trim() == "[" {
                format!("[\n{entry}\n]\n")
            } else {
                format!("{without_close},\n{entry}\n]\n")
            }
        }
        Err(_) => format!("[\n{entry}\n]\n"),
    };
    std::fs::write(path, new_content)
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let arg_after = |flag: &str| {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };
    let out = arg_after("--out")
        .unwrap_or_else(|| concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_crypto.json").into());
    let note = arg_after("--note").unwrap_or_else(|| {
        "montgomery + fixed-base verify; schoolbook column = pre-Montgomery baseline".into()
    });

    let groups = [
        ("micro-128", SchnorrParams::micro()),
        ("toy-256", SchnorrParams::toy()),
        ("group-512", SchnorrParams::group_512()),
        ("group-1024", SchnorrParams::group_1024()),
    ];
    let mut results = Vec::new();
    for (label, params) in groups {
        eprintln!("measuring {label}...");
        let r = measure(label, params);
        eprintln!(
            "  sign {} ns  verify {} ns  verify-schoolbook {} ns  ({:.1}x)",
            r.sign_ns,
            r.verify_ns,
            r.verify_schoolbook_ns,
            r.verify_schoolbook_ns as f64 / r.verify_ns.max(1) as f64
        );
        results.push(r);
    }
    let entry = entry_json(&results, &note);
    append_entry(&out, &entry).expect("write BENCH_crypto.json");
    println!("{entry}");
    println!("appended to {out}");
}
