//! Runs the complete experiment suite; `--markdown` emits EXPERIMENTS.md
//! ready tables.

fn main() {
    let markdown = std::env::args().any(|a| a == "--markdown");
    for table in sstore_bench::experiments::run_all() {
        if markdown {
            println!("{}", table.to_markdown());
        } else {
            table.print();
        }
    }
}
