//! Regenerates experiment f4 (see DESIGN.md / EXPERIMENTS.md).

fn main() {
    let table = sstore_bench::experiments::f4_consistency_tradeoff();
    if std::env::args().any(|a| a == "--markdown") {
        println!("{}", table.to_markdown());
    } else {
        table.print();
    }
}
