//! Regenerates experiment f1 (see DESIGN.md / EXPERIMENTS.md).

fn main() {
    let table = sstore_bench::experiments::f1_dissemination();
    if std::env::args().any(|a| a == "--markdown") {
        println!("{}", table.to_markdown());
    } else {
        table.print();
    }
}
