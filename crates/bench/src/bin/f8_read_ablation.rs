//! Regenerates ablation F8 (see DESIGN.md / EXPERIMENTS.md).

fn main() {
    let table = sstore_bench::experiments::f8_read_ablation();
    if std::env::args().any(|a| a == "--markdown") {
        println!("{}", table.to_markdown());
    } else {
        table.print();
    }
}
