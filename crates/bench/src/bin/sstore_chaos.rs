//! sstore-chaos — seeded chaos campaigns against the simulated store.
//!
//! Runs the [`sstore_core::chaos`] campaign engine over a seed range,
//! shrinks every failing seed with delta debugging, and writes the
//! minimal schedules as replay files that re-run byte-for-byte
//! deterministically.
//!
//! ```text
//! # standard campaign (both oracles must hold on every seed)
//! sstore-chaos --seeds 0..200
//!
//! # over-budget probe (b+1 stale servers; the safety oracle is
//! # expected to flag some seeds — exit 0 only if it does)
//! sstore-chaos --seeds 0..50 --over-budget --expect-flagged
//!
//! # crash-recovery batch: every seed gets at least one server
//! # restart that replays the write-ahead log from stable storage
//! sstore-chaos --seeds 200..280 --force-restart --restart-mode recover
//!
//! # re-run a minimal replay file twice and check determinism
//! sstore-chaos --replay chaos-failures/seed-17.replay
//!
//! # EXPERIMENTS.md availability table (runs both campaigns)
//! sstore-chaos --seeds 0..200 --markdown
//! ```
//!
//! Exit codes: `0` success (or expected flags present), `1` oracle
//! failure / missing expected flags / IO error, `2` bad usage or a
//! nondeterministic replay.

use std::fmt::Write as _;
use std::process::ExitCode;

use sstore_core::chaos::{self, ChaosConfig, FailureClass, RunOptions, Verdict};
use sstore_core::server::storage::FsyncPolicy;
use sstore_core::sim::RestartMode;

struct Args {
    seed_from: u64,
    seed_to: u64,
    n: usize,
    b: usize,
    over_budget: bool,
    expect_flagged: bool,
    restart_mode: RestartMode,
    force_restart: bool,
    options: RunOptions,
    markdown: bool,
    json: bool,
    out_dir: String,
    shrink_budget: usize,
    replay: Option<String>,
}

impl Default for Args {
    fn default() -> Self {
        Args {
            seed_from: 0,
            seed_to: 200,
            n: 4,
            b: 1,
            over_budget: false,
            expect_flagged: false,
            restart_mode: RestartMode::Recover,
            force_restart: false,
            options: RunOptions::default(),
            markdown: false,
            json: false,
            out_dir: "chaos-failures".to_string(),
            shrink_budget: 400,
            replay: None,
        }
    }
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args::default();
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .ok_or_else(|| format!("{name} requires an argument"))
        };
        match flag.as_str() {
            "--seeds" => {
                let spec = value("--seeds")?;
                let (a, z) = spec
                    .split_once("..")
                    .ok_or_else(|| format!("--seeds expects A..B, got {spec}"))?;
                args.seed_from = a.parse().map_err(|e| format!("bad seed {a}: {e}"))?;
                args.seed_to = z.parse().map_err(|e| format!("bad seed {z}: {e}"))?;
                if args.seed_to <= args.seed_from {
                    return Err(format!("empty seed range {spec}"));
                }
            }
            "--n" => args.n = value("--n")?.parse().map_err(|e| format!("bad --n: {e}"))?,
            "--b" => args.b = value("--b")?.parse().map_err(|e| format!("bad --b: {e}"))?,
            "--over-budget" => args.over_budget = true,
            "--expect-flagged" => args.expect_flagged = true,
            "--restart-mode" => {
                args.restart_mode = match value("--restart-mode")?.as_str() {
                    "wipe" => RestartMode::Wipe,
                    "recover" => RestartMode::Recover,
                    other => return Err(format!("bad --restart-mode {other} (wipe|recover)")),
                }
            }
            "--force-restart" => args.force_restart = true,
            "--fsync" => {
                let spec = value("--fsync")?;
                args.options.fsync = match spec.as_str() {
                    "always" => FsyncPolicy::Always,
                    other => {
                        let parsed = other.strip_prefix("group-commit:").and_then(|rest| {
                            let (batch, delay) = rest.split_once(':')?;
                            let max_batch: u32 = batch.parse().ok().filter(|n| *n > 0)?;
                            let max_delay_us: u64 = delay.parse().ok()?;
                            Some(FsyncPolicy::GroupCommit {
                                max_batch,
                                max_delay_us,
                            })
                        });
                        parsed.ok_or_else(|| {
                            format!("bad --fsync {other} (always|group-commit:N:USEC)")
                        })?
                    }
                };
            }
            "--markdown" => args.markdown = true,
            "--json" => args.json = true,
            "--out" => args.out_dir = value("--out")?,
            "--shrink-budget" => {
                args.shrink_budget = value("--shrink-budget")?
                    .parse()
                    .map_err(|e| format!("bad --shrink-budget: {e}"))?
            }
            "--replay" => args.replay = Some(value("--replay")?),
            "--help" | "-h" => {
                return Err("usage: sstore-chaos [--seeds A..B] [--n N] [--b B] \
                     [--over-budget] [--expect-flagged] [--restart-mode wipe|recover] \
                     [--force-restart] [--fsync always|group-commit:N:USEC] \
                     [--json] [--markdown] \
                     [--out DIR] [--shrink-budget N] | --replay FILE [--json]"
                    .to_string());
            }
            other => return Err(format!("unknown flag {other} (try --help)")),
        }
    }
    Ok(args)
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

fn verdict_json(v: &Verdict) -> String {
    let class = match v.class() {
        Some(FailureClass::Safety) => "\"safety\"".to_string(),
        Some(FailureClass::Liveness) => "\"liveness\"".to_string(),
        None => "null".to_string(),
    };
    let list = |items: &[String]| {
        items
            .iter()
            .map(|s| format!("\"{}\"", json_escape(s)))
            .collect::<Vec<_>>()
            .join(",")
    };
    format!(
        "{{\"seed\":{},\"passed\":{},\"class\":{},\"ops_ok\":{},\"ops_total\":{},\
         \"messages\":{},\"delivered\":{},\"dropped\":{},\"safety\":[{}],\"liveness\":[{}]}}",
        v.seed,
        v.passed(),
        class,
        v.ops_ok,
        v.ops_total,
        v.stats.total_messages,
        v.stats.delivered_messages,
        v.stats.dropped_messages,
        list(&v.safety),
        list(&v.liveness),
    )
}

/// Aggregate counters for one campaign section.
#[derive(Default)]
struct Tally {
    seeds: usize,
    passed: usize,
    safety_flagged: usize,
    liveness_flagged: usize,
    ops_ok: usize,
    ops_total: usize,
    messages: u64,
    dropped: u64,
}

impl Tally {
    fn absorb(&mut self, v: &Verdict) {
        self.seeds += 1;
        if v.passed() {
            self.passed += 1;
        }
        if !v.safety_ok() {
            self.safety_flagged += 1;
        }
        if !v.liveness_ok() {
            self.liveness_flagged += 1;
        }
        self.ops_ok += v.ops_ok;
        self.ops_total += v.ops_total;
        self.messages += v.stats.total_messages;
        self.dropped += v.stats.dropped_messages;
    }

    fn availability(&self) -> f64 {
        if self.ops_total == 0 {
            return 0.0;
        }
        self.ops_ok as f64 / self.ops_total as f64
    }
}

/// Runs one campaign section; returns the tally and the failing seeds.
fn run_section(args: &Args, cfg: &ChaosConfig, label: &str) -> Result<(Tally, Vec<u64>), String> {
    let mut tally = Tally::default();
    let mut failing = Vec::new();
    for seed in args.seed_from..args.seed_to {
        let schedule = chaos::generate(seed, cfg);
        let verdict = chaos::run_with(&schedule, &args.options)?;
        tally.absorb(&verdict);
        if !verdict.passed() {
            failing.push(seed);
        }
        if args.json {
            println!("{}", verdict_json(&verdict));
        } else if !args.markdown && !verdict.passed() {
            eprintln!(
                "[{label}] seed {seed}: safety={:?} liveness={:?}",
                verdict.safety, verdict.liveness
            );
        }
    }
    Ok((tally, failing))
}

/// Shrinks each failing seed and writes the minimal schedule as a replay
/// file under `out_dir`. Returns the written paths.
fn shrink_and_emit(args: &Args, cfg: &ChaosConfig, failing: &[u64]) -> Result<Vec<String>, String> {
    if failing.is_empty() {
        return Ok(Vec::new());
    }
    std::fs::create_dir_all(&args.out_dir)
        .map_err(|e| format!("cannot create {}: {e}", args.out_dir))?;
    let mut written = Vec::new();
    for &seed in failing {
        let schedule = chaos::generate(seed, cfg);
        let shrunk = chaos::shrink_with(&schedule, args.shrink_budget, &args.options)?;
        let path = format!("{}/seed-{seed}.replay", args.out_dir);
        std::fs::write(&path, shrunk.schedule.to_text())
            .map_err(|e| format!("cannot write {path}: {e}"))?;
        eprintln!(
            "[shrink] seed {seed}: {:?} reproduced in {} runs -> {path}",
            shrunk.class, shrunk.runs
        );
        written.push(path);
    }
    Ok(written)
}

fn replay(path: &str, json: bool) -> Result<ExitCode, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let schedule = chaos::Schedule::from_text(&text)?;
    let first = chaos::run(&schedule)?;
    let second = chaos::run(&schedule)?;
    let deterministic = first.safety == second.safety
        && first.liveness == second.liveness
        && first.ops_ok == second.ops_ok
        && first.stats == second.stats;
    if json {
        println!("{}", verdict_json(&first));
    } else {
        println!(
            "replay {path}: seed={} passed={} class={:?}",
            first.seed,
            first.passed(),
            first.class()
        );
        for v in &first.safety {
            println!("  safety: {v}");
        }
        for v in &first.liveness {
            println!("  liveness: {v}");
        }
    }
    if !deterministic {
        eprintln!("replay {path}: NONDETERMINISTIC — two runs disagreed");
        return Ok(ExitCode::from(2));
    }
    println!("replay {path}: deterministic (verdicts and NetStats identical across two runs)");
    Ok(ExitCode::SUCCESS)
}

fn markdown_table(standard: &Tally, over: &Tally, args: &Args) -> String {
    let row = |label: &str, faulty: String, gossip: &str, t: &Tally| {
        format!(
            "| {label} | {faulty} | {gossip} | {} | {} | {} | {} | {}/{} ({:.1}%) | {:.1} |\n",
            t.seeds,
            t.passed,
            t.safety_flagged,
            t.liveness_flagged,
            t.ops_ok,
            t.ops_total,
            100.0 * t.availability(),
            t.messages as f64 / t.seeds.max(1) as f64,
        )
    };
    let mut out = String::new();
    let _ = writeln!(
        out,
        "| campaign (n={}, b={}) | faulty | gossip | seeds | passed | safety flags | liveness flags | ops completed | msgs/seed |",
        args.n, args.b
    );
    out.push_str("|---|---|---|---|---|---|---|---|---|\n");
    out.push_str(&row(
        "standard (menu adversaries + fault windows)",
        format!("{}", args.b),
        "drawn",
        standard,
    ));
    out.push_str(&row(
        "over-budget (all-stale probe)",
        format!("{}", args.b + 1),
        "off",
        over,
    ));
    out
}

fn campaign(args: &Args) -> Result<ExitCode, String> {
    if args.markdown {
        // Both sections, one table — the EXPERIMENTS.md path.
        let std_cfg = ChaosConfig::standard(args.n, args.b);
        let over_cfg = ChaosConfig::over_budget(args.n, args.b);
        let (std_tally, std_failing) = run_section(args, &std_cfg, "standard")?;
        let (over_tally, _) = run_section(args, &over_cfg, "over-budget")?;
        print!("{}", markdown_table(&std_tally, &over_tally, args));
        let ok = std_failing.is_empty() && over_tally.safety_flagged > 0;
        return Ok(if ok {
            ExitCode::SUCCESS
        } else {
            ExitCode::FAILURE
        });
    }

    let mut cfg = if args.over_budget {
        ChaosConfig::over_budget(args.n, args.b)
    } else {
        ChaosConfig::standard(args.n, args.b)
    };
    cfg.restart_mode = args.restart_mode;
    cfg.force_restart = args.force_restart;
    let label = if args.over_budget {
        "over-budget"
    } else {
        "standard"
    };
    let (tally, failing) = run_section(args, &cfg, label)?;
    eprintln!(
        "[{label}] seeds {}..{}: {}/{} passed, {} safety / {} liveness flags, \
         {}/{} ops ok ({:.1}% availability)",
        args.seed_from,
        args.seed_to,
        tally.passed,
        tally.seeds,
        tally.safety_flagged,
        tally.liveness_flagged,
        tally.ops_ok,
        tally.ops_total,
        100.0 * tally.availability(),
    );

    if args.expect_flagged {
        // Over-budget CI probe: the harness must demonstrate it catches
        // real violations. Shrink the flagged seeds as evidence.
        if tally.safety_flagged == 0 {
            eprintln!("[{label}] expected the safety oracle to flag at least one seed; none were");
            return Ok(ExitCode::FAILURE);
        }
        return Ok(ExitCode::SUCCESS);
    }
    if failing.is_empty() {
        return Ok(ExitCode::SUCCESS);
    }
    let written = shrink_and_emit(args, &cfg, &failing)?;
    eprintln!(
        "[{label}] {} failing seed(s); minimal replays in {:?}",
        failing.len(),
        written
    );
    Ok(ExitCode::FAILURE)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };
    let result = match &args.replay {
        Some(path) => replay(path, args.json),
        None => campaign(&args),
    };
    match result {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("sstore-chaos: {msg}");
            ExitCode::FAILURE
        }
    }
}
