//! Regenerates experiment t2 (see DESIGN.md / EXPERIMENTS.md).

fn main() {
    let table = sstore_bench::experiments::t2_data_costs();
    if std::env::args().any(|a| a == "--markdown") {
        println!("{}", table.to_markdown());
    } else {
        table.print();
    }
}
