//! Regenerates experiment f7 (see DESIGN.md / EXPERIMENTS.md).

fn main() {
    let table = sstore_bench::experiments::f7_confidentiality();
    if std::env::args().any(|a| a == "--markdown") {
        println!("{}", table.to_markdown());
    } else {
        table.print();
    }
}
