//! Regenerates experiment t4 (see DESIGN.md / EXPERIMENTS.md).

fn main() {
    let table = sstore_bench::experiments::t4_baseline_comparison();
    if std::env::args().any(|a| a == "--markdown") {
        println!("{}", table.to_markdown());
    } else {
        table.print();
    }
}
