//! Regenerates experiment t1 (see DESIGN.md / EXPERIMENTS.md).

fn main() {
    let table = sstore_bench::experiments::t1_context_costs();
    if std::env::args().any(|a| a == "--markdown") {
        println!("{}", table.to_markdown());
    } else {
        table.print();
    }
}
