//! Regenerates experiment t3 (see DESIGN.md / EXPERIMENTS.md).

fn main() {
    let table = sstore_bench::experiments::t3_multi_writer_costs();
    if std::env::args().any(|a| a == "--markdown") {
        println!("{}", table.to_markdown());
    } else {
        table.print();
    }
}
