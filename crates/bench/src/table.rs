//! Minimal aligned-text / markdown table rendering for experiment output.

/// A simple table: title, column headers, string rows.
#[derive(Debug, Clone)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
    notes: Vec<String>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the cell count does not match the header count.
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells);
        self
    }

    /// Appends an explanatory note printed under the table.
    pub fn note(&mut self, note: impl Into<String>) -> &mut Self {
        self.notes.push(note.into());
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders as an aligned plain-text table.
    pub fn to_text(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("== {} ==\n", self.title));
        let fmt_row = |cells: &[String]| {
            cells
                .iter()
                .zip(&widths)
                .map(|(c, w)| format!("{c:>w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.headers));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        for note in &self.notes {
            out.push_str(&format!("note: {note}\n"));
        }
        out
    }

    /// Renders as a GitHub-flavored markdown table.
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("### {}\n\n", self.title));
        out.push_str(&format!("| {} |\n", self.headers.join(" | ")));
        out.push_str(&format!("|{}\n", "---|".repeat(self.headers.len())));
        for row in &self.rows {
            out.push_str(&format!("| {} |\n", row.join(" | ")));
        }
        for note in &self.notes {
            out.push_str(&format!("\n*{note}*\n"));
        }
        out
    }

    /// Prints the text rendering to stdout.
    pub fn print(&self) {
        println!("{}", self.to_text());
    }
}

/// Formats a float with 2 decimals.
pub fn f2(v: f64) -> String {
    format!("{v:.2}")
}

/// Formats a ratio as `x.xx×`.
pub fn ratio(a: f64, b: f64) -> String {
    if b == 0.0 {
        "∞".to_owned()
    } else {
        format!("{:.2}x", a / b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        let mut t = Table::new("demo", &["n", "b", "msgs"]);
        t.row(vec!["4".into(), "1".into(), "6".into()]);
        t.row(vec!["16".into(), "3".into(), "20".into()]);
        t.note("counts per operation");
        t
    }

    #[test]
    fn text_rendering_aligns() {
        let text = sample().to_text();
        assert!(text.contains("== demo =="));
        assert!(text.contains("msgs"));
        assert!(text.contains("note: counts per operation"));
        let lines: Vec<&str> = text.lines().collect();
        // Header and rows have equal width.
        assert_eq!(lines[1].len(), lines[3].len());
    }

    #[test]
    fn markdown_rendering() {
        let md = sample().to_markdown();
        assert!(md.starts_with("### demo"));
        assert!(md.contains("| n | b | msgs |"));
        assert!(md.contains("| 16 | 3 | 20 |"));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn row_width_checked() {
        Table::new("t", &["a", "b"]).row(vec!["1".into()]);
    }

    #[test]
    fn helpers() {
        assert_eq!(f2(1.234), "1.23");
        assert_eq!(ratio(4.0, 2.0), "2.00x");
        assert_eq!(ratio(1.0, 0.0), "∞");
        assert!(!sample().is_empty());
        assert_eq!(sample().len(), 2);
    }
}
