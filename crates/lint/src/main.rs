//! sstore-lint: workspace invariant checker for the secure-store repo.
//!
//! The store's safety argument leans on a handful of repo-wide invariants
//! that ordinary type checking cannot see — a Byzantine server may send
//! arbitrary bytes, so code that parses or reacts to the wire must never
//! be able to panic; quorum thresholds must come from one audited module;
//! digest comparisons must be constant-time. This tool enforces those as
//! token-pattern rules (L1–L5) plus structural dataflow rules over a
//! block-tree/call-extent analysis (L6–L10, see `rules.rs` and
//! `parse.rs`) with a committed baseline ratchet: the baseline is now
//! empty (every grandfathered count has been burned down), so any
//! violation anywhere fails; `lint_baseline.toml` remains as the ratchet
//! mechanism and can only ever shrink.
//!
//! Usage:
//! ```text
//! cargo run -p sstore-lint --              # check against the baseline (CI gate)
//! cargo run -p sstore-lint -- --audit      # list all violations + totals
//! cargo run -p sstore-lint -- --update-baseline   # lock improvements in
//! ```

mod baseline;
mod lexer;
mod parse;
mod rules;

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

use baseline::{Baseline, Drift};
use rules::{Violation, RULES, STRUCTURAL_RULES, ZERO_TOLERANCE};

const BASELINE_FILE: &str = "lint_baseline.toml";

enum Mode {
    Check,
    Audit,
    UpdateBaseline,
}

fn main() -> ExitCode {
    let mut mode = Mode::Check;
    let mut root: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--audit" => mode = Mode::Audit,
            "--update-baseline" => mode = Mode::UpdateBaseline,
            "--root" => match args.next() {
                Some(p) => root = Some(PathBuf::from(p)),
                None => return usage("--root needs a path"),
            },
            "--help" | "-h" => {
                eprintln!("sstore-lint [--audit | --update-baseline] [--root PATH]");
                return ExitCode::SUCCESS;
            }
            other => return usage(&format!("unknown argument `{other}`")),
        }
    }
    let root = root.unwrap_or_else(default_root);
    if !root.join("Cargo.toml").is_file() {
        eprintln!("sstore-lint: `{}` is not a workspace root", root.display());
        return ExitCode::from(2);
    }
    match run(&root, mode) {
        Ok(clean) => {
            if clean {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("sstore-lint: {e}");
            ExitCode::from(2)
        }
    }
}

fn usage(msg: &str) -> ExitCode {
    eprintln!("sstore-lint: {msg}\nusage: sstore-lint [--audit | --update-baseline] [--root PATH]");
    ExitCode::from(2)
}

/// Workspace root relative to this crate's manifest, so `cargo run -p
/// sstore-lint` works from any cwd.
fn default_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")
}

fn run(root: &Path, mode: Mode) -> Result<bool, String> {
    let files = collect_files(root)?;
    let mut violations: Vec<Violation> = Vec::new();
    for rel in &files {
        let src =
            std::fs::read_to_string(root.join(rel)).map_err(|e| format!("read {rel}: {e}"))?;
        violations.extend(rules::check_file_full(rel, &lexer::lex(&src)));
    }
    violations.sort_by(|a, b| (&a.path, a.line, a.rule).cmp(&(&b.path, b.line, b.rule)));
    let actual = count(&violations);

    match mode {
        Mode::Audit => {
            for v in &violations {
                println!("{}:{}: {}: {}", v.path, v.line, v.rule, v.msg);
            }
            println!("\n== totals ==");
            let mut grand = 0u64;
            for rule in RULES {
                let n: u64 = actual
                    .iter()
                    .filter(|(k, _)| k.ends_with(&format!(":{rule}")))
                    .map(|(_, n)| n)
                    .sum();
                grand += n;
                println!("{rule}: {n}");
            }
            println!("total: {grand}");
            Ok(true)
        }
        Mode::Check => check(root, &violations, &actual),
        Mode::UpdateBaseline => update_baseline(root, &violations, &actual),
    }
}

fn check(root: &Path, violations: &[Violation], actual: &Baseline) -> Result<bool, String> {
    let text = std::fs::read_to_string(root.join(BASELINE_FILE))
        .map_err(|_| format!("{BASELINE_FILE} not found — generate it with `--update-baseline`"))?;
    let base = baseline::parse(&text)?;
    let mut clean = true;

    // Malformed suppressions always fail.
    for v in violations.iter().filter(|v| v.rule == "LINT") {
        clean = false;
        eprintln!("error: {}:{}: {}", v.path, v.line, v.msg);
    }

    // Zero-tolerance files: socket-facing decode paths may not carry any
    // L1/L3 debt, baselined or not.
    for v in violations {
        if ZERO_TOLERANCE.contains(&v.path.as_str()) && (v.rule == "L1" || v.rule == "L3") {
            clean = false;
            eprintln!(
                "error: {}:{}: {}: {} (zero-tolerance file: may not be baselined)",
                v.path, v.line, v.rule, v.msg
            );
        }
    }

    // The structural rules (L6–L10) started with zero debt and can never
    // be baselined, anywhere.
    for v in violations {
        if STRUCTURAL_RULES.contains(&v.rule) {
            clean = false;
            eprintln!(
                "error: {}:{}: {}: {} (structural rule: may not be baselined)",
                v.path, v.line, v.rule, v.msg
            );
        }
    }

    for d in baseline::diff(&base, actual) {
        clean = false;
        match d {
            Drift::Regression {
                key,
                baseline,
                actual,
            } => {
                eprintln!(
                    "error: {key}: {actual} violation(s), baseline allows {baseline} — new \
                     violations below:"
                );
                let (path, rule) = split_key(&key);
                for v in violations
                    .iter()
                    .filter(|v| v.path == path && v.rule == rule)
                {
                    eprintln!("  {}:{}: {}: {}", v.path, v.line, v.rule, v.msg);
                }
            }
            Drift::Unlocked {
                key,
                baseline,
                actual,
            } => {
                eprintln!(
                    "error: {key}: {actual} violation(s), baseline still says {baseline} — \
                     improvement not locked in; run `cargo run -p sstore-lint -- \
                     --update-baseline`"
                );
            }
        }
    }
    if clean {
        let total: u64 = actual.values().sum();
        println!(
            "sstore-lint: clean ({total} grandfathered violation(s) across {} file:rule keys)",
            actual.len()
        );
    }
    Ok(clean)
}

fn update_baseline(
    root: &Path,
    violations: &[Violation],
    actual: &Baseline,
) -> Result<bool, String> {
    for v in violations.iter().filter(|v| v.rule == "LINT") {
        eprintln!("error: {}:{}: {}", v.path, v.line, v.msg);
    }
    if violations.iter().any(|v| v.rule == "LINT") {
        return Ok(false);
    }
    let mut floor_broken = false;
    for v in violations {
        let zero_tol =
            ZERO_TOLERANCE.contains(&v.path.as_str()) && (v.rule == "L1" || v.rule == "L3");
        if zero_tol || STRUCTURAL_RULES.contains(&v.rule) {
            floor_broken = true;
            eprintln!(
                "error: {}:{}: {}: {} (fix, don't baseline)",
                v.path, v.line, v.rule, v.msg
            );
        }
    }
    if floor_broken {
        return Ok(false);
    }
    let path = root.join(BASELINE_FILE);
    if let Ok(text) = std::fs::read_to_string(&path) {
        let prev = baseline::parse(&text)?;
        let grew = baseline::growth(&prev, actual);
        if !grew.is_empty() {
            for key in &grew {
                eprintln!(
                    "error: {key}: {} violation(s), baseline allows {} — the ratchet only \
                     shrinks; fix or suppress with `lint:allow` + justification",
                    actual.get(key).copied().unwrap_or(0),
                    prev.get(key).copied().unwrap_or(0),
                );
            }
            return Ok(false);
        }
    }
    std::fs::write(&path, baseline::serialize(actual))
        .map_err(|e| format!("write baseline: {e}"))?;
    let total: u64 = actual.values().sum();
    println!("sstore-lint: baseline updated ({total} grandfathered violation(s))");
    Ok(true)
}

fn count(violations: &[Violation]) -> Baseline {
    let mut map = BTreeMap::new();
    for v in violations.iter().filter(|v| v.rule != "LINT") {
        *map.entry(format!("{}:{}", v.path, v.rule)).or_insert(0u64) += 1;
    }
    map
}

fn split_key(key: &str) -> (&str, &str) {
    key.rsplit_once(':').unwrap_or((key, ""))
}

/// All lintable sources: `crates/*/src/**/*.rs`, except this tool itself.
fn collect_files(root: &Path) -> Result<Vec<String>, String> {
    let mut out = Vec::new();
    let crates = root.join("crates");
    let entries = std::fs::read_dir(&crates).map_err(|e| format!("read_dir crates/: {e}"))?;
    for entry in entries.flatten() {
        let name = entry.file_name().to_string_lossy().into_owned();
        if name == "lint" {
            continue;
        }
        let src = entry.path().join("src");
        if src.is_dir() {
            walk(&src, &mut |p| {
                if p.extension().is_some_and(|e| e == "rs") {
                    if let Ok(rel) = p.strip_prefix(root) {
                        out.push(rel.to_string_lossy().replace('\\', "/"));
                    }
                }
            })?;
        }
    }
    out.sort();
    Ok(out)
}

fn walk(dir: &Path, f: &mut impl FnMut(&Path)) -> Result<(), String> {
    let entries = std::fs::read_dir(dir).map_err(|e| format!("read_dir {}: {e}", dir.display()))?;
    for entry in entries.flatten() {
        let p = entry.path();
        if p.is_dir() {
            walk(&p, f)?;
        } else {
            f(&p);
        }
    }
    Ok(())
}
