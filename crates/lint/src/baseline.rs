//! The committed violation baseline and its ratchet semantics.
//!
//! `lint_baseline.toml` at the workspace root records the grandfathered
//! violation count per `file:rule` key. Check mode requires reality to
//! match the baseline *exactly*: counts above baseline are regressions,
//! counts below it (or stale entries) mean an improvement landed without
//! being locked in — both fail, with different messages. The only writer
//! is `--update-baseline`, and it refuses to let any count grow, so over
//! the life of the repo every count is monotonically non-increasing.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Parsed baseline: `"path:RULE"` → grandfathered count.
pub type Baseline = BTreeMap<String, u64>;

/// Parses the baseline file format (a deliberately tiny TOML subset:
/// comments, a `[counts]` header, and `"key" = N` lines).
pub fn parse(text: &str) -> Result<Baseline, String> {
    let mut map = Baseline::new();
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') || line == "[counts]" {
            continue;
        }
        let parsed = line
            .split_once('=')
            .and_then(|(k, v)| {
                let key = k.trim().strip_prefix('"')?.strip_suffix('"')?;
                let count: u64 = v.trim().parse().ok()?;
                Some((key.to_string(), count))
            })
            .ok_or_else(|| format!("lint_baseline.toml:{}: unparseable line: {raw}", lineno + 1))?;
        map.insert(parsed.0, parsed.1);
    }
    Ok(map)
}

/// Serializes a baseline deterministically (sorted keys, zero counts
/// omitted) so diffs stay reviewable.
pub fn serialize(counts: &Baseline) -> String {
    let mut out = String::from(
        "# sstore-lint baseline: grandfathered violation counts per file and rule.\n\
         # Maintained exclusively by `cargo run -p sstore-lint -- --update-baseline`,\n\
         # which refuses to let any count grow. Do not edit by hand.\n\n\
         [counts]\n",
    );
    for (key, count) in counts {
        if *count > 0 {
            let _ = writeln!(out, "\"{key}\" = {count}");
        }
    }
    out
}

/// A check-mode discrepancy between reality and the baseline.
#[derive(Debug, PartialEq, Eq)]
pub enum Drift {
    /// More violations than grandfathered: a regression.
    Regression {
        key: String,
        baseline: u64,
        actual: u64,
    },
    /// Fewer violations than grandfathered: run `--update-baseline` to
    /// lock the improvement in.
    Unlocked {
        key: String,
        baseline: u64,
        actual: u64,
    },
}

/// Compares actual counts against the baseline.
pub fn diff(baseline: &Baseline, actual: &Baseline) -> Vec<Drift> {
    let mut out = Vec::new();
    let keys: std::collections::BTreeSet<&String> = baseline.keys().chain(actual.keys()).collect();
    for key in keys {
        let base = baseline.get(key).copied().unwrap_or(0);
        let now = actual.get(key).copied().unwrap_or(0);
        if now > base {
            out.push(Drift::Regression {
                key: key.clone(),
                baseline: base,
                actual: now,
            });
        } else if now < base {
            out.push(Drift::Unlocked {
                key: key.clone(),
                baseline: base,
                actual: now,
            });
        }
    }
    out
}

/// Keys whose count would grow if `next` replaced `prev` — the ratchet
/// `--update-baseline` enforces.
pub fn growth(prev: &Baseline, next: &Baseline) -> Vec<String> {
    next.iter()
        .filter(|(k, n)| **n > prev.get(*k).copied().unwrap_or(0))
        .map(|(k, _)| k.clone())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let mut b = Baseline::new();
        b.insert("crates/a/src/x.rs:L1".into(), 3);
        b.insert("crates/b/src/y.rs:L4".into(), 1);
        let text = serialize(&b);
        assert_eq!(parse(&text).unwrap(), b);
    }

    #[test]
    fn zero_counts_dropped_on_write() {
        let mut b = Baseline::new();
        b.insert("k:L1".into(), 0);
        assert!(!serialize(&b).contains("k:L1"));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("not a baseline").is_err());
        assert!(parse("\"k\" = notanumber").is_err());
    }

    #[test]
    fn diff_classifies_both_directions() {
        let base = parse("\"f:L1\" = 2\n\"g:L1\" = 1").unwrap();
        let mut actual = Baseline::new();
        actual.insert("f:L1".into(), 3);
        let d = diff(&base, &actual);
        assert!(matches!(&d[0], Drift::Regression { key, actual: 3, .. } if key == "f:L1"));
        assert!(matches!(&d[1], Drift::Unlocked { key, actual: 0, .. } if key == "g:L1"));
    }

    #[test]
    fn growth_catches_ratchet_breaks() {
        let prev = parse("\"f:L1\" = 2").unwrap();
        let mut next = Baseline::new();
        next.insert("f:L1".into(), 2);
        next.insert("h:L2".into(), 1);
        assert_eq!(growth(&prev, &next), ["h:L2"]);
        next.insert("f:L1".into(), 1);
        next.remove("h:L2");
        assert!(growth(&prev, &next).is_empty());
    }
}
