//! The invariant rules. L1–L5 are token-pattern checks over
//! [`crate::lexer`] output; L6–L10 additionally use the structural layer
//! in [`crate::parse`] (block tree, call extents, per-function facts) to
//! reason about guard lifetimes, closure boundaries, and in-function
//! dataflow. Each rule has a path scope; test code (`#[cfg(test)]` /
//! `#[test]`) is always exempt.
//!
//! | Rule | Invariant |
//! |------|-----------|
//! | L1 | panic-freedom on Byzantine-facing paths (no `unwrap`/`expect`/`panic!`-family/indexing/`unchecked_*`) |
//! | L2 | quorum arithmetic only in `core/src/quorum.rs` |
//! | L3 | wire decode sites live next to a verify/dispatch step |
//! | L4 | digest/signature/mac byte comparison goes through `ct_eq` |
//! | L5 | no bare narrowing `as` casts in codec paths |
//! | L6 | lock acquisitions in `crates/net` follow the declared order, no re-entry |
//! | L7 | no blocking calls on the event-loop tick path |
//! | L8 | WAL-appending files emit `WriteAck`/`CtxWriteAck` only via the `deferred_acks`/`flush_commits` pipeline |
//! | L9 | allocations sized by decoded wire lengths are clamped first |
//! | L10 | no discarded `Result`s (`let _ =` / trailing `.ok()`) from durability or verification calls |

use crate::lexer::{Lexed, Tok, TokKind};
use crate::parse::{last_ident_before, Structure};

/// One rule violation at a source line.
#[derive(Debug, Clone)]
pub struct Violation {
    /// Repo-relative path, `/`-separated.
    pub path: String,
    pub line: u32,
    /// `L1`..`L5`, or `LINT` for malformed suppressions (never baselinable).
    pub rule: &'static str,
    pub msg: String,
}

/// All rules, in report order.
pub const RULES: &[&str] = &["L1", "L2", "L3", "L4", "L5", "L6", "L7", "L8", "L9", "L10"];

/// The structural rules shipped after the baseline was zeroed. They start
/// with no debt, so they are never baselinable: any violation fails check
/// mode outright, everywhere.
pub const STRUCTURAL_RULES: &[&str] = &["L6", "L7", "L8", "L9", "L10"];

/// Files where L1/L3 must be zero regardless of the baseline: everything
/// that parses bytes straight off a socket, or off a disk that may have
/// crashed mid-write or rotted.
pub const ZERO_TOLERANCE: &[&str] = &[
    "crates/net/src/frame.rs",
    "crates/net/src/server.rs",
    "crates/net/src/client.rs",
    "crates/net/src/conn.rs",
    "crates/net/src/event_loop.rs",
    "crates/net/src/pipeline.rs",
    "crates/net/src/backoff.rs",
    "crates/net/src/coalesce.rs",
    "crates/net/src/wirechaos.rs",
    "crates/crypto/src/schnorr/batch.rs",
    "crates/core/src/server/storage/mod.rs",
    "crates/core/src/server/storage/record.rs",
    "crates/core/src/server/storage/backend.rs",
];

/// Rust keywords that may directly precede `[` when it is *not* an index
/// expression (array literals, types, patterns).
const KEYWORDS: &[&str] = &[
    "as", "async", "await", "box", "break", "const", "continue", "crate", "dyn", "else", "enum",
    "extern", "false", "fn", "for", "if", "impl", "in", "let", "loop", "match", "mod", "move",
    "mut", "pub", "ref", "return", "static", "struct", "super", "trait", "true", "type", "unsafe",
    "use", "where", "while",
];

/// Macros whose expansion can abort the process.
const PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];

/// Digest/signature-flavoured identifiers whose `==`/`!=` comparison must
/// go through `sstore_crypto::ct::ct_eq` (L4).
const SECRET_NAMES: &[&str] = &["digest", "value_digest", "signature", "mac"];

fn in_scope_l1(path: &str) -> bool {
    path == "crates/core/src/codec.rs"
        || path == "crates/core/src/chaos.rs"
        || path.starts_with("crates/core/src/server/")
        || path.starts_with("crates/core/src/client/")
        || path.starts_with("crates/net/src/")
        || path.starts_with("crates/crypto/src/")
}

fn in_scope_l2(path: &str) -> bool {
    path != "crates/core/src/quorum.rs"
}

fn in_scope_l3(path: &str) -> bool {
    path.starts_with("crates/net/src/") || path.starts_with("crates/core/src/server/")
}

fn in_scope_l4(path: &str) -> bool {
    path != "crates/crypto/src/ct.rs"
}

fn in_scope_l5(path: &str) -> bool {
    matches!(
        path,
        "crates/core/src/codec.rs" | "crates/core/src/encoding.rs" | "crates/net/src/frame.rs"
    )
}

/// L6 watches every file in the net crate — that is where the threaded
/// server and event loop share `Mutex`-guarded state.
fn in_scope_l6(path: &str) -> bool {
    path.starts_with("crates/net/src/")
}

/// L7's zero-tolerance event-loop files: everything that runs on the
/// single readiness-driven thread. `frame.rs` is deliberately absent —
/// its blocking helpers serve the threaded path and the client.
fn in_scope_l7(path: &str) -> bool {
    matches!(
        path,
        "crates/net/src/event_loop.rs" | "crates/net/src/conn.rs" | "crates/net/src/coalesce.rs"
    )
}

/// L8 covers every file that can both append to the WAL and emit acks.
fn in_scope_l8(path: &str) -> bool {
    path.starts_with("crates/core/src/server/")
        || path.starts_with("crates/net/src/")
        || path == "crates/core/src/sim.rs"
}

/// L9 covers the decode paths where a length is read off the wire or off
/// disk before anything is allocated from it.
fn in_scope_l9(path: &str) -> bool {
    matches!(
        path,
        "crates/core/src/codec.rs"
            | "crates/net/src/frame.rs"
            | "crates/net/src/conn.rs"
            | "crates/core/src/server/storage/record.rs"
            | "crates/core/src/server/storage/backend.rs"
    )
}

/// L10 covers the Byzantine-facing server and wire paths where a
/// swallowed error can silently void durability or verification.
fn in_scope_l10(path: &str) -> bool {
    path.starts_with("crates/core/src/server/") || path.starts_with("crates/net/src/")
}

/// Runs every applicable rule over one lexed file.
pub fn check_file(path: &str, lexed: &Lexed) -> Vec<Violation> {
    let toks = &lexed.toks;
    let structure = Structure::build(toks);
    let mut out = Vec::new();
    if in_scope_l1(path) {
        rule_l1(path, toks, &mut out);
    }
    if in_scope_l2(path) {
        rule_l2(path, toks, &mut out);
    }
    if in_scope_l3(path) {
        rule_l3(path, toks, &mut out);
    }
    if in_scope_l4(path) {
        rule_l4(path, toks, &mut out);
    }
    if in_scope_l5(path) {
        rule_l5(path, toks, &mut out);
    }
    if in_scope_l6(path) {
        rule_l6(path, toks, &structure, &mut out);
    }
    if in_scope_l7(path) {
        rule_l7(path, toks, &structure, &mut out);
    }
    if in_scope_l8(path) {
        rule_l8(path, toks, &structure, &mut out);
    }
    if in_scope_l9(path) {
        rule_l9(path, toks, &structure, &mut out);
    }
    if in_scope_l10(path) {
        rule_l10(path, toks, &structure, &mut out);
    }
    apply_suppressions(lexed, &mut out);
    out.sort_by_key(|v| (v.line, v.rule));
    out
}

fn push(
    out: &mut Vec<Violation>,
    path: &str,
    line: u32,
    rule: &'static str,
    msg: impl Into<String>,
) {
    out.push(Violation {
        path: path.to_string(),
        line,
        rule,
        msg: msg.into(),
    });
}

/// L1: panic-freedom. Flags `.unwrap()` / `.expect(`, the panic macro
/// family, `.unchecked_*(`, and index/slice expressions `expr[...]`.
fn rule_l1(path: &str, toks: &[Tok], out: &mut Vec<Violation>) {
    for (i, t) in toks.iter().enumerate() {
        if t.in_test {
            continue;
        }
        match t.kind {
            TokKind::Ident => {
                let prev_dot = i > 0 && toks[i - 1].text == ".";
                let next_paren = toks.get(i + 1).is_some_and(|n| n.text == "(");
                let next_bang = toks.get(i + 1).is_some_and(|n| n.text == "!");
                if prev_dot && next_paren && (t.text == "unwrap" || t.text == "expect") {
                    push(out, path, t.line, "L1", format!(".{}() can panic", t.text));
                } else if prev_dot && next_paren && t.text.starts_with("unchecked_") {
                    push(
                        out,
                        path,
                        t.line,
                        "L1",
                        format!(".{}() skips checks", t.text),
                    );
                } else if next_bang && PANIC_MACROS.contains(&t.text.as_str()) {
                    push(
                        out,
                        path,
                        t.line,
                        "L1",
                        format!("{}! aborts the node", t.text),
                    );
                }
            }
            TokKind::Punct if t.text == "[" && i > 0 => {
                let p = &toks[i - 1];
                let indexes = match p.kind {
                    TokKind::Ident => !KEYWORDS.contains(&p.text.as_str()),
                    TokKind::Punct => p.text == ")" || p.text == "]" || p.text == "?",
                    TokKind::Lit => true,
                    _ => false,
                };
                if indexes {
                    push(out, path, t.line, "L1", "index/slice expression can panic");
                }
            }
            _ => {}
        }
    }
}

/// L2: quorum hygiene. Flags hand-rolled threshold arithmetic —
/// `(… b … 1 …) / 2` and `2 * … b … + 1` — outside `core/src/quorum.rs`.
fn rule_l2(path: &str, toks: &[Tok], out: &mut Vec<Violation>) {
    let live: Vec<&Tok> = toks.iter().filter(|t| !t.in_test).collect();
    for i in 0..live.len() {
        let t = live[i];
        // `) / 2` with `b` and `1` in the parenthesized group.
        if t.text == "/" && live.get(i + 1).is_some_and(|n| n.text == "2") {
            let window = &live[i.saturating_sub(14)..i];
            let has_b = window
                .iter()
                .any(|w| w.kind == TokKind::Ident && (w.text == "b" || w.text == "n"));
            let has_one = window
                .iter()
                .any(|w| w.kind == TokKind::Num && w.text == "1");
            if has_b && has_one {
                push(
                    out,
                    path,
                    t.line,
                    "L2",
                    "quorum-style `(.. b .. 1) / 2` outside quorum.rs",
                );
            }
        }
        // `2 * … b … + 1`.
        if t.kind == TokKind::Num && t.text == "2" && live.get(i + 1).is_some_and(|n| n.text == "*")
        {
            let window = &live[i + 1..(i + 11).min(live.len())];
            let has_b = window
                .iter()
                .any(|w| w.kind == TokKind::Ident && w.text == "b");
            let plus_one = window
                .windows(2)
                .any(|w| w[0].text == "+" && w[1].kind == TokKind::Num && w[1].text == "1");
            if has_b && plus_one {
                push(
                    out,
                    path,
                    t.line,
                    "L2",
                    "quorum-style `2 * b + 1` outside quorum.rs",
                );
            }
        }
    }
}

/// L3: verify-before-use, approximated at file granularity: a file that
/// calls the wire decoders must also contain a `verify*` call or dispatch
/// into a protocol state machine (`.handle(` on the server, `.on_message(`
/// on the client), which performs verification.
fn rule_l3(path: &str, toks: &[Tok], out: &mut Vec<Violation>) {
    let live: Vec<&Tok> = toks.iter().filter(|t| !t.in_test).collect();
    let redeemed = live.windows(2).any(|w| {
        w[1].text == "("
            && w[0].kind == TokKind::Ident
            && (w[0].text.starts_with("verify")
                || w[0].text == "handle"
                || w[0].text == "on_message")
    });
    if redeemed {
        return;
    }
    for i in 0..live.len() {
        let t = live[i];
        if t.kind == TokKind::Ident
            && (t.text == "decode_msg" || t.text == "decode_hello")
            && live.get(i + 1).is_some_and(|n| n.text == "(")
            && !(i > 0 && live[i - 1].text == "fn")
        {
            push(
                out,
                path,
                t.line,
                "L3",
                format!(
                    "`{}` result used without a verify/dispatch step in this file",
                    t.text
                ),
            );
        }
    }
}

/// L4: constant-time digests. Flags `==`/`!=` whose operand chain is
/// anchored on a digest/signature/mac identifier; those comparisons must
/// route through `sstore_crypto::ct::ct_eq`.
fn rule_l4(path: &str, toks: &[Tok], out: &mut Vec<Violation>) {
    let live: Vec<&Tok> = toks.iter().filter(|t| !t.in_test).collect();
    for i in 0..live.len() {
        let t = live[i];
        if t.text != "==" && t.text != "!=" {
            continue;
        }
        let back = backward_anchor(&live, i);
        let fwd = forward_anchor(&live, i);
        let hit = |a: Option<&str>| a.is_some_and(|a| SECRET_NAMES.contains(&a));
        if hit(back) || hit(fwd) {
            push(
                out,
                path,
                t.line,
                "L4",
                format!("`{}` on digest/signature bytes; use ct_eq", t.text),
            );
        }
    }
}

/// Last identifier of the expression ending just before `live[op]`:
/// `self.meta.value_digest ==` → `value_digest`; `digest(&v) ==` → `digest`.
fn backward_anchor<'a>(live: &[&'a Tok], op: usize) -> Option<&'a str> {
    let mut j = op.checked_sub(1)?;
    if live[j].text == ")" {
        let mut depth = 1i32;
        while depth > 0 {
            j = j.checked_sub(1)?;
            match live[j].text.as_str() {
                ")" => depth += 1,
                "(" => depth -= 1,
                _ => {}
            }
        }
        j = j.checked_sub(1)?;
    }
    (live[j].kind == TokKind::Ident).then(|| live[j].text.as_str())
}

/// Last identifier of the `a.b::c` chain starting just after `live[op]`.
fn forward_anchor<'a>(live: &[&'a Tok], op: usize) -> Option<&'a str> {
    let mut j = op + 1;
    // Skip leading `&`, `*`, `!`.
    while live
        .get(j)
        .is_some_and(|t| matches!(t.text.as_str(), "&" | "*" | "!"))
    {
        j += 1;
    }
    let mut last = None;
    while let Some(t) = live.get(j) {
        match t.kind {
            TokKind::Ident => last = Some(t.text.as_str()),
            TokKind::Punct if t.text == "." || t.text == "::" => {}
            _ => break,
        }
        j += 1;
    }
    last
}

/// L5: checked narrowing. Flags bare `as u8|u16|u32` in codec paths;
/// widths there must be proven with `try_from` + an explicit error.
fn rule_l5(path: &str, toks: &[Tok], out: &mut Vec<Violation>) {
    let live: Vec<&Tok> = toks.iter().filter(|t| !t.in_test).collect();
    for w in live.windows(2) {
        if w[0].text == "as"
            && w[0].kind == TokKind::Ident
            && matches!(w[1].text.as_str(), "u8" | "u16" | "u32")
        {
            push(
                out,
                path,
                w[0].line,
                "L5",
                format!(
                    "bare narrowing `as {}`; use try_from with a codec error",
                    w[1].text
                ),
            );
        }
    }
}

/// The declared lock acquisition order for `crates/net` (L6). A thread
/// holding a lock may only acquire locks that appear *later* in this
/// list; `dial_rng` precedes `redial` because the dial path draws jitter
/// while scheduling the retry.
pub const LOCK_ORDER: &[&str] = &[
    "node", "links", "socks", "threads", "dial_rng", "redial", "thread", "stats",
];

fn lock_rank(name: &str) -> Option<usize> {
    LOCK_ORDER.iter().position(|l| *l == name)
}

/// One lock acquisition with the token range over which its guard is
/// considered held.
struct Acq {
    /// Token index of the acquiring call.
    at: usize,
    /// Guard considered held for tokens in `at..=extent`.
    extent: usize,
    name: String,
    line: u32,
}

/// L6: lock-order hygiene. Finds `locked(&…x)` helper calls and bare
/// `.lock()` method calls, computes each guard's extent from the block
/// tree (a `let`-bound guard lives to the end of its enclosing block; a
/// guard in a `for`/`if`/`while`/`match` head lives through the attached
/// block; a temporary lives to the end of its statement), then flags any
/// acquisition made while a held guard ranks *later* in [`LOCK_ORDER`],
/// and any re-acquisition of a lock already held (self-deadlock with
/// `std::sync::Mutex`).
fn rule_l6(path: &str, toks: &[Tok], s: &Structure, out: &mut Vec<Violation>) {
    let mut acqs: Vec<Acq> = Vec::new();
    for c in &s.calls {
        if toks.get(c.callee).is_none_or(|t| t.in_test) {
            continue;
        }
        let name = if c.name == "locked" && !c.is_method {
            last_ident_before(toks, c.close)
        } else if c.name == "lock" && c.is_method {
            // `x.lock()` — the lock is the chain before the `.`.
            last_ident_before(toks, c.callee)
        } else {
            None
        };
        let Some(name) = name else { continue };
        acqs.push(Acq {
            at: c.callee,
            extent: guard_extent(toks, s, c.callee, c.close),
            name: name.to_string(),
            line: c.line,
        });
    }
    for b in &acqs {
        for a in &acqs {
            if a.at >= b.at || b.at > a.extent {
                continue;
            }
            if a.name == b.name {
                push(
                    out,
                    path,
                    b.line,
                    "L6",
                    format!(
                        "re-acquires `{}` while its guard from line {} is still held \
                         (self-deadlock)",
                        b.name, a.line
                    ),
                );
            } else if let (Some(ra), Some(rb)) = (lock_rank(&a.name), lock_rank(&b.name)) {
                if ra > rb {
                    push(
                        out,
                        path,
                        b.line,
                        "L6",
                        format!(
                            "acquires `{}` while holding `{}` — inverts the declared lock \
                             order {:?}",
                            b.name, a.name, LOCK_ORDER
                        ),
                    );
                }
            }
        }
    }
}

/// Token index through which a guard acquired at `call_idx` (argument
/// list closing at `close`) is considered held.
fn guard_extent(toks: &[Tok], s: &Structure, call_idx: usize, close: usize) -> usize {
    let start = s.stmt_start(toks, call_idx);
    match toks.get(start).map(|t| t.text.as_str()) {
        // `let g = locked(…);` — guard lives to the end of the block.
        Some("let") => {
            let home = s.block_of(call_idx);
            s.blocks.get(home).map_or(toks.len(), |b| b.close)
        }
        // `for x in locked(…)…{}` / `if let … = locked(…) {}` — the
        // guard lives through the attached block: the first `{` after
        // the call at the same depth.
        Some("for") | Some("while") | Some("if") | Some("match") => {
            let home = s.block_of(call_idx);
            let mut j = close;
            while j < toks.len() {
                if s.block_of(j) == home && toks.get(j).is_some_and(|t| t.text == "{") {
                    return s
                        .blocks
                        .iter()
                        .find(|b| b.open == j)
                        .map_or(toks.len(), |b| b.close);
                }
                if s.block_of(j) == home && toks.get(j).is_some_and(|t| t.text == ";") {
                    break;
                }
                j += 1;
            }
            s.stmt_end(toks, call_idx)
        }
        // Temporary: held to the end of the statement.
        _ => s.stmt_end(toks, call_idx),
    }
}

/// Callee names that park the calling thread (L7). `read`/`write` are
/// absent on purpose: the event loop's nonblocking sockets return
/// `WouldBlock` instead of parking.
const BLOCKING_CALLS: &[&str] = &[
    "sleep",
    "join",
    "connect",
    "connect_timeout",
    "sync_all",
    "sync_data",
    "sync_now",
    "read_exact",
    "read_to_end",
    "write_all",
    "recv",
    "recv_timeout",
    "wait",
    "wait_timeout",
    "park",
    "park_timeout",
];

/// L7: no blocking calls on the event-loop tick path. Calls inside a
/// `thread::spawn(…)` argument extent are exempt — those run on helper
/// threads (e.g. the dial workers), not the loop.
fn rule_l7(path: &str, toks: &[Tok], s: &Structure, out: &mut Vec<Violation>) {
    for c in &s.calls {
        if toks.get(c.callee).is_none_or(|t| t.in_test) {
            continue;
        }
        if !BLOCKING_CALLS.contains(&c.name.as_str()) {
            continue;
        }
        if s.inside_call_to(&["spawn"], c.callee) {
            continue;
        }
        push(
            out,
            path,
            c.line,
            "L7",
            format!("blocking `{}` on the event-loop tick path", c.name),
        );
    }
}

/// L8: ack-after-fsync dataflow, at file granularity. Two checks: (a) a
/// file that dispatches into the server (`.handle(`) must also drive
/// `flush_commits(`, or deferred acks would sit forever; (b) a file that
/// appends to the WAL (`append`/`append_batch` calls or a `wal_buf`
/// field) may construct `Msg::WriteAck` / `Msg::CtxWriteAck` only if it
/// also owns the `deferred_acks` + `flush_commits` pipeline.
fn rule_l8(path: &str, toks: &[Tok], s: &Structure, out: &mut Vec<Violation>) {
    let has_ident = |name: &str| {
        toks.iter()
            .any(|t| !t.in_test && t.kind == TokKind::Ident && t.text == name)
    };
    let drives_flush = has_ident("flush_commits");
    for c in &s.calls {
        if c.is_method
            && c.name == "handle"
            && toks.get(c.callee).is_some_and(|t| !t.in_test)
            && !drives_flush
        {
            push(
                out,
                path,
                c.line,
                "L8",
                "`.handle(` dispatch without a `flush_commits` driver in this file — deferred \
                 acks would never release",
            );
        }
    }
    let appends_wal = has_ident("wal_buf")
        || s.calls.iter().any(|c| {
            toks.get(c.callee).is_some_and(|t| !t.in_test)
                && (c.name == "append" || c.name == "append_batch")
        });
    if !appends_wal || (has_ident("deferred_acks") && drives_flush) {
        return;
    }
    for (i, t) in toks.iter().enumerate() {
        if t.in_test || t.kind != TokKind::Ident {
            continue;
        }
        if (t.text == "WriteAck" || t.text == "CtxWriteAck")
            && toks.get(i + 1).is_some_and(|n| n.text == "{")
        {
            push(
                out,
                path,
                t.line,
                "L8",
                format!(
                    "`{}` constructed in a WAL-appending file outside the \
                     deferred_acks/flush_commits pipeline",
                    t.text
                ),
            );
        }
    }
}

/// Identifier is a `SCREAMING_CASE` constant (trusted, not a decoded
/// length).
fn is_const_name(name: &str) -> bool {
    !name.is_empty() && !name.chars().any(|c| c.is_ascii_lowercase())
}

/// L9: untrusted-length allocation. Flags `with_capacity(n)`,
/// `reserve(n)` and `vec![…; n]` where `n` is a bare lowercase
/// identifier, unless the enclosing function visibly clamps it first:
/// either `n` is bound by a statement that calls a clamping helper
/// (`count`, `min`, `clamp`), or some comparison (`n >`, `n <=`, …)
/// guards it. Composite arguments (`1 + body.len()`) are derived from
/// in-memory data and pass.
fn rule_l9(path: &str, toks: &[Tok], s: &Structure, out: &mut Vec<Violation>) {
    // `with_capacity` / `reserve` call sites.
    for c in &s.calls {
        if toks.get(c.callee).is_none_or(|t| t.in_test) {
            continue;
        }
        if c.name != "with_capacity" && c.name != "reserve" {
            continue;
        }
        check_alloc_arg(path, toks, s, c.open + 1, c.close, c.callee, c.line, out);
    }
    // `vec![elem; n]` — the length is the segment after the `;`.
    for i in 0..toks.len() {
        let is_vec = toks.get(i).is_some_and(|t| !t.in_test && t.text == "vec")
            && toks.get(i + 1).is_some_and(|t| t.text == "!")
            && toks.get(i + 2).is_some_and(|t| t.text == "[");
        if !is_vec {
            continue;
        }
        let mut depth = 0i64;
        let mut semi = None;
        let mut j = i + 2;
        let close = loop {
            match toks.get(j).map(|t| t.text.as_str()) {
                Some("[") | Some("(") | Some("{") => depth += 1,
                Some(")") | Some("}") => depth -= 1,
                Some("]") => {
                    depth -= 1;
                    if depth <= 0 {
                        break j;
                    }
                }
                Some(";") if depth == 1 => semi = Some(j),
                None => break j,
                _ => {}
            }
            j += 1;
        };
        if let Some(semi) = semi {
            check_alloc_arg(path, toks, s, semi + 1, close, i, toks[i].line, out);
        }
    }
}

/// Shared L9 check: the argument token range `[start, end)` must not be
/// a bare unclamped lowercase identifier.
#[allow(clippy::too_many_arguments)]
fn check_alloc_arg(
    path: &str,
    toks: &[Tok],
    s: &Structure,
    start: usize,
    end: usize,
    site: usize,
    line: u32,
    out: &mut Vec<Violation>,
) {
    if end != start + 1 {
        return; // composite expression — derived, not a raw wire length
    }
    let arg = match toks.get(start) {
        Some(t) if t.kind == TokKind::Ident && !is_const_name(&t.text) => &t.text,
        _ => return,
    };
    // Search the enclosing fn body (or whole file) for a clamp.
    let (lo, hi) = match s.enclosing_fn(site).and_then(|f| f.body) {
        Some(b) => s
            .blocks
            .get(b)
            .map_or((0, toks.len()), |blk| (blk.open, blk.close)),
        None => (0, toks.len()),
    };
    const CLAMPS: &[&str] = &["count", "min", "clamp"];
    // (1) comparison guard: `arg >`, `arg <=`, `> arg`, …
    let compared = (lo..hi.min(toks.len())).any(|j| {
        toks.get(j).is_some_and(|t| t.text == *arg)
            && (toks
                .get(j + 1)
                .is_some_and(|n| matches!(n.text.as_str(), ">" | ">=" | "<" | "<="))
                || (j > 0
                    && toks
                        .get(j - 1)
                        .is_some_and(|p| matches!(p.text.as_str(), ">" | ">=" | "<" | "<="))))
    });
    if compared {
        return;
    }
    // (2) binding statement `let [mut] arg = …` that calls a clamp.
    for j in lo..hi.min(toks.len()) {
        let binds = toks.get(j).is_some_and(|t| t.text == "let")
            && (toks.get(j + 1).is_some_and(|t| t.text == *arg)
                || (toks.get(j + 1).is_some_and(|t| t.text == "mut")
                    && toks.get(j + 2).is_some_and(|t| t.text == *arg)));
        if !binds {
            continue;
        }
        let stmt_end = s.stmt_end(toks, j);
        let clamped = s
            .calls
            .iter()
            .any(|c| j < c.callee && c.callee < stmt_end && CLAMPS.contains(&c.name.as_str()));
        if clamped {
            return;
        }
    }
    push(
        out,
        path,
        line,
        "L9",
        format!(
            "allocation sized by `{arg}` with no visible clamp (compare against a MAX_* bound \
             or derive it via a counted decode)"
        ),
    );
}

/// Call names whose `Result` must not be discarded on Byzantine-facing
/// paths (L10) — durability, verification, and frame-delivery calls.
const SWALLOW_SENSITIVE: &[&str] = &[
    "append",
    "append_batch",
    "sync_now",
    "sync_all",
    "sync_data",
    "persist",
    "install_snapshot",
    "recover",
    "write_frame",
    "enqueue",
];

fn is_sensitive(name: &str) -> bool {
    SWALLOW_SENSITIVE.contains(&name) || name.starts_with("verify")
}

/// L10: no error-swallowing. Flags `let _ = <expr>;` statements and
/// trailing `.ok();` where the discarded expression contains a
/// durability/verification call. A named binding (`let _res = …`) or an
/// `if let Err(…)` handler passes.
fn rule_l10(path: &str, toks: &[Tok], s: &Structure, out: &mut Vec<Violation>) {
    for i in 0..toks.len() {
        let discards = toks.get(i).is_some_and(|t| !t.in_test && t.text == "let")
            && toks.get(i + 1).is_some_and(|t| t.text == "_")
            && toks.get(i + 2).is_some_and(|t| t.text == "=");
        if !discards {
            continue;
        }
        let end = s.stmt_end(toks, i);
        if let Some(c) = s
            .calls
            .iter()
            .find(|c| i < c.callee && c.callee < end && is_sensitive(&c.name))
        {
            push(
                out,
                path,
                toks[i].line,
                "L10",
                format!(
                    "`let _ =` discards the `{}` result on a durability path",
                    c.name
                ),
            );
        }
    }
    for c in &s.calls {
        let trailing_ok = c.is_method
            && c.name == "ok"
            && toks.get(c.callee).is_some_and(|t| !t.in_test)
            && toks.get(c.close + 1).is_some_and(|t| t.text == ";");
        if !trailing_ok {
            continue;
        }
        let start = s.stmt_start(toks, c.callee);
        if let Some(d) = s
            .calls
            .iter()
            .find(|d| start <= d.callee && d.callee < c.callee && is_sensitive(&d.name))
        {
            push(
                out,
                path,
                c.line,
                "L10",
                format!(
                    "trailing `.ok()` discards the `{}` result on a durability path",
                    d.name
                ),
            );
        }
    }
}

/// Removes violations covered by a justified `lint:allow` on the same
/// line or in the comment block directly above (multi-line
/// justifications extend the suppression to the line below the block).
fn apply_suppressions(lexed: &Lexed, out: &mut Vec<Violation>) {
    out.retain(|v| {
        !lexed.allows.iter().any(|a| {
            a.has_reason
                && v.line >= a.line
                && v.line <= a.end_line + 1
                && a.rules.iter().any(|r| r == v.rule)
        })
    });
}

/// [`check_file`] plus `LINT` violations for malformed suppression
/// comments (unknown rule name or missing justification) — those always
/// fail and can never be baselined away.
pub fn check_file_full(path: &str, lexed: &Lexed) -> Vec<Violation> {
    let mut out = check_file(path, lexed);
    for a in &lexed.allows {
        let bad_rule = a.rules.iter().any(|r| !RULES.contains(&r.as_str()));
        if !a.has_reason || bad_rule {
            push(
                &mut out,
                path,
                a.line,
                "LINT",
                "malformed lint:allow (unknown rule or missing justification)",
            );
        }
    }
    out.sort_by_key(|v| (v.line, v.rule));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn run(path: &str, src: &str) -> Vec<Violation> {
        check_file_full(path, &lex(src))
    }

    const NET: &str = "crates/net/src/frame.rs";

    #[test]
    fn l1_unwrap_expect_panic() {
        let v = run(
            NET,
            "fn f() { x.unwrap(); y.expect(\"m\"); panic!(\"boom\"); }",
        );
        assert_eq!(v.iter().filter(|v| v.rule == "L1").count(), 3);
    }

    #[test]
    fn l1_indexing_flagged_but_not_array_types() {
        let v = run(
            NET,
            "fn f(a: [u8; 4], v: &[u8]) -> u8 { let _x: Vec<[u8; 2]> = vec![]; v[0] }",
        );
        let l1: Vec<_> = v.iter().filter(|v| v.rule == "L1").collect();
        assert_eq!(l1.len(), 1, "{l1:?}");
    }

    #[test]
    fn l1_slice_patterns_are_fine() {
        let v = run(
            NET,
            "fn f(v: &[u8]) { let [a, b] = v else { return }; let _ = (a, b); }",
        );
        assert!(v.iter().all(|v| v.rule != "L1"), "{v:?}");
    }

    #[test]
    fn l1_ignores_unwrap_or_else_and_tests() {
        let v = run(
            NET,
            "fn f() { x.unwrap_or_else(|e| e.into_inner()); }\n#[cfg(test)]\nmod t { fn g() { y.unwrap(); } }",
        );
        assert!(v.iter().all(|v| v.rule != "L1"), "{v:?}");
    }

    #[test]
    fn l1_out_of_scope_file_ignored() {
        let v = run("crates/core/src/sim.rs", "fn f() { x.unwrap(); }");
        assert!(v.iter().all(|v| v.rule != "L1"));
    }

    #[test]
    fn l2_flags_handrolled_quorum_math() {
        let v = run(NET, "fn t(n: usize, b: usize) -> usize { (n + b + 1) / 2 }");
        assert_eq!(v.iter().filter(|v| v.rule == "L2").count(), 1);
        let v = run(NET, "fn t(&self) -> usize { 2 * self.dir.b() + 1 }");
        assert_eq!(v.iter().filter(|v| v.rule == "L2").count(), 1);
    }

    #[test]
    fn l2_allows_quorum_rs_and_plain_halving() {
        let v = run(
            "crates/core/src/quorum.rs",
            "pub fn q(n: usize, b: usize) -> usize { (n + b + 1) / 2 }",
        );
        assert!(v.iter().all(|v| v.rule != "L2"));
        let v = run(NET, "fn mid(len: usize) -> usize { len / 2 }");
        assert!(v.iter().all(|v| v.rule != "L2"));
    }

    #[test]
    fn l3_decode_without_verify_flagged() {
        let v = run(
            "crates/net/src/server.rs",
            "fn r() { let m = decode_msg(&buf); store(m); }",
        );
        assert_eq!(v.iter().filter(|v| v.rule == "L3").count(), 1);
    }

    #[test]
    fn l3_decode_with_dispatch_ok() {
        let v = run(
            "crates/net/src/server.rs",
            "fn r(&self) { let m = decode_msg(&buf); self.node.handle(m); }",
        );
        assert!(v.iter().all(|v| v.rule != "L3"));
        // Client-side dispatch counts too.
        let v = run(
            "crates/net/src/client.rs",
            "fn r(&mut self) { let m = decode_msg(&buf); self.core.on_message(sid, m, now); }",
        );
        assert!(v.iter().all(|v| v.rule != "L3"));
        // Definition sites don't count as uses.
        let v = run(NET, "pub fn decode_hello(p: &[u8]) -> R { todo() }");
        assert!(v.iter().all(|v| v.rule != "L3"));
    }

    #[test]
    fn l4_digest_comparison_flagged() {
        let v = run(
            "crates/core/src/item.rs",
            "fn f(&self) { if digest(&self.value) != self.meta.value_digest { } }",
        );
        assert_eq!(v.iter().filter(|v| v.rule == "L4").count(), 1);
    }

    #[test]
    fn l4_plain_comparisons_ok() {
        let v = run(
            "crates/core/src/item.rs",
            "fn f(a: u8, e: u8) { if a == e { } }",
        );
        assert!(v.iter().all(|v| v.rule != "L4"));
    }

    #[test]
    fn l5_narrowing_cast_flagged_in_codec_only() {
        let v = run(
            "crates/core/src/encoding.rs",
            "fn f(v: &[u8]) -> u32 { v.len() as u32 }",
        );
        assert_eq!(v.iter().filter(|v| v.rule == "L5").count(), 1);
        let v = run(
            "crates/core/src/encoding.rs",
            "fn f(v: &[u8]) -> u64 { v.len() as u64 }",
        );
        assert!(v.iter().all(|v| v.rule != "L5"));
        let v = run("crates/core/src/sim.rs", "fn f(x: u64) -> u32 { x as u32 }");
        assert!(v.iter().all(|v| v.rule != "L5"));
    }

    #[test]
    fn suppression_with_reason_works() {
        let v = run(
            NET,
            "fn f() { // lint:allow(L1): length checked two lines up\n x.unwrap(); }",
        );
        assert!(v.iter().all(|v| v.rule != "L1"), "{v:?}");
    }

    #[test]
    fn suppression_without_reason_is_error() {
        let v = run(NET, "fn f() { // lint:allow(L1)\n x.unwrap(); }");
        assert!(v.iter().any(|v| v.rule == "LINT"));
        assert!(v.iter().any(|v| v.rule == "L1"));
    }

    #[test]
    fn suppression_reaches_below_multiline_comment_block() {
        let v = run(
            NET,
            "fn f() {\n// lint:allow(L1): the index is bounded by the\n// frame header check above\n x[0]; }",
        );
        assert!(v.iter().all(|v| v.rule != "L1"), "{v:?}");
        // A code line between the comment block and the site breaks the run.
        let v = run(
            NET,
            "fn f() {\n// lint:allow(L1): stale justification\n let y = 1;\n// unrelated comment\n x[0]; let _ = y; }",
        );
        assert!(v.iter().any(|v| v.rule == "L1"), "{v:?}");
    }

    // ---- seeded-violation self-tests: one fixture per structural rule ----

    const EVLOOP: &str = "crates/net/src/event_loop.rs";

    #[test]
    fn l6_fires_on_lock_order_inversion() {
        let v = run(
            EVLOOP,
            "fn f(&self) { let g = locked(&self.redial); let h = locked(&self.links); drop((g, h)); }",
        );
        let l6: Vec<_> = v.iter().filter(|v| v.rule == "L6").collect();
        assert_eq!(l6.len(), 1, "{v:?}");
        assert!(l6[0].msg.contains("inverts"), "{}", l6[0].msg);
    }

    #[test]
    fn l6_fires_on_reentrant_acquisition() {
        let v = run(
            EVLOOP,
            "fn f(&self) { let g = locked(&self.links); let h = locked(&self.links); drop((g, h)); }",
        );
        assert!(
            v.iter()
                .any(|v| v.rule == "L6" && v.msg.contains("re-acquires")),
            "{v:?}"
        );
    }

    #[test]
    fn l6_ordered_and_scoped_acquisitions_pass() {
        // Declared order, and a temporary whose guard dies at the `;`.
        let v = run(
            EVLOOP,
            "fn f(&self) { let g = locked(&self.links); drop(g); }\n\
             fn h(&self) { locked(&self.node).tick(); locked(&self.stats).bump(); }",
        );
        assert!(v.iter().all(|v| v.rule != "L6"), "{v:?}");
        // Match arms are alternatives, not nesting.
        let v = run(
            EVLOOP,
            "fn f(&self) -> u64 { match self.imp { A(x) => locked(&x.redial).n, B(y) => locked(&y.links).n, } }",
        );
        assert!(v.iter().all(|v| v.rule != "L6"), "{v:?}");
    }

    #[test]
    fn l7_fires_on_blocking_call_and_exempts_spawn() {
        let v = run(EVLOOP, "fn tick() { std::thread::sleep(d); }");
        assert!(
            v.iter().any(|v| v.rule == "L7" && v.msg.contains("sleep")),
            "{v:?}"
        );
        let v = run(
            EVLOOP,
            "fn dial() { std::thread::spawn(move || { let _s = TcpStream::connect(addr); }); }",
        );
        assert!(v.iter().all(|v| v.rule != "L7"), "{v:?}");
    }

    const SERVER: &str = "crates/core/src/server/storage/wal.rs";

    #[test]
    fn l8_fires_on_ack_in_wal_file_outside_pipeline() {
        let v = run(
            SERVER,
            "fn f(&mut self) { self.wal.append(rec); out.push(Msg::WriteAck { op }); }",
        );
        assert!(
            v.iter()
                .any(|v| v.rule == "L8" && v.msg.contains("WriteAck")),
            "{v:?}"
        );
    }

    #[test]
    fn l8_pipeline_files_and_handle_drivers_pass() {
        // The real pipeline shape: acks deferred, released by flush_commits.
        let v = run(
            SERVER,
            "fn f(&mut self) { self.wal.append(rec); self.deferred_acks.push(op); }\n\
             fn flush_commits(&mut self) { for op in self.deferred_acks.drain(..) { out.push(Msg::WriteAck { op }); } }",
        );
        assert!(v.iter().all(|v| v.rule != "L8"), "{v:?}");
        // `.handle(` with no flush_commits driver in the file.
        let v = run(
            EVLOOP,
            "fn f(&mut self) { let r = self.node.handle(msg); send(r); }",
        );
        assert!(
            v.iter()
                .any(|v| v.rule == "L8" && v.msg.contains("flush_commits")),
            "{v:?}"
        );
    }

    #[test]
    fn l9_fires_on_unclamped_wire_length() {
        let v = run(
            NET,
            "fn read(&mut self) { let len = self.peek_len(); let buf = Vec::with_capacity(len); fill(buf); }",
        );
        assert!(
            v.iter().any(|v| v.rule == "L9" && v.msg.contains("len")),
            "{v:?}"
        );
        // vec![0; n] form.
        let v = run(NET, "fn read(n: usize) -> Vec<u8> { vec![0u8; n] }");
        assert!(v.iter().any(|v| v.rule == "L9"), "{v:?}");
    }

    #[test]
    fn l9_clamped_or_derived_lengths_pass() {
        // Comparison guard against a bound.
        let v = run(
            NET,
            "fn read(&mut self) -> Result<(), E> { if len > self.max_frame { return Err(E::TooBig); } let buf = Vec::with_capacity(len); Ok(()) }",
        );
        assert!(v.iter().all(|v| v.rule != "L9"), "{v:?}");
        // Counted-decode binding and a composite expression.
        let v = run(
            NET,
            "fn read(d: &mut Dec) { let n = d.count(8)?; let v = Vec::with_capacity(n); w.reserve(1 + body.len()); }",
        );
        assert!(v.iter().all(|v| v.rule != "L9"), "{v:?}");
        // SCREAMING_CASE constants are trusted.
        let v = run(NET, "fn f() { let v = Vec::with_capacity(MAX_FRAME); }");
        assert!(v.iter().all(|v| v.rule != "L9"), "{v:?}");
    }

    #[test]
    fn l10_fires_on_let_underscore_and_trailing_ok() {
        let v = run(SERVER, "fn f(&mut self) { let _ = self.wal.append(rec); }");
        assert!(
            v.iter()
                .any(|v| v.rule == "L10" && v.msg.contains("append")),
            "{v:?}"
        );
        let v = run(SERVER, "fn f(&mut self) { self.store.sync_now().ok(); }");
        assert!(
            v.iter()
                .any(|v| v.rule == "L10" && v.msg.contains("sync_now")),
            "{v:?}"
        );
    }

    #[test]
    fn l10_named_binding_and_handled_errors_pass() {
        let v = run(
            SERVER,
            "fn f(&mut self) { let appended = self.wal.append(rec); if appended.is_err() { self.faults += 1; } }",
        );
        assert!(v.iter().all(|v| v.rule != "L10"), "{v:?}");
        let v = run(
            SERVER,
            "fn f(&mut self) { if let Err(e) = self.store.sync_now() { warn(e); } let _ = tmp_path(); }",
        );
        assert!(v.iter().all(|v| v.rule != "L10"), "{v:?}");
    }
}
