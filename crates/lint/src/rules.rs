//! The five invariant rules, as token-pattern checks over [`crate::lexer`]
//! output. Each rule has a path scope; test code (`#[cfg(test)]` /
//! `#[test]`) is always exempt.
//!
//! | Rule | Invariant |
//! |------|-----------|
//! | L1 | panic-freedom on Byzantine-facing paths (no `unwrap`/`expect`/`panic!`-family/indexing/`unchecked_*`) |
//! | L2 | quorum arithmetic only in `core/src/quorum.rs` |
//! | L3 | wire decode sites live next to a verify/dispatch step |
//! | L4 | digest/signature/mac byte comparison goes through `ct_eq` |
//! | L5 | no bare narrowing `as` casts in codec paths |

use crate::lexer::{Lexed, Tok, TokKind};

/// One rule violation at a source line.
#[derive(Debug, Clone)]
pub struct Violation {
    /// Repo-relative path, `/`-separated.
    pub path: String,
    pub line: u32,
    /// `L1`..`L5`, or `LINT` for malformed suppressions (never baselinable).
    pub rule: &'static str,
    pub msg: String,
}

/// All ratchetable rules, in report order.
pub const RULES: &[&str] = &["L1", "L2", "L3", "L4", "L5"];

/// Files where L1/L3 must be zero regardless of the baseline: everything
/// that parses bytes straight off a socket, or off a disk that may have
/// crashed mid-write or rotted.
pub const ZERO_TOLERANCE: &[&str] = &[
    "crates/net/src/frame.rs",
    "crates/net/src/server.rs",
    "crates/net/src/client.rs",
    "crates/net/src/conn.rs",
    "crates/net/src/event_loop.rs",
    "crates/net/src/pipeline.rs",
    "crates/net/src/backoff.rs",
    "crates/net/src/coalesce.rs",
    "crates/crypto/src/schnorr/batch.rs",
    "crates/core/src/server/storage/mod.rs",
    "crates/core/src/server/storage/record.rs",
    "crates/core/src/server/storage/backend.rs",
];

/// Rust keywords that may directly precede `[` when it is *not* an index
/// expression (array literals, types, patterns).
const KEYWORDS: &[&str] = &[
    "as", "async", "await", "box", "break", "const", "continue", "crate", "dyn", "else", "enum",
    "extern", "false", "fn", "for", "if", "impl", "in", "let", "loop", "match", "mod", "move",
    "mut", "pub", "ref", "return", "static", "struct", "super", "trait", "true", "type", "unsafe",
    "use", "where", "while",
];

/// Macros whose expansion can abort the process.
const PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];

/// Digest/signature-flavoured identifiers whose `==`/`!=` comparison must
/// go through `sstore_crypto::ct::ct_eq` (L4).
const SECRET_NAMES: &[&str] = &["digest", "value_digest", "signature", "mac"];

fn in_scope_l1(path: &str) -> bool {
    path == "crates/core/src/codec.rs"
        || path == "crates/core/src/chaos.rs"
        || path.starts_with("crates/core/src/server/")
        || path.starts_with("crates/core/src/client/")
        || path.starts_with("crates/net/src/")
        || path.starts_with("crates/crypto/src/")
}

fn in_scope_l2(path: &str) -> bool {
    path != "crates/core/src/quorum.rs"
}

fn in_scope_l3(path: &str) -> bool {
    path.starts_with("crates/net/src/") || path.starts_with("crates/core/src/server/")
}

fn in_scope_l4(path: &str) -> bool {
    path != "crates/crypto/src/ct.rs"
}

fn in_scope_l5(path: &str) -> bool {
    matches!(
        path,
        "crates/core/src/codec.rs" | "crates/core/src/encoding.rs" | "crates/net/src/frame.rs"
    )
}

/// Runs every applicable rule over one lexed file.
pub fn check_file(path: &str, lexed: &Lexed) -> Vec<Violation> {
    let toks = &lexed.toks;
    let mut out = Vec::new();
    if in_scope_l1(path) {
        rule_l1(path, toks, &mut out);
    }
    if in_scope_l2(path) {
        rule_l2(path, toks, &mut out);
    }
    if in_scope_l3(path) {
        rule_l3(path, toks, &mut out);
    }
    if in_scope_l4(path) {
        rule_l4(path, toks, &mut out);
    }
    if in_scope_l5(path) {
        rule_l5(path, toks, &mut out);
    }
    apply_suppressions(lexed, &mut out);
    out.sort_by_key(|v| (v.line, v.rule));
    out
}

fn push(
    out: &mut Vec<Violation>,
    path: &str,
    line: u32,
    rule: &'static str,
    msg: impl Into<String>,
) {
    out.push(Violation {
        path: path.to_string(),
        line,
        rule,
        msg: msg.into(),
    });
}

/// L1: panic-freedom. Flags `.unwrap()` / `.expect(`, the panic macro
/// family, `.unchecked_*(`, and index/slice expressions `expr[...]`.
fn rule_l1(path: &str, toks: &[Tok], out: &mut Vec<Violation>) {
    for (i, t) in toks.iter().enumerate() {
        if t.in_test {
            continue;
        }
        match t.kind {
            TokKind::Ident => {
                let prev_dot = i > 0 && toks[i - 1].text == ".";
                let next_paren = toks.get(i + 1).is_some_and(|n| n.text == "(");
                let next_bang = toks.get(i + 1).is_some_and(|n| n.text == "!");
                if prev_dot && next_paren && (t.text == "unwrap" || t.text == "expect") {
                    push(out, path, t.line, "L1", format!(".{}() can panic", t.text));
                } else if prev_dot && next_paren && t.text.starts_with("unchecked_") {
                    push(
                        out,
                        path,
                        t.line,
                        "L1",
                        format!(".{}() skips checks", t.text),
                    );
                } else if next_bang && PANIC_MACROS.contains(&t.text.as_str()) {
                    push(
                        out,
                        path,
                        t.line,
                        "L1",
                        format!("{}! aborts the node", t.text),
                    );
                }
            }
            TokKind::Punct if t.text == "[" && i > 0 => {
                let p = &toks[i - 1];
                let indexes = match p.kind {
                    TokKind::Ident => !KEYWORDS.contains(&p.text.as_str()),
                    TokKind::Punct => p.text == ")" || p.text == "]" || p.text == "?",
                    TokKind::Lit => true,
                    _ => false,
                };
                if indexes {
                    push(out, path, t.line, "L1", "index/slice expression can panic");
                }
            }
            _ => {}
        }
    }
}

/// L2: quorum hygiene. Flags hand-rolled threshold arithmetic —
/// `(… b … 1 …) / 2` and `2 * … b … + 1` — outside `core/src/quorum.rs`.
fn rule_l2(path: &str, toks: &[Tok], out: &mut Vec<Violation>) {
    let live: Vec<&Tok> = toks.iter().filter(|t| !t.in_test).collect();
    for i in 0..live.len() {
        let t = live[i];
        // `) / 2` with `b` and `1` in the parenthesized group.
        if t.text == "/" && live.get(i + 1).is_some_and(|n| n.text == "2") {
            let window = &live[i.saturating_sub(14)..i];
            let has_b = window
                .iter()
                .any(|w| w.kind == TokKind::Ident && (w.text == "b" || w.text == "n"));
            let has_one = window
                .iter()
                .any(|w| w.kind == TokKind::Num && w.text == "1");
            if has_b && has_one {
                push(
                    out,
                    path,
                    t.line,
                    "L2",
                    "quorum-style `(.. b .. 1) / 2` outside quorum.rs",
                );
            }
        }
        // `2 * … b … + 1`.
        if t.kind == TokKind::Num && t.text == "2" && live.get(i + 1).is_some_and(|n| n.text == "*")
        {
            let window = &live[i + 1..(i + 11).min(live.len())];
            let has_b = window
                .iter()
                .any(|w| w.kind == TokKind::Ident && w.text == "b");
            let plus_one = window
                .windows(2)
                .any(|w| w[0].text == "+" && w[1].kind == TokKind::Num && w[1].text == "1");
            if has_b && plus_one {
                push(
                    out,
                    path,
                    t.line,
                    "L2",
                    "quorum-style `2 * b + 1` outside quorum.rs",
                );
            }
        }
    }
}

/// L3: verify-before-use, approximated at file granularity: a file that
/// calls the wire decoders must also contain a `verify*` call or dispatch
/// into a protocol state machine (`.handle(` on the server, `.on_message(`
/// on the client), which performs verification.
fn rule_l3(path: &str, toks: &[Tok], out: &mut Vec<Violation>) {
    let live: Vec<&Tok> = toks.iter().filter(|t| !t.in_test).collect();
    let redeemed = live.windows(2).any(|w| {
        w[1].text == "("
            && w[0].kind == TokKind::Ident
            && (w[0].text.starts_with("verify")
                || w[0].text == "handle"
                || w[0].text == "on_message")
    });
    if redeemed {
        return;
    }
    for i in 0..live.len() {
        let t = live[i];
        if t.kind == TokKind::Ident
            && (t.text == "decode_msg" || t.text == "decode_hello")
            && live.get(i + 1).is_some_and(|n| n.text == "(")
            && !(i > 0 && live[i - 1].text == "fn")
        {
            push(
                out,
                path,
                t.line,
                "L3",
                format!(
                    "`{}` result used without a verify/dispatch step in this file",
                    t.text
                ),
            );
        }
    }
}

/// L4: constant-time digests. Flags `==`/`!=` whose operand chain is
/// anchored on a digest/signature/mac identifier; those comparisons must
/// route through `sstore_crypto::ct::ct_eq`.
fn rule_l4(path: &str, toks: &[Tok], out: &mut Vec<Violation>) {
    let live: Vec<&Tok> = toks.iter().filter(|t| !t.in_test).collect();
    for i in 0..live.len() {
        let t = live[i];
        if t.text != "==" && t.text != "!=" {
            continue;
        }
        let back = backward_anchor(&live, i);
        let fwd = forward_anchor(&live, i);
        let hit = |a: Option<&str>| a.is_some_and(|a| SECRET_NAMES.contains(&a));
        if hit(back) || hit(fwd) {
            push(
                out,
                path,
                t.line,
                "L4",
                format!("`{}` on digest/signature bytes; use ct_eq", t.text),
            );
        }
    }
}

/// Last identifier of the expression ending just before `live[op]`:
/// `self.meta.value_digest ==` → `value_digest`; `digest(&v) ==` → `digest`.
fn backward_anchor<'a>(live: &[&'a Tok], op: usize) -> Option<&'a str> {
    let mut j = op.checked_sub(1)?;
    if live[j].text == ")" {
        let mut depth = 1i32;
        while depth > 0 {
            j = j.checked_sub(1)?;
            match live[j].text.as_str() {
                ")" => depth += 1,
                "(" => depth -= 1,
                _ => {}
            }
        }
        j = j.checked_sub(1)?;
    }
    (live[j].kind == TokKind::Ident).then(|| live[j].text.as_str())
}

/// Last identifier of the `a.b::c` chain starting just after `live[op]`.
fn forward_anchor<'a>(live: &[&'a Tok], op: usize) -> Option<&'a str> {
    let mut j = op + 1;
    // Skip leading `&`, `*`, `!`.
    while live
        .get(j)
        .is_some_and(|t| matches!(t.text.as_str(), "&" | "*" | "!"))
    {
        j += 1;
    }
    let mut last = None;
    while let Some(t) = live.get(j) {
        match t.kind {
            TokKind::Ident => last = Some(t.text.as_str()),
            TokKind::Punct if t.text == "." || t.text == "::" => {}
            _ => break,
        }
        j += 1;
    }
    last
}

/// L5: checked narrowing. Flags bare `as u8|u16|u32` in codec paths;
/// widths there must be proven with `try_from` + an explicit error.
fn rule_l5(path: &str, toks: &[Tok], out: &mut Vec<Violation>) {
    let live: Vec<&Tok> = toks.iter().filter(|t| !t.in_test).collect();
    for w in live.windows(2) {
        if w[0].text == "as"
            && w[0].kind == TokKind::Ident
            && matches!(w[1].text.as_str(), "u8" | "u16" | "u32")
        {
            push(
                out,
                path,
                w[0].line,
                "L5",
                format!(
                    "bare narrowing `as {}`; use try_from with a codec error",
                    w[1].text
                ),
            );
        }
    }
}

/// Removes violations covered by a justified `lint:allow` on the same or
/// preceding line.
fn apply_suppressions(lexed: &Lexed, out: &mut Vec<Violation>) {
    out.retain(|v| {
        !lexed.allows.iter().any(|a| {
            a.has_reason
                && (a.line == v.line || a.line + 1 == v.line)
                && a.rules.iter().any(|r| r == v.rule)
        })
    });
}

/// [`check_file`] plus `LINT` violations for malformed suppression
/// comments (unknown rule name or missing justification) — those always
/// fail and can never be baselined away.
pub fn check_file_full(path: &str, lexed: &Lexed) -> Vec<Violation> {
    let mut out = check_file(path, lexed);
    for a in &lexed.allows {
        let bad_rule = a.rules.iter().any(|r| !RULES.contains(&r.as_str()));
        if !a.has_reason || bad_rule {
            push(
                &mut out,
                path,
                a.line,
                "LINT",
                "malformed lint:allow (unknown rule or missing justification)",
            );
        }
    }
    out.sort_by_key(|v| (v.line, v.rule));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn run(path: &str, src: &str) -> Vec<Violation> {
        check_file_full(path, &lex(src))
    }

    const NET: &str = "crates/net/src/frame.rs";

    #[test]
    fn l1_unwrap_expect_panic() {
        let v = run(
            NET,
            "fn f() { x.unwrap(); y.expect(\"m\"); panic!(\"boom\"); }",
        );
        assert_eq!(v.iter().filter(|v| v.rule == "L1").count(), 3);
    }

    #[test]
    fn l1_indexing_flagged_but_not_array_types() {
        let v = run(
            NET,
            "fn f(a: [u8; 4], v: &[u8]) -> u8 { let _x: Vec<[u8; 2]> = vec![]; v[0] }",
        );
        let l1: Vec<_> = v.iter().filter(|v| v.rule == "L1").collect();
        assert_eq!(l1.len(), 1, "{l1:?}");
    }

    #[test]
    fn l1_slice_patterns_are_fine() {
        let v = run(
            NET,
            "fn f(v: &[u8]) { let [a, b] = v else { return }; let _ = (a, b); }",
        );
        assert!(v.iter().all(|v| v.rule != "L1"), "{v:?}");
    }

    #[test]
    fn l1_ignores_unwrap_or_else_and_tests() {
        let v = run(
            NET,
            "fn f() { x.unwrap_or_else(|e| e.into_inner()); }\n#[cfg(test)]\nmod t { fn g() { y.unwrap(); } }",
        );
        assert!(v.iter().all(|v| v.rule != "L1"), "{v:?}");
    }

    #[test]
    fn l1_out_of_scope_file_ignored() {
        let v = run("crates/core/src/sim.rs", "fn f() { x.unwrap(); }");
        assert!(v.iter().all(|v| v.rule != "L1"));
    }

    #[test]
    fn l2_flags_handrolled_quorum_math() {
        let v = run(NET, "fn t(n: usize, b: usize) -> usize { (n + b + 1) / 2 }");
        assert_eq!(v.iter().filter(|v| v.rule == "L2").count(), 1);
        let v = run(NET, "fn t(&self) -> usize { 2 * self.dir.b() + 1 }");
        assert_eq!(v.iter().filter(|v| v.rule == "L2").count(), 1);
    }

    #[test]
    fn l2_allows_quorum_rs_and_plain_halving() {
        let v = run(
            "crates/core/src/quorum.rs",
            "pub fn q(n: usize, b: usize) -> usize { (n + b + 1) / 2 }",
        );
        assert!(v.iter().all(|v| v.rule != "L2"));
        let v = run(NET, "fn mid(len: usize) -> usize { len / 2 }");
        assert!(v.iter().all(|v| v.rule != "L2"));
    }

    #[test]
    fn l3_decode_without_verify_flagged() {
        let v = run(
            "crates/net/src/server.rs",
            "fn r() { let m = decode_msg(&buf); store(m); }",
        );
        assert_eq!(v.iter().filter(|v| v.rule == "L3").count(), 1);
    }

    #[test]
    fn l3_decode_with_dispatch_ok() {
        let v = run(
            "crates/net/src/server.rs",
            "fn r(&self) { let m = decode_msg(&buf); self.node.handle(m); }",
        );
        assert!(v.iter().all(|v| v.rule != "L3"));
        // Client-side dispatch counts too.
        let v = run(
            "crates/net/src/client.rs",
            "fn r(&mut self) { let m = decode_msg(&buf); self.core.on_message(sid, m, now); }",
        );
        assert!(v.iter().all(|v| v.rule != "L3"));
        // Definition sites don't count as uses.
        let v = run(NET, "pub fn decode_hello(p: &[u8]) -> R { todo() }");
        assert!(v.iter().all(|v| v.rule != "L3"));
    }

    #[test]
    fn l4_digest_comparison_flagged() {
        let v = run(
            "crates/core/src/item.rs",
            "fn f(&self) { if digest(&self.value) != self.meta.value_digest { } }",
        );
        assert_eq!(v.iter().filter(|v| v.rule == "L4").count(), 1);
    }

    #[test]
    fn l4_plain_comparisons_ok() {
        let v = run(
            "crates/core/src/item.rs",
            "fn f(a: u8, e: u8) { if a == e { } }",
        );
        assert!(v.iter().all(|v| v.rule != "L4"));
    }

    #[test]
    fn l5_narrowing_cast_flagged_in_codec_only() {
        let v = run(
            "crates/core/src/encoding.rs",
            "fn f(v: &[u8]) -> u32 { v.len() as u32 }",
        );
        assert_eq!(v.iter().filter(|v| v.rule == "L5").count(), 1);
        let v = run(
            "crates/core/src/encoding.rs",
            "fn f(v: &[u8]) -> u64 { v.len() as u64 }",
        );
        assert!(v.iter().all(|v| v.rule != "L5"));
        let v = run("crates/core/src/sim.rs", "fn f(x: u64) -> u32 { x as u32 }");
        assert!(v.iter().all(|v| v.rule != "L5"));
    }

    #[test]
    fn suppression_with_reason_works() {
        let v = run(
            NET,
            "fn f() { // lint:allow(L1): length checked two lines up\n x.unwrap(); }",
        );
        assert!(v.iter().all(|v| v.rule != "L1"), "{v:?}");
    }

    #[test]
    fn suppression_without_reason_is_error() {
        let v = run(NET, "fn f() { // lint:allow(L1)\n x.unwrap(); }");
        assert!(v.iter().any(|v| v.rule == "LINT"));
        assert!(v.iter().any(|v| v.rule == "L1"));
    }
}
