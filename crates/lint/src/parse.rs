//! Lightweight structural analysis over the [`crate::lexer`] token
//! stream: a brace-matched block tree, per-function facts, and extracted
//! call sites with balanced-paren extents. This is the substrate for the
//! dataflow-flavoured rules (L6–L10) that need to reason about "which
//! guards are held here", "is this token inside a spawned closure", or
//! "does this function clamp that identifier" — questions a flat token
//! scan cannot answer.
//!
//! The builder is total: it never panics, whatever bytes the lexer was
//! fed. Mismatched braces are tolerated (an unclosed block extends to the
//! end of the file; a stray `}` is ignored), which a proptest in this
//! module enforces on arbitrary input.

use crate::lexer::{Tok, TokKind};

/// Sentinel block id meaning "file top level" (no enclosing block).
pub const TOP_LEVEL: usize = usize::MAX;

/// One brace-matched `{ … }` region. `open`/`close` are token indices of
/// the braces; a file-truncated block gets `close == toks.len()`.
#[derive(Debug, Clone)]
pub struct Block {
    pub open: usize,
    pub close: usize,
    /// Enclosing block id, or [`TOP_LEVEL`].
    pub parent: usize,
}

/// One `fn` item: name, signature position, and the body block (if any —
/// trait method declarations have none). Name and position fields are
/// part of the structural API even while only `body` has a rule consumer.
#[derive(Debug, Clone)]
#[allow(dead_code)]
pub struct FnFact {
    pub name: String,
    /// Token index of the name identifier.
    pub name_idx: usize,
    /// Block id of the body, if the fn has one.
    pub body: Option<usize>,
    pub line: u32,
}

/// One call site `name( … )` or method call `.name( … )`.
#[derive(Debug, Clone)]
pub struct Call {
    pub name: String,
    /// Token index of the callee identifier.
    pub callee: usize,
    /// Preceded by `.` (method-call syntax).
    pub is_method: bool,
    /// Token indices of the opening and closing parens; `close` is
    /// `toks.len()` when the file ends mid-argument-list.
    pub open: usize,
    pub close: usize,
    pub line: u32,
}

/// Structural facts for one file.
#[derive(Debug, Default)]
pub struct Structure {
    pub blocks: Vec<Block>,
    pub fns: Vec<FnFact>,
    pub calls: Vec<Call>,
    /// Innermost enclosing block id per token ([`TOP_LEVEL`] outside all
    /// braces).
    block_of: Vec<usize>,
}

impl Structure {
    /// Builds the block tree, function facts and call list for a token
    /// stream. Total: tolerates any brace/paren mismatch.
    pub fn build(toks: &[Tok]) -> Structure {
        let mut s = Structure {
            block_of: vec![TOP_LEVEL; toks.len()],
            ..Structure::default()
        };
        let mut stack: Vec<usize> = Vec::new();
        for (i, t) in toks.iter().enumerate() {
            s.block_of[i] = stack.last().copied().unwrap_or(TOP_LEVEL);
            if t.kind != TokKind::Punct {
                continue;
            }
            if t.text == "{" {
                let parent = stack.last().copied().unwrap_or(TOP_LEVEL);
                stack.push(s.blocks.len());
                s.blocks.push(Block {
                    open: i,
                    close: toks.len(),
                    parent,
                });
            } else if t.text == "}" {
                if let Some(id) = stack.pop() {
                    if let Some(b) = s.blocks.get_mut(id) {
                        b.close = i;
                    }
                }
            }
        }
        s.collect_fns(toks);
        s.collect_calls(toks);
        s
    }

    fn collect_fns(&mut self, toks: &[Tok]) {
        for i in 0..toks.len() {
            let is_fn = toks.get(i).is_some_and(|t| t.text == "fn");
            let name = match toks.get(i + 1) {
                Some(n) if is_fn && n.kind == TokKind::Ident => n,
                _ => continue,
            };
            // The body is the first `{` before a `;` at signature depth
            // (trait method declarations end with `;` and have no body).
            let mut depth = 0i64;
            let mut body = None;
            let mut j = i + 2;
            while let Some(t) = toks.get(j) {
                match t.text.as_str() {
                    "(" | "[" | "<" => depth += 1,
                    ")" | "]" | ">" => depth -= 1,
                    "{" => {
                        body = self.block_at(j);
                        break;
                    }
                    ";" if depth <= 0 => break,
                    _ => {}
                }
                j += 1;
            }
            self.fns.push(FnFact {
                name: name.text.clone(),
                name_idx: i + 1,
                body,
                line: name.line,
            });
        }
    }

    fn collect_calls(&mut self, toks: &[Tok]) {
        for i in 0..toks.len() {
            let t = match toks.get(i) {
                Some(t) if t.kind == TokKind::Ident => t,
                _ => continue,
            };
            if toks.get(i + 1).map(|n| n.text.as_str()) != Some("(") {
                continue;
            }
            // `fn name(` is a definition, not a call.
            if i > 0 && toks.get(i - 1).is_some_and(|p| p.text == "fn") {
                continue;
            }
            let is_method = i > 0 && toks.get(i - 1).is_some_and(|p| p.text == ".");
            let close = matching_paren(toks, i + 1);
            self.calls.push(Call {
                name: t.text.clone(),
                callee: i,
                is_method,
                open: i + 1,
                close,
                line: t.line,
            });
        }
    }

    /// Block id whose `open` is the given token index.
    fn block_at(&self, open: usize) -> Option<usize> {
        self.blocks.iter().position(|b| b.open == open)
    }

    /// Innermost block containing token `idx` ([`TOP_LEVEL`] if none).
    pub fn block_of(&self, idx: usize) -> usize {
        self.block_of.get(idx).copied().unwrap_or(TOP_LEVEL)
    }

    /// Whether block `outer` contains token `idx` (directly or nested).
    pub fn block_contains(&self, outer: usize, idx: usize) -> bool {
        let mut b = self.block_of(idx);
        let mut fuel = self.blocks.len() + 1;
        while b != TOP_LEVEL && fuel > 0 {
            if b == outer {
                return true;
            }
            b = self.blocks.get(b).map_or(TOP_LEVEL, |blk| blk.parent);
            fuel -= 1;
        }
        false
    }

    /// The innermost `fn` whose body contains token `idx`.
    pub fn enclosing_fn(&self, idx: usize) -> Option<&FnFact> {
        self.fns
            .iter()
            .filter(|f| f.body.is_some_and(|b| self.block_contains(b, idx)))
            .max_by_key(|f| f.body.map(|b| self.blocks.get(b).map_or(0, |blk| blk.open)))
    }

    /// Token index where the statement containing `idx` starts: the token
    /// after the previous `;`, `{` or `}` at the same block depth (also
    /// `,` when the block is a `match` body, so arms stay separate).
    pub fn stmt_start(&self, toks: &[Tok], idx: usize) -> usize {
        let home = self.block_of(idx);
        let arm_sep = self.is_match_body(toks, home);
        let mut j = idx;
        while j > 0 {
            let p = j - 1;
            if self.block_of(p) != home {
                return j;
            }
            match toks.get(p).map(|t| t.text.as_str()) {
                Some(";") | Some("{") | Some("}") => return j,
                Some(",") if arm_sep => return j,
                _ => j = p,
            }
        }
        0
    }

    /// Whether block `id` is the body of a `match` expression: scanning
    /// back from its `{`, a `match` keyword appears before any statement
    /// boundary.
    fn is_match_body(&self, toks: &[Tok], id: usize) -> bool {
        let Some(open) = self.blocks.get(id).map(|b| b.open) else {
            return false;
        };
        let mut j = open;
        while j > 0 {
            j -= 1;
            match toks.get(j).map(|t| t.text.as_str()) {
                Some("match") => return true,
                Some(";") | Some("{") | Some("}") | Some("=>") => return false,
                _ => {}
            }
        }
        false
    }

    /// Token index one past the end of the statement containing `idx`:
    /// past the next `;` at the same block depth, or at the closing brace
    /// of the enclosing block.
    pub fn stmt_end(&self, toks: &[Tok], idx: usize) -> usize {
        let home = self.block_of(idx);
        let arm_sep = self.is_match_body(toks, home);
        let mut j = idx;
        while j < toks.len() {
            if self.block_of(j) != home && !self.enclosed_by(home, j) {
                return j;
            }
            if self.block_of(j) == home {
                match toks.get(j).map(|t| t.text.as_str()) {
                    Some(";") => return j + 1,
                    Some(",") if arm_sep => return j + 1,
                    // The closing brace of `home` itself ends the statement.
                    Some("}") if j > idx => return j,
                    _ => {}
                }
            }
            j += 1;
        }
        toks.len()
    }

    fn enclosed_by(&self, outer: usize, idx: usize) -> bool {
        if outer == TOP_LEVEL {
            return true;
        }
        self.block_contains(outer, idx)
    }

    /// Whether token `idx` falls inside the argument extent of any call to
    /// one of `names` (e.g. a closure passed to `thread::spawn`).
    pub fn inside_call_to(&self, names: &[&str], idx: usize) -> bool {
        self.calls
            .iter()
            .any(|c| names.contains(&c.name.as_str()) && c.open < idx && idx < c.close)
    }
}

/// Index of the `)` matching the `(` at `open` (or `toks.len()` if the
/// file ends first). Total for arbitrary input.
pub fn matching_paren(toks: &[Tok], open: usize) -> usize {
    let mut depth = 0i64;
    let mut j = open;
    while let Some(t) = toks.get(j) {
        if t.kind == TokKind::Punct {
            match t.text.as_str() {
                "(" => depth += 1,
                ")" => {
                    depth -= 1;
                    if depth <= 0 {
                        return j;
                    }
                }
                _ => {}
            }
        }
        j += 1;
    }
    toks.len()
}

/// Last identifier of the `a.b.c` / `a::b` chain ending at token `end`
/// (exclusive): `locked(&self.dial_rng)` → `dial_rng`.
pub fn last_ident_before(toks: &[Tok], end: usize) -> Option<&str> {
    let mut j = end;
    while j > 0 {
        j -= 1;
        match toks.get(j) {
            Some(t) if t.kind == TokKind::Ident => return Some(t.text.as_str()),
            Some(t) if matches!(t.text.as_str(), ")" | "]") => continue,
            Some(_) => continue,
            None => return None,
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn build(src: &str) -> (Vec<Tok>, Structure) {
        let l = lex(src);
        let s = Structure::build(&l.toks);
        (l.toks, s)
    }

    #[test]
    fn block_tree_nests() {
        let (toks, s) = build("fn a() { if x { y(); } }");
        assert_eq!(s.blocks.len(), 2);
        assert_eq!(s.blocks[1].parent, 0);
        let y = toks.iter().position(|t| t.text == "y").unwrap();
        assert!(s.block_contains(0, y));
        assert!(s.block_contains(1, y));
    }

    #[test]
    fn unclosed_block_extends_to_eof() {
        let (toks, s) = build("fn a() { x(");
        assert_eq!(s.blocks.len(), 1);
        assert_eq!(s.blocks[0].close, toks.len());
    }

    #[test]
    fn stray_close_ignored() {
        let (_, s) = build("} fn a() { }");
        assert_eq!(s.blocks.len(), 1);
        assert!(s.blocks[0].close != usize::MAX);
    }

    #[test]
    fn fn_facts_and_enclosing() {
        let (toks, s) = build("fn outer() { inner_call(); }\nfn two() {}");
        assert_eq!(s.fns.len(), 2);
        assert_eq!(s.fns[0].name, "outer");
        let c = toks.iter().position(|t| t.text == "inner_call").unwrap();
        assert_eq!(s.enclosing_fn(c).map(|f| f.name.as_str()), Some("outer"));
    }

    #[test]
    fn trait_decl_has_no_body() {
        let (_, s) = build("trait T { fn decl(&self) -> u8; fn with_body(&self) {} }");
        let decl = s.fns.iter().find(|f| f.name == "decl").unwrap();
        assert!(decl.body.is_none());
        let wb = s.fns.iter().find(|f| f.name == "with_body").unwrap();
        assert!(wb.body.is_some());
    }

    #[test]
    fn calls_with_extents() {
        let (toks, s) = build("fn f() { g(h(1), 2); x.m(); }");
        let g = s.calls.iter().find(|c| c.name == "g").unwrap();
        assert_eq!(toks[g.close].text, ")");
        assert!(!g.is_method);
        let m = s.calls.iter().find(|c| c.name == "m").unwrap();
        assert!(m.is_method);
        // h(1) nests inside g's extent.
        let h = s.calls.iter().find(|c| c.name == "h").unwrap();
        assert!(g.open < h.callee && h.close < g.close);
    }

    #[test]
    fn spawn_extent_detection() {
        let (toks, s) = build("fn f() { thread::spawn(move || { conn(x); }); after(); }");
        let conn = toks.iter().position(|t| t.text == "conn").unwrap();
        let after = toks.iter().position(|t| t.text == "after").unwrap();
        assert!(s.inside_call_to(&["spawn"], conn));
        assert!(!s.inside_call_to(&["spawn"], after));
    }

    #[test]
    fn stmt_bounds() {
        let (toks, s) = build("fn f() { let a = g(); h(a); }");
        let h = toks.iter().position(|t| t.text == "h").unwrap();
        let start = s.stmt_start(&toks, h);
        assert_eq!(toks[start].text, "h");
        let end = s.stmt_end(&toks, h);
        assert_eq!(toks[end - 1].text, ";");
    }

    #[test]
    fn last_ident_of_chain() {
        let (toks, _) = build("locked(&self.dial_rng)");
        let close = toks.iter().position(|t| t.text == ")").unwrap();
        assert_eq!(last_ident_before(&toks, close), Some("dial_rng"));
    }

    #[test]
    fn total_on_garbage() {
        // A quick fixed-vector sanity net; the proptests below cover
        // arbitrary bytes.
        for src in ["{{{", "}}}", "fn fn fn (", "){(}", "fn a() { { } ", ""] {
            let l = lex(src);
            let s = Structure::build(&l.toks);
            for i in 0..l.toks.len() + 2 {
                let _ = s.block_of(i);
                let _ = s.enclosing_fn(i);
                let _ = s.stmt_start(&l.toks, i.min(l.toks.len()));
                let _ = s.stmt_end(&l.toks, i.min(l.toks.len()));
            }
        }
    }

    /// Runs every Structure query at every token index — any panic or
    /// inconsistent block id fails the property.
    fn probe(src: &str) -> Result<(), String> {
        let l = lex(src);
        let s = Structure::build(&l.toks);
        for i in 0..l.toks.len() {
            let b = s.block_of(i);
            if b != TOP_LEVEL && b >= s.blocks.len() {
                return Err(format!("token {i} maps to bogus block {b}"));
            }
            let _ = s.enclosing_fn(i);
            let _ = s.inside_call_to(&["spawn"], i);
            let start = s.stmt_start(&l.toks, i);
            let end = s.stmt_end(&l.toks, i);
            if start > i || end < i {
                return Err(format!("stmt bounds [{start}, {end}] exclude {i}"));
            }
        }
        for b in &s.blocks {
            if b.open > b.close {
                return Err(format!("block opens at {} after close {}", b.open, b.close));
            }
        }
        Ok(())
    }

    proptest::proptest! {
        #![proptest_config(proptest::test_runner::Config::with_cases(256))]

        #[test]
        fn build_total_on_arbitrary_bytes(
            bytes in proptest::collection::vec(proptest::prelude::any::<u8>(), 0..1024)
        ) {
            let src = String::from_utf8_lossy(&bytes);
            proptest::prop_assert!(probe(&src).is_ok(), "{:?}", probe(&src));
        }

        #[test]
        fn build_total_on_brace_soup(
            picks in proptest::collection::vec(proptest::prelude::any::<u16>(), 0..512)
        ) {
            // Dense delimiter/keyword soup hits the tree-builder's edge
            // cases far more often than uniform bytes do.
            const VOCAB: &[&str] = &[
                "{", "}", "(", ")", "[", "]", ";", ",", "=>", "fn", "let",
                "match", "if", "for", "while", "spawn", "locked", ".", "'a",
                "'x'", "\"s\"", "r#\"raw\"#", "//c\n", "/*n*/", "x", "#",
            ];
            let src: String = picks
                .iter()
                .map(|p| VOCAB[*p as usize % VOCAB.len()])
                .collect::<Vec<_>>()
                .join(" ");
            proptest::prop_assert!(probe(&src).is_ok(), "{:?}", probe(&src));
        }
    }
}
