//! A minimal Rust lexer — just enough structure for token-pattern lint
//! rules. Pure std, no external parser: the container this tool must run
//! in cannot fetch `syn`, and the rules below only need token shapes, not
//! a full AST.
//!
//! Produces a flat token stream with line numbers, marks tokens that live
//! inside `#[test]` / `#[cfg(test)]` items, and collects
//! `// lint:allow(RULE): reason` suppression comments.

/// Kind of a lexed token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (keywords are not distinguished here).
    Ident,
    /// Integer or float literal (digits; prefixes/suffixes preserved).
    Num,
    /// String, raw string, byte string, or char literal.
    Lit,
    /// Lifetime or loop label (`'a`, `'outer`).
    Lifetime,
    /// Punctuation; multi-char operators are merged (`==`, `::`, `..=`).
    Punct,
}

/// One lexed token.
#[derive(Debug, Clone)]
pub struct Tok {
    pub kind: TokKind,
    pub text: String,
    /// 1-based source line.
    pub line: u32,
    /// Inside a `#[test]` fn or `#[cfg(test)]` item.
    pub in_test: bool,
}

/// A `// lint:allow(L1): reason` suppression comment.
///
/// A justification may wrap over several comment lines; `end_line` is the
/// last line of the contiguous comment run starting at the marker, so the
/// suppression reaches the code line directly below the whole comment.
#[derive(Debug, Clone)]
pub struct Allow {
    pub line: u32,
    /// Last line of the comment block (== `line` for one-line allows).
    pub end_line: u32,
    pub rules: Vec<String>,
    /// Whether a non-empty justification followed the rule list.
    pub has_reason: bool,
}

/// Lexer output for one file.
#[derive(Debug, Default)]
pub struct Lexed {
    pub toks: Vec<Tok>,
    pub allows: Vec<Allow>,
}

/// Multi-char operators, longest first so maximal munch works.
const OPS: &[&str] = &[
    "<<=", ">>=", "..=", "...", "==", "!=", "<=", ">=", "&&", "||", "::", "->", "=>", "..", "<<",
    ">>", "+=", "-=", "*=", "/=", "%=", "^=", "&=", "|=",
];

/// Lexes `src` into tokens and suppression comments.
pub fn lex(src: &str) -> Lexed {
    let b = src.as_bytes();
    let mut toks = Vec::new();
    let mut allows = Vec::new();
    let mut i = 0usize;
    let mut line = 1u32;
    while i < b.len() {
        let c = b[i];
        match c {
            b'\n' => {
                line += 1;
                i += 1;
            }
            b' ' | b'\t' | b'\r' => i += 1,
            b'/' if b.get(i + 1) == Some(&b'/') => {
                let start = i;
                while i < b.len() && b[i] != b'\n' {
                    i += 1;
                }
                if let Some(a) = parse_allow(&src[start..i], line) {
                    allows.push(a);
                } else if let Some(a) = allows.last_mut() {
                    // A plain comment on the line right below an allow
                    // extends its justification block — provided no code
                    // token interrupted the run.
                    let code_between = toks.last().is_some_and(|t: &Tok| t.line > a.line);
                    if a.end_line + 1 == line && !code_between {
                        a.end_line = line;
                    }
                }
            }
            b'/' if b.get(i + 1) == Some(&b'*') => {
                // Nested block comments, as in real Rust.
                let mut depth = 1u32;
                i += 2;
                while i < b.len() && depth > 0 {
                    if b[i] == b'\n' {
                        line += 1;
                        i += 1;
                    } else if b[i] == b'/' && b.get(i + 1) == Some(&b'*') {
                        depth += 1;
                        i += 2;
                    } else if b[i] == b'*' && b.get(i + 1) == Some(&b'/') {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
            }
            b'"' => {
                let (len, newlines) = scan_string(&b[i..]);
                toks.push(tok(TokKind::Lit, "\"..\"", line));
                line += newlines;
                i += len;
            }
            b'r' | b'b' if starts_raw_or_byte_string(&b[i..]) => {
                let (len, newlines) = scan_raw_or_byte(&b[i..]);
                toks.push(tok(TokKind::Lit, "\"..\"", line));
                line += newlines;
                i += len;
            }
            b'r' if b.get(i + 1) == Some(&b'#') && is_ident_start(b.get(i + 2).copied()) => {
                // Raw identifier r#ident — strip the prefix.
                let start = i + 2;
                let mut j = start;
                while j < b.len() && is_ident_continue(b[j]) {
                    j += 1;
                }
                toks.push(tok(TokKind::Ident, &src[start..j], line));
                i = j;
            }
            b'\'' => {
                let (len, kind, newlines) = scan_quote(&b[i..]);
                toks.push(tok(kind, "'", line));
                line += newlines;
                i += len;
            }
            _ if is_ident_start(Some(c)) => {
                let start = i;
                while i < b.len() && is_ident_continue(b[i]) {
                    i += 1;
                }
                toks.push(tok(TokKind::Ident, &src[start..i], line));
            }
            b'0'..=b'9' => {
                let start = i;
                while i < b.len()
                    && (b[i].is_ascii_alphanumeric()
                        || b[i] == b'_'
                        || (b[i] == b'.' && b.get(i + 1).is_some_and(u8::is_ascii_digit)))
                {
                    i += 1;
                }
                toks.push(tok(TokKind::Num, &src[start..i], line));
            }
            _ => match src.get(i..) {
                Some(rest) => {
                    if let Some(op) = OPS.iter().find(|op| rest.starts_with(**op)) {
                        toks.push(tok(TokKind::Punct, op, line));
                        i += op.len();
                    } else {
                        // Consume one whole char so multibyte input (only
                        // legal inside comments and strings, but the lexer
                        // must stay total on arbitrary bytes) never slices
                        // off a char boundary.
                        let ch_len = rest.chars().next().map_or(1, char::len_utf8);
                        toks.push(tok(TokKind::Punct, rest.get(..ch_len).unwrap_or("?"), line));
                        i += ch_len;
                    }
                }
                // Mid-char index (unreachable once every branch advances
                // by whole chars) — resynchronize bytewise.
                None => i += 1,
            },
        }
    }
    mark_test_regions(&mut toks);
    Lexed { toks, allows }
}

fn tok(kind: TokKind, text: &str, line: u32) -> Tok {
    Tok {
        kind,
        text: text.to_string(),
        line,
        in_test: false,
    }
}

fn is_ident_start(c: Option<u8>) -> bool {
    matches!(c, Some(c) if c == b'_' || c.is_ascii_alphabetic())
}

fn is_ident_continue(c: u8) -> bool {
    c == b'_' || c.is_ascii_alphanumeric()
}

/// Length and newline count of a `"…"` string starting at `b[0] == '"'`.
fn scan_string(b: &[u8]) -> (usize, u32) {
    let mut i = 1;
    let mut newlines = 0;
    while i < b.len() {
        match b[i] {
            b'\\' => i += 2,
            b'"' => return (i + 1, newlines),
            b'\n' => {
                newlines += 1;
                i += 1;
            }
            _ => i += 1,
        }
    }
    (b.len(), newlines)
}

/// Does the input start a raw string (`r"`/`r#`), byte string (`b"`), or
/// raw byte string (`br`)?
fn starts_raw_or_byte_string(b: &[u8]) -> bool {
    match b.first() {
        Some(b'b') => {
            matches!(b.get(1), Some(b'"')) || (b.get(1) == Some(&b'r') && raw_at(&b[2..]))
        }
        Some(b'r') => raw_at(&b[1..]),
        _ => false,
    }
}

fn raw_at(b: &[u8]) -> bool {
    let mut i = 0;
    while b.get(i) == Some(&b'#') {
        i += 1;
    }
    b.get(i) == Some(&b'"')
}

/// Length and newline count of a raw / byte / raw-byte string.
fn scan_raw_or_byte(b: &[u8]) -> (usize, u32) {
    let mut i = 0;
    let mut raw = false;
    if b.get(i) == Some(&b'b') {
        i += 1;
    }
    if b.get(i) == Some(&b'r') {
        raw = true;
        i += 1;
    }
    let mut hashes = 0usize;
    while b.get(i) == Some(&b'#') {
        hashes += 1;
        i += 1;
    }
    debug_assert_eq!(b.get(i), Some(&b'"'));
    i += 1;
    let mut newlines = 0;
    while i < b.len() {
        match b[i] {
            b'\\' if !raw => i += 2,
            b'\n' => {
                newlines += 1;
                i += 1;
            }
            b'"' => {
                if !raw
                    || b[i + 1..]
                        .iter()
                        .take(hashes)
                        .filter(|&&c| c == b'#')
                        .count()
                        == hashes
                {
                    return (i + 1 + if raw { hashes } else { 0 }, newlines);
                }
                i += 1;
            }
            _ => i += 1,
        }
    }
    (b.len(), newlines)
}

/// Disambiguates `'a'` (char literal) from `'a` (lifetime) at `b[0] == '\''`.
fn scan_quote(b: &[u8]) -> (usize, TokKind, u32) {
    if b.get(1) == Some(&b'\\') {
        // Escaped char literal: '\n', '\'', '\u{..}', … — skip the byte
        // after the backslash so '\'' closes at its own quote, not the
        // escaped one.
        let mut i = 3;
        let mut newlines = 0;
        while i < b.len() && b[i] != b'\'' {
            if b[i] == b'\n' {
                newlines += 1;
            }
            i += 1;
        }
        return (i + 1, TokKind::Lit, newlines);
    }
    if is_ident_start(b.get(1).copied()) {
        // 'x' is a char literal; 'x followed by non-quote is a lifetime.
        let mut j = 2;
        while j < b.len() && is_ident_continue(b[j]) {
            j += 1;
        }
        if b.get(j) == Some(&b'\'') {
            return (j + 1, TokKind::Lit, 0);
        }
        return (j, TokKind::Lifetime, 0);
    }
    // Something like '0' or a stray quote.
    let mut i = 1;
    while i < b.len() && b[i] != b'\'' && b[i] != b'\n' {
        i += 1;
    }
    if b.get(i) == Some(&b'\'') {
        (i + 1, TokKind::Lit, 0)
    } else {
        (1, TokKind::Punct, 0)
    }
}

/// Parses `// lint:allow(L1, L4): reason` from a line comment.
fn parse_allow(comment: &str, line: u32) -> Option<Allow> {
    let idx = comment.find("lint:allow(")?;
    let rest = &comment[idx + "lint:allow(".len()..];
    let close = rest.find(')')?;
    let rules: Vec<String> = rest[..close]
        .split(',')
        .map(|r| r.trim().to_string())
        .filter(|r| !r.is_empty())
        .collect();
    let after = rest[close + 1..].trim_start();
    let has_reason = after
        .strip_prefix(':')
        .is_some_and(|r| !r.trim().is_empty());
    Some(Allow {
        line,
        end_line: line,
        rules,
        has_reason,
    })
}

/// Marks tokens inside `#[test]` / `#[cfg(test)]` items as test code.
///
/// On seeing such an attribute, the following item is consumed: any
/// further attributes, then either a `;`-terminated item or a braced body
/// tracked to its matching `}`.
fn mark_test_regions(toks: &mut [Tok]) {
    let mut i = 0;
    while i < toks.len() {
        if toks[i].text == "#" && toks.get(i + 1).is_some_and(|t| t.text == "[") {
            let (attr_end, is_test) = scan_attr(toks, i + 1);
            if is_test {
                let mut j = attr_end;
                // Skip any further attributes on the same item.
                while j < toks.len()
                    && toks[j].text == "#"
                    && toks.get(j + 1).is_some_and(|t| t.text == "[")
                {
                    let (e, _) = scan_attr(toks, j + 1);
                    j = e;
                }
                let item_end = scan_item(toks, j);
                for t in toks.iter_mut().take(item_end).skip(i) {
                    t.in_test = true;
                }
                i = item_end;
                continue;
            }
            i = attr_end;
            continue;
        }
        i += 1;
    }
}

/// Scans an attribute starting at the `[` index; returns (index past `]`,
/// whether it is a test attribute).
fn scan_attr(toks: &[Tok], open: usize) -> (usize, bool) {
    let mut depth = 0i32;
    let mut text = String::new();
    let mut j = open;
    while j < toks.len() {
        match toks[j].text.as_str() {
            "[" => depth += 1,
            "]" => {
                depth -= 1;
                if depth == 0 {
                    let is_test = text == "[test" || text.contains("cfg(test");
                    return (j + 1, is_test);
                }
            }
            _ => {}
        }
        text.push_str(&toks[j].text);
        j += 1;
    }
    (toks.len(), false)
}

/// Scans one item starting at `start`; returns the index one past its end
/// (past the `;` of a bodiless item or past the matching `}` of its body).
fn scan_item(toks: &[Tok], start: usize) -> usize {
    let mut depth = 0i32;
    let mut j = start;
    while j < toks.len() {
        match toks[j].text.as_str() {
            ";" if depth == 0 => return j + 1,
            "{" => depth += 1,
            "}" => {
                depth -= 1;
                if depth == 0 {
                    return j + 1;
                }
            }
            _ => {}
        }
        j += 1;
    }
    toks.len()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn texts(src: &str) -> Vec<String> {
        lex(src).toks.into_iter().map(|t| t.text).collect()
    }

    #[test]
    fn merges_multichar_ops() {
        assert_eq!(texts("a != b"), ["a", "!=", "b"]);
        assert_eq!(texts("x..=y"), ["x", "..=", "y"]);
        assert_eq!(texts("m::n"), ["m", "::", "n"]);
    }

    #[test]
    fn skips_comments_and_strings() {
        let l = lex("let s = \"a[0].unwrap()\"; // b.unwrap()\n/* c[1] */ x");
        let t: Vec<_> = l.toks.iter().map(|t| t.text.as_str()).collect();
        assert_eq!(t, ["let", "s", "=", "\"..\"", ";", "x"]);
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let l = lex("fn f<'a>(x: &'a u8) { let c = 'z'; }");
        assert!(l.toks.iter().any(|t| t.kind == TokKind::Lifetime));
        assert!(l
            .toks
            .iter()
            .any(|t| t.kind == TokKind::Lit && t.text == "'"));
    }

    #[test]
    fn raw_strings_and_byte_strings() {
        assert_eq!(
            texts(r##"let x = r#"v[0]"# ;"##),
            ["let", "x", "=", "\"..\"", ";"]
        );
        assert_eq!(texts("let y = b\"ab\" ;"), ["let", "y", "=", "\"..\"", ";"]);
    }

    #[test]
    fn raw_strings_with_hashes_quotes_and_braces() {
        assert_eq!(
            texts(r###"let x = r##"has "quote"# and { unbalanced ] "## ;"###),
            ["let", "x", "=", "\"..\"", ";"]
        );
        // Multi-line raw string advances the line counter.
        let l = lex("let x = r\"a\nb\" ; y");
        assert_eq!(l.toks.last().map(|t| t.line), Some(2));
    }

    #[test]
    fn raw_identifiers_strip_prefix() {
        assert_eq!(
            texts("let r#match = r#fn + 1;"),
            ["let", "match", "=", "fn", "+", "1", ";"]
        );
    }

    #[test]
    fn nested_block_comments_to_arbitrary_depth() {
        assert_eq!(
            texts("a /* one /* two /* three */ */ still */ b"),
            ["a", "b"]
        );
        // Unterminated nesting swallows the rest without panicking.
        assert_eq!(texts("a /* /* */ x"), ["a"]);
    }

    #[test]
    fn multiline_allow_extends_end_line() {
        let l = lex("// lint:allow(L7): reason wraps\n// onto a second line\nfoo();");
        assert_eq!(l.allows.len(), 1);
        assert_eq!((l.allows[0].line, l.allows[0].end_line), (1, 2));
        // Code between comment lines breaks the run.
        let l = lex("// lint:allow(L7): reason\nbar();\n// unrelated\nfoo();");
        assert_eq!((l.allows[0].line, l.allows[0].end_line), (1, 1));
    }

    #[test]
    fn escaped_char_literals_vs_loop_labels() {
        let l = lex("let a = '\\n'; let b = '\\''; 'outer: loop { break 'outer; }");
        let lifetimes = l
            .toks
            .iter()
            .filter(|t| t.kind == TokKind::Lifetime)
            .count();
        assert_eq!(lifetimes, 2, "{:?}", l.toks);
        let chars = l.toks.iter().filter(|t| t.kind == TokKind::Lit).count();
        assert_eq!(chars, 2, "{:?}", l.toks);
    }

    #[test]
    fn marks_cfg_test_modules() {
        let src = "fn live() { v[0]; }\n#[cfg(test)]\nmod tests { fn t() { v[1]; } }";
        let l = lex(src);
        let idx: Vec<_> = l
            .toks
            .iter()
            .filter(|t| t.text == "[" || t.text == "]")
            .collect();
        // The live index brackets are not test code; the module's are.
        assert!(!idx.first().unwrap().in_test);
        assert!(idx.last().unwrap().in_test);
        assert!(l.toks.iter().any(|t| t.text == "tests" && t.in_test));
        assert!(l.toks.iter().any(|t| t.text == "live" && !t.in_test));
    }

    #[test]
    fn cfg_not_test_is_live() {
        let l = lex("#[cfg(not(test))]\nfn live() { v[0]; }");
        assert!(l.toks.iter().all(|t| !t.in_test));
    }

    #[test]
    fn test_attr_fn_marked() {
        let l = lex("#[test]\nfn t() { x.unwrap(); }\nfn live() {}");
        assert!(l.toks.iter().any(|t| t.text == "unwrap" && t.in_test));
        assert!(l.toks.iter().any(|t| t.text == "live" && !t.in_test));
    }

    #[test]
    fn parses_allow_comments() {
        let l = lex("x; // lint:allow(L1): index is bounds-checked above\ny;");
        assert_eq!(l.allows.len(), 1);
        assert_eq!(l.allows[0].rules, ["L1"]);
        assert!(l.allows[0].has_reason);
        assert_eq!(l.allows[0].line, 1);
    }

    #[test]
    fn allow_without_reason_flagged() {
        let l = lex("// lint:allow(L2)\nx;");
        assert_eq!(l.allows.len(), 1);
        assert!(!l.allows[0].has_reason);
    }

    #[test]
    fn raw_idents_stripped() {
        assert_eq!(texts("r#type"), ["type"]);
    }

    #[test]
    fn tracks_lines() {
        let l = lex("a\nb\n  c");
        let lines: Vec<_> = l.toks.iter().map(|t| t.line).collect();
        assert_eq!(lines, [1, 2, 3]);
    }
}
