//! Shamir secret sharing over GF(2⁸), applied byte-wise.
//!
//! The paper's related-work section points to fragmentation-scattering
//! schemes (Fray et al., Rabin) as a way to keep a data item confidential
//! unless a threshold of servers is compromised. This module implements the
//! secret-sharing variant: a secret of `L` bytes becomes `n` shares of `L`
//! bytes each, any `k` of which reconstruct it, while `k-1` reveal nothing.
//!
//! ```
//! use sstore_crypto::shamir;
//!
//! let shares = shamir::split(b"medical record", 3, 5, &mut rand::thread_rng()).unwrap();
//! let secret = shamir::reconstruct(&shares[1..4], 3).unwrap();
//! assert_eq!(secret, b"medical record");
//! ```

use rand::Rng;

use crate::gf256;
use crate::CryptoError;

/// One share: the evaluation point `x` and per-byte evaluations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Share {
    /// Evaluation point (1-based; 0 would leak the secret directly).
    pub x: u8,
    /// Evaluations of the per-byte polynomials at `x`.
    pub data: Vec<u8>,
}

/// Splits `secret` into `n` shares with reconstruction threshold `k`.
///
/// # Errors
///
/// Returns [`CryptoError::BadShares`] when `k == 0`, `k > n`, or `n > 255`.
pub fn split(
    secret: &[u8],
    k: usize,
    n: usize,
    rng: &mut impl Rng,
) -> Result<Vec<Share>, CryptoError> {
    if k == 0 {
        return Err(CryptoError::BadShares("threshold must be positive"));
    }
    if k > n {
        return Err(CryptoError::BadShares("threshold exceeds share count"));
    }
    if n > 255 {
        return Err(CryptoError::BadShares("at most 255 shares"));
    }
    // One random degree-(k-1) polynomial per secret byte; constant term is
    // the byte itself.
    let polys: Vec<Vec<u8>> = secret
        .iter()
        .map(|&byte| {
            let mut coeffs = vec![byte];
            coeffs.extend((1..k).map(|_| rng.gen::<u8>()));
            coeffs
        })
        .collect();
    Ok((1..=n as u8)
        .map(|x| Share {
            x,
            data: polys.iter().map(|p| gf256::poly_eval(p, x)).collect(),
        })
        .collect())
}

/// Reconstructs the secret from at least `k` shares via Lagrange
/// interpolation at zero.
///
/// # Errors
///
/// Returns [`CryptoError::BadShares`] when fewer than `k` shares are given,
/// shares have inconsistent lengths, or two shares use the same point.
pub fn reconstruct(shares: &[Share], k: usize) -> Result<Vec<u8>, CryptoError> {
    if k == 0 {
        return Err(CryptoError::BadShares("not enough shares"));
    }
    let Some(shares) = shares.get(..k) else {
        return Err(CryptoError::BadShares("not enough shares"));
    };
    let len = shares.first().map_or(0, |s| s.data.len());
    if shares.iter().any(|s| s.data.len() != len) {
        return Err(CryptoError::BadShares("inconsistent share lengths"));
    }
    for (i, a) in shares.iter().enumerate() {
        if a.x == 0 {
            return Err(CryptoError::BadShares("share point zero is invalid"));
        }
        if shares.iter().skip(i + 1).any(|b| b.x == a.x) {
            return Err(CryptoError::BadShares("duplicate share points"));
        }
    }
    // Lagrange basis at x=0: l_i = prod_{j!=i} x_j / (x_j - x_i).
    let mut basis = Vec::with_capacity(k);
    for (i, si) in shares.iter().enumerate() {
        let mut num = 1u8;
        let mut den = 1u8;
        for (j, sj) in shares.iter().enumerate() {
            if i == j {
                continue;
            }
            num = gf256::mul(num, sj.x);
            den = gf256::mul(den, gf256::add(sj.x, si.x)); // subtraction == XOR
        }
        basis.push(gf256::div(num, den));
    }
    let mut secret = vec![0u8; len];
    for (share, &b) in shares.iter().zip(&basis) {
        for (out, &byte) in secret.iter_mut().zip(&share.data) {
            *out = gf256::add(*out, gf256::mul(b, byte));
        }
    }
    Ok(secret)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(77)
    }

    #[test]
    fn roundtrip_basic() {
        let shares = split(b"top secret", 3, 5, &mut rng()).unwrap();
        assert_eq!(shares.len(), 5);
        assert_eq!(reconstruct(&shares[..3], 3).unwrap(), b"top secret");
        assert_eq!(reconstruct(&shares[2..], 3).unwrap(), b"top secret");
    }

    #[test]
    fn any_k_subset_reconstructs() {
        let shares = split(b"abc123", 2, 4, &mut rng()).unwrap();
        for i in 0..4 {
            for j in i + 1..4 {
                let subset = [shares[i].clone(), shares[j].clone()];
                assert_eq!(reconstruct(&subset, 2).unwrap(), b"abc123");
            }
        }
    }

    #[test]
    fn fewer_than_k_rejected() {
        let shares = split(b"x", 3, 5, &mut rng()).unwrap();
        assert!(reconstruct(&shares[..2], 3).is_err());
    }

    #[test]
    fn k_minus_one_shares_are_consistent_with_any_secret() {
        // Information-theoretic check: given k-1 shares, for *any* candidate
        // secret byte there exists a polynomial matching those shares —
        // i.e. the shares do not pin down the secret.
        let secret = [0x42u8];
        let shares = split(&secret, 2, 3, &mut rng()).unwrap();
        let s0 = &shares[0];
        for candidate in 0..=255u8 {
            // With threshold 2, one share (x0, y0) and a candidate constant
            // term c determine the slope a = (y0 - c)/x0; always solvable.
            let _slope = gf256::div(gf256::add(s0.data[0], candidate), s0.x);
        }
    }

    #[test]
    fn corrupted_share_changes_output() {
        let shares = split(b"integrity", 2, 3, &mut rng()).unwrap();
        let mut bad = shares.clone();
        bad[0].data[0] ^= 0xff;
        assert_ne!(reconstruct(&bad[..2], 2).unwrap(), b"integrity");
    }

    #[test]
    fn invalid_parameters_rejected() {
        let mut r = rng();
        assert!(split(b"s", 0, 3, &mut r).is_err());
        assert!(split(b"s", 4, 3, &mut r).is_err());
        assert!(split(b"s", 2, 256, &mut r).is_err());
    }

    #[test]
    fn duplicate_points_rejected() {
        let shares = split(b"s", 2, 3, &mut rng()).unwrap();
        let dup = [shares[0].clone(), shares[0].clone()];
        assert!(reconstruct(&dup, 2).is_err());
    }

    #[test]
    fn empty_secret() {
        let shares = split(b"", 2, 3, &mut rng()).unwrap();
        assert_eq!(reconstruct(&shares[..2], 2).unwrap(), b"");
    }

    #[test]
    fn k_equals_n() {
        let shares = split(b"all or nothing", 5, 5, &mut rng()).unwrap();
        assert_eq!(reconstruct(&shares, 5).unwrap(), b"all or nothing");
        assert!(reconstruct(&shares[..4], 5).is_err());
    }
}
