//! SHA-256 (FIPS 180-4), implemented from scratch.
//!
//! Used throughout the secure store for value digests `d(v)`, for the hash
//! step of Schnorr signatures, and inside [`crate::hmac`].
//!
//! ```
//! use sstore_crypto::sha256::digest;
//!
//! let d = digest(b"abc");
//! assert_eq!(
//!     d.to_hex(),
//!     "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
//! );
//! ```

/// Size of a SHA-256 digest in bytes.
pub const DIGEST_LEN: usize = 32;

/// Size of a SHA-256 message block in bytes.
pub const BLOCK_LEN: usize = 64;

const K: [u32; 64] = [
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4, 0xab1c5ed5,
    0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174,
    0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967,
    0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
    0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
];

const H0: [u32; 8] = [
    0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a, 0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19,
];

/// A 32-byte SHA-256 digest.
///
/// Digests order lexicographically (useful for multi-writer timestamp
/// tie-breaking) and print as lowercase hex.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Digest(pub [u8; DIGEST_LEN]);

impl Digest {
    /// Returns the digest as lowercase hexadecimal.
    pub fn to_hex(&self) -> String {
        let mut s = String::with_capacity(DIGEST_LEN * 2);
        for b in &self.0 {
            s.push_str(&format!("{b:02x}"));
        }
        s
    }

    /// Returns the raw digest bytes.
    pub fn as_bytes(&self) -> &[u8; DIGEST_LEN] {
        &self.0
    }

    /// Interprets the first eight bytes as a big-endian `u64`.
    ///
    /// Handy for hash-based sampling and for deriving per-item gossip
    /// jitter; not a substitute for the full digest in security contexts.
    pub fn prefix_u64(&self) -> u64 {
        let mut prefix = [0u8; 8];
        for (dst, src) in prefix.iter_mut().zip(self.0.iter()) {
            *dst = *src;
        }
        u64::from_be_bytes(prefix)
    }
}

impl std::fmt::Debug for Digest {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("Digest(")?;
        for b in self.0.iter().take(6) {
            write!(f, "{b:02x}")?;
        }
        f.write_str("..)")
    }
}

impl std::fmt::Display for Digest {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.to_hex())
    }
}

impl AsRef<[u8]> for Digest {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl From<[u8; DIGEST_LEN]> for Digest {
    fn from(bytes: [u8; DIGEST_LEN]) -> Self {
        Digest(bytes)
    }
}

/// Incremental SHA-256 hasher.
///
/// ```
/// use sstore_crypto::sha256::{Sha256, digest};
///
/// let mut h = Sha256::new();
/// h.update(b"ab");
/// h.update(b"c");
/// assert_eq!(h.finalize(), digest(b"abc"));
/// ```
#[derive(Clone)]
pub struct Sha256 {
    state: [u32; 8],
    buf: [u8; BLOCK_LEN],
    buf_len: usize,
    total_len: u64,
}

impl Default for Sha256 {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for Sha256 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Sha256")
            .field("total_len", &self.total_len)
            .finish_non_exhaustive()
    }
}

impl Sha256 {
    /// Creates a hasher in the initial state.
    pub fn new() -> Self {
        Sha256 {
            state: H0,
            buf: [0u8; BLOCK_LEN],
            buf_len: 0,
            total_len: 0,
        }
    }

    /// Absorbs `data` into the hash state.
    pub fn update(&mut self, data: impl AsRef<[u8]>) -> &mut Self {
        let mut data = data.as_ref();
        self.total_len = self.total_len.wrapping_add(data.len() as u64);
        if self.buf_len > 0 {
            let take = (BLOCK_LEN - self.buf_len).min(data.len());
            let (head, rest) = data.split_at(take);
            for (dst, src) in self.buf.iter_mut().skip(self.buf_len).zip(head) {
                *dst = *src;
            }
            self.buf_len += take;
            data = rest;
            if self.buf_len == BLOCK_LEN {
                let block = self.buf;
                self.compress(&block);
                self.buf_len = 0;
            }
        }
        let mut blocks = data.chunks_exact(BLOCK_LEN);
        for block in blocks.by_ref() {
            let mut arr = [0u8; BLOCK_LEN];
            for (dst, src) in arr.iter_mut().zip(block) {
                *dst = *src;
            }
            self.compress(&arr);
        }
        let tail = blocks.remainder();
        if !tail.is_empty() {
            for (dst, src) in self.buf.iter_mut().zip(tail) {
                *dst = *src;
            }
            self.buf_len = tail.len();
        }
        self
    }

    /// Completes the hash and returns the digest, consuming the hasher state.
    pub fn finalize(mut self) -> Digest {
        let bit_len = self.total_len.wrapping_mul(8);
        // Padding: 0x80, zeros, 64-bit big-endian length.
        self.raw_update(&[0x80]);
        while self.buf_len != 56 {
            self.raw_update(&[0]);
        }
        self.raw_update(&bit_len.to_be_bytes());
        debug_assert_eq!(self.buf_len, 0);
        let mut out = [0u8; DIGEST_LEN];
        for (chunk, word) in out.chunks_exact_mut(4).zip(self.state.iter()) {
            chunk.copy_from_slice(&word.to_be_bytes());
        }
        Digest(out)
    }

    /// `update` without advancing `total_len` — used only for padding.
    fn raw_update(&mut self, data: &[u8]) {
        for &byte in data {
            if let Some(slot) = self.buf.get_mut(self.buf_len) {
                *slot = byte;
            }
            self.buf_len += 1;
            if self.buf_len == BLOCK_LEN {
                let block = self.buf;
                self.compress(&block);
                self.buf_len = 0;
            }
        }
    }

    fn compress(&mut self, block: &[u8; BLOCK_LEN]) {
        let mut w = [0u32; 64];
        for (word, chunk) in w.iter_mut().zip(block.chunks_exact(4)) {
            let mut be = [0u8; 4];
            for (dst, src) in be.iter_mut().zip(chunk) {
                *dst = *src;
            }
            *word = u32::from_be_bytes(be);
        }
        for i in 16..64 {
            let next = {
                let at = |back: usize| w.get(i - back).copied().unwrap_or(0);
                let s0 = at(15).rotate_right(7) ^ at(15).rotate_right(18) ^ (at(15) >> 3);
                let s1 = at(2).rotate_right(17) ^ at(2).rotate_right(19) ^ (at(2) >> 10);
                at(16).wrapping_add(s0).wrapping_add(at(7)).wrapping_add(s1)
            };
            if let Some(slot) = w.get_mut(i) {
                *slot = next;
            }
        }
        let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut h] = self.state;
        for (&ki, &wi) in K.iter().zip(w.iter()) {
            let s1 = e.rotate_right(6) ^ e.rotate_right(11) ^ e.rotate_right(25);
            let ch = (e & f) ^ (!e & g);
            let t1 = h
                .wrapping_add(s1)
                .wrapping_add(ch)
                .wrapping_add(ki)
                .wrapping_add(wi);
            let s0 = a.rotate_right(2) ^ a.rotate_right(13) ^ a.rotate_right(22);
            let maj = (a & b) ^ (a & c) ^ (b & c);
            let t2 = s0.wrapping_add(maj);
            h = g;
            g = f;
            f = e;
            e = d.wrapping_add(t1);
            d = c;
            c = b;
            b = a;
            a = t1.wrapping_add(t2);
        }
        for (s, v) in self.state.iter_mut().zip([a, b, c, d, e, f, g, h]) {
            *s = s.wrapping_add(v);
        }
    }
}

/// One-shot SHA-256 of `data`.
pub fn digest(data: impl AsRef<[u8]>) -> Digest {
    let mut h = Sha256::new();
    h.update(data);
    h.finalize()
}

/// Digests a sequence of length-prefixed parts.
///
/// Length prefixing makes the encoding injective: `(["ab","c"])` and
/// `(["a","bc"])` produce different digests. All multi-field protocol
/// signatures in the secure store go through this helper.
pub fn digest_parts<I, P>(parts: I) -> Digest
where
    I: IntoIterator<Item = P>,
    P: AsRef<[u8]>,
{
    let mut h = Sha256::new();
    for p in parts {
        let p = p.as_ref();
        h.update((p.len() as u64).to_be_bytes());
        h.update(p);
    }
    h.finalize()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(s: &str) -> String {
        digest(s.as_bytes()).to_hex()
    }

    #[test]
    fn nist_vector_empty() {
        assert_eq!(
            hex(""),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        );
    }

    #[test]
    fn nist_vector_abc() {
        assert_eq!(
            hex("abc"),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        );
    }

    #[test]
    fn nist_vector_448_bits() {
        assert_eq!(
            hex("abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
        );
    }

    #[test]
    fn million_a() {
        let mut h = Sha256::new();
        let chunk = [b'a'; 1000];
        for _ in 0..1000 {
            h.update(chunk);
        }
        assert_eq!(
            h.finalize().to_hex(),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
        );
    }

    #[test]
    fn incremental_matches_oneshot() {
        let data: Vec<u8> = (0..=255u8).cycle().take(7777).collect();
        for split in [0usize, 1, 55, 56, 63, 64, 65, 1000, 7777] {
            let mut h = Sha256::new();
            h.update(&data[..split]);
            h.update(&data[split..]);
            assert_eq!(h.finalize(), digest(&data), "split at {split}");
        }
    }

    #[test]
    fn digest_parts_is_injective_on_boundaries() {
        let a = digest_parts([b"ab".as_slice(), b"c".as_slice()]);
        let b = digest_parts([b"a".as_slice(), b"bc".as_slice()]);
        assert_ne!(a, b);
    }

    #[test]
    fn digest_ordering_and_display() {
        let a = digest(b"a");
        let b = digest(b"b");
        assert_ne!(a.cmp(&b), std::cmp::Ordering::Equal);
        assert_eq!(a.to_hex().len(), 64);
        assert_eq!(format!("{a}"), a.to_hex());
    }

    #[test]
    fn prefix_u64_matches_leading_bytes() {
        let d = digest(b"prefix");
        let expect = u64::from_be_bytes(d.0[..8].try_into().unwrap());
        assert_eq!(d.prefix_u64(), expect);
    }
}
