//! Cryptographic substrate for the secure store, implemented from scratch.
//!
//! The DSN 2001 secure-store paper *assumes* "the availability of necessary
//! authentication and cryptographic mechanisms" (§4). This crate provides
//! those mechanisms so the rest of the reproduction has no external
//! cryptographic dependencies:
//!
//! - [`sha256`]: the SHA-256 digest (FIPS 180-4), used for value digests
//!   `d(v)` and as the hash inside signatures.
//! - [`hmac`]: HMAC-SHA-256, used for PBFT-lite message authenticators and
//!   for deterministic nonce derivation.
//! - [`bigint`]: fixed-purpose arbitrary-precision unsigned integers with
//!   Montgomery-form modular arithmetic ([`bigint::MontgomeryCtx`]),
//!   fixed-window and fixed-base exponentiation
//!   ([`bigint::FixedBaseTable`]), Strauss–Shamir double exponentiation and
//!   Miller–Rabin primality testing.
//! - [`schnorr`]: Schnorr signatures over a Schnorr group (prime-order
//!   subgroup of `Z_p*`), with DSA-style parameter generation. Signing is
//!   deterministic (nonce derived via HMAC) so protocol runs are replayable.
//! - [`gf256`], [`shamir`], [`ida`]: GF(2⁸) arithmetic, Shamir secret
//!   sharing and Rabin information dispersal — the fragmentation-scattering
//!   confidentiality extension the paper cites as related/future work.
//! - [`cipher`]: a hash-CTR stream cipher with encrypt-then-MAC sealing for
//!   the client-side encryption of non-shared data (§5.2).
//! - [`ct`]: constant-time byte comparison; every digest/MAC check on a
//!   verification path goes through [`ct::ct_eq`] (workspace lint rule L4).
//!
//! # Security note
//!
//! This is a research reproduction. Parameter sizes are configurable and the
//! test/bench presets use deliberately small discrete-log groups so that
//! simulations stay fast; see [`schnorr::SchnorrParams`]. Nothing here has
//! been audited — do not reuse outside the reproduction.
//!
//! # Example
//!
//! ```
//! use sstore_crypto::schnorr::{SchnorrParams, SigningKey};
//!
//! let params = SchnorrParams::toy();
//! let key = SigningKey::generate(&params, &mut rand::thread_rng());
//! let sig = key.sign(b"write x1 v2");
//! assert!(key.verifying_key().verify(b"write x1 v2", &sig).is_ok());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bigint;
pub mod cipher;
pub mod ct;
pub mod gf256;
pub mod hmac;
pub mod ida;
pub mod schnorr;
pub mod sha256;
pub mod shamir;

pub use ct::ct_eq;
pub use schnorr::{SchnorrParams, Signature, SigningKey, VerifyingKey};
pub use sha256::{digest, Digest, Sha256};

/// Errors produced by cryptographic operations in this crate.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CryptoError {
    /// A signature failed to verify against the message and public key.
    BadSignature,
    /// An authenticated ciphertext failed its integrity check.
    BadMac,
    /// Inputs to secret sharing / dispersal were structurally invalid
    /// (e.g. threshold of zero, or more required shares than provided).
    BadShares(&'static str),
    /// Parameter generation or validation failed.
    BadParams(&'static str),
}

impl std::fmt::Display for CryptoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CryptoError::BadSignature => write!(f, "signature verification failed"),
            CryptoError::BadMac => write!(f, "message authentication check failed"),
            CryptoError::BadShares(why) => write!(f, "invalid shares: {why}"),
            CryptoError::BadParams(why) => write!(f, "invalid parameters: {why}"),
        }
    }
}

impl std::error::Error for CryptoError {}
