//! Rabin's Information Dispersal Algorithm (IDA) over GF(2⁸).
//!
//! Where Shamir sharing costs `n × |secret|` total storage, IDA stores only
//! `(n/k) × |secret|`: the data is split into `k`-byte columns, each column
//! is multiplied by an `n × k` Vandermonde matrix, and any `k` of the `n`
//! resulting fragments reconstruct the original by solving a linear system.
//! IDA provides erasure tolerance and *computational* (not
//! information-theoretic) confidentiality — matching Rabin [14] as cited by
//! the paper.
//!
//! ```
//! use sstore_crypto::ida;
//!
//! let frags = ida::disperse(b"hello dispersal", 3, 5).unwrap();
//! let data = ida::reconstruct(&[frags[0].clone(), frags[2].clone(), frags[4].clone()], 3).unwrap();
//! assert_eq!(data, b"hello dispersal");
//! ```

use crate::gf256;
use crate::CryptoError;

/// One dispersed fragment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Fragment {
    /// Row index into the dispersal matrix (identifies the fragment).
    pub index: u8,
    /// Original data length in bytes (needed to strip padding).
    pub data_len: u64,
    /// Encoded fragment bytes, `ceil(data_len / k)` of them.
    pub data: Vec<u8>,
}

impl Fragment {
    /// Total encoded size in bytes (for storage-blowup accounting).
    pub fn encoded_len(&self) -> usize {
        self.data.len() + 1 + 8
    }
}

/// Vandermonde row for fragment `index`: `[1, x, x², …, x^(k-1)]` with
/// `x = index + 1` (avoiding the degenerate row at zero).
fn matrix_row(index: u8, k: usize) -> Vec<u8> {
    let x = index.wrapping_add(1);
    (0..k as u32).map(|e| gf256::pow(x, e)).collect()
}

/// Splits `data` into `n` fragments, any `k` of which reconstruct it.
///
/// # Errors
///
/// Returns [`CryptoError::BadShares`] when `k == 0`, `k > n`, or `n > 255`.
pub fn disperse(data: &[u8], k: usize, n: usize) -> Result<Vec<Fragment>, CryptoError> {
    if k == 0 {
        return Err(CryptoError::BadShares("threshold must be positive"));
    }
    if k > n {
        return Err(CryptoError::BadShares("threshold exceeds fragment count"));
    }
    if n > 255 {
        return Err(CryptoError::BadShares("at most 255 fragments"));
    }
    let cols = data.len().div_ceil(k).max(1);
    let mut frags: Vec<Fragment> = (0..n as u8)
        .map(|index| Fragment {
            index,
            data_len: data.len() as u64,
            data: vec![0u8; cols],
        })
        .collect();
    let rows: Vec<Vec<u8>> = (0..n as u8).map(|i| matrix_row(i, k)).collect();
    for col in 0..cols {
        // Column vector of k source bytes (zero-padded at the tail).
        for (frag, row) in frags.iter_mut().zip(&rows) {
            let mut acc = 0u8;
            for (j, &coef) in row.iter().enumerate() {
                let byte = data.get(col * k + j).copied().unwrap_or(0);
                acc = gf256::add(acc, gf256::mul(coef, byte));
            }
            if let Some(slot) = frag.data.get_mut(col) {
                *slot = acc;
            }
        }
    }
    Ok(frags)
}

/// Reconstructs the original data from at least `k` distinct fragments.
///
/// # Errors
///
/// Returns [`CryptoError::BadShares`] when fewer than `k` fragments are
/// supplied, fragments disagree on shape, or indices repeat.
pub fn reconstruct(frags: &[Fragment], k: usize) -> Result<Vec<u8>, CryptoError> {
    if k == 0 {
        return Err(CryptoError::BadShares("not enough fragments"));
    }
    let Some(frags) = frags.get(..k) else {
        return Err(CryptoError::BadShares("not enough fragments"));
    };
    let cols = frags.first().map_or(0, |f| f.data.len());
    let data_len = frags.first().map_or(0, |f| f.data_len as usize);
    if frags
        .iter()
        .any(|f| f.data.len() != cols || f.data_len as usize != data_len)
    {
        return Err(CryptoError::BadShares("inconsistent fragment shapes"));
    }
    for (i, a) in frags.iter().enumerate() {
        if frags.iter().skip(i + 1).any(|b| b.index == a.index) {
            return Err(CryptoError::BadShares("duplicate fragment indices"));
        }
    }
    if data_len.div_ceil(k).max(1) != cols {
        return Err(CryptoError::BadShares("fragment size mismatch"));
    }
    // Solve M · X = F where M is the k×k submatrix of chosen rows and F the
    // fragment bytes; X recovers the k source bytes of every column at once.
    let mut m: Vec<Vec<u8>> = frags.iter().map(|f| matrix_row(f.index, k)).collect();
    let mut rhs: Vec<Vec<u8>> = frags.iter().map(|f| f.data.clone()).collect();
    gf256::solve_linear(&mut m, &mut rhs)
        .ok_or(CryptoError::BadShares("singular dispersal matrix"))?;
    let mut out = vec![0u8; cols * k];
    for (j, row) in rhs.iter().enumerate() {
        for (col, &byte) in row.iter().enumerate() {
            if let Some(slot) = out.get_mut(col * k + j) {
                *slot = byte;
            }
        }
    }
    out.truncate(data_len);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_exact_multiple() {
        let data = b"123456789abc"; // 12 bytes, k=3 -> 4 cols
        let frags = disperse(data, 3, 5).unwrap();
        assert!(frags.iter().all(|f| f.data.len() == 4));
        assert_eq!(reconstruct(&frags[..3], 3).unwrap(), data);
    }

    #[test]
    fn roundtrip_with_padding() {
        let data = b"hello world"; // 11 bytes, k=4 -> 3 cols
        let frags = disperse(data, 4, 7).unwrap();
        let picked = vec![
            frags[6].clone(),
            frags[1].clone(),
            frags[4].clone(),
            frags[0].clone(),
        ];
        assert_eq!(reconstruct(&picked, 4).unwrap(), data);
    }

    #[test]
    fn every_k_subset_works() {
        let data = b"dispersal!";
        let frags = disperse(data, 2, 4).unwrap();
        for i in 0..4 {
            for j in i + 1..4 {
                let pair = [frags[i].clone(), frags[j].clone()];
                assert_eq!(reconstruct(&pair, 2).unwrap(), data, "subset {i},{j}");
            }
        }
    }

    #[test]
    fn storage_blowup_is_n_over_k() {
        let data = vec![7u8; 1200];
        let frags = disperse(&data, 3, 7).unwrap();
        let total: usize = frags.iter().map(|f| f.data.len()).sum();
        assert_eq!(total, 7 * 400); // n/k = 7/3 blowup
    }

    #[test]
    fn too_few_fragments_rejected() {
        let frags = disperse(b"abc", 3, 5).unwrap();
        assert!(reconstruct(&frags[..2], 3).is_err());
    }

    #[test]
    fn duplicate_indices_rejected() {
        let frags = disperse(b"abc", 2, 3).unwrap();
        let dup = [frags[0].clone(), frags[0].clone()];
        assert!(reconstruct(&dup, 2).is_err());
    }

    #[test]
    fn corrupt_fragment_corrupts_output() {
        let frags = disperse(b"fragile", 2, 3).unwrap();
        let mut bad = [frags[0].clone(), frags[1].clone()];
        bad[0].data[0] ^= 1;
        assert_ne!(reconstruct(&bad, 2).unwrap(), b"fragile");
    }

    #[test]
    fn empty_input() {
        let frags = disperse(b"", 2, 3).unwrap();
        assert_eq!(reconstruct(&frags[..2], 2).unwrap(), b"");
    }

    #[test]
    fn k_equals_one_replicates() {
        let frags = disperse(b"rep", 1, 3).unwrap();
        for f in &frags {
            assert_eq!(reconstruct(std::slice::from_ref(f), 1).unwrap(), b"rep");
        }
    }

    #[test]
    fn invalid_parameters_rejected() {
        assert!(disperse(b"x", 0, 2).is_err());
        assert!(disperse(b"x", 3, 2).is_err());
    }

    #[test]
    fn mismatched_shapes_rejected() {
        let a = disperse(b"aaaa", 2, 3).unwrap();
        let b = disperse(b"bbbbbbbb", 2, 3).unwrap();
        let mixed = [a[0].clone(), b[1].clone()];
        assert!(reconstruct(&mixed, 2).is_err());
    }
}
