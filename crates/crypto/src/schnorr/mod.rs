//! Schnorr signatures over a prime-order subgroup of `Z_p*`.
//!
//! The secure store requires that every write (and every stored *context*)
//! carry a client signature that servers and other clients can verify with
//! the writer's well-known public key (paper §4). This module provides that
//! primitive from scratch:
//!
//! - DSA-style parameter generation: a prime `q`, a prime `p = 2·q·m' + 1`
//!   with `m'` prime, and a generator `g` of the order-`q` subgroup. The
//!   prime cofactor half is what makes the group *batch-verification safe*
//!   (see [`batch`]): the only proper subgroups of `Z_p*` have order 1, 2,
//!   `q`, `m'` or products of those, so a quadratic-residue check plus the
//!   random-linear-combination argument leaves no room for small-subgroup
//!   forgeries.
//! - Key generation: secret `x ∈ [1, q)`, public `y = g^x mod p`.
//! - Deterministic signing (the nonce is derived with HMAC from the secret
//!   key and message, in the spirit of RFC 6979) so that simulation runs are
//!   exactly reproducible.
//!
//! Signatures are the `(r, s)` form: the commitment `r = g^k` travels in
//! the signature and verification recomputes the Fiat–Shamir challenge
//! `e = H(r ‖ m)` and checks `g^s · y^{q-e} = r`. Carrying `r` (rather
//! than `e`) is what enables [`batch::verify_batch`]: a random linear
//! combination of many such equations shares one multi-exponentiation.
//!
//! # Parameter sizes
//!
//! [`SchnorrParams::toy`] (256-bit `p`, 160-bit `q`) keeps tests and
//! simulations fast; [`SchnorrParams::generate`] accepts arbitrary sizes.
//! The protocol cost *counts* measured by the benchmark harness are
//! independent of the group size; wall-clock crypto costs are reported
//! per-group-size in EXPERIMENTS.md.

pub mod batch;

pub use batch::{verify_batch, BatchEntry};

use std::sync::Arc;
use std::sync::OnceLock;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::bigint::{BigUint, FixedBaseTable, MontgomeryCtx};
use crate::ct::ct_eq;
use crate::hmac::HmacSha256;
use crate::sha256::Sha256;
use crate::CryptoError;

/// Per-group acceleration state, built lazily on first use and shared by
/// every key over the same parameters: the Montgomery context for `p` and
/// the fixed-base window table for the generator `g`.
#[derive(Debug, Clone)]
struct ParamsAccel {
    ctx: Arc<MontgomeryCtx>,
    g_table: Arc<FixedBaseTable>,
}

/// Group parameters `(p, q, g)` for Schnorr signatures.
#[derive(Clone)]
pub struct SchnorrParams {
    p: BigUint,
    q: BigUint,
    g: BigUint,
    accel: OnceLock<ParamsAccel>,
    /// Whether the cofactor has the `2·m'` (prime `m'`) shape that batch
    /// verification relies on; checked once, lazily.
    batch_safe: OnceLock<bool>,
}

impl std::fmt::Debug for SchnorrParams {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SchnorrParams")
            .field("p", &self.p)
            .field("q", &self.q)
            .field("g", &self.g)
            .finish()
    }
}

// Equality is over the mathematical group only; the lazily-built
// acceleration tables are derived state.
impl PartialEq for SchnorrParams {
    fn eq(&self, other: &Self) -> bool {
        self.p == other.p && self.q == other.q && self.g == other.g
    }
}

impl Eq for SchnorrParams {}

impl SchnorrParams {
    /// Generates fresh parameters with a `p_bits`-bit modulus and
    /// `q_bits`-bit subgroup order.
    ///
    /// # Panics
    ///
    /// Panics if `q_bits < 32` or `p_bits < q_bits + 16`; such sizes leave
    /// no room for the cofactor search.
    pub fn generate(p_bits: usize, q_bits: usize, rng: &mut impl Rng) -> Self {
        assert!(q_bits >= 32, "subgroup order too small");
        assert!(p_bits >= q_bits + 16, "modulus too small for cofactor");
        // Find prime q.
        let q = loop {
            let mut cand = BigUint::random_bits(q_bits, rng);
            if cand.is_even() {
                cand = cand.add(&BigUint::one());
            }
            if cand.is_probable_prime(24, rng) {
                break cand;
            }
        };
        // Find p = 2·q·m' + 1 prime with m' itself prime. The factor 2
        // keeps p odd (q and m' are both odd); the *prime* m' restricts
        // the subgroup lattice of Z_p* to {1, 2, q, m'} and products,
        // which is the structural property batch verification needs —
        // see `is_batch_safe`.
        let one = BigUint::one();
        let p = loop {
            let mut m_half = BigUint::random_bits(p_bits - q_bits - 1, rng);
            if m_half.is_even() {
                m_half = m_half.add(&one);
            }
            if !m_half.is_probable_prime(24, rng) {
                continue;
            }
            let cand = q.mul(&m_half).shl(1).add(&one);
            if cand.bit_len() == p_bits && cand.is_probable_prime(24, rng) {
                break cand;
            }
        };
        // Find generator of the order-q subgroup: g = h^((p-1)/q) != 1.
        // The exponent (p-1)/q = 2m' is even, so g is always a quadratic
        // residue — the invariant the batch pre-screen leans on.
        let exp = p.sub(&one).div_rem(&q).0;
        let g = loop {
            let h = BigUint::random_below(&p, rng);
            if h <= one {
                continue;
            }
            let g = h.modpow(&exp, &p);
            if !g.is_one() {
                break g;
            }
        };
        SchnorrParams {
            p,
            q,
            g,
            accel: OnceLock::new(),
            batch_safe: OnceLock::new(),
        }
    }

    /// Small deterministic parameters (256-bit `p`, 160-bit `q`) for tests,
    /// simulations and benchmarks. Generated once per process from a fixed
    /// seed and cached.
    pub fn toy() -> Arc<SchnorrParams> {
        static TOY: OnceLock<Arc<SchnorrParams>> = OnceLock::new();
        TOY.get_or_init(|| {
            let mut rng = StdRng::seed_from_u64(TOY_SEED);
            Arc::new(SchnorrParams::generate(256, 160, &mut rng))
        })
        .clone()
    }

    /// Even smaller deterministic parameters (128-bit `p`, 64-bit `q`) for
    /// protocol simulations that perform thousands of signature operations.
    /// Cryptographically meaningless sizes — the simulations measure
    /// *operation counts*, which are size-independent.
    pub fn micro() -> Arc<SchnorrParams> {
        static MICRO: OnceLock<Arc<SchnorrParams>> = OnceLock::new();
        MICRO
            .get_or_init(|| {
                let mut rng = StdRng::seed_from_u64(TOY_SEED ^ 0xffff);
                Arc::new(SchnorrParams::generate(128, 64, &mut rng))
            })
            .clone()
    }

    /// Deterministic 512-bit group (224-bit subgroup order), the reference
    /// size for the wall-clock crypto benchmarks. Generated once per process
    /// and cached.
    pub fn group_512() -> Arc<SchnorrParams> {
        static G512: OnceLock<Arc<SchnorrParams>> = OnceLock::new();
        G512.get_or_init(|| {
            let mut rng = StdRng::seed_from_u64(TOY_SEED ^ 0x512);
            Arc::new(SchnorrParams::generate(512, 224, &mut rng))
        })
        .clone()
    }

    /// Deterministic 1024-bit group (256-bit subgroup order) for benchmarks
    /// at a classically meaningful modulus size. Generated once per process
    /// and cached.
    pub fn group_1024() -> Arc<SchnorrParams> {
        static G1024: OnceLock<Arc<SchnorrParams>> = OnceLock::new();
        G1024
            .get_or_init(|| {
                let mut rng = StdRng::seed_from_u64(TOY_SEED ^ 0x1024);
                Arc::new(SchnorrParams::generate(1024, 256, &mut rng))
            })
            .clone()
    }

    fn accel(&self) -> &ParamsAccel {
        self.accel.get_or_init(|| {
            // lint:allow(L1): params are generated locally, never decoded from the wire; p is an odd prime by construction
            let ctx = Arc::new(MontgomeryCtx::new(&self.p).expect("prime modulus is odd and > 1"));
            // Exponents of g never exceed q (the largest is q - e itself, in
            // verification), so q's bit length bounds the table.
            let g_table = Arc::new(FixedBaseTable::new(ctx.clone(), &self.g, self.q.bit_len()));
            ParamsAccel { ctx, g_table }
        })
    }

    /// The Montgomery-reduction context for the modulus `p`, built lazily
    /// and shared by every key over these parameters.
    pub fn mont_ctx(&self) -> &Arc<MontgomeryCtx> {
        &self.accel().ctx
    }

    /// The fixed-base exponentiation table for the generator `g`.
    pub fn g_table(&self) -> &Arc<FixedBaseTable> {
        &self.accel().g_table
    }

    /// The prime modulus `p`.
    pub fn modulus(&self) -> &BigUint {
        &self.p
    }

    /// The prime subgroup order `q`.
    pub fn order(&self) -> &BigUint {
        &self.q
    }

    /// The subgroup generator `g`.
    pub fn generator(&self) -> &BigUint {
        &self.g
    }

    /// Whether the group supports sound batch verification: the cofactor
    /// `(p-1)/q` must be `2·m'` with `m'` prime (or exactly 2, the
    /// safe-prime case). [`SchnorrParams::generate`] always produces such
    /// groups; the check is re-derived here (once, cached) so that
    /// [`batch::verify_batch`] can refuse — and fall back to individual
    /// verifies on — any parameter set whose subgroup lattice it cannot
    /// reason about.
    pub fn is_batch_safe(&self) -> bool {
        *self.batch_safe.get_or_init(|| {
            let one = BigUint::one();
            let p_minus_1 = self.p.sub(&one);
            let (m, rem) = p_minus_1.div_rem(&self.q);
            if !rem.is_zero() || !m.is_even() {
                // q must divide p-1 exactly and the cofactor must be even.
                return false;
            }
            let m_half = m.shr(1);
            if m_half.is_one() {
                return true; // p = 2q + 1: safe prime, no spare subgroups
            }
            let mut rng = StdRng::seed_from_u64(0xba7c_5afe);
            m_half.is_probable_prime(24, &mut rng)
        })
    }

    /// Validates internal consistency: `q` prime, `q | p-1`, `g^q = 1`,
    /// `g != 1`.
    pub fn validate(&self, rng: &mut impl Rng) -> Result<(), CryptoError> {
        if !self.q.is_probable_prime(24, rng) {
            return Err(CryptoError::BadParams("q is not prime"));
        }
        if !self.p.is_probable_prime(24, rng) {
            return Err(CryptoError::BadParams("p is not prime"));
        }
        let p_minus_1 = self.p.sub(&BigUint::one());
        if !p_minus_1.rem(&self.q).is_zero() {
            return Err(CryptoError::BadParams("q does not divide p-1"));
        }
        if self.g.is_one() || self.g.is_zero() {
            return Err(CryptoError::BadParams("degenerate generator"));
        }
        if !self.g.modpow(&self.q, &self.p).is_one() {
            return Err(CryptoError::BadParams("generator order is not q"));
        }
        Ok(())
    }
}

/// Fixed seed for the deterministic toy parameter set.
const TOY_SEED: u64 = 0x5ec5_705e;

/// A Schnorr signature `(r, s)`: the nonce commitment `r = g^k mod p` and
/// the response scalar `s = k + e·x mod q`, with the challenge
/// `e = H(r ‖ m) mod q` recomputed by the verifier.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Signature {
    r: Vec<u8>,
    s: Vec<u8>,
}

impl Signature {
    /// Serialized length in bytes (used by the cost model).
    pub fn encoded_len(&self) -> usize {
        self.r.len() + self.s.len() + 8
    }

    /// Serializes as `len(r) || r || s` (lengths fit in u32).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.encoded_len());
        out.extend_from_slice(&(self.r.len() as u32).to_be_bytes());
        out.extend_from_slice(&self.r);
        out.extend_from_slice(&self.s);
        out
    }

    /// Whether both components use the minimal big-endian encoding (no
    /// leading zero bytes). Signatures produced by [`SigningKey::sign`]
    /// always do; the wire codec rejects the padded variants so each
    /// signature has exactly one encoding.
    pub fn scalars_minimal(&self) -> bool {
        self.r.first() != Some(&0) && self.s.first() != Some(&0)
    }

    /// Parses the [`Signature::to_bytes`] encoding.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, CryptoError> {
        let Some((len_bytes, rest)) = bytes.split_at_checked(4) else {
            return Err(CryptoError::BadParams("signature too short"));
        };
        let mut be = [0u8; 4];
        for (dst, src) in be.iter_mut().zip(len_bytes) {
            *dst = *src;
        }
        let r_len = u32::from_be_bytes(be) as usize;
        let Some((r, s)) = rest.split_at_checked(r_len) else {
            return Err(CryptoError::BadParams("signature truncated"));
        };
        Ok(Signature {
            r: r.to_vec(),
            s: s.to_vec(),
        })
    }
}

/// A Schnorr private key together with its precomputed public key.
#[derive(Clone)]
pub struct SigningKey {
    params: Arc<SchnorrParams>,
    x: BigUint,
    public: VerifyingKey,
}

impl std::fmt::Debug for SigningKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SigningKey")
            .field("public", &self.public)
            .finish_non_exhaustive()
    }
}

impl SigningKey {
    /// Generates a key pair for the given group.
    pub fn generate(params: &Arc<SchnorrParams>, rng: &mut impl Rng) -> Self {
        let q_minus_1 = params.q.sub(&BigUint::one());
        let x = BigUint::random_below(&q_minus_1, rng).add(&BigUint::one());
        Self::from_secret(params, x)
    }

    /// Reconstructs a key pair from a secret scalar (reduced mod `q`; must
    /// not reduce to zero).
    ///
    /// # Panics
    ///
    /// Panics if the secret reduces to zero modulo `q`.
    pub fn from_secret(params: &Arc<SchnorrParams>, x: BigUint) -> Self {
        let x = x.rem(&params.q);
        assert!(!x.is_zero(), "secret key must be nonzero mod q");
        let y = params
            .g_table()
            .pow(&x)
            .unwrap_or_else(|| params.mont_ctx().modpow(&params.g, &x));
        SigningKey {
            params: params.clone(),
            x,
            public: VerifyingKey {
                params: params.clone(),
                y,
                y_table: Arc::new(OnceLock::new()),
            },
        }
    }

    /// Deterministic key derivation from a seed (for reproducible fixtures).
    pub fn from_seed(params: &Arc<SchnorrParams>, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x9e37_79b9_7f4a_7c15);
        Self::generate(params, &mut rng)
    }

    /// The corresponding public key.
    pub fn verifying_key(&self) -> &VerifyingKey {
        &self.public
    }

    /// Signs `message` deterministically.
    pub fn sign(&self, message: &[u8]) -> Signature {
        let q = &self.params.q;
        // Deterministic nonce: k = HMAC(x, message || ctr) mod q, k != 0.
        let x_bytes = self.x.to_be_bytes();
        let mut ctr = 0u32;
        let k = loop {
            let mut mac = HmacSha256::new(&x_bytes);
            mac.update(message).update(ctr.to_be_bytes());
            let k = BigUint::from_be_bytes(mac.finalize().as_bytes()).rem(q);
            if !k.is_zero() {
                break k;
            }
            ctr += 1;
        };
        let r = self
            .params
            .g_table()
            .pow(&k)
            .unwrap_or_else(|| self.params.mont_ctx().modpow(&self.params.g, &k));
        let e = challenge(&r, message, q);
        // s = k + e*x mod q
        let s = k.add(&e.mulmod(&self.x, q)).rem(q);
        Signature {
            r: r.to_be_bytes(),
            s: s.to_be_bytes(),
        }
    }
}

/// A Schnorr public key.
#[derive(Clone)]
pub struct VerifyingKey {
    params: Arc<SchnorrParams>,
    y: BigUint,
    /// Fixed-base window table for `y`, built on the first verification and
    /// shared across clones of this key.
    y_table: Arc<OnceLock<FixedBaseTable>>,
}

impl PartialEq for VerifyingKey {
    fn eq(&self, other: &Self) -> bool {
        self.params == other.params && self.y == other.y
    }
}

impl Eq for VerifyingKey {}

impl std::fmt::Debug for VerifyingKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let hex = self.y.to_hex();
        let prefix = hex.get(..8.min(hex.len())).unwrap_or(&hex);
        write!(f, "VerifyingKey(y=0x{prefix}..)")
    }
}

impl VerifyingKey {
    /// The public group element `y = g^x`.
    pub fn element(&self) -> &BigUint {
        &self.y
    }

    /// Serializes the public element (big-endian).
    pub fn to_bytes(&self) -> Vec<u8> {
        self.y.to_be_bytes()
    }

    /// Verifies `signature` over `message`: recomputes `e = H(r ‖ m)` from
    /// the claimed commitment and checks `g^s · y^{q-e} = r`.
    ///
    /// # Errors
    ///
    /// Returns [`CryptoError::BadSignature`] when the signature does not
    /// verify.
    pub fn verify(&self, message: &[u8], signature: &Signature) -> Result<(), CryptoError> {
        let q = &self.params.q;
        let r = BigUint::from_be_bytes(&signature.r);
        let s = BigUint::from_be_bytes(&signature.s);
        if s >= *q || r.is_zero() || r >= self.params.p {
            return Err(CryptoError::BadSignature);
        }
        let e = challenge(&r, message, q);
        // r' = g^s * y^(q-e) mod p  (y has order q, so y^(q-e) = y^{-e})
        let qe = q.sub(&e);
        let g_table = self.params.g_table();
        let r_prime = match g_table.pow_mul(&s, self.y_table(), &qe) {
            Some(r) => r,
            // Fallback (exponent past table capacity can't happen for
            // scalars < q, but stay total): Strauss–Shamir double
            // exponentiation under one Montgomery context.
            None => self
                .params
                .mont_ctx()
                .modpow2(&self.params.g, &s, &self.y, &qe),
        };
        if ct_eq(&r_prime.to_be_bytes(), &r.to_be_bytes()) {
            Ok(())
        } else {
            Err(CryptoError::BadSignature)
        }
    }

    /// Reference implementation of [`VerifyingKey::verify`] using the
    /// schoolbook bit-at-a-time exponentiation. Kept as the benchmark
    /// baseline and as an oracle for the equivalence tests.
    pub fn verify_schoolbook(
        &self,
        message: &[u8],
        signature: &Signature,
    ) -> Result<(), CryptoError> {
        let p = &self.params.p;
        let q = &self.params.q;
        let r = BigUint::from_be_bytes(&signature.r);
        let s = BigUint::from_be_bytes(&signature.s);
        if s >= *q || r.is_zero() || r >= *p {
            return Err(CryptoError::BadSignature);
        }
        let e = challenge(&r, message, q);
        let gs = self.params.g.modpow_schoolbook(&s, p);
        let ye = self.y.modpow_schoolbook(&q.sub(&e), p);
        let r_prime = gs.mulmod(&ye, p);
        if ct_eq(&r_prime.to_be_bytes(), &r.to_be_bytes()) {
            Ok(())
        } else {
            Err(CryptoError::BadSignature)
        }
    }

    fn y_table(&self) -> &FixedBaseTable {
        self.y_table.get_or_init(|| {
            FixedBaseTable::new(
                self.params.mont_ctx().clone(),
                &self.y,
                self.params.q.bit_len(),
            )
        })
    }
}

/// Fiat–Shamir challenge `H(r || message) mod q`.
fn challenge(r: &BigUint, message: &[u8], q: &BigUint) -> BigUint {
    let mut h = Sha256::new();
    let r_bytes = r.to_be_bytes();
    h.update((r_bytes.len() as u64).to_be_bytes());
    h.update(&r_bytes);
    h.update(message);
    BigUint::from_be_bytes(h.finalize().as_bytes()).rem(q)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_key(seed: u64) -> SigningKey {
        SigningKey::from_seed(&SchnorrParams::toy(), seed)
    }

    #[test]
    fn toy_params_are_valid() {
        let params = SchnorrParams::toy();
        let mut rng = StdRng::seed_from_u64(0);
        params.validate(&mut rng).unwrap();
        assert_eq!(params.modulus().bit_len(), 256);
        assert_eq!(params.order().bit_len(), 160);
        assert!(params.is_batch_safe());
    }

    #[test]
    fn sign_verify_roundtrip() {
        let key = toy_key(1);
        let sig = key.sign(b"hello secure store");
        key.verifying_key()
            .verify(b"hello secure store", &sig)
            .unwrap();
    }

    #[test]
    fn signing_is_deterministic() {
        let key = toy_key(2);
        assert_eq!(key.sign(b"msg"), key.sign(b"msg"));
        assert_ne!(key.sign(b"msg"), key.sign(b"msg2"));
    }

    #[test]
    fn tampered_message_rejected() {
        let key = toy_key(3);
        let sig = key.sign(b"value v1");
        assert_eq!(
            key.verifying_key().verify(b"value v2", &sig),
            Err(CryptoError::BadSignature)
        );
    }

    #[test]
    fn wrong_key_rejected() {
        let k1 = toy_key(4);
        let k2 = toy_key(5);
        let sig = k1.sign(b"m");
        assert!(k2.verifying_key().verify(b"m", &sig).is_err());
    }

    #[test]
    fn tampered_signature_rejected() {
        let key = toy_key(6);
        let sig = key.sign(b"m");
        // Flip the last byte (lands in s).
        let mut bytes = sig.to_bytes();
        let last = bytes.len() - 1;
        bytes[last] ^= 1;
        let bad = Signature::from_bytes(&bytes).unwrap();
        assert!(key.verifying_key().verify(b"m", &bad).is_err());
        // Flip a byte of the claimed commitment r.
        let mut bytes = sig.to_bytes();
        bytes[5] ^= 1;
        let bad_r = Signature::from_bytes(&bytes).unwrap();
        assert!(key.verifying_key().verify(b"m", &bad_r).is_err());
    }

    #[test]
    fn signature_serialization_roundtrip() {
        let key = toy_key(7);
        let sig = key.sign(b"serialize me");
        let parsed = Signature::from_bytes(&sig.to_bytes()).unwrap();
        assert_eq!(parsed, sig);
        assert!(Signature::from_bytes(&[1, 2]).is_err());
    }

    #[test]
    fn empty_and_large_messages() {
        let key = toy_key(8);
        for msg in [Vec::new(), vec![0u8; 10_000]] {
            let sig = key.sign(&msg);
            key.verifying_key().verify(&msg, &sig).unwrap();
        }
    }

    #[test]
    fn out_of_range_components_rejected() {
        let key = toy_key(9);
        let params = SchnorrParams::toy();
        let good = key.sign(b"m");
        // s >= q.
        let bogus_s = Signature {
            r: good.r.clone(),
            s: params.order().to_be_bytes(),
        };
        assert!(key.verifying_key().verify(b"m", &bogus_s).is_err());
        // r >= p and r = 0.
        let bogus_r = Signature {
            r: params.modulus().to_be_bytes(),
            s: good.s.clone(),
        };
        assert!(key.verifying_key().verify(b"m", &bogus_r).is_err());
        let zero_r = Signature {
            r: Vec::new(),
            s: good.s.clone(),
        };
        assert!(key.verifying_key().verify(b"m", &zero_r).is_err());
    }

    #[test]
    fn from_seed_is_stable() {
        let a = toy_key(42);
        let b = toy_key(42);
        assert_eq!(a.verifying_key(), b.verifying_key());
    }

    #[test]
    fn fast_verify_agrees_with_schoolbook() {
        let key = toy_key(10);
        let vk = key.verifying_key();
        for msg in [b"a".as_slice(), b"hello secure store", &[0u8; 600]] {
            let sig = key.sign(msg);
            assert!(vk.verify(msg, &sig).is_ok());
            assert!(vk.verify_schoolbook(msg, &sig).is_ok());
            // Both reject the same tamperings.
            assert!(vk.verify(b"other", &sig).is_err());
            assert!(vk.verify_schoolbook(b"other", &sig).is_err());
        }
    }

    #[test]
    fn public_key_matches_schoolbook_derivation() {
        // y = g^x computed through the fixed-base table must equal the
        // schoolbook exponentiation — signing determinism depends on it.
        let params = SchnorrParams::toy();
        let key = toy_key(11);
        let sig = key.sign(b"probe");
        let x = BigUint::from_be_bytes(&sig.s); // any scalar < q works
        let via_table = SigningKey::from_secret(&params, x.clone());
        let y = params
            .generator()
            .modpow_schoolbook(&x.rem(params.order()), params.modulus());
        assert_eq!(via_table.verifying_key().element(), &y);
    }

    #[test]
    fn signatures_use_minimal_scalar_encodings() {
        for seed in 0..20u64 {
            let key = toy_key(100 + seed);
            let sig = key.sign(&seed.to_be_bytes());
            assert!(sig.scalars_minimal(), "seed {seed}");
        }
        let padded = Signature {
            r: vec![0, 1],
            s: vec![2],
        };
        assert!(!padded.scalars_minimal());
        // Empty scalars encode zero minimally.
        let zero = Signature {
            r: Vec::new(),
            s: Vec::new(),
        };
        assert!(zero.scalars_minimal());
    }

    #[test]
    fn commitment_is_always_a_quadratic_residue() {
        // g lands in the QR subgroup by construction (g = h^(2m')), so every
        // honest commitment r = g^k must have Jacobi symbol 1 — the batch
        // pre-screen depends on this never misfiring on honest signatures.
        let params = SchnorrParams::toy();
        for seed in 0..10u64 {
            let key = toy_key(200 + seed);
            let sig = key.sign(&seed.to_le_bytes());
            let r = BigUint::from_be_bytes(&sig.r);
            assert_eq!(r.jacobi(params.modulus()), Some(1), "seed {seed}");
        }
    }

    #[test]
    fn micro_params_verify_roundtrip() {
        // Exercise the accelerated path on the second preset group too.
        let key = SigningKey::from_seed(&SchnorrParams::micro(), 3);
        let sig = key.sign(b"m");
        key.verifying_key().verify(b"m", &sig).unwrap();
        key.verifying_key().verify_schoolbook(b"m", &sig).unwrap();
        assert!(SchnorrParams::micro().is_batch_safe());
    }
}
