//! Batch Schnorr verification via small-exponent random linear combination.
//!
//! Verifying a signature `(r_i, s_i)` individually checks
//! `g^{s_i} · y_i^{q-e_i} = r_i` with `e_i = H(r_i ‖ m_i)`. For a batch,
//! draw per-item coefficients `z_i` and check the single combined equation
//!
//! ```text
//!   g^{Σ z_i s_i} · Π_y y^{Σ z_i (q - e_i)}  =  Π r_i^{z_i}   (mod p)
//! ```
//!
//! — one fixed-base exponentiation for `g`, one per *distinct writer* `y`
//! (terms for the same key merge into one aggregated exponent), and one
//! interleaved multi-exponentiation [`MontgomeryCtx::multi_pow`] sharing a
//! single squaring chain across every `r_i`. The marginal cost per item
//! drops from two table exponentiations to ~46 Montgomery multiplies.
//!
//! # Soundness sketch
//!
//! Write each claimed commitment as `r_i = ĝ_i · d_i` where `ĝ_i ∈ ⟨g⟩`
//! and `d_i` lies in the cofactor part of `Z_p*`. The group is generated
//! only when [`SchnorrParams::is_batch_safe`] holds: `p = 2·q·m'` + 1 with
//! `m'` prime, so `Z_p*` decomposes as `C_2 × C_q × C_{m'}`.
//!
//! - The **Jacobi pre-screen** rejects any `r_i` that is not a quadratic
//!   residue, eliminating the `C_2` component entirely. Honest commitments
//!   always pass: `g = h^{2m'}` is a square, hence so is every `g^k`.
//! - In the **`C_q` component** the combined equation is a random linear
//!   combination of the per-item verification equations with independent
//!   128-bit coefficients `z_i`: if any single equation is false, the
//!   combination only holds when the coefficient vector lands in a
//!   codimension-1 sublattice — probability ≤ 2⁻¹²⁷ over the coefficient
//!   space (the `z_i` are odd 128-bit values derived by hashing the full
//!   batch transcript, so an adversary committed to the batch before
//!   learning them).
//! - In the **`C_{m'}` component** the left side is trivial (`g` and every
//!   honest `y` have order `q`), so the combination collapses to
//!   `Π d_i^{z_i} = 1` in `C_{m'}`. With `m'` prime, a nonzero `d_i`
//!   survives only if `Σ z_i·log(d_i) ≡ 0 (mod m')` — probability ~`1/m'`
//!   (≥ 2⁻⁶³ even for the micro preset) because the full-width `z_i`
//!   multiply the `r_i` directly.
//!
//! A batch failure never condemns honest items: bisection re-checks each
//! half with the *same* coefficients, and the leaves fall back to the
//! individual [`VerifyingKey::verify`] — the ground truth. Equivalence
//! (batch accepts iff every individual verify accepts) is exercised by the
//! property suite in `crates/crypto/tests/batch_prop.rs`.
//!
//! Groups whose cofactor structure cannot be confirmed — or batches mixing
//! parameter sets — take the individual-verify fallback, trading the
//! speedup for unconditional correctness.

use std::collections::HashMap;

use crate::bigint::BigUint;
use crate::ct::ct_eq;
use crate::sha256::Sha256;

#[cfg(doc)]
use crate::bigint::MontgomeryCtx;

use super::{challenge, SchnorrParams, Signature, VerifyingKey};

/// One `(key, message, signature)` triple in a batch.
#[derive(Clone, Copy)]
pub struct BatchEntry<'a> {
    /// The claimed writer's public key.
    pub key: &'a VerifyingKey,
    /// The signed message bytes.
    pub message: &'a [u8],
    /// The signature to check.
    pub signature: &'a Signature,
}

/// A screened batch item with its transcript-derived coefficient.
struct Prepared<'a> {
    /// Index into the caller's entry slice.
    idx: usize,
    key: &'a VerifyingKey,
    message: &'a [u8],
    signature: &'a Signature,
    /// The claimed commitment `r_i` (range- and residue-checked).
    r: BigUint,
    /// Full-width 128-bit coefficient `z_i` (exponent of `r_i`).
    z: BigUint,
    /// `z_i · s_i mod q`.
    zs: BigUint,
    /// `z_i · (q - e_i) mod q`.
    zqe: BigUint,
}

/// Verifies every entry, amortizing the exponentiations across the batch.
///
/// Accepts exactly when each individual [`VerifyingKey::verify`] accepts.
/// On rejection returns the sorted indices of precisely the invalid
/// entries — a single forged item never poisons honest ones (bisection
/// plus individual re-verification isolate it).
///
/// # Errors
///
/// `Err(bad)` lists the indices of every entry whose signature does not
/// verify; all other entries are valid.
pub fn verify_batch(entries: &[BatchEntry<'_>]) -> Result<(), Vec<usize>> {
    let Some(first) = entries.first() else {
        return Ok(());
    };
    let params: &SchnorrParams = &first.key.params;
    if entries.len() < 2
        || !entries.iter().all(|en| en.key.params == first.key.params)
        || !params.is_batch_safe()
    {
        return verify_each(entries);
    }
    let p = params.modulus();
    let q = params.order();
    let mut bad: Vec<usize> = Vec::new();
    // Pass 1: parse, range-check and residue-screen each item, computing
    // its challenge and absorbing (y, r, e) into the coefficient seed.
    let mut screened: Vec<(usize, BigUint, BigUint, BigUint)> = Vec::with_capacity(entries.len());
    let mut seed_h = Sha256::new();
    for (idx, en) in entries.iter().enumerate() {
        let r = BigUint::from_be_bytes(&en.signature.r);
        let s = BigUint::from_be_bytes(&en.signature.s);
        if s >= *q || r.is_zero() || r >= *p {
            bad.push(idx);
            continue;
        }
        // Honest commitments are quadratic residues (g = h^{2m'} is a
        // square); a non-residue cannot lie in ⟨g⟩, so the individual
        // verify — whose recomputed side always lands in ⟨g⟩ — rejects it
        // too. Screening it out here both preserves equivalence and keeps
        // the order-2 subgroup out of the combined equation.
        if r.jacobi(p) != Some(1) {
            bad.push(idx);
            continue;
        }
        let e = challenge(&r, en.message, q);
        for part in [&en.key.y.to_be_bytes(), &r.to_be_bytes(), &e.to_be_bytes()] {
            seed_h.update((part.len() as u64).to_be_bytes());
            seed_h.update(part);
        }
        screened.push((idx, r, s, e));
    }
    if screened.len() < 2 {
        // Nothing left to amortize over.
        for (idx, _, _, _) in &screened {
            if let Some(en) = entries.get(*idx) {
                if en.key.verify(en.message, en.signature).is_err() {
                    bad.push(*idx);
                }
            }
        }
        bad.sort_unstable();
        return if bad.is_empty() { Ok(()) } else { Err(bad) };
    }
    // Pass 2: derive the coefficients from the sealed transcript. Forcing
    // the low bit keeps every z_i nonzero (odd) without biasing more than
    // one bit of the 128.
    let seed = seed_h.finalize();
    let mut items: Vec<Prepared<'_>> = Vec::with_capacity(screened.len());
    for (j, (idx, r, s, e)) in screened.into_iter().enumerate() {
        let Some(en) = entries.get(idx) else {
            continue;
        };
        let mut h = Sha256::new();
        h.update(seed.as_bytes());
        h.update((j as u64).to_be_bytes());
        let digest = h.finalize();
        let mut z_bytes: Vec<u8> = digest.as_bytes().iter().take(16).copied().collect();
        if let Some(last) = z_bytes.last_mut() {
            *last |= 1;
        }
        let z = BigUint::from_be_bytes(&z_bytes);
        let zs = z.mulmod(&s, q);
        let zqe = z.mulmod(&q.sub(&e), q);
        items.push(Prepared {
            idx,
            key: en.key,
            message: en.message,
            signature: en.signature,
            r,
            z,
            zs,
            zqe,
        });
    }
    if !batch_holds(params, &items) {
        let (lo, hi) = items.split_at(items.len() / 2);
        isolate(params, lo, &mut bad);
        isolate(params, hi, &mut bad);
    }
    bad.sort_unstable();
    if bad.is_empty() {
        Ok(())
    } else {
        Err(bad)
    }
}

/// Fallback: verify each entry on its own (mixed or non-batch-safe groups,
/// and trivially small batches).
fn verify_each(entries: &[BatchEntry<'_>]) -> Result<(), Vec<usize>> {
    let bad: Vec<usize> = entries
        .iter()
        .enumerate()
        .filter(|(_, en)| en.key.verify(en.message, en.signature).is_err())
        .map(|(i, _)| i)
        .collect();
    if bad.is_empty() {
        Ok(())
    } else {
        Err(bad)
    }
}

/// Evaluates the combined equation over `items` (with their fixed
/// coefficients): `g^S · Π_y y^{A_y} = Π r_i^{z_i}`.
fn batch_holds(params: &SchnorrParams, items: &[Prepared<'_>]) -> bool {
    let q = params.order();
    let ctx = params.mont_ctx();
    let mut s_sum = BigUint::zero();
    // Aggregate per distinct writer so each public key costs one
    // fixed-base exponentiation no matter how many items it signed.
    let mut per_writer: HashMap<Vec<u8>, (usize, BigUint)> = HashMap::new();
    for (j, it) in items.iter().enumerate() {
        s_sum = s_sum.add(&it.zs).rem(q);
        let slot = per_writer
            .entry(it.key.y.to_be_bytes())
            .or_insert_with(|| (j, BigUint::zero()));
        slot.1 = slot.1.add(&it.zqe).rem(q);
    }
    let mut t = params
        .g_table()
        .pow(&s_sum)
        .unwrap_or_else(|| ctx.modpow(params.generator(), &s_sum));
    for (rep_j, a) in per_writer.values() {
        let Some(it) = items.get(*rep_j) else {
            return false;
        };
        let yp = it
            .key
            .y_table()
            .pow(a)
            .unwrap_or_else(|| ctx.modpow(&it.key.y, a));
        t = ctx.mulmod(&t, &yp);
    }
    // Full-width coefficients on the r side: the C_{m'} component of each
    // r_i must cancel on its own, so z_i may not be reduced mod q here.
    let pairs: Vec<(&BigUint, &BigUint)> = items.iter().map(|it| (&it.r, &it.z)).collect();
    let u = ctx.multi_pow(&pairs);
    ct_eq(&t.to_be_bytes(), &u.to_be_bytes())
}

/// Recursive bisection over a failing range: re-check each half with the
/// same coefficients, falling back to the individual verify at the leaves
/// so exactly the invalid indices are reported.
fn isolate(params: &SchnorrParams, items: &[Prepared<'_>], bad: &mut Vec<usize>) {
    match items {
        [] => {}
        [it] => {
            if it.key.verify(it.message, it.signature).is_err() {
                bad.push(it.idx);
            }
        }
        _ => {
            if batch_holds(params, items) {
                return;
            }
            let (lo, hi) = items.split_at(items.len() / 2);
            isolate(params, lo, bad);
            isolate(params, hi, bad);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::super::{SchnorrParams, SigningKey};
    use super::*;

    fn toy_key(seed: u64) -> SigningKey {
        SigningKey::from_seed(&SchnorrParams::toy(), seed)
    }

    /// Builds `n` (key, message, signature) fixtures across three writers.
    fn fixtures(n: usize) -> (Vec<SigningKey>, Vec<Vec<u8>>, Vec<Signature>) {
        let keys: Vec<SigningKey> = (0..3).map(|i| toy_key(900 + i)).collect();
        let msgs: Vec<Vec<u8>> = (0..n).map(|i| format!("msg-{i}").into_bytes()).collect();
        let sigs: Vec<Signature> = msgs
            .iter()
            .enumerate()
            .map(|(i, m)| keys[i % keys.len()].sign(m))
            .collect();
        (keys, msgs, sigs)
    }

    fn entries<'a>(
        keys: &'a [SigningKey],
        msgs: &'a [Vec<u8>],
        sigs: &'a [Signature],
    ) -> Vec<BatchEntry<'a>> {
        msgs.iter()
            .enumerate()
            .map(|(i, m)| BatchEntry {
                key: keys[i % keys.len()].verifying_key(),
                message: m,
                signature: &sigs[i],
            })
            .collect()
    }

    #[test]
    fn empty_and_singleton_batches() {
        assert_eq!(verify_batch(&[]), Ok(()));
        let key = toy_key(1);
        let sig = key.sign(b"solo");
        assert_eq!(
            verify_batch(&[BatchEntry {
                key: key.verifying_key(),
                message: b"solo",
                signature: &sig,
            }]),
            Ok(())
        );
        let other = key.sign(b"other");
        assert_eq!(
            verify_batch(&[BatchEntry {
                key: key.verifying_key(),
                message: b"solo",
                signature: &other,
            }]),
            Err(vec![0])
        );
    }

    #[test]
    fn all_valid_batch_accepts() {
        let (keys, msgs, sigs) = fixtures(9);
        assert_eq!(verify_batch(&entries(&keys, &msgs, &sigs)), Ok(()));
    }

    #[test]
    fn single_forged_item_is_isolated() {
        let (keys, msgs, mut sigs) = fixtures(8);
        for victim in [0usize, 3, 7] {
            let orig = sigs[victim].clone();
            // Swap in a signature over a different message.
            sigs[victim] = keys[victim % keys.len()].sign(b"not the message");
            assert_eq!(
                verify_batch(&entries(&keys, &msgs, &sigs)),
                Err(vec![victim]),
                "victim {victim}"
            );
            sigs[victim] = orig;
        }
    }

    #[test]
    fn multiple_forged_items_all_reported() {
        let (keys, msgs, mut sigs) = fixtures(10);
        for &v in &[1usize, 4, 9] {
            sigs[v] = keys[v % keys.len()].sign(b"forged");
        }
        assert_eq!(
            verify_batch(&entries(&keys, &msgs, &sigs)),
            Err(vec![1, 4, 9])
        );
    }

    #[test]
    fn bitflipped_components_rejected() {
        let (keys, msgs, sigs) = fixtures(6);
        for flip_r in [true, false] {
            let mut sigs = sigs.clone();
            let mut bytes = sigs[2].to_bytes();
            let pos = if flip_r { 6 } else { bytes.len() - 1 };
            bytes[pos] ^= 0x40;
            sigs[2] = Signature::from_bytes(&bytes).unwrap();
            let got = verify_batch(&entries(&keys, &msgs, &sigs));
            assert_eq!(got, Err(vec![2]), "flip_r={flip_r}");
        }
    }

    #[test]
    fn duplicate_writer_terms_merge() {
        // Many items by one writer: exercises the per-writer aggregation.
        let key = toy_key(77);
        let msgs: Vec<Vec<u8>> = (0..12).map(|i| format!("dup-{i}").into_bytes()).collect();
        let sigs: Vec<Signature> = msgs.iter().map(|m| key.sign(m)).collect();
        let ents: Vec<BatchEntry<'_>> = msgs
            .iter()
            .zip(sigs.iter())
            .map(|(m, s)| BatchEntry {
                key: key.verifying_key(),
                message: m,
                signature: s,
            })
            .collect();
        assert_eq!(verify_batch(&ents), Ok(()));
    }

    #[test]
    fn wrong_key_attribution_rejected() {
        let (keys, msgs, sigs) = fixtures(5);
        let mut ents = entries(&keys, &msgs, &sigs);
        // Claim item 3 was signed by a different writer.
        ents[3].key = keys[(3 + 1) % keys.len()].verifying_key();
        assert_eq!(verify_batch(&ents), Err(vec![3]));
    }

    #[test]
    fn mixed_parameter_sets_fall_back() {
        let toy = toy_key(5);
        let micro = SigningKey::from_seed(&SchnorrParams::micro(), 5);
        let (m1, m2) = (b"toy item".to_vec(), b"micro item".to_vec());
        let s1 = toy.sign(&m1);
        let s2 = micro.sign(&m2);
        let good = vec![
            BatchEntry {
                key: toy.verifying_key(),
                message: &m1,
                signature: &s1,
            },
            BatchEntry {
                key: micro.verifying_key(),
                message: &m2,
                signature: &s2,
            },
        ];
        assert_eq!(verify_batch(&good), Ok(()));
        let forged = micro.sign(b"something else");
        let bad = vec![
            BatchEntry {
                key: toy.verifying_key(),
                message: &m1,
                signature: &s1,
            },
            BatchEntry {
                key: micro.verifying_key(),
                message: &m2,
                signature: &forged,
            },
        ];
        assert_eq!(verify_batch(&bad), Err(vec![1]));
    }

    #[test]
    fn micro_group_batches_verify() {
        let params = SchnorrParams::micro();
        let keys: Vec<SigningKey> = (0..2).map(|i| SigningKey::from_seed(&params, i)).collect();
        let msgs: Vec<Vec<u8>> = (0..6).map(|i| vec![i as u8; 4]).collect();
        let sigs: Vec<Signature> = msgs
            .iter()
            .enumerate()
            .map(|(i, m)| keys[i % 2].sign(m))
            .collect();
        let ents: Vec<BatchEntry<'_>> = msgs
            .iter()
            .enumerate()
            .map(|(i, m)| BatchEntry {
                key: keys[i % 2].verifying_key(),
                message: m,
                signature: &sigs[i],
            })
            .collect();
        assert_eq!(verify_batch(&ents), Ok(()));
    }

    #[test]
    fn out_of_range_and_nonresidue_components_rejected() {
        let (keys, msgs, mut sigs) = fixtures(4);
        let params = SchnorrParams::toy();
        // Oversized s on item 1.
        sigs[1] = Signature {
            r: sigs[1].r.clone(),
            s: params.order().to_be_bytes(),
        };
        // Zero r on item 2.
        sigs[2] = Signature {
            r: Vec::new(),
            s: sigs[2].s.clone(),
        };
        assert_eq!(verify_batch(&entries(&keys, &msgs, &sigs)), Err(vec![1, 2]));
    }
}
