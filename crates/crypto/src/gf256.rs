//! Arithmetic in GF(2⁸) with the AES polynomial `x⁸+x⁴+x³+x+1` (0x11b).
//!
//! Shared substrate for [`crate::shamir`] secret sharing and the
//! [`crate::ida`] information-dispersal codec. Multiplication and inversion
//! use log/antilog tables built once per process from the generator 3.

use std::sync::OnceLock;

/// Multiplication table context for GF(2⁸).
struct Tables {
    exp: [u8; 512],
    log: [u8; 256],
}

fn tables() -> &'static Tables {
    static TABLES: OnceLock<Tables> = OnceLock::new();
    TABLES.get_or_init(|| {
        let mut exp = [0u8; 512];
        let mut log = [0u8; 256];
        let mut x: u16 = 1;
        for (i, e) in exp.iter_mut().enumerate().take(255) {
            *e = x as u8;
            if let Some(slot) = log.get_mut(x as usize) {
                *slot = i as u8;
            }
            // Multiply x by the generator 3 = x + 1: x*3 = x<<1 ^ x.
            x = (x << 1) ^ x;
            if x & 0x100 != 0 {
                x ^= 0x11b;
            }
        }
        // The antilog table repeats with period 255, doubled so that
        // `exp[log a + log b]` (sum ≤ 508) needs no modular reduction.
        let (lo, hi) = exp.split_at_mut(255);
        for (i, slot) in hi.iter_mut().enumerate() {
            *slot = lo.get(i % 255).copied().unwrap_or(0);
        }
        Tables { exp, log }
    })
}

/// Discrete log of a nonzero element; callers guarantee `a != 0`
/// (`log[0]` is never written and reads as 0, keeping this total).
#[inline(always)]
fn log_of(t: &Tables, a: u8) -> usize {
    t.log.get(a as usize).copied().unwrap_or(0) as usize
}

/// Antilog lookup, total over any index (in-range by construction:
/// the callers' exponents are all below 509).
#[inline(always)]
fn exp_at(t: &Tables, i: usize) -> u8 {
    t.exp.get(i).copied().unwrap_or(0)
}

/// Adds two field elements (XOR).
#[inline]
pub fn add(a: u8, b: u8) -> u8 {
    a ^ b
}

/// Multiplies two field elements.
#[inline]
pub fn mul(a: u8, b: u8) -> u8 {
    if a == 0 || b == 0 {
        return 0;
    }
    let t = tables();
    exp_at(t, log_of(t, a) + log_of(t, b))
}

/// Multiplicative inverse.
///
/// # Panics
///
/// Panics if `a == 0`.
pub fn inv(a: u8) -> u8 {
    assert_ne!(a, 0, "zero has no inverse in GF(256)");
    let t = tables();
    // log ≤ 254, so the subtraction cannot underflow.
    exp_at(t, 255 - log_of(t, a))
}

/// Division `a / b`.
///
/// # Panics
///
/// Panics if `b == 0`.
#[inline]
pub fn div(a: u8, b: u8) -> u8 {
    mul(a, inv(b))
}

/// `base^exp` by repeated squaring over the log tables.
pub fn pow(base: u8, exp: u32) -> u8 {
    if exp == 0 {
        return 1;
    }
    if base == 0 {
        return 0;
    }
    let t = tables();
    let l = log_of(t, base) as u64;
    exp_at(t, ((l * exp as u64) % 255) as usize)
}

/// Evaluates the polynomial `coeffs[0] + coeffs[1]·x + …` at `x` (Horner).
pub fn poly_eval(coeffs: &[u8], x: u8) -> u8 {
    let mut acc = 0u8;
    for &c in coeffs.iter().rev() {
        acc = add(mul(acc, x), c);
    }
    acc
}

/// Solves the linear system `m · sol = rhs` over GF(256) in place via
/// Gauss–Jordan elimination. `m` is row-major `n × n`; `rhs` has `n` rows of
/// `width` bytes each. Returns `None` if the matrix is singular.
pub fn solve_linear(m: &mut [Vec<u8>], rhs: &mut [Vec<u8>]) -> Option<()> {
    let n = m.len();
    if rhs.len() < n {
        return None;
    }
    let cell = |m: &[Vec<u8>], r: usize, c: usize| m.get(r).and_then(|row| row.get(c)).copied();
    for col in 0..n {
        // Find a pivot.
        let pivot = (col..n).find(|&r| cell(m, r, col).unwrap_or(0) != 0)?;
        m.swap(col, pivot);
        rhs.swap(col, pivot);
        // Normalize pivot row. The pivot search just proved the entry
        // nonzero; the zero guard only keeps `inv`'s assert unreachable.
        let p = cell(m, col, col).unwrap_or(0);
        if p == 0 {
            return None;
        }
        let p_inv = inv(p);
        if let Some(row) = m.get_mut(col) {
            for v in row.iter_mut() {
                *v = mul(*v, p_inv);
            }
        }
        if let Some(row) = rhs.get_mut(col) {
            for v in row.iter_mut() {
                *v = mul(*v, p_inv);
            }
        }
        // Eliminate the column everywhere else.
        for row in 0..n {
            let factor = cell(m, row, col).unwrap_or(0);
            if row == col || factor == 0 {
                continue;
            }
            let pivot_row = m.get(col).cloned().unwrap_or_default();
            if let Some(dst_row) = m.get_mut(row) {
                for (dst, src) in dst_row.iter_mut().zip(&pivot_row) {
                    *dst = add(*dst, mul(factor, *src));
                }
            }
            let pivot_rhs = rhs.get(col).cloned().unwrap_or_default();
            if let Some(dst_row) = rhs.get_mut(row) {
                for (dst, src) in dst_row.iter_mut().zip(&pivot_rhs) {
                    *dst = add(*dst, mul(factor, *src));
                }
            }
        }
    }
    Some(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_is_xor() {
        assert_eq!(add(0x53, 0xca), 0x53 ^ 0xca);
        assert_eq!(add(7, 7), 0);
    }

    #[test]
    fn known_products() {
        // Classic AES examples.
        assert_eq!(mul(0x53, 0xca), 0x01);
        assert_eq!(mul(0x02, 0x87), 0x15);
        assert_eq!(mul(0, 0xff), 0);
        assert_eq!(mul(1, 0xab), 0xab);
    }

    #[test]
    fn every_nonzero_element_has_inverse() {
        for a in 1..=255u8 {
            assert_eq!(mul(a, inv(a)), 1, "a={a}");
        }
    }

    #[test]
    fn mul_is_commutative_and_associative() {
        for a in [1u8, 3, 17, 91, 255] {
            for b in [2u8, 5, 80, 254] {
                assert_eq!(mul(a, b), mul(b, a));
                for c in [7u8, 100] {
                    assert_eq!(mul(mul(a, b), c), mul(a, mul(b, c)));
                }
            }
        }
    }

    #[test]
    fn distributive_law() {
        for a in [3u8, 9, 200] {
            for b in [5u8, 77] {
                for c in [11u8, 130] {
                    assert_eq!(mul(a, add(b, c)), add(mul(a, b), mul(a, c)));
                }
            }
        }
    }

    #[test]
    fn pow_matches_repeated_mul() {
        for base in [2u8, 3, 19, 250] {
            let mut acc = 1u8;
            for e in 0..20u32 {
                assert_eq!(pow(base, e), acc, "base={base} e={e}");
                acc = mul(acc, base);
            }
        }
        assert_eq!(pow(0, 0), 1);
        assert_eq!(pow(0, 5), 0);
    }

    #[test]
    fn poly_eval_horner() {
        // p(x) = 5 + 3x + x^2 at x=2: 5 ^ mul(3,2) ^ mul(2, 2... ) computed directly
        let coeffs = [5u8, 3, 1];
        let x = 2u8;
        let direct = add(add(5, mul(3, x)), mul(1, mul(x, x)));
        assert_eq!(poly_eval(&coeffs, x), direct);
        assert_eq!(poly_eval(&coeffs, 0), 5);
        assert_eq!(poly_eval(&[], 7), 0);
    }

    #[test]
    fn solve_identity_system() {
        let mut m = vec![vec![1, 0], vec![0, 1]];
        let mut rhs = vec![vec![9, 9], vec![4, 4]];
        solve_linear(&mut m, &mut rhs).unwrap();
        assert_eq!(rhs, vec![vec![9, 9], vec![4, 4]]);
    }

    #[test]
    fn solve_singular_returns_none() {
        let mut m = vec![vec![1, 1], vec![1, 1]];
        let mut rhs = vec![vec![1], vec![2]];
        assert!(solve_linear(&mut m, &mut rhs).is_none());
    }

    #[test]
    fn solve_roundtrip_random() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        for _ in 0..50 {
            let n = rng.gen_range(1..6);
            // Random solution and invertible-ish matrix (retry if singular).
            let sol: Vec<Vec<u8>> = (0..n).map(|_| vec![rng.gen(), rng.gen()]).collect();
            let m: Vec<Vec<u8>> = (0..n)
                .map(|_| (0..n).map(|_| rng.gen()).collect())
                .collect();
            // rhs = m * sol
            let mut rhs: Vec<Vec<u8>> = vec![vec![0u8; 2]; n];
            for r in 0..n {
                for c in 0..n {
                    for k in 0..2 {
                        rhs[r][k] = add(rhs[r][k], mul(m[r][c], sol[c][k]));
                    }
                }
            }
            let mut m2 = m.clone();
            if solve_linear(&mut m2, &mut rhs).is_some() {
                assert_eq!(rhs, sol);
            }
        }
    }
}
