//! Client-side value encryption: hash-CTR stream cipher, sealed with
//! encrypt-then-MAC.
//!
//! The paper (§5.2) keeps confidential values encrypted *by the client*, so
//! that even a fully compromised server learns only metadata. Servers never
//! hold the key. This module provides the symmetric primitive used for that:
//! a CTR-mode keystream generated as `SHA-256(key || nonce || counter)`
//! blocks, with an HMAC-SHA-256 tag over `nonce || ciphertext`.
//!
//! ```
//! use sstore_crypto::cipher::SealKey;
//!
//! let key = SealKey::derive(b"household master secret", b"medical-records");
//! let sealed = key.seal(b"blood type O+", 7);
//! assert_eq!(key.open(&sealed).unwrap(), b"blood type O+");
//! ```

use crate::hmac::{hmac_sha256, verify_mac, HmacSha256};
use crate::sha256::{Digest, Sha256, DIGEST_LEN};
use crate::CryptoError;

/// A symmetric sealing key (independent encryption and MAC subkeys).
#[derive(Clone)]
pub struct SealKey {
    enc: [u8; DIGEST_LEN],
    mac: [u8; DIGEST_LEN],
}

impl std::fmt::Debug for SealKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("SealKey(..)")
    }
}

/// An authenticated ciphertext.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Sealed {
    /// Public nonce; must be unique per (key, plaintext) use.
    pub nonce: u64,
    /// CTR-encrypted payload.
    pub ciphertext: Vec<u8>,
    /// HMAC over `nonce || ciphertext`.
    pub tag: Digest,
}

impl Sealed {
    /// Total encoded size in bytes (for cost accounting).
    pub fn encoded_len(&self) -> usize {
        8 + self.ciphertext.len() + DIGEST_LEN
    }
}

impl SealKey {
    /// Derives a key from a master secret and a domain-separation label.
    pub fn derive(master: &[u8], label: &[u8]) -> Self {
        let enc = hmac_sha256(master, &[label, b"|enc"].concat());
        let mac = hmac_sha256(master, &[label, b"|mac"].concat());
        SealKey {
            enc: *enc.as_bytes(),
            mac: *mac.as_bytes(),
        }
    }

    /// Encrypts and authenticates `plaintext` under `nonce`.
    ///
    /// The caller must ensure the nonce is not reused for different
    /// plaintexts under the same key; in the secure store the write
    /// timestamp serves as the nonce, which the protocol already forces to
    /// be strictly increasing.
    pub fn seal(&self, plaintext: &[u8], nonce: u64) -> Sealed {
        let mut ciphertext = plaintext.to_vec();
        self.keystream_xor(&mut ciphertext, nonce);
        let tag = self.tag(nonce, &ciphertext);
        Sealed {
            nonce,
            ciphertext,
            tag,
        }
    }

    /// Verifies and decrypts a sealed value.
    ///
    /// # Errors
    ///
    /// Returns [`CryptoError::BadMac`] when the tag does not match (value
    /// corrupted or produced under a different key).
    pub fn open(&self, sealed: &Sealed) -> Result<Vec<u8>, CryptoError> {
        let expect = self.tag(sealed.nonce, &sealed.ciphertext);
        if !verify_mac(&expect, &sealed.tag) {
            return Err(CryptoError::BadMac);
        }
        let mut plaintext = sealed.ciphertext.clone();
        self.keystream_xor(&mut plaintext, sealed.nonce);
        Ok(plaintext)
    }

    fn tag(&self, nonce: u64, ciphertext: &[u8]) -> Digest {
        let mut mac = HmacSha256::new(&self.mac);
        mac.update(nonce.to_be_bytes()).update(ciphertext);
        mac.finalize()
    }

    fn keystream_xor(&self, buf: &mut [u8], nonce: u64) {
        for (block_idx, chunk) in buf.chunks_mut(DIGEST_LEN).enumerate() {
            let mut h = Sha256::new();
            h.update(self.enc)
                .update(nonce.to_be_bytes())
                .update((block_idx as u64).to_be_bytes());
            let block = h.finalize();
            for (b, k) in chunk.iter_mut().zip(block.as_bytes()) {
                *b ^= k;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key() -> SealKey {
        SealKey::derive(b"master", b"label")
    }

    #[test]
    fn roundtrip() {
        let k = key();
        let sealed = k.seal(b"plain", 1);
        assert_eq!(k.open(&sealed).unwrap(), b"plain");
    }

    #[test]
    fn ciphertext_differs_from_plaintext() {
        let sealed = key().seal(b"plaintext!", 1);
        assert_ne!(sealed.ciphertext, b"plaintext!");
    }

    #[test]
    fn different_nonces_give_different_ciphertexts() {
        let k = key();
        assert_ne!(k.seal(b"same", 1).ciphertext, k.seal(b"same", 2).ciphertext);
    }

    #[test]
    fn tampered_ciphertext_rejected() {
        let k = key();
        let mut sealed = k.seal(b"payload", 3);
        sealed.ciphertext[0] ^= 1;
        assert_eq!(k.open(&sealed), Err(CryptoError::BadMac));
    }

    #[test]
    fn tampered_nonce_rejected() {
        let k = key();
        let mut sealed = k.seal(b"payload", 3);
        sealed.nonce = 4;
        assert_eq!(k.open(&sealed), Err(CryptoError::BadMac));
    }

    #[test]
    fn wrong_key_rejected() {
        let sealed = key().seal(b"secret", 1);
        let other = SealKey::derive(b"master", b"other-label");
        assert!(other.open(&sealed).is_err());
    }

    #[test]
    fn derive_is_deterministic_and_label_separated() {
        let a = SealKey::derive(b"m", b"l");
        let b = SealKey::derive(b"m", b"l");
        let sealed = a.seal(b"x", 9);
        assert_eq!(b.open(&sealed).unwrap(), b"x");
        // Ambiguous (master || label) splits must not collide.
        let c = SealKey::derive(b"ml", b"");
        assert!(c.open(&a.seal(b"x", 9)).is_err());
    }

    #[test]
    fn empty_and_multiblock_payloads() {
        let k = key();
        for payload in [vec![], vec![7u8; 31], vec![8u8; 32], vec![9u8; 100]] {
            let sealed = k.seal(&payload, 5);
            assert_eq!(k.open(&sealed).unwrap(), payload);
        }
    }
}
