//! Arbitrary-precision unsigned integers, purpose-built for Schnorr groups.
//!
//! Little-endian `u64` limbs, schoolbook multiplication, Knuth Algorithm D
//! division and Miller–Rabin primality testing. Modular exponentiation is
//! the protocol hot path (every signature costs one, every verification
//! two), so it gets the full treatment:
//!
//! - [`MontgomeryCtx`]: precomputed Montgomery-form reduction for an odd
//!   modulus — multiplication without per-step division;
//! - fixed-window (w = 4) exponentiation in [`BigUint::modpow`] and
//!   [`MontgomeryCtx::modpow`], replacing the bit-at-a-time loop (kept as
//!   [`BigUint::modpow_schoolbook`] for reference and equivalence tests);
//! - [`MontgomeryCtx::modpow2`]: Strauss–Shamir simultaneous double
//!   exponentiation `a^ea · b^eb mod m` in a single shared-squaring pass;
//! - [`FixedBaseTable`]: precomputed window tables for a fixed base, making
//!   repeated exponentiations (the generator `g`, a public key `y`)
//!   multiplication-only.
//!
//! None of this is constant-time; the reproduction trades side-channel
//! hygiene for clarity, exactly like the schoolbook code it replaces.
//!
//! ```
//! use sstore_crypto::bigint::BigUint;
//!
//! let p = BigUint::from(23u64);
//! let g = BigUint::from(5u64);
//! assert_eq!(g.modpow(&BigUint::from(6u64), &p), BigUint::from(8u64));
//! ```

use std::sync::Arc;

use rand::Rng;

/// An arbitrary-precision unsigned integer.
///
/// The internal representation is normalized: no trailing zero limbs, and
/// zero is the empty limb vector.
#[derive(Clone, PartialEq, Eq, Default, Hash)]
pub struct BigUint {
    limbs: Vec<u64>,
}

impl std::fmt::Debug for BigUint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "BigUint(0x{})", self.to_hex())
    }
}

impl std::fmt::Display for BigUint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "0x{}", self.to_hex())
    }
}

impl From<u64> for BigUint {
    fn from(v: u64) -> Self {
        if v == 0 {
            BigUint::zero()
        } else {
            BigUint { limbs: vec![v] }
        }
    }
}

impl From<u128> for BigUint {
    fn from(v: u128) -> Self {
        let lo = v as u64;
        let hi = (v >> 64) as u64;
        let mut n = BigUint {
            limbs: vec![lo, hi],
        };
        n.normalize();
        n
    }
}

impl PartialOrd for BigUint {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for BigUint {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        if self.limbs.len() != other.limbs.len() {
            return self.limbs.len().cmp(&other.limbs.len());
        }
        for (a, b) in self.limbs.iter().rev().zip(other.limbs.iter().rev()) {
            if a != b {
                return a.cmp(b);
            }
        }
        std::cmp::Ordering::Equal
    }
}

impl BigUint {
    /// The value 0.
    pub fn zero() -> Self {
        BigUint { limbs: Vec::new() }
    }

    /// The value 1.
    pub fn one() -> Self {
        BigUint { limbs: vec![1] }
    }

    /// Whether this is zero.
    pub fn is_zero(&self) -> bool {
        self.limbs.is_empty()
    }

    /// Whether this is exactly one.
    pub fn is_one(&self) -> bool {
        self.limbs == [1]
    }

    /// Whether the low bit is clear.
    pub fn is_even(&self) -> bool {
        self.limbs.first().is_none_or(|l| l & 1 == 0)
    }

    /// Number of significant bits (0 for zero).
    pub fn bit_len(&self) -> usize {
        match self.limbs.last() {
            None => 0,
            Some(top) => self.limbs.len() * 64 - top.leading_zeros() as usize,
        }
    }

    /// Returns bit `i` (little-endian bit order).
    pub fn bit(&self, i: usize) -> bool {
        let limb = i / 64;
        let off = i % 64;
        self.limbs.get(limb).is_some_and(|l| (l >> off) & 1 == 1)
    }

    fn normalize(&mut self) {
        while self.limbs.last() == Some(&0) {
            self.limbs.pop();
        }
    }

    /// Parses big-endian bytes.
    pub fn from_be_bytes(bytes: &[u8]) -> Self {
        let mut limbs = Vec::with_capacity(bytes.len() / 8 + 1);
        let mut cur: u64 = 0;
        let mut cur_bits = 0;
        for &b in bytes.iter().rev() {
            cur |= (b as u64) << cur_bits;
            cur_bits += 8;
            if cur_bits == 64 {
                limbs.push(cur);
                cur = 0;
                cur_bits = 0;
            }
        }
        if cur_bits > 0 {
            limbs.push(cur);
        }
        let mut n = BigUint { limbs };
        n.normalize();
        n
    }

    /// Serializes to minimal big-endian bytes (empty for zero).
    pub fn to_be_bytes(&self) -> Vec<u8> {
        if self.is_zero() {
            return Vec::new();
        }
        let mut out = Vec::with_capacity(self.limbs.len() * 8);
        for limb in self.limbs.iter().rev() {
            out.extend_from_slice(&limb.to_be_bytes());
        }
        // Strip leading zero bytes.
        let first = out.iter().position(|&b| b != 0).unwrap_or(out.len() - 1);
        out.drain(..first);
        out
    }

    /// Parses a lowercase/uppercase hexadecimal string. Intended for
    /// embedding verified constants, not for untrusted input: a non-hex
    /// character fails a debug assertion and reads as `0` in release.
    pub fn from_hex(s: &str) -> Self {
        let s = s.trim();
        let mut bytes = Vec::with_capacity(s.len() / 2 + 1);
        let mut digits = s.bytes().map(hex_val);
        // Handle odd-length by treating the first nibble alone.
        if s.len() % 2 == 1 {
            if let Some(first) = digits.next() {
                bytes.push(first);
            }
        }
        while let (Some(hi), Some(lo)) = (digits.next(), digits.next()) {
            bytes.push(hi << 4 | lo);
        }
        BigUint::from_be_bytes(&bytes)
    }

    /// Formats as minimal lowercase hexadecimal ("0" for zero).
    pub fn to_hex(&self) -> String {
        if self.is_zero() {
            return "0".to_owned();
        }
        let bytes = self.to_be_bytes();
        let mut s: String = bytes.iter().map(|b| format!("{b:02x}")).collect();
        while s.len() > 1 && s.starts_with('0') {
            s.remove(0);
        }
        s
    }

    /// Addition.
    pub fn add(&self, other: &BigUint) -> BigUint {
        let (long, short) = if self.limbs.len() >= other.limbs.len() {
            (&self.limbs, &other.limbs)
        } else {
            (&other.limbs, &self.limbs)
        };
        let mut out = Vec::with_capacity(long.len() + 1);
        let mut carry = 0u64;
        for (i, &l) in long.iter().enumerate() {
            let b = short.get(i).copied().unwrap_or(0);
            let (s1, c1) = l.overflowing_add(b);
            let (s2, c2) = s1.overflowing_add(carry);
            out.push(s2);
            carry = (c1 as u64) + (c2 as u64);
        }
        if carry > 0 {
            out.push(carry);
        }
        let mut n = BigUint { limbs: out };
        n.normalize();
        n
    }

    /// Subtraction.
    ///
    /// # Panics
    ///
    /// Panics if `other > self`.
    pub fn sub(&self, other: &BigUint) -> BigUint {
        assert!(self >= other, "BigUint::sub underflow");
        let mut out = Vec::with_capacity(self.limbs.len());
        let mut borrow = 0u64;
        for (i, &a) in self.limbs.iter().enumerate() {
            let b = other.limbs.get(i).copied().unwrap_or(0);
            let (d1, b1) = a.overflowing_sub(b);
            let (d2, b2) = d1.overflowing_sub(borrow);
            out.push(d2);
            borrow = (b1 as u64) + (b2 as u64);
        }
        debug_assert_eq!(borrow, 0);
        let mut n = BigUint { limbs: out };
        n.normalize();
        n
    }

    /// Schoolbook multiplication.
    pub fn mul(&self, other: &BigUint) -> BigUint {
        if self.is_zero() || other.is_zero() {
            return BigUint::zero();
        }
        let mut out = vec![0u64; self.limbs.len() + other.limbs.len()];
        for (i, &a) in self.limbs.iter().enumerate() {
            let mut carry = 0u128;
            for (j, &b) in other.limbs.iter().enumerate() {
                let cur = limb(&out, i + j) as u128 + (a as u128) * (b as u128) + carry;
                set_limb(&mut out, i + j, cur as u64);
                carry = cur >> 64;
            }
            let mut k = i + other.limbs.len();
            while carry > 0 {
                let cur = limb(&out, k) as u128 + carry;
                set_limb(&mut out, k, cur as u64);
                carry = cur >> 64;
                k += 1;
            }
        }
        let mut n = BigUint { limbs: out };
        n.normalize();
        n
    }

    /// Left shift by `n` bits.
    pub fn shl(&self, n: usize) -> BigUint {
        if self.is_zero() {
            return BigUint::zero();
        }
        let limb_shift = n / 64;
        let bit_shift = n % 64;
        let mut out = vec![0u64; limb_shift];
        if bit_shift == 0 {
            out.extend_from_slice(&self.limbs);
        } else {
            let mut carry = 0u64;
            for &l in &self.limbs {
                out.push((l << bit_shift) | carry);
                carry = l >> (64 - bit_shift);
            }
            if carry > 0 {
                out.push(carry);
            }
        }
        let mut r = BigUint { limbs: out };
        r.normalize();
        r
    }

    /// Right shift by `n` bits.
    pub fn shr(&self, n: usize) -> BigUint {
        let limb_shift = n / 64;
        if limb_shift >= self.limbs.len() {
            return BigUint::zero();
        }
        let bit_shift = n % 64;
        let src = self.limbs.get(limb_shift..).unwrap_or(&[]);
        let mut out = Vec::with_capacity(src.len());
        if bit_shift == 0 {
            out.extend_from_slice(src);
        } else {
            for (i, &lo) in src.iter().enumerate() {
                let hi = src.get(i + 1).copied().unwrap_or(0);
                out.push((lo >> bit_shift) | (hi << (64 - bit_shift)));
            }
        }
        let mut r = BigUint { limbs: out };
        r.normalize();
        r
    }

    /// Division with remainder (Knuth Algorithm D).
    ///
    /// # Panics
    ///
    /// Panics if `divisor` is zero.
    pub fn div_rem(&self, divisor: &BigUint) -> (BigUint, BigUint) {
        assert!(!divisor.is_zero(), "division by zero");
        if self < divisor {
            return (BigUint::zero(), self.clone());
        }
        if divisor.limbs.len() == 1 {
            let d = limb(&divisor.limbs, 0) as u128;
            let mut q = Vec::with_capacity(self.limbs.len());
            let mut rem: u128 = 0;
            for &l in self.limbs.iter().rev() {
                let cur = (rem << 64) | l as u128;
                q.push((cur / d) as u64);
                rem = cur % d;
            }
            q.reverse();
            let mut qn = BigUint { limbs: q };
            qn.normalize();
            return (qn, BigUint::from(rem as u64));
        }

        // Normalize so the divisor's top limb has its high bit set (the
        // zero-divisor case was rejected above, so `last` exists).
        let shift = divisor
            .limbs
            .last()
            .map_or(0, |l| l.leading_zeros() as usize);
        let u = self.shl(shift);
        let v = divisor.shl(shift);
        let n = v.limbs.len();
        let m = u.limbs.len().saturating_sub(n);
        let mut un = u.limbs.clone();
        un.push(0); // extra limb for Algorithm D
        let vn = &v.limbs;
        let v_top = limb(vn, n.wrapping_sub(1)) as u128;
        let v_next = limb(vn, n.wrapping_sub(2)) as u128;

        let mut q = vec![0u64; m + 1];
        for j in (0..=m).rev() {
            let num = ((limb(&un, j + n) as u128) << 64) | limb(&un, j + n - 1) as u128;
            let mut qhat = num / v_top;
            let mut rhat = num % v_top;
            // Correct qhat down to at most 2 over.
            while qhat >> 64 != 0 || qhat * v_next > ((rhat << 64) | limb(&un, j + n - 2) as u128) {
                qhat -= 1;
                rhat += v_top;
                if rhat >> 64 != 0 {
                    break;
                }
            }
            // Multiply-and-subtract: un[j..j+n+1] -= qhat * vn.
            let mut borrow: i128 = 0;
            let mut carry: u128 = 0;
            for (i, &v_i) in vn.iter().enumerate() {
                let p = qhat * v_i as u128 + carry;
                carry = p >> 64;
                let sub = (limb(&un, j + i) as i128) - ((p as u64) as i128) + borrow;
                set_limb(&mut un, j + i, sub as u64);
                borrow = sub >> 64;
            }
            let sub = (limb(&un, j + n) as i128) - (carry as i128) + borrow;
            set_limb(&mut un, j + n, sub as u64);
            if sub < 0 {
                // qhat was one too large: add back.
                qhat -= 1;
                let mut carry2 = 0u128;
                for (i, &v_i) in vn.iter().enumerate() {
                    let s = limb(&un, j + i) as u128 + v_i as u128 + carry2;
                    set_limb(&mut un, j + i, s as u64);
                    carry2 = s >> 64;
                }
                let top = limb(&un, j + n).wrapping_add(carry2 as u64);
                set_limb(&mut un, j + n, top);
            }
            set_limb(&mut q, j, qhat as u64);
        }

        let mut quot = BigUint { limbs: q };
        quot.normalize();
        un.truncate(n);
        let mut rem = BigUint { limbs: un };
        rem.normalize();
        (quot, rem.shr(shift))
    }

    /// `self mod m`.
    pub fn rem(&self, m: &BigUint) -> BigUint {
        self.div_rem(m).1
    }

    /// `(self * other) mod m`.
    pub fn mulmod(&self, other: &BigUint, m: &BigUint) -> BigUint {
        self.mul(other).rem(m)
    }

    /// `self^exp mod m` via fixed-window (w = 4) exponentiation, using
    /// Montgomery multiplication when `m` is odd.
    ///
    /// # Panics
    ///
    /// Panics if `m` is zero.
    pub fn modpow(&self, exp: &BigUint, m: &BigUint) -> BigUint {
        assert!(!m.is_zero(), "modpow with zero modulus");
        if m.is_one() {
            return BigUint::zero();
        }
        match MontgomeryCtx::new(m) {
            Some(ctx) => ctx.modpow(self, exp),
            None => self.modpow_windowed_plain(exp, m),
        }
    }

    /// `self^exp mod m` via bit-at-a-time square-and-multiply with a full
    /// division per step — the original implementation, kept as the
    /// reference the fast paths are tested (and benchmarked) against.
    ///
    /// # Panics
    ///
    /// Panics if `m` is zero.
    pub fn modpow_schoolbook(&self, exp: &BigUint, m: &BigUint) -> BigUint {
        assert!(!m.is_zero(), "modpow with zero modulus");
        if m.is_one() {
            return BigUint::zero();
        }
        let mut result = BigUint::one();
        let mut base = self.rem(m);
        for i in 0..exp.bit_len() {
            if exp.bit(i) {
                result = result.mulmod(&base, m);
            }
            base = base.mulmod(&base, m);
        }
        result
    }

    /// Fixed-window exponentiation with plain (divide-to-reduce)
    /// multiplication, for even moduli where Montgomery form does not
    /// apply. `m` must be > 1.
    fn modpow_windowed_plain(&self, exp: &BigUint, m: &BigUint) -> BigUint {
        let bits = exp.bit_len();
        if bits == 0 {
            return BigUint::one();
        }
        let base = self.rem(m);
        // tbl[i] = base^(i+1) mod m for i in 0..15.
        let mut tbl = Vec::with_capacity(15);
        let mut cur = base.clone();
        tbl.push(cur.clone());
        for _ in 1..15 {
            cur = cur.mulmod(&base, m);
            tbl.push(cur.clone());
        }
        let windows = bits.div_ceil(4);
        let mut acc = BigUint::one();
        for w in (0..windows).rev() {
            if w != windows - 1 {
                for _ in 0..4 {
                    acc = acc.mulmod(&acc, m);
                }
            }
            let d = exp.window4(w);
            if let Some(t) = (d != 0).then(|| tbl.get(d as usize - 1)).flatten() {
                acc = acc.mulmod(t, m);
            }
        }
        acc
    }

    /// The 4-bit window `w` of the exponent: bits `4w .. 4w+4`.
    fn window4(&self, w: usize) -> u8 {
        let bit = 4 * w;
        let limb = bit / 64;
        let off = bit % 64;
        // A window never straddles limbs (64 is a multiple of 4).
        (self.limbs.get(limb).copied().unwrap_or(0) >> off) as u8 & 0xf
    }

    /// Modular multiplicative inverse via the extended Euclidean algorithm.
    ///
    /// Returns `None` when `gcd(self, m) != 1`.
    pub fn modinv(&self, m: &BigUint) -> Option<BigUint> {
        // Extended Euclid on (a, m), tracking only the coefficient of a.
        // Signs handled by tracking (value, is_negative).
        if m.is_zero() {
            return None;
        }
        let mut r0 = self.rem(m);
        let mut r1 = m.clone();
        let mut s0 = (BigUint::one(), false);
        let mut s1 = (BigUint::zero(), false);
        while !r0.is_zero() {
            let (q, r) = r1.div_rem(&r0);
            // (r1, r0) = (r0, r)
            r1 = std::mem::replace(&mut r0, r);
            // (s1, s0) = (s0, s1 - q*s0)
            let qs0 = (q.mul(&s0.0), s0.1);
            let new_s0 = signed_sub(&s1, &qs0);
            s1 = std::mem::replace(&mut s0, new_s0);
        }
        if !r1.is_one() {
            return None;
        }
        // s1 is the coefficient for self; reduce to [0, m).
        let (val, neg) = s1;
        let val = val.rem(m);
        Some(if neg && !val.is_zero() {
            m.sub(&val)
        } else {
            val
        })
    }

    /// Jacobi symbol `(self / n)` for odd `n > 1`, via the binary
    /// algorithm (gcd-shaped, no factoring).
    ///
    /// Returns `None` when `n` is even or < 3 — the symbol is undefined
    /// there. For prime `n` this is the Legendre symbol: `1` for quadratic
    /// residues, `-1` for non-residues, `0` when `n` divides `self`.
    pub fn jacobi(&self, n: &BigUint) -> Option<i8> {
        if n.is_even() || n.is_one() || n.is_zero() {
            return None;
        }
        let mut a = self.rem(n);
        let mut n = n.clone();
        let mut result: i8 = 1;
        while !a.is_zero() {
            while a.is_even() {
                a = a.shr(1);
                // (2/n) = -1 iff n ≡ 3, 5 (mod 8).
                let n_mod_8 = n.limbs.first().copied().unwrap_or(0) & 7;
                if n_mod_8 == 3 || n_mod_8 == 5 {
                    result = -result;
                }
            }
            std::mem::swap(&mut a, &mut n);
            // Quadratic reciprocity: flip when both ≡ 3 (mod 4).
            let a_mod_4 = a.limbs.first().copied().unwrap_or(0) & 3;
            let n_mod_4 = n.limbs.first().copied().unwrap_or(0) & 3;
            if a_mod_4 == 3 && n_mod_4 == 3 {
                result = -result;
            }
            a = a.rem(&n);
        }
        Some(if n.is_one() { result } else { 0 })
    }

    /// Uniformly random integer in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn random_below(bound: &BigUint, rng: &mut impl Rng) -> BigUint {
        assert!(!bound.is_zero(), "random_below(0)");
        let bits = bound.bit_len();
        let limbs = bits.div_ceil(64);
        let top_mask = if bits.is_multiple_of(64) {
            u64::MAX
        } else {
            (1u64 << (bits % 64)) - 1
        };
        loop {
            let mut l: Vec<u64> = (0..limbs).map(|_| rng.gen()).collect();
            if let Some(top) = l.last_mut() {
                *top &= top_mask;
            }
            let mut candidate = BigUint { limbs: l };
            candidate.normalize();
            if &candidate < bound {
                return candidate;
            }
        }
    }

    /// Random integer with exactly `bits` significant bits (top bit set).
    pub fn random_bits(bits: usize, rng: &mut impl Rng) -> BigUint {
        assert!(bits > 0, "random_bits(0)");
        let limbs = bits.div_ceil(64);
        let mut l: Vec<u64> = (0..limbs).map(|_| rng.gen()).collect();
        let top_bit = (bits - 1) % 64;
        // `bits > 0` was asserted, so at least one limb exists.
        if let Some(top) = l.last_mut() {
            *top &= if top_bit == 63 {
                u64::MAX
            } else {
                (1u64 << (top_bit + 1)) - 1
            };
            *top |= 1u64 << top_bit;
        }
        let mut n = BigUint { limbs: l };
        n.normalize();
        n
    }

    /// Miller–Rabin probabilistic primality test with `rounds` random bases.
    pub fn is_probable_prime(&self, rounds: u32, rng: &mut impl Rng) -> bool {
        if self < &BigUint::from(2u64) {
            return false;
        }
        // Trial division by small primes.
        const SMALL_PRIMES: [u64; 20] = [
            2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61, 67, 71,
        ];
        for &p in &SMALL_PRIMES {
            let pb = BigUint::from(p);
            if self == &pb {
                return true;
            }
            if self.rem(&pb).is_zero() {
                return false;
            }
        }
        // Write self-1 = d * 2^s.
        let n_minus_1 = self.sub(&BigUint::one());
        let s = {
            let mut s = 0usize;
            while !n_minus_1.bit(s) {
                s += 1;
            }
            s
        };
        let d = n_minus_1.shr(s);
        let two = BigUint::from(2u64);
        let upper = self.sub(&BigUint::from(3u64));
        // Trial division already rejected even numbers, so a Montgomery
        // context always exists; building it once amortizes the setup over
        // every witness round.
        let Some(ctx) = MontgomeryCtx::new(self) else {
            return false;
        };
        'witness: for _ in 0..rounds {
            // a in [2, n-2]
            let a = BigUint::random_below(&upper, rng).add(&two);
            let mut x = ctx.modpow(&a, &d);
            if x.is_one() || x == n_minus_1 {
                continue;
            }
            for _ in 0..s - 1 {
                x = ctx.mulmod(&x, &x);
                if x == n_minus_1 {
                    continue 'witness;
                }
            }
            return false;
        }
        true
    }
}

/// `a + b*c + carry`, returned as `(low, high)` limbs.
#[inline(always)]
fn mac(a: u64, b: u64, c: u64, carry: u64) -> (u64, u64) {
    let t = a as u128 + (b as u128) * (c as u128) + carry as u128;
    (t as u64, (t >> 64) as u64)
}

/// Limb `i` of `a`, reading 0 past the end — the panic-free accessor the
/// arithmetic kernels use instead of indexing (an implicit zero-extension,
/// which is exactly the little-endian semantics).
#[inline(always)]
fn limb(a: &[u64], i: usize) -> u64 {
    a.get(i).copied().unwrap_or(0)
}

/// Writes limb `i` of `a`. Every caller sizes its buffer up front, so the
/// index is always in range; a miss fails the debug assertion (and the
/// equivalence suites) rather than aborting a release build.
#[inline(always)]
fn set_limb(a: &mut [u64], i: usize, v: u64) {
    debug_assert!(i < a.len(), "limb write out of range");
    if let Some(slot) = a.get_mut(i) {
        *slot = v;
    }
}

/// `a >= b` on equal-length little-endian limb slices.
fn limbs_ge(a: &[u64], b: &[u64]) -> bool {
    for (x, y) in a.iter().rev().zip(b.iter().rev()) {
        if x != y {
            return x > y;
        }
    }
    true
}

/// `a -= b` on equal-length little-endian limb slices (no final borrow).
fn limbs_sub_assign(a: &mut [u64], b: &[u64]) {
    let mut borrow = 0u64;
    for (x, &y) in a.iter_mut().zip(b.iter()) {
        let (d1, b1) = x.overflowing_sub(y);
        let (d2, b2) = d1.overflowing_sub(borrow);
        *x = d2;
        borrow = (b1 as u64) + (b2 as u64);
    }
}

/// Precomputed Montgomery-reduction state for an odd modulus `m > 1`.
///
/// Values in "Montgomery form" are stored as fixed `k`-limb vectors holding
/// `x·R mod m` where `R = 2^(64k)` and `k` is the limb count of `m`. One
/// [`MontgomeryCtx::mont_mul`] (CIOS: coarsely integrated operand scanning)
/// replaces a schoolbook multiply *and* a Knuth division, which is what
/// makes the exponentiation loops cheap.
///
/// The public methods speak plain [`BigUint`]s: inputs are reduced mod `m`
/// and converted in, results converted back out.
#[derive(Debug, Clone)]
pub struct MontgomeryCtx {
    m: BigUint,
    /// `m` as exactly `k` limbs.
    m_limbs: Vec<u64>,
    /// Limb count of the modulus.
    k: usize,
    /// `-m^{-1} mod 2^64`.
    n0: u64,
    /// `R mod m` — the Montgomery form of 1.
    r1: Vec<u64>,
    /// `R^2 mod m` — multiplying by this converts into Montgomery form.
    r2: Vec<u64>,
}

impl MontgomeryCtx {
    /// Builds a context for `m`. Returns `None` unless `m` is odd and > 1.
    pub fn new(m: &BigUint) -> Option<Self> {
        if m.is_even() || m.is_one() || m.is_zero() {
            return None;
        }
        let k = m.limbs.len();
        let m_limbs = m.limbs.clone();
        // Newton's iteration for m0^{-1} mod 2^64: doubles correct bits each
        // step, 6 steps cover 64 bits (odd m0 makes m0 its own inverse mod 8).
        let m0 = limb(&m_limbs, 0);
        let mut inv: u64 = m0;
        for _ in 0..6 {
            inv = inv.wrapping_mul(2u64.wrapping_sub(m0.wrapping_mul(inv)));
        }
        let n0 = inv.wrapping_neg();
        let to_k = |x: BigUint| {
            let mut l = x.limbs;
            l.resize(k, 0);
            l
        };
        let r1 = to_k(BigUint::one().shl(64 * k).rem(m));
        let r2 = to_k(BigUint::one().shl(128 * k).rem(m));
        Some(MontgomeryCtx {
            m: m.clone(),
            m_limbs,
            k,
            n0,
            r1,
            r2,
        })
    }

    /// The modulus this context reduces by.
    pub fn modulus(&self) -> &BigUint {
        &self.m
    }

    /// Montgomery product `a·b·R^{-1} mod m` of two `k`-limb values (CIOS).
    fn mont_mul(&self, a: &[u64], b: &[u64]) -> Vec<u64> {
        let k = self.k;
        let m = &self.m_limbs;
        let mut t = vec![0u64; k + 2];
        for &ai in a.iter().take(k) {
            // t[..k] += ai * b, with the carry running into t[k], t[k+1].
            let mut carry = 0u64;
            for (tj, &bj) in t.iter_mut().zip(b.iter()) {
                let (lo, hi) = mac(*tj, ai, bj, carry);
                *tj = lo;
                carry = hi;
            }
            let (s, c) = limb(&t, k).overflowing_add(carry);
            let top = limb(&t, k + 1) + c as u64;
            set_limb(&mut t, k, s);
            set_limb(&mut t, k + 1, top);
            // Choose mu so t + mu*m clears the low limb, then shift down.
            let mu = limb(&t, 0).wrapping_mul(self.n0);
            let (_, mut carry) = mac(limb(&t, 0), mu, limb(m, 0), 0);
            for j in 1..k {
                let (lo, hi) = mac(limb(&t, j), mu, limb(m, j), carry);
                set_limb(&mut t, j - 1, lo);
                carry = hi;
            }
            let (s, c) = limb(&t, k).overflowing_add(carry);
            let top = limb(&t, k + 1) + c as u64;
            set_limb(&mut t, k - 1, s);
            set_limb(&mut t, k, top);
            set_limb(&mut t, k + 1, 0);
        }
        // t < 2m here, so at most one subtraction normalizes it.
        let needs_sub = limb(&t, k) != 0 || limbs_ge(t.get(..k).unwrap_or(&[]), m);
        if needs_sub {
            if let Some(head) = t.get_mut(..k) {
                limbs_sub_assign(head, m);
            }
        }
        t.truncate(k);
        t
    }

    /// Converts `x` (reduced mod `m`) into Montgomery form.
    fn mont_encode(&self, x: &BigUint) -> Vec<u64> {
        let mut l = x.rem(&self.m).limbs;
        l.resize(self.k, 0);
        self.mont_mul(&l, &self.r2)
    }

    /// Converts out of Montgomery form into a normalized [`BigUint`].
    fn mont_decode(&self, a: &[u64]) -> BigUint {
        let mut one = vec![0u64; self.k];
        set_limb(&mut one, 0, 1);
        let mut n = BigUint {
            limbs: self.mont_mul(a, &one),
        };
        n.normalize();
        n
    }

    /// `(a * b) mod m`.
    pub fn mulmod(&self, a: &BigUint, b: &BigUint) -> BigUint {
        let am = self.mont_encode(a);
        let bm = self.mont_encode(b);
        self.mont_decode(&self.mont_mul(&am, &bm))
    }

    /// `base^exp mod m` via fixed-window (w = 4) Montgomery exponentiation.
    pub fn modpow(&self, base: &BigUint, exp: &BigUint) -> BigUint {
        let bits = exp.bit_len();
        if bits == 0 {
            return self.mont_decode(&self.r1);
        }
        let b = self.mont_encode(base);
        self.mont_decode(&self.pow_mont(&b, exp))
    }

    /// Windowed exponentiation on a Montgomery-form base; `exp` nonzero.
    fn pow_mont(&self, b: &[u64], exp: &BigUint) -> Vec<u64> {
        // tbl[i] = b^(i+1).
        let mut tbl = Vec::with_capacity(15);
        let mut cur = b.to_vec();
        tbl.push(cur.clone());
        for _ in 1..15 {
            cur = self.mont_mul(&cur, b);
            tbl.push(cur.clone());
        }
        let windows = exp.bit_len().div_ceil(4);
        let mut acc = self.r1.clone();
        for w in (0..windows).rev() {
            if w != windows - 1 {
                for _ in 0..4 {
                    acc = self.mont_mul(&acc, &acc);
                }
            }
            let d = exp.window4(w);
            if let Some(t) = (d != 0).then(|| tbl.get(d as usize - 1)).flatten() {
                acc = self.mont_mul(&acc, t);
            }
        }
        acc
    }

    /// `Π base_i ^ exp_i mod m` via interleaved fixed-window (w = 4)
    /// multi-exponentiation: every term shares one squaring chain of
    /// `max_i bits(exp_i)` squarings, so the marginal cost of each extra
    /// term is only its window table (14 multiplies) plus one multiply per
    /// nonzero exponent window — the batch-verification workhorse.
    pub fn multi_pow(&self, pairs: &[(&BigUint, &BigUint)]) -> BigUint {
        let bits = pairs.iter().map(|(_, e)| e.bit_len()).max().unwrap_or(0);
        if bits == 0 {
            return self.mont_decode(&self.r1);
        }
        // tables[i][j-1] = base_i^j in Montgomery form, j in 1..=15.
        let tables: Vec<Vec<Vec<u64>>> = pairs
            .iter()
            .map(|(base, _)| {
                let b = self.mont_encode(base);
                let mut tbl = Vec::with_capacity(15);
                let mut cur = b.clone();
                tbl.push(cur.clone());
                for _ in 1..15 {
                    cur = self.mont_mul(&cur, &b);
                    tbl.push(cur.clone());
                }
                tbl
            })
            .collect();
        let windows = bits.div_ceil(4);
        let mut acc = self.r1.clone();
        for w in (0..windows).rev() {
            if w != windows - 1 {
                for _ in 0..4 {
                    acc = self.mont_mul(&acc, &acc);
                }
            }
            for (i, (_, exp)) in pairs.iter().enumerate() {
                let d = exp.window4(w);
                if d != 0 {
                    if let Some(tbl) = tables.get(i).and_then(|t| t.get(d as usize - 1)) {
                        acc = self.mont_mul(&acc, tbl);
                    }
                }
            }
        }
        self.mont_decode(&acc)
    }

    /// `a^ea · b^eb mod m` via Strauss–Shamir simultaneous exponentiation:
    /// one shared squaring chain over `max(bits(ea), bits(eb))` with a
    /// precomputed `a·b`, instead of two independent exponentiations plus a
    /// final multiply.
    pub fn modpow2(&self, a: &BigUint, ea: &BigUint, b: &BigUint, eb: &BigUint) -> BigUint {
        let am = self.mont_encode(a);
        let bm = self.mont_encode(b);
        let abm = self.mont_mul(&am, &bm);
        let bits = ea.bit_len().max(eb.bit_len());
        let mut acc = self.r1.clone();
        for i in (0..bits).rev() {
            acc = self.mont_mul(&acc, &acc);
            match (ea.bit(i), eb.bit(i)) {
                (true, true) => acc = self.mont_mul(&acc, &abm),
                (true, false) => acc = self.mont_mul(&acc, &am),
                (false, true) => acc = self.mont_mul(&acc, &bm),
                (false, false) => {}
            }
        }
        self.mont_decode(&acc)
    }
}

/// Precomputed fixed-base window table: `base^(j · 16^i) mod m` for every
/// window position `i` and digit `j`.
///
/// Exponentiating a *fixed* base this way needs no squarings at all — one
/// Montgomery multiply per nonzero 4-bit window of the exponent (≤ 40 for a
/// 160-bit exponent), versus ~160 squarings + ~40 multiplies for the
/// sliding loop. Built once per long-lived base (a group generator, a
/// public key) and shared via [`Arc`].
#[derive(Debug, Clone)]
pub struct FixedBaseTable {
    ctx: Arc<MontgomeryCtx>,
    /// `table[i][j-1] = base^(j · 16^i)` in Montgomery form.
    table: Vec<Vec<Vec<u64>>>,
    windows: usize,
}

impl FixedBaseTable {
    /// Precomputes windows for exponents up to `max_exp_bits` bits.
    pub fn new(ctx: Arc<MontgomeryCtx>, base: &BigUint, max_exp_bits: usize) -> Self {
        let windows = max_exp_bits.div_ceil(4).max(1);
        let mut table = Vec::with_capacity(windows);
        // cur = base^(16^i), advanced one window at a time.
        let mut cur = ctx.mont_encode(base);
        for _ in 0..windows {
            let mut row = Vec::with_capacity(15);
            // p walks base^(j·16^i) for j = 1..=15.
            let mut p = cur.clone();
            row.push(p.clone());
            for _ in 1..15 {
                p = ctx.mont_mul(&p, &cur);
                row.push(p.clone());
            }
            // p = base^(15·16^i); one more multiply reaches base^(16^(i+1)).
            cur = ctx.mont_mul(&p, &cur);
            table.push(row);
        }
        FixedBaseTable {
            ctx,
            table,
            windows,
        }
    }

    /// The exponent capacity in bits.
    pub fn max_exp_bits(&self) -> usize {
        self.windows * 4
    }

    /// `base^exp mod m`, or `None` when `exp` exceeds the table's capacity
    /// (callers fall back to a generic exponentiation).
    pub fn pow(&self, exp: &BigUint) -> Option<BigUint> {
        Some(self.ctx.mont_decode(&self.pow_mont(exp)?))
    }

    /// As [`FixedBaseTable::pow`] but staying in Montgomery form, so two
    /// fixed-base powers can be combined with a single reduction.
    fn pow_mont(&self, exp: &BigUint) -> Option<Vec<u64>> {
        if exp.bit_len() > self.windows * 4 {
            return None;
        }
        let mut acc = self.ctx.r1.clone();
        for w in 0..exp.bit_len().div_ceil(4) {
            let d = exp.window4(w);
            if d == 0 {
                continue;
            }
            if let Some(t) = self.table.get(w).and_then(|row| row.get(d as usize - 1)) {
                acc = self.ctx.mont_mul(&acc, t);
            }
        }
        Some(acc)
    }

    /// `a^ea · b^eb mod m` where both tables share a modulus — the verify
    /// hot path (`g^s · y^{q-e}`) as pure table lookups plus one combine.
    ///
    /// Returns `None` when either exponent exceeds its table, or when the
    /// two tables were built over different moduli.
    pub fn pow_mul(&self, ea: &BigUint, other: &FixedBaseTable, eb: &BigUint) -> Option<BigUint> {
        if self.ctx.m != other.ctx.m {
            return None;
        }
        let a = self.pow_mont(ea)?;
        let b = other.pow_mont(eb)?;
        Some(self.ctx.mont_decode(&self.ctx.mont_mul(&a, &b)))
    }
}

/// Value of one hex digit. [`BigUint::from_hex`] parses embedded,
/// already-verified constants, so an invalid character is a programming
/// error: it fails this debug assertion and reads as 0 in release.
fn hex_val(c: u8) -> u8 {
    match c {
        b'0'..=b'9' => c - b'0',
        b'a'..=b'f' => c - b'a' + 10,
        b'A'..=b'F' => c - b'A' + 10,
        _ => {
            debug_assert!(false, "invalid hex character {:?}", c as char);
            0
        }
    }
}

/// `a - b` on sign-magnitude pairs.
fn signed_sub(a: &(BigUint, bool), b: &(BigUint, bool)) -> (BigUint, bool) {
    match (a.1, b.1) {
        (an, bn) if an == bn => {
            // Same sign: magnitude subtraction.
            if a.0 >= b.0 {
                (a.0.sub(&b.0), an)
            } else {
                (b.0.sub(&a.0), !an)
            }
        }
        (an, _) => (a.0.add(&b.0), an),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn big(v: u128) -> BigUint {
        BigUint::from(v)
    }

    #[test]
    fn roundtrip_bytes_and_hex() {
        let n = BigUint::from_hex("deadbeefcafebabe0123456789abcdef00");
        assert_eq!(n.to_hex(), "deadbeefcafebabe0123456789abcdef00");
        assert_eq!(BigUint::from_be_bytes(&n.to_be_bytes()), n);
        assert_eq!(BigUint::zero().to_hex(), "0");
        assert_eq!(BigUint::from_hex("0"), BigUint::zero());
        assert_eq!(BigUint::from_hex("f"), BigUint::from(15u64));
    }

    #[test]
    fn add_sub_roundtrip() {
        let a = BigUint::from_hex("ffffffffffffffffffffffffffffffff");
        let b = BigUint::from_hex("1");
        let c = a.add(&b);
        assert_eq!(c.to_hex(), "100000000000000000000000000000000");
        assert_eq!(c.sub(&b), a);
        assert_eq!(c.sub(&a), b);
    }

    #[test]
    fn mul_known() {
        assert_eq!(
            big(u64::MAX as u128).mul(&big(u64::MAX as u128)),
            BigUint::from((u64::MAX as u128) * (u64::MAX as u128))
        );
        assert_eq!(big(0).mul(&big(12345)), BigUint::zero());
    }

    #[test]
    fn div_rem_small() {
        let (q, r) = big(1_000_003).div_rem(&big(997));
        assert_eq!(q, big(1_000_003 / 997));
        assert_eq!(r, big(1_000_003 % 997));
    }

    #[test]
    fn div_rem_multi_limb() {
        let a = BigUint::from_hex("123456789abcdef0123456789abcdef0123456789abcdef0");
        let b = BigUint::from_hex("fedcba9876543210ff");
        let (q, r) = a.div_rem(&b);
        assert_eq!(q.mul(&b).add(&r), a);
        assert!(r < b);
    }

    #[test]
    fn div_rem_randomized_invariant() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..200 {
            let a = BigUint::random_bits(1 + rng.gen_range(1..512), &mut rng);
            let b = BigUint::random_bits(1 + rng.gen_range(1..256), &mut rng);
            let (q, r) = a.div_rem(&b);
            assert_eq!(q.mul(&b).add(&r), a, "a={a} b={b}");
            assert!(r < b);
        }
    }

    #[test]
    fn shifts() {
        let a = BigUint::from_hex("1234567890abcdef");
        assert_eq!(a.shl(4).to_hex(), "1234567890abcdef0");
        assert_eq!(a.shl(64).shr(64), a);
        assert_eq!(a.shr(200), BigUint::zero());
        assert_eq!(a.shl(131).shr(131), a);
    }

    #[test]
    fn modpow_fermat() {
        // 2^(p-1) = 1 mod p for prime p.
        let p = big(1_000_000_007);
        let r = big(2).modpow(&p.sub(&BigUint::one()), &p);
        assert!(r.is_one());
    }

    #[test]
    fn modpow_big_modulus() {
        // Check against a relation computable by repeated squaring in u128.
        let m = BigUint::from_hex("ffffffffffffffffffffffffffffff61"); // arbitrary odd modulus
        let x = big(3).modpow(&big(1 << 20), &m);
        // (3^(2^20)) mod m == ((3^(2^19)) mod m)^2 mod m
        let half = big(3).modpow(&big(1 << 19), &m);
        assert_eq!(half.mulmod(&half, &m), x);
    }

    #[test]
    fn modinv_works() {
        let m = big(1_000_000_007);
        let a = big(123456789);
        let inv = a.modinv(&m).unwrap();
        assert!(a.mulmod(&inv, &m).is_one());
        // Non-invertible case.
        assert_eq!(big(6).modinv(&big(9)), None);
    }

    #[test]
    fn modinv_randomized() {
        let mut rng = StdRng::seed_from_u64(7);
        let p = BigUint::from(0xffff_fffb_u64); // 2^32 - 5, prime
        for _ in 0..100 {
            let a = BigUint::random_below(&p, &mut rng);
            if a.is_zero() {
                continue;
            }
            let inv = a.modinv(&p).expect("prime modulus");
            assert!(a.mulmod(&inv, &p).is_one());
        }
    }

    #[test]
    fn miller_rabin_classifies_known_values() {
        let mut rng = StdRng::seed_from_u64(1);
        for p in [2u64, 3, 5, 101, 65537, 1_000_000_007, 0xffff_fffb] {
            assert!(
                BigUint::from(p).is_probable_prime(20, &mut rng),
                "{p} should be prime"
            );
        }
        for c in [
            1u64,
            4,
            100,
            65535,
            561, /* Carmichael */
            1_000_000_001,
        ] {
            assert!(
                !BigUint::from(c).is_probable_prime(20, &mut rng),
                "{c} should be composite"
            );
        }
    }

    #[test]
    fn random_below_in_range() {
        let mut rng = StdRng::seed_from_u64(5);
        let bound = BigUint::from_hex("10000000000000001");
        for _ in 0..100 {
            assert!(BigUint::random_below(&bound, &mut rng) < bound);
        }
    }

    #[test]
    fn random_bits_has_exact_length() {
        let mut rng = StdRng::seed_from_u64(9);
        for bits in [1usize, 7, 63, 64, 65, 160, 512] {
            assert_eq!(BigUint::random_bits(bits, &mut rng).bit_len(), bits);
        }
    }

    #[test]
    fn ordering() {
        assert!(big(5) < big(6));
        assert!(BigUint::from_hex("100000000000000000") > BigUint::from_hex("ffffffffffffffff"));
    }

    #[test]
    fn montgomery_rejects_even_or_trivial_moduli() {
        assert!(MontgomeryCtx::new(&BigUint::zero()).is_none());
        assert!(MontgomeryCtx::new(&BigUint::one()).is_none());
        assert!(MontgomeryCtx::new(&big(1 << 20)).is_none());
        assert!(MontgomeryCtx::new(&big(997)).is_some());
    }

    #[test]
    fn montgomery_mulmod_matches_schoolbook() {
        let mut rng = StdRng::seed_from_u64(11);
        for bits in [17usize, 64, 65, 127, 256, 521] {
            let mut m = BigUint::random_bits(bits, &mut rng);
            if m.is_even() {
                m = m.add(&BigUint::one());
            }
            if m.is_one() {
                continue;
            }
            let ctx = MontgomeryCtx::new(&m).unwrap();
            for _ in 0..20 {
                // Deliberately unreduced operands (up to 2x the modulus bits).
                let a = BigUint::random_bits(1 + rng.gen_range(1..2 * bits), &mut rng);
                let b = BigUint::random_bits(1 + rng.gen_range(1..2 * bits), &mut rng);
                assert_eq!(ctx.mulmod(&a, &b), a.mulmod(&b, &m), "m={m} a={a} b={b}");
            }
        }
    }

    #[test]
    fn montgomery_modpow_matches_schoolbook() {
        let mut rng = StdRng::seed_from_u64(13);
        for bits in [33usize, 64, 128, 255] {
            let mut m = BigUint::random_bits(bits, &mut rng);
            if m.is_even() {
                m = m.add(&BigUint::one());
            }
            let ctx = MontgomeryCtx::new(&m).unwrap();
            for _ in 0..10 {
                let b = BigUint::random_bits(1 + rng.gen_range(1..bits), &mut rng);
                let e = BigUint::random_bits(1 + rng.gen_range(1..160), &mut rng);
                assert_eq!(
                    ctx.modpow(&b, &e),
                    b.modpow_schoolbook(&e, &m),
                    "m={m} b={b} e={e}"
                );
            }
        }
    }

    #[test]
    fn montgomery_modpow_edge_cases() {
        let m = BigUint::from_hex("ffffffffffffffffffffffffffffff61");
        let ctx = MontgomeryCtx::new(&m).unwrap();
        let m1 = m.sub(&BigUint::one());
        for b in [BigUint::zero(), BigUint::one(), m1.clone(), m.clone()] {
            for e in [BigUint::zero(), BigUint::one(), big(2), m1.clone()] {
                assert_eq!(
                    ctx.modpow(&b, &e),
                    b.modpow_schoolbook(&e, &m),
                    "b={b} e={e}"
                );
            }
        }
    }

    #[test]
    fn modpow_dispatches_even_moduli_correctly() {
        // Even moduli bypass Montgomery; both paths must agree with schoolbook.
        let mut rng = StdRng::seed_from_u64(17);
        for _ in 0..20 {
            let m = BigUint::random_bits(1 + rng.gen_range(2..128), &mut rng);
            if m.is_one() || m.is_zero() {
                continue;
            }
            let b = BigUint::random_bits(1 + rng.gen_range(1..128), &mut rng);
            let e = BigUint::random_bits(1 + rng.gen_range(1..96), &mut rng);
            assert_eq!(b.modpow(&e, &m), b.modpow_schoolbook(&e, &m), "m={m}");
        }
    }

    #[test]
    fn modpow2_matches_separate_exponentiations() {
        let mut rng = StdRng::seed_from_u64(19);
        let m = BigUint::from_hex("ffffffffffffffffffffffffffffff61");
        let ctx = MontgomeryCtx::new(&m).unwrap();
        for _ in 0..20 {
            let a = BigUint::random_below(&m, &mut rng);
            let b = BigUint::random_below(&m, &mut rng);
            let ea = BigUint::random_bits(1 + rng.gen_range(1..160), &mut rng);
            let eb = BigUint::random_bits(1 + rng.gen_range(1..160), &mut rng);
            let want = a
                .modpow_schoolbook(&ea, &m)
                .mulmod(&b.modpow_schoolbook(&eb, &m), &m);
            assert_eq!(ctx.modpow2(&a, &ea, &b, &eb), want);
        }
        // Degenerate exponents.
        let a = big(7);
        let b = big(11);
        assert_eq!(
            ctx.modpow2(&a, &BigUint::zero(), &b, &BigUint::zero()),
            BigUint::one()
        );
        assert_eq!(
            ctx.modpow2(&a, &BigUint::one(), &b, &BigUint::zero()),
            a.rem(&m)
        );
    }

    #[test]
    fn jacobi_matches_euler_criterion() {
        // For prime p the Jacobi symbol is the Legendre symbol, which the
        // Euler criterion computes as a^((p-1)/2) mod p.
        let mut rng = StdRng::seed_from_u64(31);
        for p in [1_000_000_007u64, 0xffff_fffb, 997] {
            let p = BigUint::from(p);
            let exp = p.sub(&BigUint::one()).shr(1);
            for _ in 0..50 {
                let a = BigUint::random_below(&p, &mut rng);
                let euler = a.modpow(&exp, &p);
                let want: i8 = if euler.is_zero() {
                    0
                } else if euler.is_one() {
                    1
                } else {
                    assert_eq!(euler, p.sub(&BigUint::one()));
                    -1
                };
                assert_eq!(a.jacobi(&p), Some(want), "a={a} p={p}");
            }
        }
    }

    #[test]
    fn jacobi_known_values_and_composite_moduli() {
        // (1/n) = 1 always; (0/n) = 0; classic table entries.
        assert_eq!(big(1).jacobi(&big(9)), Some(1));
        assert_eq!(big(0).jacobi(&big(9)), Some(0));
        assert_eq!(big(2).jacobi(&big(15)), Some(1)); // (2/3)(2/5) = (-1)(-1)
        assert_eq!(big(5).jacobi(&big(21)), Some(1)); // (5/3)(5/7) = (-1)(-1)
        assert_eq!(big(7).jacobi(&big(15)), Some(-1));
        assert_eq!(big(3).jacobi(&big(9)), Some(0)); // shared factor
                                                     // Undefined for even or trivial moduli.
        assert_eq!(big(3).jacobi(&big(8)), None);
        assert_eq!(big(3).jacobi(&BigUint::one()), None);
        assert_eq!(big(3).jacobi(&BigUint::zero()), None);
    }

    #[test]
    fn jacobi_is_multiplicative_in_the_numerator() {
        let mut rng = StdRng::seed_from_u64(37);
        let n = big(10403); // 101 * 103, odd composite
        for _ in 0..50 {
            let a = BigUint::random_below(&n, &mut rng);
            let b = BigUint::random_below(&n, &mut rng);
            let ab = a.mulmod(&b, &n);
            let (ja, jb, jab) = (
                a.jacobi(&n).unwrap(),
                b.jacobi(&n).unwrap(),
                ab.jacobi(&n).unwrap(),
            );
            assert_eq!(jab, ja * jb, "a={a} b={b}");
        }
    }

    #[test]
    fn multi_pow_matches_product_of_schoolbook_powers() {
        let mut rng = StdRng::seed_from_u64(41);
        let m = BigUint::from_hex("ffffffffffffffffffffffffffffff61");
        let ctx = MontgomeryCtx::new(&m).unwrap();
        for k in [1usize, 2, 3, 7, 16] {
            let bases: Vec<BigUint> = (0..k)
                .map(|_| BigUint::random_below(&m, &mut rng))
                .collect();
            let exps: Vec<BigUint> = (0..k)
                .map(|_| BigUint::random_bits(1 + rng.gen_range(1..160), &mut rng))
                .collect();
            let pairs: Vec<(&BigUint, &BigUint)> = bases.iter().zip(exps.iter()).collect();
            let got = ctx.multi_pow(&pairs);
            let mut want = BigUint::one();
            for (b, e) in &pairs {
                want = want.mulmod(&b.modpow_schoolbook(e, &m), &m);
            }
            assert_eq!(got, want, "k={k}");
        }
    }

    #[test]
    fn multi_pow_edge_cases() {
        let m = BigUint::from_hex("ffffffffffffffffffffffffffffff61");
        let ctx = MontgomeryCtx::new(&m).unwrap();
        // Empty product and all-zero exponents are 1.
        assert!(ctx.multi_pow(&[]).is_one());
        let b = big(7);
        let z = BigUint::zero();
        assert!(ctx.multi_pow(&[(&b, &z), (&b, &z)]).is_one());
        // Mixed zero/nonzero exponents.
        let e = big(13);
        assert_eq!(
            ctx.multi_pow(&[(&b, &z), (&b, &e)]),
            b.modpow_schoolbook(&e, &m)
        );
    }

    #[test]
    fn fixed_base_table_matches_modpow() {
        let mut rng = StdRng::seed_from_u64(23);
        let m = BigUint::from_hex("ffffffffffffffffffffffffffffff61");
        let ctx = Arc::new(MontgomeryCtx::new(&m).unwrap());
        let g = big(5);
        let tbl = FixedBaseTable::new(ctx.clone(), &g, 160);
        assert_eq!(tbl.max_exp_bits(), 160);
        for _ in 0..20 {
            let e = BigUint::random_bits(1 + rng.gen_range(1..160), &mut rng);
            assert_eq!(tbl.pow(&e).unwrap(), g.modpow_schoolbook(&e, &m), "e={e}");
        }
        assert_eq!(tbl.pow(&BigUint::zero()).unwrap(), BigUint::one());
        // Exponent past the table's capacity is refused, not mangled.
        assert!(tbl.pow(&BigUint::one().shl(160)).is_none());
    }

    #[test]
    fn fixed_base_pow_mul_combines_two_bases() {
        let mut rng = StdRng::seed_from_u64(29);
        let m = BigUint::from_hex("ffffffffffffffffffffffffffffff61");
        let ctx = Arc::new(MontgomeryCtx::new(&m).unwrap());
        let g = big(5);
        let y = big(1234567891011u64 as u128);
        let tg = FixedBaseTable::new(ctx.clone(), &g, 160);
        let ty = FixedBaseTable::new(ctx.clone(), &y, 160);
        for _ in 0..10 {
            let ea = BigUint::random_bits(1 + rng.gen_range(1..160), &mut rng);
            let eb = BigUint::random_bits(1 + rng.gen_range(1..160), &mut rng);
            let want = g
                .modpow_schoolbook(&ea, &m)
                .mulmod(&y.modpow_schoolbook(&eb, &m), &m);
            assert_eq!(tg.pow_mul(&ea, &ty, &eb).unwrap(), want);
        }
        // Mismatched moduli are refused.
        let other = Arc::new(MontgomeryCtx::new(&big(997)).unwrap());
        let tz = FixedBaseTable::new(other, &big(3), 160);
        assert!(tg.pow_mul(&BigUint::one(), &tz, &BigUint::one()).is_none());
    }
}
