//! Constant-time byte comparison.
//!
//! Comparing a computed digest or MAC against an attacker-supplied value
//! with `==` short-circuits at the first mismatching byte, leaking how
//! much of the value was right through timing. Every digest/signature/MAC
//! comparison on a verification path must go through [`ct_eq`] instead —
//! the workspace lint (rule L4) flags `==`/`!=` on digest-flavoured
//! operands anywhere outside this module.
//!
//! Timing side channels are mostly academic inside a simulator, but the
//! same verification code runs under `sstore-net` against real sockets,
//! so the substrate is honest about how the comparison must be done.

/// Compares two byte slices in time independent of where they differ.
///
/// The comparison always scans `min(a.len(), b.len())` bytes; a length
/// mismatch still returns `false` (lengths are public — both sides of a
/// digest comparison are fixed-width).
#[must_use]
pub fn ct_eq(a: &[u8], b: &[u8]) -> bool {
    let mut diff = u8::from(a.len() != b.len());
    for (x, y) in a.iter().zip(b.iter()) {
        diff |= x ^ y;
    }
    diff == 0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_slices() {
        assert!(ct_eq(b"", b""));
        assert!(ct_eq(b"abc", b"abc"));
        assert!(ct_eq(&[0u8; 32], &[0u8; 32]));
    }

    #[test]
    fn first_and_last_byte_differences() {
        assert!(!ct_eq(b"xbc", b"abc"));
        assert!(!ct_eq(b"abx", b"abc"));
    }

    #[test]
    fn length_mismatch() {
        assert!(!ct_eq(b"ab", b"abc"));
        assert!(!ct_eq(b"abc", b"ab"));
        assert!(!ct_eq(b"", b"a"));
    }
}
