//! HMAC-SHA-256 (RFC 2104).
//!
//! Used for PBFT-lite message authenticators (the paper's §6 contrasts the
//! cheap MACs of Castro–Liskov with signature-based quorum protocols) and
//! for deterministic Schnorr nonce derivation.
//!
//! ```
//! use sstore_crypto::hmac::hmac_sha256;
//!
//! let tag = hmac_sha256(b"shared key", b"pre-prepare");
//! assert_eq!(tag.as_bytes().len(), 32);
//! ```

use crate::sha256::{Digest, Sha256, BLOCK_LEN};

const IPAD: u8 = 0x36;
const OPAD: u8 = 0x5c;

/// Incremental HMAC-SHA-256 computation.
#[derive(Clone, Debug)]
pub struct HmacSha256 {
    inner: Sha256,
    outer: Sha256,
}

impl HmacSha256 {
    /// Creates an HMAC instance keyed with `key` (any length).
    pub fn new(key: &[u8]) -> Self {
        let mut key_block = [0u8; BLOCK_LEN];
        if key.len() > BLOCK_LEN {
            let d = crate::sha256::digest(key);
            for (dst, src) in key_block.iter_mut().zip(d.as_bytes()) {
                *dst = *src;
            }
        } else {
            for (dst, src) in key_block.iter_mut().zip(key) {
                *dst = *src;
            }
        }
        let mut ipad = [0u8; BLOCK_LEN];
        let mut opad = [0u8; BLOCK_LEN];
        for ((i, o), k) in ipad.iter_mut().zip(opad.iter_mut()).zip(key_block) {
            *i = k ^ IPAD;
            *o = k ^ OPAD;
        }
        let mut inner = Sha256::new();
        inner.update(ipad);
        let mut outer = Sha256::new();
        outer.update(opad);
        HmacSha256 { inner, outer }
    }

    /// Absorbs message bytes.
    pub fn update(&mut self, data: impl AsRef<[u8]>) -> &mut Self {
        self.inner.update(data);
        self
    }

    /// Completes the MAC computation.
    pub fn finalize(mut self) -> Digest {
        let inner_digest = self.inner.finalize();
        self.outer.update(inner_digest.as_bytes());
        self.outer.finalize()
    }
}

/// One-shot HMAC-SHA-256 of `message` under `key`.
pub fn hmac_sha256(key: &[u8], message: &[u8]) -> Digest {
    let mut mac = HmacSha256::new(key);
    mac.update(message);
    mac.finalize()
}

/// Constant-time equality of two digests, via [`crate::ct::ct_eq`].
pub fn verify_mac(expected: &Digest, actual: &Digest) -> bool {
    crate::ct::ct_eq(expected.as_bytes(), actual.as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// RFC 4231 test case 1.
    #[test]
    fn rfc4231_case1() {
        let key = [0x0b; 20];
        let tag = hmac_sha256(&key, b"Hi There");
        assert_eq!(
            tag.to_hex(),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
        );
    }

    /// RFC 4231 test case 2 ("Jefe").
    #[test]
    fn rfc4231_case2() {
        let tag = hmac_sha256(b"Jefe", b"what do ya want for nothing?");
        assert_eq!(
            tag.to_hex(),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
        );
    }

    /// RFC 4231 test case 6: key longer than one block.
    #[test]
    fn rfc4231_long_key() {
        let key = [0xaa; 131];
        let tag = hmac_sha256(
            &key,
            b"Test Using Larger Than Block-Size Key - Hash Key First",
        );
        assert_eq!(
            tag.to_hex(),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
        );
    }

    #[test]
    fn incremental_matches_oneshot() {
        let mut mac = HmacSha256::new(b"k");
        mac.update(b"hello ").update(b"world");
        assert_eq!(mac.finalize(), hmac_sha256(b"k", b"hello world"));
    }

    #[test]
    fn different_keys_differ() {
        assert_ne!(hmac_sha256(b"k1", b"m"), hmac_sha256(b"k2", b"m"));
    }

    #[test]
    fn verify_mac_detects_mismatch() {
        let a = hmac_sha256(b"k", b"m");
        let mut bad = *a.as_bytes();
        bad[31] ^= 1;
        assert!(verify_mac(&a, &a.clone()));
        assert!(!verify_mac(&a, &Digest(bad)));
    }
}
