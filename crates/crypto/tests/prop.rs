//! Property-based tests for the cryptographic substrate.

use proptest::prelude::*;

use sstore_crypto::bigint::{BigUint, FixedBaseTable, MontgomeryCtx};
use sstore_crypto::cipher::SealKey;
use sstore_crypto::hmac::hmac_sha256;
use sstore_crypto::sha256::{digest, digest_parts, Sha256};

fn arb_biguint(max_bits: usize) -> impl Strategy<Value = BigUint> {
    proptest::collection::vec(any::<u8>(), 0..max_bits / 8)
        .prop_map(|bytes| BigUint::from_be_bytes(&bytes))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Incremental hashing equals one-shot for arbitrary chunkings.
    #[test]
    fn sha256_chunking_invariant(data in proptest::collection::vec(any::<u8>(), 0..512),
                                 cuts in proptest::collection::vec(any::<usize>(), 0..6)) {
        let mut h = Sha256::new();
        let mut offsets: Vec<usize> = cuts.iter().map(|&c| c % (data.len() + 1)).collect();
        offsets.sort_unstable();
        let mut prev = 0;
        for &o in &offsets {
            h.update(&data[prev..o]);
            prev = o;
        }
        h.update(&data[prev..]);
        prop_assert_eq!(h.finalize(), digest(&data));
    }

    /// digest_parts is injective across part boundaries.
    #[test]
    fn digest_parts_boundary_sensitivity(a in proptest::collection::vec(any::<u8>(), 1..32),
                                         b in proptest::collection::vec(any::<u8>(), 1..32)) {
        let joined = [a.clone(), b.clone()].concat();
        let parts = digest_parts([a.as_slice(), b.as_slice()]);
        let whole = digest_parts([joined.as_slice()]);
        // Same bytes, different part structure ⇒ different digest.
        prop_assert_ne!(parts, whole);
    }

    /// HMAC differs under different keys and different messages.
    #[test]
    fn hmac_key_and_message_sensitivity(k1 in proptest::collection::vec(any::<u8>(), 1..64),
                                        k2 in proptest::collection::vec(any::<u8>(), 1..64),
                                        m in proptest::collection::vec(any::<u8>(), 0..128)) {
        if k1 != k2 {
            prop_assert_ne!(hmac_sha256(&k1, &m), hmac_sha256(&k2, &m));
        }
        let mut m2 = m.clone();
        m2.push(0x01);
        prop_assert_ne!(hmac_sha256(&k1, &m), hmac_sha256(&k1, &m2));
    }

    /// Bigint add/sub are inverses; add is commutative and associative.
    #[test]
    fn bigint_add_sub_laws(a in arb_biguint(256), b in arb_biguint(256), c in arb_biguint(128)) {
        prop_assert_eq!(a.add(&b), b.add(&a));
        prop_assert_eq!(a.add(&b).add(&c), a.add(&c).add(&b));
        prop_assert_eq!(a.add(&b).sub(&b), a.clone());
    }

    /// Multiplication distributes over addition.
    #[test]
    fn bigint_mul_distributive(a in arb_biguint(192), b in arb_biguint(192), c in arb_biguint(192)) {
        prop_assert_eq!(a.mul(&b.add(&c)), a.mul(&b).add(&a.mul(&c)));
    }

    /// Division identity: a = q*b + r with r < b.
    #[test]
    fn bigint_division_identity(a in arb_biguint(384), b in arb_biguint(192)) {
        prop_assume!(!b.is_zero());
        let (q, r) = a.div_rem(&b);
        prop_assert_eq!(q.mul(&b).add(&r), a);
        prop_assert!(r < b);
    }

    /// Shifts match multiplication/division by powers of two.
    #[test]
    fn bigint_shift_laws(a in arb_biguint(200), s in 0usize..70) {
        let two_pow = BigUint::one().shl(s);
        prop_assert_eq!(a.shl(s), a.mul(&two_pow));
        prop_assert_eq!(a.shl(s).shr(s), a.clone());
    }

    /// Byte round trip is the identity.
    #[test]
    fn bigint_byte_roundtrip(a in arb_biguint(320)) {
        prop_assert_eq!(BigUint::from_be_bytes(&a.to_be_bytes()), a.clone());
        prop_assert_eq!(BigUint::from_hex(&a.to_hex()), a);
    }

    /// Modular exponentiation laws: g^(x+y) = g^x * g^y (mod m).
    #[test]
    fn bigint_modpow_homomorphic(g in arb_biguint(64), x in 0u64..512, y in 0u64..512) {
        let m = BigUint::from(0xffff_fffb_u64); // prime
        prop_assume!(!g.is_zero());
        let gx = g.modpow(&BigUint::from(x), &m);
        let gy = g.modpow(&BigUint::from(y), &m);
        let gxy = g.modpow(&BigUint::from(x + y), &m);
        prop_assert_eq!(gx.mulmod(&gy, &m), gxy);
    }

    /// Montgomery multiplication agrees with schoolbook `mulmod` on random
    /// operands, including operands larger than the modulus.
    #[test]
    fn montgomery_mul_matches_schoolbook(a in arb_biguint(320),
                                         b in arb_biguint(320),
                                         m in arb_biguint(256)) {
        prop_assume!(!m.is_even() && !m.is_zero() && !m.is_one());
        let ctx = MontgomeryCtx::new(&m).unwrap();
        prop_assert_eq!(ctx.mulmod(&a, &b), a.mulmod(&b, &m));
    }

    /// Windowed/Montgomery `modpow` agrees with the schoolbook
    /// bit-at-a-time implementation on random operands (both parities of
    /// modulus, since even moduli dispatch to the non-Montgomery window
    /// loop).
    #[test]
    fn modpow_matches_schoolbook(b in arb_biguint(256),
                                 e in arb_biguint(192),
                                 m in arb_biguint(224)) {
        prop_assume!(!m.is_zero());
        prop_assert_eq!(b.modpow(&e, &m), b.modpow_schoolbook(&e, &m));
    }

    /// Equivalence at the edges: base ∈ {0, 1, m-1, m, m+1} and exponent
    /// ∈ {0, 1, 2} all agree with schoolbook under a random odd modulus.
    #[test]
    fn modpow_edge_cases_match_schoolbook(m in arb_biguint(200), e_small in 0u64..3) {
        prop_assume!(!m.is_even() && !m.is_zero() && !m.is_one());
        let one = BigUint::one();
        let bases = [
            BigUint::zero(),
            one.clone(),
            m.sub(&one),
            m.clone(),
            m.add(&one),
        ];
        let e = BigUint::from(e_small);
        let ctx = MontgomeryCtx::new(&m).unwrap();
        for b in bases {
            prop_assert_eq!(b.modpow(&e, &m), b.modpow_schoolbook(&e, &m));
            prop_assert_eq!(ctx.modpow(&b, &e), b.modpow_schoolbook(&e, &m));
        }
    }

    /// Strauss–Shamir double exponentiation equals the product of two
    /// independent schoolbook exponentiations.
    #[test]
    fn modpow2_matches_separate_exponentiations(a in arb_biguint(192),
                                                b in arb_biguint(192),
                                                ea in arb_biguint(160),
                                                eb in arb_biguint(160),
                                                m in arb_biguint(192)) {
        prop_assume!(!m.is_even() && !m.is_zero() && !m.is_one());
        let ctx = MontgomeryCtx::new(&m).unwrap();
        let want = a.modpow_schoolbook(&ea, &m).mulmod(&b.modpow_schoolbook(&eb, &m), &m);
        prop_assert_eq!(ctx.modpow2(&a, &ea, &b, &eb), want);
    }

    /// Fixed-base tables agree with schoolbook exponentiation for every
    /// exponent within capacity, and refuse exponents beyond it.
    #[test]
    fn fixed_base_table_matches_schoolbook(base in arb_biguint(192),
                                           e in arb_biguint(96),
                                           m in arb_biguint(192)) {
        prop_assume!(!m.is_even() && !m.is_zero() && !m.is_one());
        let ctx = std::sync::Arc::new(MontgomeryCtx::new(&m).unwrap());
        let tbl = FixedBaseTable::new(ctx, &base, 96);
        prop_assert_eq!(tbl.pow(&e).unwrap(), base.modpow_schoolbook(&e, &m));
        prop_assert!(tbl.pow(&BigUint::one().shl(96)).is_none());
    }

    /// Sealing round-trips and any corruption is caught.
    #[test]
    fn seal_open_roundtrip_and_tamper(master in proptest::collection::vec(any::<u8>(), 1..32),
                                      payload in proptest::collection::vec(any::<u8>(), 0..256),
                                      nonce in any::<u64>(),
                                      flip_at in any::<usize>()) {
        let key = SealKey::derive(&master, b"prop");
        let sealed = key.seal(&payload, nonce);
        prop_assert_eq!(key.open(&sealed).unwrap(), payload.clone());
        if !sealed.ciphertext.is_empty() {
            let mut bad = sealed.clone();
            let i = flip_at % bad.ciphertext.len();
            bad.ciphertext[i] ^= 0x80;
            prop_assert!(key.open(&bad).is_err());
        }
    }
}

/// Miller–Rabin agrees with trial division on all odd numbers < 2^14.
#[test]
fn miller_rabin_vs_trial_division() {
    use rand::SeedableRng;
    let mut rng = rand::rngs::StdRng::seed_from_u64(1);
    let is_prime_naive = |n: u64| {
        if n < 2 {
            return false;
        }
        let mut d = 2;
        while d * d <= n {
            if n.is_multiple_of(d) {
                return false;
            }
            d += 1;
        }
        true
    };
    for n in (3..1u64 << 14).step_by(2) {
        assert_eq!(
            BigUint::from(n).is_probable_prime(16, &mut rng),
            is_prime_naive(n),
            "disagreement at {n}"
        );
    }
}

/// Generated Schnorr parameter sets validate and keys interoperate.
#[test]
fn generated_params_validate() {
    use rand::SeedableRng;
    use sstore_crypto::schnorr::{SchnorrParams, SigningKey};
    let mut rng = rand::rngs::StdRng::seed_from_u64(99);
    let params = std::sync::Arc::new(SchnorrParams::generate(192, 96, &mut rng));
    params.validate(&mut rng).unwrap();
    let k1 = SigningKey::generate(&params, &mut rng);
    let k2 = SigningKey::generate(&params, &mut rng);
    let sig = k1.sign(b"interop");
    assert!(k1.verifying_key().verify(b"interop", &sig).is_ok());
    assert!(k2.verifying_key().verify(b"interop", &sig).is_err());
}
