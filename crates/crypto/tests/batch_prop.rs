//! Property-based equivalence suite for batch Schnorr verification.
//!
//! The contract of `verify_batch` is exact equivalence with the individual
//! verifier: the batch accepts iff every individual `verify` accepts, and
//! on rejection it names precisely the indices that fail individually —
//! regardless of how many items are forged, how they are forged, or how
//! writers repeat within the batch.

use proptest::prelude::*;

use sstore_crypto::schnorr::{verify_batch, BatchEntry, SchnorrParams, Signature, SigningKey};

/// How a single batch item is corrupted (or not).
#[derive(Debug, Clone, Copy)]
enum Mutation {
    /// Honest signature.
    None,
    /// Flip one byte inside the commitment `r`.
    FlipR(u8),
    /// Flip one byte inside the response scalar `s`.
    FlipS(u8),
    /// Signature over a different message than the one claimed.
    WrongMessage,
    /// Signature by a different writer than the one claimed.
    WrongKey,
    /// Replace `s` with the (out-of-range) group order.
    OversizedS,
    /// Replace `r` with zero.
    ZeroR,
}

fn arb_mutation() -> impl Strategy<Value = Mutation> {
    // Honest arms repeated to bias batches toward mostly-valid items
    // (the interesting regime for bisection).
    prop_oneof![
        Just(Mutation::None),
        Just(Mutation::None),
        Just(Mutation::None),
        Just(Mutation::None),
        Just(Mutation::None),
        any::<u8>().prop_map(Mutation::FlipR),
        any::<u8>().prop_map(Mutation::FlipS),
        Just(Mutation::WrongMessage),
        Just(Mutation::WrongKey),
        Just(Mutation::OversizedS),
        Just(Mutation::ZeroR),
    ]
}

/// Splits a serialized signature into its `(r, s)` byte halves.
fn split_sig(bytes: &[u8]) -> (Vec<u8>, Vec<u8>) {
    let mut len = [0u8; 4];
    len.copy_from_slice(&bytes[..4]);
    let r_len = u32::from_be_bytes(len) as usize;
    (bytes[4..4 + r_len].to_vec(), bytes[4 + r_len..].to_vec())
}

fn join_sig(r: &[u8], s: &[u8]) -> Signature {
    let mut out = Vec::with_capacity(4 + r.len() + s.len());
    out.extend_from_slice(&(r.len() as u32).to_be_bytes());
    out.extend_from_slice(r);
    out.extend_from_slice(s);
    Signature::from_bytes(&out).expect("well-formed rebuild")
}

fn apply_mutation(
    params: &std::sync::Arc<SchnorrParams>,
    keys: &[SigningKey],
    writer: usize,
    message: &[u8],
    mutation: Mutation,
) -> (usize, Signature) {
    let signer = &keys[writer % keys.len()];
    let sig = signer.sign(message);
    let (r, s) = split_sig(&sig.to_bytes());
    match mutation {
        Mutation::None => (writer % keys.len(), sig),
        Mutation::FlipR(pos) => {
            let mut r = r;
            let i = pos as usize % r.len();
            r[i] ^= 0x20;
            (writer % keys.len(), join_sig(&r, &s))
        }
        Mutation::FlipS(pos) => {
            let mut s = s;
            let i = pos as usize % s.len();
            s[i] ^= 0x20;
            (writer % keys.len(), join_sig(&r, &s))
        }
        Mutation::WrongMessage => {
            let mut other = message.to_vec();
            other.push(0xA5);
            (writer % keys.len(), signer.sign(&other))
        }
        Mutation::WrongKey => ((writer + 1) % keys.len(), sig),
        Mutation::OversizedS => (
            writer % keys.len(),
            join_sig(&r, &params.order().to_be_bytes()),
        ),
        Mutation::ZeroR => (writer % keys.len(), join_sig(&[], &s)),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Batch accepts iff every individual verify accepts, and the reported
    /// bad indices are exactly the individually-failing ones.
    #[test]
    fn batch_equivalent_to_individual_verifies(
        specs in proptest::collection::vec((0usize..4, 0u16..1000, arb_mutation()), 0..12)
    ) {
        let params = SchnorrParams::toy();
        let keys: Vec<SigningKey> =
            (0..4).map(|i| SigningKey::from_seed(&params, 7000 + i)).collect();
        let msgs: Vec<Vec<u8>> = specs
            .iter()
            .map(|(w, m, _)| format!("w{w}-m{m}").into_bytes())
            .collect();
        let built: Vec<(usize, Signature)> = specs
            .iter()
            .zip(msgs.iter())
            .map(|((w, _, mutation), msg)| apply_mutation(&params, &keys, *w, msg, *mutation))
            .collect();
        let entries: Vec<BatchEntry<'_>> = built
            .iter()
            .zip(msgs.iter())
            .map(|((claimed, sig), msg)| BatchEntry {
                key: keys[*claimed].verifying_key(),
                message: msg,
                signature: sig,
            })
            .collect();
        // Ground truth: the individual verifier, item by item.
        let expected_bad: Vec<usize> = entries
            .iter()
            .enumerate()
            .filter(|(_, en)| en.key.verify(en.message, en.signature).is_err())
            .map(|(i, _)| i)
            .collect();
        let got = verify_batch(&entries);
        if expected_bad.is_empty() {
            prop_assert_eq!(got, Ok(()));
        } else {
            prop_assert_eq!(got, Err(expected_bad));
        }
    }

    /// A single mutated item in an otherwise-honest batch is always
    /// rejected, and bisection pins exactly that index.
    #[test]
    fn lone_forgery_always_pinpointed(
        n in 2usize..10,
        victim_seed in 0usize..100,
        mutation in arb_mutation(),
    ) {
        let params = SchnorrParams::toy();
        let keys: Vec<SigningKey> =
            (0..3).map(|i| SigningKey::from_seed(&params, 8100 + i)).collect();
        let victim = victim_seed % n;
        let msgs: Vec<Vec<u8>> = (0..n).map(|i| format!("item-{i}").into_bytes()).collect();
        let built: Vec<(usize, Signature)> = msgs
            .iter()
            .enumerate()
            .map(|(i, msg)| {
                let m = if i == victim { mutation } else { Mutation::None };
                apply_mutation(&params, &keys, i, msg, m)
            })
            .collect();
        let entries: Vec<BatchEntry<'_>> = built
            .iter()
            .zip(msgs.iter())
            .map(|((claimed, sig), msg)| BatchEntry {
                key: keys[*claimed].verifying_key(),
                message: msg,
                signature: sig,
            })
            .collect();
        let individually_bad = entries
            .iter()
            .enumerate()
            .filter(|(_, en)| en.key.verify(en.message, en.signature).is_err())
            .map(|(i, _)| i)
            .collect::<Vec<_>>();
        let got = verify_batch(&entries);
        match mutation {
            Mutation::None => {
                prop_assert_eq!(individually_bad.len(), 0);
                prop_assert_eq!(got, Ok(()));
            }
            _ => {
                // Every mutation kind must fail individually and the batch
                // must isolate exactly the victim.
                prop_assert_eq!(individually_bad, vec![victim]);
                prop_assert_eq!(got, Err(vec![victim]));
            }
        }
    }
}
