//! Group selection distributions for the load rig.
//!
//! Real workloads are rarely uniform: a few related-data groups are hot
//! and most are cold. [`Selector`] supports both shapes — uniform (every
//! group equally likely) and zipfian with configurable skew (rank-`k`
//! group chosen with probability ∝ `1 / k^s`), via a precomputed CDF and
//! binary search so a pick is O(log n) with no per-pick allocation.

use rand::rngs::StdRng;
use rand::Rng;

/// Which distribution a [`Selector`] draws from.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Dist {
    /// Every index equally likely.
    Uniform,
    /// Zipfian with the given skew exponent `s > 0` (typical: ~1.0).
    Zipf(f64),
}

impl Dist {
    /// Parses `uniform`, `zipf` (skew 1.1) or `zipf:<skew>`.
    pub fn parse(s: &str) -> Option<Dist> {
        match s {
            "uniform" => Some(Dist::Uniform),
            "zipf" => Some(Dist::Zipf(1.1)),
            other => {
                let skew: f64 = other.strip_prefix("zipf:")?.parse().ok()?;
                if skew.is_finite() && skew > 0.0 {
                    Some(Dist::Zipf(skew))
                } else {
                    None
                }
            }
        }
    }
}

impl std::fmt::Display for Dist {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Dist::Uniform => write!(f, "uniform"),
            Dist::Zipf(s) => write!(f, "zipf:{s}"),
        }
    }
}

/// Draws indices in `[0, n)` from a fixed distribution.
pub struct Selector {
    n: usize,
    /// Cumulative probabilities for zipf; empty for uniform.
    cdf: Vec<f64>,
}

impl Selector {
    /// A selector over `n` indices (`n` must be nonzero).
    pub fn new(n: usize, dist: Dist) -> Selector {
        assert!(n > 0, "selector over zero indices");
        let cdf = match dist {
            Dist::Uniform => Vec::new(),
            Dist::Zipf(s) => {
                let mut weights: Vec<f64> =
                    (0..n).map(|k| 1.0 / ((k + 1) as f64).powf(s)).collect();
                let total: f64 = weights.iter().sum();
                let mut cum = 0.0;
                for w in weights.iter_mut() {
                    cum += *w / total;
                    *w = cum;
                }
                // Guard the tail against float rounding.
                if let Some(last) = weights.last_mut() {
                    *last = 1.0;
                }
                weights
            }
        };
        Selector { n, cdf }
    }

    /// Draws one index.
    pub fn pick(&self, rng: &mut StdRng) -> usize {
        if self.cdf.is_empty() {
            return rng.gen_range(0..self.n);
        }
        let r: f64 = rng.gen();
        self.cdf.partition_point(|&c| c < r).min(self.n - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn parse_accepts_known_shapes() {
        assert_eq!(Dist::parse("uniform"), Some(Dist::Uniform));
        assert_eq!(Dist::parse("zipf"), Some(Dist::Zipf(1.1)));
        assert_eq!(Dist::parse("zipf:0.9"), Some(Dist::Zipf(0.9)));
        assert_eq!(Dist::parse("zipf:-1"), None);
        assert_eq!(Dist::parse("zipf:nan"), None);
        assert_eq!(Dist::parse("pareto"), None);
    }

    #[test]
    fn uniform_covers_all_indices() {
        let sel = Selector::new(16, Dist::Uniform);
        let mut rng = StdRng::seed_from_u64(11);
        let mut seen = [false; 16];
        for _ in 0..2000 {
            seen[sel.pick(&mut rng)] = true;
        }
        assert!(seen.iter().all(|s| *s), "uniform left an index undrawn");
    }

    #[test]
    fn zipf_skews_toward_low_ranks() {
        let sel = Selector::new(64, Dist::Zipf(1.1));
        let mut rng = StdRng::seed_from_u64(7);
        let mut counts = [0u32; 64];
        for _ in 0..20_000 {
            counts[sel.pick(&mut rng)] += 1;
        }
        // Rank 0 must dominate the tail decisively.
        assert!(
            counts[0] > 10 * counts[63].max(1),
            "no zipfian skew: {counts:?}"
        );
        // And the top 8 ranks should hold the majority of the mass.
        let head: u32 = counts[..8].iter().sum();
        assert!(head > 10_000, "head mass {head} too small");
    }

    #[test]
    fn zipf_cdf_is_monotone_and_complete() {
        let sel = Selector::new(100, Dist::Zipf(0.99));
        assert!(sel.cdf.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(*sel.cdf.last().unwrap(), 1.0);
    }

    #[test]
    fn single_index_selector_always_picks_zero() {
        let mut rng = StdRng::seed_from_u64(3);
        for dist in [Dist::Uniform, Dist::Zipf(1.0)] {
            let sel = Selector::new(1, dist);
            for _ in 0..10 {
                assert_eq!(sel.pick(&mut rng), 0);
            }
        }
    }
}
