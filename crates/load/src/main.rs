//! `sstore-load`: sustained-load benchmark rig for the TCP serving path.
//!
//! ```text
//! # self-hosted n=4/b=1 cluster on loopback, 1024 closed-loop sessions:
//! sstore-load --sessions 1024 --workers 4 --duration 10
//!
//! # compare the legacy threaded server against the event loop:
//! sstore-load --compare --sessions 1024 --duration 10
//!
//! # open-loop at a target arrival rate against an external cluster:
//! sstore-load --servers 10.0.0.1:7450,10.0.0.2:7450,... --b 1 \
//!     --mode open --rate 20000
//! ```
//!
//! Each of `--workers` threads drives one pipelining
//! [`sstore_net::PipeClient`] (one protocol client, one socket per
//! server) multiplexing its share of `--sessions` logical sessions. A
//! session issues one operation at a time: a group drawn from `--dist`
//! (zipfian by default — real workloads have hot groups), then a read or
//! write per `--read-pct`. The first operation on a `(session, group)`
//! pair is always a write so later reads have something to find, and
//! every session's data ids are private to it, preserving the protocol's
//! single-writer-per-item rule.
//!
//! Two load modes: `closed` (every session keeps exactly one operation
//! in flight — the saturation throughput measure) and `open` (operations
//! arrive at `--rate` per second regardless of completions; arrivals
//! finding no free session are counted as shed, and latency is measured
//! from the *intended* arrival time, avoiding coordinated omission).
//!
//! Results — throughput plus p50/p99/p999/max/mean latency from
//! HDR-style histograms, split by read/write — print as a summary table
//! and append as one JSON entry to `BENCH_protocol.json` at the repo
//! root (same append-only convention as `BENCH_crypto.json`), so the
//! serving path's perf history accumulates alongside the crypto one.
//!
//! Without `--servers`, the rig self-hosts an `--n`-server cluster on
//! loopback ephemeral ports (`--serving` picks the architecture;
//! `--compare` runs threaded then event-loop and reports the speedup).
//! External servers must be started with matching `--clients ≥ workers`
//! and `--key-seed`.
//!
//! `--batching on|off` (default on) toggles the hot-path amortizations
//! this rig can reach: with `on`, self-hosted servers send the full
//! anti-entropy summary only every 4th gossip round and client submits
//! stay staged until the next pump (one coalesced frame per burst);
//! with `off`, every gossip round summarizes and every submit is
//! flushed to the sockets immediately — one frame per operation, the
//! pre-batching wire behavior. Self-hosted load servers keep no durable
//! store, so the group-commit fsync leg is exercised by the chaos rig
//! (`sstore-chaos --fsync group-commit:N:USEC`), not here.

use std::collections::HashMap;
use std::net::{SocketAddr, TcpListener};
use std::process::exit;
use std::thread;
use std::time::{Duration, Instant, SystemTime};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use sstore_core::client::{ClientOp, OpResult, Outcome};
use sstore_core::directory::{generate_client_keys, Directory};
use sstore_core::types::{Consistency, DataId, GroupId, OpId, ServerId};
use sstore_core::{ClientConfig, ServerConfig, ServerNode};
use sstore_load::hist::Histogram;
use sstore_load::pick::{Dist, Selector};
use sstore_net::{
    NetClientConfig, NetCluster, NetServer, NetServerConfig, PipeClient, ServingMode,
};

const USAGE: &str = "usage: sstore-load [--servers A,B,C,... | --n N] [--b B]
    [--sessions S] [--workers W] [--duration SECS] [--warmup SECS]
    [--read-pct PCT] [--dist uniform|zipf|zipf:SKEW] [--groups G]
    [--value-bytes BYTES] [--consistency mrc|cc]
    [--mode closed|open] [--rate OPS_PER_SEC]
    [--serving event-loop|threaded] [--compare] [--batching on|off]
    [--clients N] [--key-seed SEED] [--seed SEED]
    [--out PATH] [--note STR] [--no-append] [--fail-on-error]";

struct Args {
    servers: Option<Vec<SocketAddr>>,
    n: usize,
    b: usize,
    sessions: usize,
    workers: usize,
    duration: Duration,
    warmup: Duration,
    read_pct: u32,
    dist: Dist,
    groups: u32,
    value_bytes: usize,
    consistency: Consistency,
    mode: Mode,
    rate: f64,
    serving: ServingMode,
    compare: bool,
    batching: bool,
    clients: u16,
    key_seed: u64,
    seed: u64,
    out: String,
    note: String,
    append: bool,
    fail_on_error: bool,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    Closed,
    Open,
}

impl Mode {
    fn name(self) -> &'static str {
        match self {
            Mode::Closed => "closed",
            Mode::Open => "open",
        }
    }
}

fn serving_name(s: ServingMode) -> &'static str {
    match s {
        ServingMode::EventLoop => "event-loop",
        ServingMode::Threaded => "threaded",
    }
}

fn parse_u64(s: &str) -> Option<u64> {
    if let Some(hex) = s.strip_prefix("0x") {
        u64::from_str_radix(hex, 16).ok()
    } else {
        s.parse().ok()
    }
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        servers: None,
        n: 4,
        b: 1,
        sessions: 1024,
        workers: 4,
        duration: Duration::from_secs(10),
        warmup: Duration::from_secs(2),
        read_pct: 90,
        dist: Dist::Zipf(1.1),
        groups: 64,
        value_bytes: 128,
        consistency: Consistency::Mrc,
        mode: Mode::Closed,
        rate: 0.0,
        serving: ServingMode::default(),
        compare: false,
        batching: true,
        clients: 8,
        key_seed: 0x7ea1,
        seed: 0x10ad,
        out: String::new(),
        note: String::new(),
        append: true,
        fail_on_error: false,
    };
    let mut argv = std::env::args().skip(1);
    while let Some(flag) = argv.next() {
        // Value-less switches first.
        match flag.as_str() {
            "--compare" => {
                args.compare = true;
                continue;
            }
            "--no-append" => {
                args.append = false;
                continue;
            }
            "--fail-on-error" => {
                args.fail_on_error = true;
                continue;
            }
            "--help" | "-h" => return Err("help requested".to_string()),
            _ => {}
        }
        let value = argv.next().ok_or_else(|| format!("{flag} needs a value"))?;
        match flag.as_str() {
            "--servers" => {
                let parsed: Result<Vec<SocketAddr>, _> = value.split(',').map(str::parse).collect();
                args.servers = Some(parsed.map_err(|_| "bad --servers")?);
            }
            "--n" => args.n = value.parse().map_err(|_| "bad --n")?,
            "--b" => args.b = value.parse().map_err(|_| "bad --b")?,
            "--sessions" => args.sessions = value.parse().map_err(|_| "bad --sessions")?,
            "--workers" => args.workers = value.parse().map_err(|_| "bad --workers")?,
            "--duration" => {
                args.duration = Duration::from_secs_f64(
                    value
                        .parse()
                        .ok()
                        .filter(|s: &f64| *s > 0.0)
                        .ok_or("bad --duration")?,
                )
            }
            "--warmup" => {
                args.warmup = Duration::from_secs_f64(
                    value
                        .parse()
                        .ok()
                        .filter(|s: &f64| *s >= 0.0)
                        .ok_or("bad --warmup")?,
                )
            }
            "--read-pct" => {
                args.read_pct = value
                    .parse()
                    .ok()
                    .filter(|p| *p <= 100)
                    .ok_or("bad --read-pct (0..=100)")?
            }
            "--dist" => args.dist = Dist::parse(&value).ok_or("bad --dist")?,
            "--groups" => {
                args.groups = value
                    .parse()
                    .ok()
                    .filter(|g| *g > 0 && *g <= (1 << 20))
                    .ok_or("bad --groups (1..=2^20)")?
            }
            "--value-bytes" => args.value_bytes = value.parse().map_err(|_| "bad --value-bytes")?,
            "--consistency" => {
                args.consistency = match value.as_str() {
                    "mrc" => Consistency::Mrc,
                    "cc" => Consistency::Cc,
                    _ => return Err("bad --consistency (mrc|cc)".to_string()),
                }
            }
            "--mode" => {
                args.mode = match value.as_str() {
                    "closed" => Mode::Closed,
                    "open" => Mode::Open,
                    _ => return Err("bad --mode (closed|open)".to_string()),
                }
            }
            "--rate" => {
                args.rate = value
                    .parse()
                    .ok()
                    .filter(|r: &f64| *r > 0.0)
                    .ok_or("bad --rate")?
            }
            "--serving" => {
                args.serving = match value.as_str() {
                    "event-loop" => ServingMode::EventLoop,
                    "threaded" => ServingMode::Threaded,
                    _ => return Err("bad --serving (event-loop|threaded)".to_string()),
                }
            }
            "--batching" => {
                args.batching = match value.as_str() {
                    "on" => true,
                    "off" => false,
                    _ => return Err("bad --batching (on|off)".to_string()),
                }
            }
            "--clients" => args.clients = value.parse().map_err(|_| "bad --clients")?,
            "--key-seed" => args.key_seed = parse_u64(&value).ok_or("bad --key-seed")?,
            "--seed" => args.seed = parse_u64(&value).ok_or("bad --seed")?,
            "--out" => args.out = value,
            "--note" => args.note = value,
            other => return Err(format!("unknown flag {other}")),
        }
    }
    if args.sessions == 0 || args.workers == 0 {
        return Err("--sessions and --workers must be nonzero".to_string());
    }
    if args.sessions > (1 << 24) {
        return Err("--sessions above 2^24 unsupported".to_string());
    }
    if args.workers > usize::from(args.clients) {
        return Err("--workers must not exceed --clients (one protocol client each)".to_string());
    }
    if args.mode == Mode::Open && args.rate <= 0.0 {
        return Err("--mode open needs --rate".to_string());
    }
    if args.compare && args.servers.is_some() {
        return Err("--compare self-hosts; it cannot target --servers".to_string());
    }
    if args.out.is_empty() {
        args.out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_protocol.json").to_string();
    }
    Ok(args)
}

/// One worker's share of the run.
struct WorkerCfg {
    worker: u16,
    sessions: usize,
    groups: u32,
    read_pct: u32,
    dist: Dist,
    value: Vec<u8>,
    consistency: Consistency,
    mode: Mode,
    /// `false` forces a socket flush after every submit (no coalescing).
    batching: bool,
    /// Target arrivals per second for this worker (open mode).
    rate: f64,
    /// Shared run epoch, so all workers' windows align.
    t0: Instant,
    warmup: Duration,
    duration: Duration,
    seed: u64,
}

#[derive(Default)]
struct WorkerStats {
    read: Histogram,
    write: Histogram,
    ops: u64,
    err_unavailable: u64,
    err_stale: u64,
    err_faulty: u64,
    shed: u64,
    connect_failures: u64,
    /// `Msg::Shed` overload replies observed by this worker's client.
    server_sheds: u64,
    /// Hedged read rounds issued by the client resilience layer.
    hedges: u64,
    /// Operations surfaced as `Unavailable` by per-op deadline expiry.
    expired: u64,
}

impl WorkerStats {
    fn merge(&mut self, other: &WorkerStats) {
        self.read.merge(&other.read);
        self.write.merge(&other.write);
        self.ops += other.ops;
        self.err_unavailable += other.err_unavailable;
        self.err_stale += other.err_stale;
        self.err_faulty += other.err_faulty;
        self.shed += other.shed;
        self.connect_failures += other.connect_failures;
        self.server_sheds += other.server_sheds;
        self.hedges += other.hedges;
        self.expired += other.expired;
    }

    fn errors(&self) -> u64 {
        self.err_unavailable + self.err_stale + self.err_faulty
    }
}

/// An operation in flight: which session issued it and when its latency
/// clock started (submission for closed loop, intended arrival for open).
struct Pending {
    session: usize,
    read: bool,
    t0: Instant,
}

/// Establishes a session on every group, retrying failed connects a
/// couple of times before counting them as failures.
fn connect_groups(client: &mut PipeClient, groups: u32, stats: &mut WorkerStats) {
    let mut todo: Vec<GroupId> = (0..groups).map(GroupId).collect();
    for _round in 0..3 {
        if todo.is_empty() {
            return;
        }
        let mut waiting: HashMap<OpId, GroupId> = HashMap::new();
        for group in todo.drain(..) {
            let op = client.submit(ClientOp::Connect {
                group,
                recover: false,
            });
            waiting.insert(op, group);
        }
        let deadline = Instant::now() + Duration::from_secs(30);
        while !waiting.is_empty() && Instant::now() < deadline {
            let slice = deadline.min(Instant::now() + Duration::from_millis(5));
            for done in client.pump_until(slice) {
                if let Some(group) = waiting.remove(&done.op) {
                    if !done.outcome.is_ok() {
                        todo.push(group);
                    }
                }
            }
        }
        // Connects still in flight at the deadline stay with the client;
        // retry their groups rather than waiting forever.
        todo.extend(waiting.into_values());
    }
    stats.connect_failures += todo.len() as u64;
}

fn run_worker(mut client: PipeClient, cfg: WorkerCfg) -> WorkerStats {
    let mut stats = WorkerStats::default();
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ (0x10ad << 16) ^ u64::from(cfg.worker));
    let selector = Selector::new(cfg.groups as usize, cfg.dist);

    connect_groups(&mut client, cfg.groups, &mut stats);

    let warmup_end = cfg.t0 + cfg.warmup;
    let end = warmup_end + cfg.duration;
    let mut free: Vec<usize> = (0..cfg.sessions).rev().collect();
    let mut inflight: HashMap<OpId, Pending> = HashMap::new();
    // (group, session) pairs that have been written at least once and so
    // are eligible for reads.
    let mut seeded: HashMap<(u32, usize), bool> = HashMap::new();
    let interval = if cfg.rate > 0.0 {
        Duration::from_secs_f64(1.0 / cfg.rate)
    } else {
        Duration::ZERO
    };
    let mut next_arrival = Instant::now();

    loop {
        let now = Instant::now();
        if now >= end {
            break;
        }
        match cfg.mode {
            Mode::Closed => {
                while let Some(session) = free.pop() {
                    submit_op(
                        &mut client,
                        &cfg,
                        &selector,
                        &mut rng,
                        &mut seeded,
                        &mut inflight,
                        session,
                        Instant::now(),
                    );
                }
            }
            Mode::Open => {
                while next_arrival <= now {
                    if let Some(session) = free.pop() {
                        submit_op(
                            &mut client,
                            &cfg,
                            &selector,
                            &mut rng,
                            &mut seeded,
                            &mut inflight,
                            session,
                            next_arrival,
                        );
                    } else if now >= warmup_end {
                        stats.shed += 1;
                    }
                    next_arrival += interval;
                }
            }
        }
        let wake = match cfg.mode {
            Mode::Closed => now + Duration::from_millis(1),
            Mode::Open => next_arrival,
        };
        for done in client.pump_until(wake.min(end)) {
            complete(done, &mut inflight, &mut free, &mut stats, warmup_end, end);
        }
    }

    // Drain without recording so sockets close gracefully.
    let grace = Instant::now() + Duration::from_secs(2);
    while client.inflight() > 0 && Instant::now() < grace {
        for done in client.pump_until(Instant::now() + Duration::from_millis(5)) {
            complete(done, &mut inflight, &mut free, &mut stats, warmup_end, end);
        }
    }
    stats.server_sheds = client.sheds_seen();
    stats.hedges = client.hedges();
    stats.expired = client.expired();
    stats
}

#[allow(clippy::too_many_arguments)]
fn submit_op(
    client: &mut PipeClient,
    cfg: &WorkerCfg,
    selector: &Selector,
    rng: &mut StdRng,
    seeded: &mut HashMap<(u32, usize), bool>,
    inflight: &mut HashMap<OpId, Pending>,
    session: usize,
    t0: Instant,
) {
    let g = selector.pick(rng) as u32;
    let group = GroupId(g);
    // Data ids are partitioned (worker | group | session) so every item
    // has exactly one writer, as the single-writer protocol requires.
    let data =
        DataId((u64::from(cfg.worker) << 44) | (u64::from(g) << 24) | (session as u64 & 0xff_ffff));
    let is_seeded = seeded.contains_key(&(g, session));
    let read = is_seeded && rng.gen_range(0..100u32) < cfg.read_pct;
    let op = if read {
        ClientOp::Read {
            data,
            group,
            consistency: cfg.consistency,
        }
    } else {
        seeded.insert((g, session), true);
        ClientOp::Write {
            data,
            group,
            consistency: cfg.consistency,
            value: cfg.value.clone(),
        }
    };
    let op_id = client.submit(op);
    if !cfg.batching {
        client.flush();
    }
    inflight.insert(op_id, Pending { session, read, t0 });
}

fn complete(
    done: OpResult,
    inflight: &mut HashMap<OpId, Pending>,
    free: &mut Vec<usize>,
    stats: &mut WorkerStats,
    warmup_end: Instant,
    end: Instant,
) {
    let Some(pending) = inflight.remove(&done.op) else {
        return; // stray connect-phase completion
    };
    free.push(pending.session);
    let now = Instant::now();
    if now < warmup_end || now >= end {
        return;
    }
    match done.outcome {
        Outcome::Unavailable => stats.err_unavailable += 1,
        Outcome::Stale { .. } => stats.err_stale += 1,
        Outcome::FaultyWriterDetected { .. } => stats.err_faulty += 1,
        _ => {
            let us = u64::try_from(now.duration_since(pending.t0).as_micros()).unwrap_or(u64::MAX);
            stats.ops += 1;
            if pending.read {
                stats.read.record(us);
            } else {
                stats.write.record(us);
            }
        }
    }
}

/// Binds `n` ephemeral loopback listeners, then starts one server per
/// listener (every server needs the full address list first).
fn start_servers(args: &Args, serving: ServingMode) -> (Vec<NetServer>, Vec<SocketAddr>) {
    let listeners: Vec<TcpListener> = (0..args.n)
        .map(|_| TcpListener::bind("127.0.0.1:0").expect("bind ephemeral"))
        .collect();
    let addrs: Vec<SocketAddr> = listeners
        .iter()
        .map(|l| l.local_addr().expect("local addr"))
        .collect();
    let (_, verifying) = generate_client_keys(args.clients, args.key_seed);
    let dir = Directory::new(args.n, args.b, verifying);
    let servers = listeners
        .into_iter()
        .enumerate()
        .map(|(i, listener)| {
            let mut server_cfg = ServerConfig::default();
            if args.batching {
                server_cfg.gossip.summary_every = 4;
            }
            let node = ServerNode::new(
                ServerId(u16::try_from(i).unwrap_or(u16::MAX)),
                dir.clone(),
                server_cfg,
            );
            NetServer::start(
                node,
                listener,
                addrs.clone(),
                NetServerConfig {
                    serving,
                    ..NetServerConfig::default()
                },
            )
            .expect("server start")
        })
        .collect();
    (servers, addrs)
}

struct RunSummary {
    stats: WorkerStats,
    throughput: f64,
    all: Histogram,
    /// Server-side counters summed across in-process servers before
    /// shutdown (all zero when driving external `--servers`).
    srv_storage_faults: u64,
    srv_dropped_frames: u64,
    srv_sheds: u64,
}

fn run_once(args: &Args, serving: ServingMode) -> RunSummary {
    let (servers, addrs) = match &args.servers {
        Some(a) => (Vec::new(), a.clone()),
        None => start_servers(args, serving),
    };
    let cluster = NetCluster::connect_with(
        addrs,
        args.b,
        args.clients,
        args.key_seed,
        ClientConfig::default(),
        NetClientConfig::default(),
    );
    let t0 = Instant::now();
    let base = args.sessions / args.workers;
    let extra = args.sessions % args.workers;
    let mut handles = Vec::new();
    for w in 0..args.workers {
        let client = cluster.pipe_client(u16::try_from(w).unwrap_or(u16::MAX));
        let cfg = WorkerCfg {
            worker: u16::try_from(w).unwrap_or(u16::MAX),
            sessions: base + usize::from(w < extra),
            groups: args.groups,
            read_pct: args.read_pct,
            dist: args.dist,
            value: vec![0x5a; args.value_bytes],
            consistency: args.consistency,
            mode: args.mode,
            batching: args.batching,
            rate: args.rate / args.workers as f64,
            t0,
            warmup: args.warmup,
            duration: args.duration,
            seed: args.seed,
        };
        handles.push(thread::spawn(move || run_worker(client, cfg)));
    }
    let mut stats = WorkerStats::default();
    for handle in handles {
        match handle.join() {
            Ok(s) => stats.merge(&s),
            Err(_) => eprintln!("sstore-load: worker panicked"),
        }
    }
    let mut srv_storage_faults = 0u64;
    let mut srv_dropped_frames = 0u64;
    let mut srv_sheds = 0u64;
    for server in servers {
        srv_storage_faults += server.with_node(|n| n.storage_faults());
        srv_dropped_frames += server.dropped_frames();
        srv_sheds += server.shed_count();
        server.shutdown();
    }
    let mut all = stats.read.clone();
    all.merge(&stats.write);
    let throughput = stats.ops as f64 / args.duration.as_secs_f64();
    RunSummary {
        stats,
        throughput,
        all,
        srv_storage_faults,
        srv_dropped_frames,
        srv_sheds,
    }
}

fn lat_json(label: &str, h: &Histogram) -> String {
    format!(
        "\"{}\": {{ \"count\": {}, \"p50_us\": {}, \"p99_us\": {}, \"p999_us\": {}, \"max_us\": {}, \"mean_us\": {:.1} }}",
        label,
        h.count(),
        h.p50(),
        h.p99(),
        h.p999(),
        h.max(),
        h.mean(),
    )
}

fn print_summary(label: &str, s: &RunSummary) {
    println!(
        "{label}: {:.0} ops/s  ({} ok, {} err, {} shed)",
        s.throughput,
        s.stats.ops,
        s.stats.errors(),
        s.stats.shed
    );
    println!(
        "  resilience: {} server sheds seen, {} hedged reads, {} deadline-expired",
        s.stats.server_sheds, s.stats.hedges, s.stats.expired
    );
    if s.srv_storage_faults > 0 || s.srv_dropped_frames > 0 || s.srv_sheds > 0 {
        println!(
            "  servers: {} storage faults, {} dropped frames, {} shed replies",
            s.srv_storage_faults, s.srv_dropped_frames, s.srv_sheds
        );
    }
    for (name, h) in [
        ("read", &s.stats.read),
        ("write", &s.stats.write),
        ("all", &s.all),
    ] {
        if h.count() == 0 {
            continue;
        }
        println!(
            "  {name:>5}: p50 {:>6} us  p99 {:>7} us  p999 {:>7} us  max {:>8} us  mean {:>7.1} us",
            h.p50(),
            h.p99(),
            h.p999(),
            h.max(),
            h.mean()
        );
    }
}

/// Appends `entry` to the JSON array in `path`, creating it if absent —
/// the same append-only convention as `BENCH_crypto.json`.
fn append_entry(path: &str, entry: &str) -> std::io::Result<()> {
    let new_content = match std::fs::read_to_string(path) {
        Ok(existing) => {
            let trimmed = existing.trim_end();
            let without_close = trimmed
                .strip_suffix(']')
                .map(str::trim_end)
                .unwrap_or(trimmed);
            if without_close.trim() == "[" {
                format!("[\n{entry}\n]\n")
            } else {
                format!("{without_close},\n{entry}\n]\n")
            }
        }
        Err(_) => format!("[\n{entry}\n]\n"),
    };
    std::fs::write(path, new_content)
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("sstore-load: {e}\n{USAGE}");
            exit(2);
        }
    };

    let baseline = if args.compare {
        eprintln!("running threaded baseline...");
        let s = run_once(&args, ServingMode::Threaded);
        print_summary("threaded", &s);
        Some(s)
    } else {
        None
    };
    let serving = if args.compare {
        ServingMode::EventLoop
    } else {
        args.serving
    };
    eprintln!("running {}...", serving_name(serving));
    let main_run = run_once(&args, serving);
    print_summary(serving_name(serving), &main_run);
    if let Some(base) = &baseline {
        println!(
            "speedup (event-loop / threaded): {:.2}x",
            main_run.throughput / base.throughput.max(1.0)
        );
    }

    let recorded_unix = SystemTime::now()
        .duration_since(SystemTime::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let note = if args.note.is_empty() {
        format!(
            "{} {} loopback sustained load",
            args.mode.name(),
            serving_name(serving)
        )
    } else {
        args.note.clone()
    };
    let compare_json = match &baseline {
        Some(base) => format!(
            ",\n      \"compare\": {{ \"threaded_ops_s\": {:.1}, \"event_loop_ops_s\": {:.1}, \"speedup\": {:.3} }}",
            base.throughput,
            main_run.throughput,
            main_run.throughput / base.throughput.max(1.0)
        ),
        None => String::new(),
    };
    let s = &main_run.stats;
    let entry = format!(
        "  {{\n    \"recorded_unix\": {recorded_unix},\n    \"note\": \"{note}\",\n    \"config\": {{ \"mode\": \"{}\", \"serving\": \"{}\", \"batching\": {}, \"n\": {}, \"b\": {}, \"sessions\": {}, \"workers\": {}, \"groups\": {}, \"read_pct\": {}, \"dist\": \"{}\", \"value_bytes\": {}, \"consistency\": \"{:?}\", \"duration_s\": {:.1}, \"warmup_s\": {:.1}, \"rate_ops_s\": {:.1} }},\n    \"results\": {{\n      \"throughput_ops_s\": {:.1},\n      \"ops\": {},\n      \"errors\": {{ \"unavailable\": {}, \"stale\": {}, \"faulty_writer\": {}, \"connect_failures\": {} }},\n      \"shed_arrivals\": {},\n      \"resilience\": {{ \"server_sheds_seen\": {}, \"hedged_reads\": {}, \"deadline_expired\": {} }},\n      \"server_counters\": {{ \"storage_faults\": {}, \"dropped_frames\": {}, \"shed_replies\": {} }},\n      \"latency_us\": {{ {}, {}, {} }}{compare_json}\n    }}\n  }}",
        args.mode.name(),
        serving_name(serving),
        args.batching,
        args.servers.as_ref().map_or(args.n, Vec::len),
        args.b,
        args.sessions,
        args.workers,
        args.groups,
        args.read_pct,
        args.dist,
        args.value_bytes,
        args.consistency,
        args.duration.as_secs_f64(),
        args.warmup.as_secs_f64(),
        args.rate,
        main_run.throughput,
        s.ops,
        s.err_unavailable,
        s.err_stale,
        s.err_faulty,
        s.connect_failures,
        s.shed,
        s.server_sheds,
        s.hedges,
        s.expired,
        main_run.srv_storage_faults,
        main_run.srv_dropped_frames,
        main_run.srv_sheds,
        lat_json("read", &s.read),
        lat_json("write", &s.write),
        lat_json("all", &main_run.all),
    );
    if args.append {
        if let Err(e) = append_entry(&args.out, &entry) {
            eprintln!("sstore-load: cannot write {}: {e}", args.out);
            exit(1);
        }
        println!("appended to {}", args.out);
    } else {
        println!("{entry}");
    }

    if args.fail_on_error && (s.errors() > 0 || s.connect_failures > 0) {
        eprintln!(
            "sstore-load: --fail-on-error: {} protocol errors, {} connect failures",
            s.errors(),
            s.connect_failures
        );
        exit(1);
    }
}
