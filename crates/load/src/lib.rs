//! Measurement library for the `sstore-load` sustained-load rig.
//!
//! The binary (`src/main.rs`) drives thousands of logical client
//! sessions against a real TCP cluster through the pipelining
//! [`sstore_net::PipeClient`]; this library holds the measurement
//! machinery it needs:
//!
//! - [`hist::Histogram`] — an HDR-style log-linear latency histogram
//!   (bounded relative error, constant memory, mergeable across worker
//!   threads);
//! - [`pick::Selector`] — uniform or zipfian group selection, so load
//!   can be spread evenly or skewed onto hot groups the way real
//!   workloads are.
//!
//! Kept as a library so the distribution and histogram math is unit- and
//! property-testable without sockets.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod hist;
pub mod pick;
