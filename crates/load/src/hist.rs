//! HDR-style log-linear histogram for microsecond latencies.
//!
//! Values are bucketed by order of magnitude (one octave per power of
//! two) with 64 linear sub-buckets per octave, so the relative error of
//! any reported quantile is bounded by one sub-bucket: under 1.6%. That
//! is the same trade HdrHistogram makes — constant memory regardless of
//! sample count or range, no coordination, O(buckets) quantile reads —
//! without the configurable precision this rig does not need.
//!
//! Histograms merge by element-wise addition, so each load worker
//! records into its own and the main thread folds them after joining.

/// Linear sub-buckets per octave (64 ⇒ ≤ 1/64 relative error).
const SUB: usize = 64;

/// log2 of [`SUB`].
const SUB_BITS: u32 = 6;

/// Bucket count covering all of `u64`: two all-linear bottom octaves
/// (values below `2 * SUB`) plus one `SUB`-wide group per remaining
/// most-significant-bit position (7..=63).
const BUCKETS: usize = SUB * 59;

/// A fixed-memory log-linear histogram of `u64` values (microseconds,
/// by convention here — the math is unit-agnostic).
#[derive(Clone)]
pub struct Histogram {
    counts: Vec<u64>,
    total: u64,
    sum: u128,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

/// Index of the bucket holding `v`.
fn index(v: u64) -> usize {
    if v < SUB as u64 {
        return v as usize;
    }
    let msb = 63 - v.leading_zeros();
    let shift = msb - SUB_BITS;
    let top = (v >> shift) as usize;
    // Octave `msb` starts at bucket (msb - SUB_BITS + 1) * SUB; `top` is
    // in [SUB, 2*SUB).
    ((msb - SUB_BITS + 1) as usize) * SUB + (top - SUB)
}

/// Smallest value mapping to bucket `idx`, saturating at `u64::MAX` for
/// the one-past-the-last bound quantile reads ask for.
fn lower_bound(idx: usize) -> u64 {
    if idx < 2 * SUB {
        return idx as u64;
    }
    let octave = idx / SUB;
    let sub = (idx % SUB + SUB) as u128;
    u64::try_from(sub << (octave as u32 - 1)).unwrap_or(u64::MAX)
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Histogram {
        Histogram {
            counts: vec![0; BUCKETS],
            total: 0,
            sum: 0,
            max: 0,
        }
    }

    /// Records one value.
    pub fn record(&mut self, v: u64) {
        let idx = index(v).min(BUCKETS - 1);
        if let Some(c) = self.counts.get_mut(idx) {
            *c = c.saturating_add(1);
        }
        self.total = self.total.saturating_add(1);
        self.sum = self.sum.saturating_add(u128::from(v));
        self.max = self.max.max(v);
    }

    /// Adds every sample of `other` into `self`.
    pub fn merge(&mut self, other: &Histogram) {
        for (dst, src) in self.counts.iter_mut().zip(other.counts.iter()) {
            *dst = dst.saturating_add(*src);
        }
        self.total = self.total.saturating_add(other.total);
        self.sum = self.sum.saturating_add(other.sum);
        self.max = self.max.max(other.max);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Largest recorded value (exact, not bucketed).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean of recorded values, zero when empty.
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum as f64 / self.total as f64
        }
    }

    /// Value at quantile `q` in `[0, 1]` (bucket upper bound, clamped to
    /// the exact max); zero when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.total == 0 {
            return 0;
        }
        let target = ((q * self.total as f64).ceil() as u64).clamp(1, self.total);
        let mut cum = 0u64;
        for (idx, c) in self.counts.iter().enumerate() {
            cum = cum.saturating_add(*c);
            if cum >= target {
                if idx + 1 >= BUCKETS {
                    return self.max;
                }
                return lower_bound(idx + 1).saturating_sub(1).min(self.max);
            }
        }
        self.max
    }

    /// Median.
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 99th percentile.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// 99.9th percentile.
    pub fn p999(&self) -> u64 {
        self.quantile(0.999)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_contiguous_and_monotone() {
        // Every value below the linear limit is exact; boundaries align.
        for v in 0..(2 * SUB as u64) {
            assert_eq!(index(v), v as usize);
            assert_eq!(lower_bound(v as usize), v);
        }
        let mut prev = 0;
        for idx in 0..BUCKETS {
            let lo = lower_bound(idx);
            assert!(idx == 0 || lo > prev, "bucket {idx} not increasing");
            assert_eq!(index(lo), idx, "lower bound of {idx} maps back");
            prev = lo;
        }
    }

    #[test]
    fn small_values_are_exact() {
        let mut h = Histogram::new();
        for v in [1u64, 2, 3, 5, 8, 13, 21, 34, 55] {
            h.record(v);
        }
        assert_eq!(h.count(), 9);
        assert_eq!(h.p50(), 8);
        assert_eq!(h.max(), 55);
        assert_eq!(h.quantile(1.0), 55);
    }

    #[test]
    fn quantile_relative_error_is_bounded() {
        // Pseudo-random values over five decades; histogram quantiles
        // must stay within one sub-bucket (~1.6%) of exact order
        // statistics.
        let mut h = Histogram::new();
        let mut exact: Vec<u64> = Vec::new();
        let mut state = 0x3157u64;
        for _ in 0..10_000 {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let v = (state >> 20) % 10_000_000;
            h.record(v);
            exact.push(v);
        }
        exact.sort_unstable();
        for q in [0.5, 0.9, 0.99, 0.999] {
            let rank = ((q * exact.len() as f64).ceil() as usize).clamp(1, exact.len());
            let truth = exact[rank - 1];
            let got = h.quantile(q);
            let err = (got as f64 - truth as f64).abs() / truth.max(1) as f64;
            assert!(err <= 0.02, "q={q}: got {got}, exact {truth}, err {err}");
        }
    }

    #[test]
    fn merge_equals_combined_recording() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut combined = Histogram::new();
        for v in 0..1000u64 {
            let target = if v % 2 == 0 { &mut a } else { &mut b };
            target.record(v * 37);
            combined.record(v * 37);
        }
        a.merge(&b);
        assert_eq!(a.count(), combined.count());
        assert_eq!(a.max(), combined.max());
        for q in [0.1, 0.5, 0.9, 0.99] {
            assert_eq!(a.quantile(q), combined.quantile(q));
        }
        assert!((a.mean() - combined.mean()).abs() < 1e-9);
    }

    #[test]
    fn empty_histogram_reports_zeroes() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.p50(), 0);
        assert_eq!(h.p999(), 0);
        assert_eq!(h.mean(), 0.0);
    }

    #[test]
    fn extreme_values_do_not_panic() {
        let mut h = Histogram::new();
        h.record(0);
        h.record(u64::MAX);
        assert_eq!(h.count(), 2);
        assert_eq!(h.max(), u64::MAX);
        assert!(h.quantile(1.0) == u64::MAX);
    }
}
