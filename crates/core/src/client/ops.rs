//! Single-writer data protocols: the read and write of paper Fig. 2.
//!
//! Writes go to `b+1` servers, guaranteeing one correct server holds the
//! value. Reads query `b+1` servers for timestamps, fetch the value from
//! the best one, and verify the writer's signature — one verification per
//! read in the common case, exactly the cost model of paper §6.

use std::collections::HashSet;

use sstore_simnet::SimTime;

use crate::client::{ClientCore, Op, OpCommon, OpKind, OpState, Outcome, Output};
use crate::item::{ItemMeta, StoredItem};
use crate::quorum;
use crate::types::{Consistency, DataId, GroupId, OpId, ServerId, Timestamp, TsOrder};
use crate::wire::Msg;

impl ClientCore {
    /// Starts a single-writer write (paper Fig. 2, Write).
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn begin_write(
        &mut self,
        op_id: OpId,
        data: DataId,
        group: GroupId,
        consistency: Consistency,
        value: Vec<u8>,
        now: SimTime,
        offset: usize,
        fuzz: u64,
    ) -> Output {
        let mut out = Output::default();
        // "increment t_j in 𝒳_i": the next version follows the context,
        // advanced by a random extra amount when timestamp fuzzing hides
        // the update count (paper §5.2).
        let ts = Timestamp::Version(self.ctx_mut(group).timestamp(data).time() + 1 + fuzz);
        self.ctx_mut(group).observe(data, ts);
        let writer_ctx = match consistency {
            Consistency::Cc => Some(self.context(group)),
            Consistency::Mrc => None,
        };
        let client = self.id();
        let item = {
            let (_, _, key, _, counters, _) = self.parts();
            StoredItem::create(data, group, ts, client, writer_ctx, value, key, counters)
        };
        let needed = quorum::data_quorum(self.dir().b());
        let mut common = OpCommon::start(OpKind::Write, group, now, offset);
        let rotation = self.rotation(offset);
        let target = self.target_count(needed, 1);
        {
            let item = &item;
            Self::widen_contacts(
                op_id,
                &mut common,
                &rotation,
                target,
                |op| Msg::WriteReq {
                    op,
                    item: item.clone(),
                },
                &mut out,
            );
        }
        Self::arm_phase_timer(op_id, &mut common, self.cfg().retry, &mut out);
        self.insert_op(
            op_id,
            Op {
                common,
                state: OpState::Write {
                    acks: HashSet::new(),
                    needed,
                    ts,
                    item,
                },
            },
        );
        out
    }

    /// Starts a single-writer read (paper Fig. 2, Read) — phase 1:
    /// timestamp queries to `b+1` servers.
    pub(crate) fn begin_read(
        &mut self,
        op_id: OpId,
        data: DataId,
        group: GroupId,
        consistency: Consistency,
        now: SimTime,
        offset: usize,
    ) -> Output {
        let mut out = Output::default();
        // Adaptive reads probe with b̂+1 servers (Alvisi et al. dynamic
        // quorums); static configuration uses the full b+1.
        let base = quorum::data_quorum(self.fault_estimate());
        let mut common = OpCommon::start(OpKind::Read, group, now, offset);
        let rotation = self.rotation(offset);
        Self::widen_contacts(
            op_id,
            &mut common,
            &rotation,
            self.target_count(base, 1),
            |op| Msg::TsQueryReq { op, data },
            &mut out,
        );
        Self::arm_phase_timer(op_id, &mut common, self.cfg().retry, &mut out);
        self.insert_op(
            op_id,
            Op {
                common,
                state: OpState::ReadP1 {
                    data,
                    consistency,
                    responded: HashSet::new(),
                    candidates: Vec::new(),
                    best_seen: None,
                    awaiting_retry: false,
                },
            },
        );
        out
    }

    /// Handles a write acknowledgement.
    pub(crate) fn on_write_ack(
        &mut self,
        op_id: OpId,
        from: ServerId,
        accepted: bool,
        now: SimTime,
    ) -> Output {
        let mut out = Output::default();
        let Some(mut op) = self.take_op(op_id) else {
            return out;
        };
        match &mut op.state {
            OpState::Write {
                acks, needed, ts, ..
            } if op.common.contacted.contains(&from) => {
                if accepted {
                    acks.insert(from);
                }
                if acks.len() >= *needed {
                    let ts = *ts;
                    Self::complete(op_id, op, Outcome::WriteOk { ts }, now, &mut out);
                    return out;
                }
                self.insert_op(op_id, op);
            }
            OpState::MwWrite { .. } => {
                self.insert_op(op_id, op);
                return self.on_mw_write_ack(op_id, from, accepted, now);
            }
            _ => self.insert_op(op_id, op),
        }
        out
    }

    /// Handles a phase-1 timestamp response.
    pub(crate) fn on_ts_query_resp(
        &mut self,
        op_id: OpId,
        from: ServerId,
        meta: Option<ItemMeta>,
        inline: Option<StoredItem>,
        now: SimTime,
    ) -> Output {
        let mut out = Output::default();
        let Some(mut op) = self.take_op(op_id) else {
            return out;
        };
        let OpState::ReadP1 {
            data,
            responded,
            candidates,
            best_seen,
            awaiting_retry,
            ..
        } = &mut op.state
        else {
            self.insert_op(op_id, op);
            return out;
        };
        if *awaiting_retry || !op.common.contacted.contains(&from) || !responded.insert(from) {
            self.insert_op(op_id, op);
            return out;
        }
        if let Some(m) = meta {
            if m.data == *data {
                if best_seen.is_none_or(|b| m.ts.is_newer_than(&b)) {
                    *best_seen = Some(m.ts);
                }
                // Only trust a piggybacked item that matches the metadata.
                let inline = inline.filter(|i| i.meta == m);
                candidates.push((from, m, inline));
            }
        }
        if responded.len() >= op.common.contacted.len() {
            self.evaluate_read_p1(op_id, op, now, &mut out);
        } else {
            self.insert_op(op_id, op);
        }
        out
    }

    /// Phase-1 decision: "let t_r be the highest timestamp … if t_r ≥ t_j
    /// then choose the server which sent t_r" (paper Fig. 2); otherwise
    /// contact additional servers or try later.
    fn evaluate_read_p1(&mut self, op_id: OpId, mut op: Op, now: SimTime, out: &mut Output) {
        let OpState::ReadP1 {
            data,
            consistency,
            candidates,
            best_seen,
            ..
        } = &mut op.state
        else {
            // Dispatch bug: drop the op rather than abort the client.
            debug_assert!(false, "evaluate_read_p1 on wrong state");
            return;
        };
        let data = *data;
        let consistency = *consistency;
        let best_seen = *best_seen;
        let group = op.common.group;
        let ctx_ts = self.context(group).timestamp(data);
        let mut viable: Vec<(ServerId, ItemMeta, Option<StoredItem>)> = candidates
            .drain(..)
            .filter(|(_, m, _)| m.ts.is_at_least(&ctx_ts))
            .collect();
        // Highest timestamp first.
        viable.sort_by(|a, b| match a.1.ts.compare(&b.1.ts) {
            TsOrder::Less => std::cmp::Ordering::Greater,
            TsOrder::Greater => std::cmp::Ordering::Less,
            _ => std::cmp::Ordering::Equal,
        });
        // Fast path: the best response piggybacked its (matching) item, so
        // the read completes in one round trip — §6's best case.
        while let Some((_, _, Some(item))) = viable.first() {
            let item = item.clone();
            match self.validate_read_item(group, data, consistency, ctx_ts, item) {
                Some(outcome) => {
                    Self::complete(op_id, op, outcome, now, out);
                    return;
                }
                None => {
                    // Bad inline copy: evidence of a faulty server.
                    self.raise_fault_estimate();
                    viable.remove(0);
                }
            }
        }
        if let Some((target, meta, _)) = viable.first().cloned() {
            let expect = meta.ts;
            out.sends.push((
                target,
                Msg::ReadReq {
                    op: op_id,
                    data,
                    ts: expect,
                },
            ));
            op.state = OpState::ReadP2 {
                data,
                consistency,
                target,
                fallbacks: viable
                    .iter()
                    .skip(1)
                    .map(|(s, m, _)| (*s, m.clone()))
                    .collect(),
                best_seen,
            };
            Self::arm_phase_timer(op_id, &mut op.common, self.cfg().retry, out);
            self.insert_op(op_id, op);
        } else {
            self.escalate_read(op_id, op, best_seen, now, out);
        }
    }

    /// Verifies a candidate item against the client's context and updates
    /// the context on success. Shared by the one-round-trip fast path and
    /// the phase-2 response handler.
    fn validate_read_item(
        &mut self,
        group: GroupId,
        data: DataId,
        consistency: Consistency,
        ctx_ts: Timestamp,
        item: StoredItem,
    ) -> Option<Outcome> {
        if item.meta.data != data || item.meta.group != group || !item.meta.ts.is_at_least(&ctx_ts)
        {
            return None;
        }
        if consistency == Consistency::Cc && item.meta.writer_ctx.is_none() {
            return None;
        }
        let key = self.dir().client_key(item.meta.writer)?.clone();
        let ok = {
            let (_, _, _, _, counters, vcache) = self.parts();
            item.verify_cached(&key, vcache, counters).is_ok()
        };
        if !ok {
            return None;
        }
        let ctx = self.ctx_mut(group);
        ctx.observe(data, item.meta.ts);
        if consistency == Consistency::Cc {
            if let Some(wctx) = &item.meta.writer_ctx {
                ctx.merge(wctx);
            }
        }
        Some(Outcome::ReadOk {
            ts: item.meta.ts,
            value: item.value,
            confirmations: 1,
        })
    }

    /// No viable candidate: widen the contact set, or schedule a later
    /// retry once everyone has been asked, or give up `Stale`.
    fn escalate_read(
        &mut self,
        op_id: OpId,
        mut op: Op,
        best_seen: Option<Timestamp>,
        now: SimTime,
        out: &mut Output,
    ) {
        if op.common.round >= self.cfg().retry.max_rounds {
            Self::complete(op_id, op, Outcome::Stale { best_seen }, now, out);
            return;
        }
        // An empty round is evidence the contacted set was too optimistic.
        self.raise_fault_estimate();
        op.common.round += 1;
        let round = op.common.round;
        let base = quorum::data_quorum(self.dir().b());
        let target = self.target_count(base, round);
        let (data, consistency) = match &op.state {
            OpState::ReadP1 {
                data, consistency, ..
            }
            | OpState::ReadP2 {
                data, consistency, ..
            } => (*data, *consistency),
            _ => {
                debug_assert!(false, "escalate_read on non-read op");
                return;
            }
        };
        let already = op.common.contacted.len();
        op.state = OpState::ReadP1 {
            data,
            consistency,
            responded: HashSet::new(),
            candidates: Vec::new(),
            best_seen,
            awaiting_retry: false,
        };
        if target > already {
            // Widen: query the additional servers plus re-query the old
            // ones (their state may have advanced via dissemination).
            let rotation = self.rotation(op.common.offset);
            Self::widen_contacts(
                op_id,
                &mut op.common,
                &rotation,
                target,
                |op| Msg::TsQueryReq { op, data },
                out,
            );
            for &s in op.common.contacted.clone().iter() {
                if !out
                    .sends
                    .iter()
                    .any(|(to, m)| *to == s && m.op() == Some(op_id))
                {
                    out.sends.push((s, Msg::TsQueryReq { op: op_id, data }));
                }
            }
            Self::arm_phase_timer(op_id, &mut op.common, self.cfg().retry, out);
        } else {
            // Everyone asked and all stale: "try later" — wait for the
            // dissemination protocol to make progress.
            if let OpState::ReadP1 { awaiting_retry, .. } = &mut op.state {
                *awaiting_retry = true;
            }
            Self::arm_stale_timer(op_id, &mut op.common, self.cfg().retry, out);
        }
        self.insert_op(op_id, op);
    }

    /// Handles the phase-2 value response.
    pub(crate) fn on_read_resp(
        &mut self,
        op_id: OpId,
        from: ServerId,
        item: Option<StoredItem>,
        now: SimTime,
    ) -> Output {
        let mut out = Output::default();
        let Some(mut op) = self.take_op(op_id) else {
            return out;
        };
        let OpState::ReadP2 {
            data,
            consistency,
            target,
            fallbacks,
            best_seen,
            ..
        } = &mut op.state
        else {
            self.insert_op(op_id, op);
            return out;
        };
        if from != *target {
            self.insert_op(op_id, op);
            return out;
        }
        let data = *data;
        let consistency = *consistency;
        let best_seen = *best_seen;
        let group = op.common.group;
        let ctx_ts = self.context(group).timestamp(data);

        // "if MRC … update t_j; if CC … update each timestamp to the max
        // with 𝒳_writer" (paper Fig. 2) — done inside the validator.
        let accepted =
            item.and_then(|item| self.validate_read_item(group, data, consistency, ctx_ts, item));

        match accepted {
            Some(outcome) => {
                Self::complete(op_id, op, outcome, now, &mut out);
            }
            None => {
                // Bad or missing value: evidence of a faulty server; fall
                // back to the next candidate, or restart phase 1.
                self.raise_fault_estimate();
                if let Some((next, meta)) = fallbacks.first().cloned() {
                    fallbacks.remove(0);
                    *target = next;
                    out.sends.push((
                        next,
                        Msg::ReadReq {
                            op: op_id,
                            data,
                            ts: meta.ts,
                        },
                    ));
                    Self::arm_phase_timer(op_id, &mut op.common, self.cfg().retry, &mut out);
                    self.insert_op(op_id, op);
                } else {
                    self.escalate_read(op_id, op, best_seen, now, &mut out);
                }
            }
        }
        out
    }

    /// Timeout handling for single-writer reads and writes.
    pub(crate) fn ops_timeout(&mut self, op_id: OpId, now: SimTime) -> Output {
        let mut out = Output::default();
        let Some(mut op) = self.take_op(op_id) else {
            return out;
        };
        match &mut op.state {
            OpState::Write { needed, item, .. } => {
                if op.common.round >= self.cfg().retry.max_rounds {
                    Self::complete(op_id, op, Outcome::Unavailable, now, &mut out);
                    return out;
                }
                op.common.round += 1;
                let target = self.target_count(*needed, op.common.round);
                let rotation = self.rotation(op.common.offset);
                let item = item.clone();
                Self::widen_contacts(
                    op_id,
                    &mut op.common,
                    &rotation,
                    target,
                    |op| Msg::WriteReq {
                        op,
                        item: item.clone(),
                    },
                    &mut out,
                );
                Self::arm_phase_timer(op_id, &mut op.common, self.cfg().retry, &mut out);
                self.insert_op(op_id, op);
            }
            OpState::ReadP1 {
                awaiting_retry,
                responded,
                candidates,
                data,
                ..
            } => {
                if *awaiting_retry {
                    // Stale retry: re-query every contacted server.
                    *awaiting_retry = false;
                    responded.clear();
                    candidates.clear();
                    let data = *data;
                    for &s in &op.common.contacted {
                        out.sends.push((s, Msg::TsQueryReq { op: op_id, data }));
                    }
                    Self::arm_phase_timer(op_id, &mut op.common, self.cfg().retry, &mut out);
                    self.insert_op(op_id, op);
                } else {
                    // Phase timeout with partial responses: decide with
                    // what we have.
                    self.evaluate_read_p1(op_id, op, now, &mut out);
                }
            }
            OpState::ReadP2 {
                fallbacks,
                target,
                data,
                best_seen,
                ..
            } => {
                // The chosen server did not answer: next candidate or
                // restart.
                let data = *data;
                let best_seen = *best_seen;
                if let Some((next, meta)) = fallbacks.first().cloned() {
                    fallbacks.remove(0);
                    *target = next;
                    out.sends.push((
                        next,
                        Msg::ReadReq {
                            op: op_id,
                            data,
                            ts: meta.ts,
                        },
                    ));
                    Self::arm_phase_timer(op_id, &mut op.common, self.cfg().retry, &mut out);
                    self.insert_op(op_id, op);
                } else {
                    self.escalate_read(op_id, op, best_seen, now, &mut out);
                }
            }
            _ => debug_assert!(false, "ops_timeout on non-data op"),
        }
        out
    }
}
