//! The secure-store client: sessions, consistent reads and writes.
//!
//! Clients — not servers — enforce consistency (paper §1): each client
//! holds a per-group [`Context`] and decides which values are acceptable.
//! [`ClientCore`] is a sans-I/O state machine: operations begin with
//! [`ClientCore::begin`], progress through [`ClientCore::on_message`] /
//! [`ClientCore::on_timeout`], and finish by emitting an [`OpResult`].
//!
//! Submodules implement the three protocol families:
//! - [`session`](self): context acquisition, storage, and crash-recovery
//!   reconstruction (paper §5.1, Fig. 1);
//! - single-writer reads/writes with MRC or CC (paper §5.2, Fig. 2);
//! - multi-writer reads/writes hardened against malicious clients
//!   (paper §5.3).

mod multi;
mod ops;
mod session;

use std::collections::{HashMap, HashSet};
use std::sync::Arc;

use rand::rngs::StdRng;
use rand::Rng;

use sstore_crypto::schnorr::SigningKey;
use sstore_simnet::SimTime;

use crate::config::{ClientConfig, RetryPolicy};
use crate::context::Context;
use crate::directory::Directory;
use crate::item::{ItemMeta, SignedContext, StoredItem};
use crate::metrics::CryptoCounters;
use crate::quorum;
use crate::types::{ClientId, Consistency, DataId, GroupId, OpId, ServerId, Timestamp};
use crate::vcache::VerifyCache;
use crate::wire::Msg;

/// An operation a client can perform against the store.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClientOp {
    /// Start a session: acquire the stored context for `group`.
    Connect {
        /// The related data group.
        group: GroupId,
        /// `true` after a crash: reconstruct the context from all servers
        /// instead of reading the stored copy.
        recover: bool,
    },
    /// End a session: store the current context for `group`.
    Disconnect {
        /// The related data group.
        group: GroupId,
    },
    /// Single-writer write of `value` to `data`.
    Write {
        /// Target item.
        data: DataId,
        /// Its group.
        group: GroupId,
        /// MRC or CC (fixed per group at creation; passed per-op here).
        consistency: Consistency,
        /// The value to store.
        value: Vec<u8>,
    },
    /// Single-writer-data read of `data`.
    Read {
        /// Target item.
        data: DataId,
        /// Its group.
        group: GroupId,
        /// MRC or CC.
        consistency: Consistency,
    },
    /// Multi-writer write (timestamps become `(time, uid, d(v))`).
    MwWrite {
        /// Target item.
        data: DataId,
        /// Its group.
        group: GroupId,
        /// The value to store.
        value: Vec<u8>,
    },
    /// Multi-writer read (`2b+1` servers, accept on `b+1` matches).
    MwRead {
        /// Target item.
        data: DataId,
        /// Its group.
        group: GroupId,
        /// MRC or CC.
        consistency: Consistency,
    },
}

/// Category of a completed operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpKind {
    /// Session start (context acquisition).
    Connect,
    /// Session start via full reconstruction.
    Reconstruct,
    /// Session end (context storage).
    Disconnect,
    /// Single-writer read.
    Read,
    /// Single-writer write.
    Write,
    /// Multi-writer read.
    MwRead,
    /// Multi-writer write.
    MwWrite,
}

/// Final outcome of an operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Outcome {
    /// Session established; context has `context_len` entries.
    Connected {
        /// Number of entries in the acquired context.
        context_len: usize,
    },
    /// Context stored; session closed.
    Disconnected,
    /// Read returned a consistent value.
    ReadOk {
        /// Timestamp of the returned value.
        ts: Timestamp,
        /// The value.
        value: Vec<u8>,
        /// How many servers vouched for it (1 on the single-writer path,
        /// ≥ b+1 on the multi-writer path).
        confirmations: usize,
    },
    /// Write completed.
    WriteOk {
        /// Timestamp assigned to the write.
        ts: Timestamp,
    },
    /// Read gave up: every reachable copy was older than the client's
    /// context (dissemination had not caught up within the retry budget).
    Stale {
        /// The newest timestamp observed, if any.
        best_seen: Option<Timestamp>,
    },
    /// The operation could not assemble its quorum within the retry budget.
    Unavailable,
    /// Multi-writer read found proof that the writer signed two different
    /// values under one timestamp (paper §5.3).
    FaultyWriterDetected {
        /// The item whose writer equivocated.
        data: DataId,
    },
}

impl Outcome {
    /// Whether the operation succeeded.
    pub fn is_ok(&self) -> bool {
        !matches!(
            self,
            Outcome::Stale { .. } | Outcome::Unavailable | Outcome::FaultyWriterDetected { .. }
        )
    }
}

/// A completed operation with timing and effort accounting.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OpResult {
    /// The operation id.
    pub op: OpId,
    /// What kind of operation it was.
    pub kind: OpKind,
    /// How it ended.
    pub outcome: Outcome,
    /// When it was issued.
    pub started: SimTime,
    /// When it completed.
    pub finished: SimTime,
    /// Rounds used (1 = no retries/widening).
    pub rounds: u32,
}

impl OpResult {
    /// End-to-end latency.
    pub fn latency(&self) -> SimTime {
        self.finished.saturating_sub(self.started)
    }
}

/// Effects produced by a client step.
#[derive(Debug, Default)]
pub struct Output {
    /// Messages to send.
    pub sends: Vec<(ServerId, Msg)>,
    /// Timers to arm: `(delay, token)` — feed the token back into
    /// [`ClientCore::on_timeout`] when it fires.
    pub timers: Vec<(SimTime, u64)>,
    /// Operations that completed during this step.
    pub done: Vec<OpResult>,
}

/// Per-operation bookkeeping shared by all protocol families.
#[derive(Debug)]
pub(crate) struct OpCommon {
    pub kind: OpKind,
    pub group: GroupId,
    pub started: SimTime,
    /// Round counter: 1 on first attempt, incremented on widen/retry.
    pub round: u32,
    /// Servers contacted so far (requests are never re-sent to these except
    /// on an explicit stale retry).
    pub contacted: HashSet<ServerId>,
    /// Rotation offset into the server list, fixed per op.
    pub offset: usize,
    /// Timer epoch: only the latest armed timer for this op acts.
    pub timer_epoch: u32,
    /// Servers that explicitly shed this operation. Each server's first
    /// shed escalates the op at once (retry elsewhere instead of waiting
    /// out the phase timer); repeats from the same server are ignored, so
    /// one flapping server cannot burn the whole retry budget.
    pub sheds: HashSet<ServerId>,
}

impl OpCommon {
    /// Fresh bookkeeping for an operation starting now.
    pub fn start(kind: OpKind, group: GroupId, started: SimTime, offset: usize) -> OpCommon {
        OpCommon {
            kind,
            group,
            started,
            round: 1,
            contacted: HashSet::new(),
            offset,
            timer_epoch: 0,
            sheds: HashSet::new(),
        }
    }
}

/// Protocol-family-specific operation state.
#[derive(Debug)]
pub(crate) enum OpState {
    /// Context acquisition (paper Fig. 1, read side).
    CtxRead {
        responded: HashSet<ServerId>,
        candidates: Vec<SignedContext>,
    },
    /// Context reconstruction after a crash (paper §5.1).
    CtxScan {
        responded: HashSet<ServerId>,
        metas: Vec<(ServerId, Vec<ItemMeta>)>,
        /// Set once `n - b` responses arrived: the scan keeps waiting one
        /// grace round for honest stragglers so a fast faulty server cannot
        /// eclipse the sole honest holder of the client's latest write.
        grace: bool,
    },
    /// Context storage (paper Fig. 1, write side).
    CtxWrite {
        acks: HashSet<ServerId>,
        quorum: usize,
    },
    /// Single-writer read, phase 1: timestamp query.
    ReadP1 {
        data: DataId,
        consistency: Consistency,
        responded: HashSet<ServerId>,
        candidates: Vec<(ServerId, ItemMeta, Option<StoredItem>)>,
        /// Newest timestamp observed across all rounds (for `Stale`).
        best_seen: Option<Timestamp>,
        awaiting_retry: bool,
    },
    /// Single-writer read, phase 2: value fetch from the chosen server.
    ReadP2 {
        data: DataId,
        consistency: Consistency,
        target: ServerId,
        /// Remaining fallback candidates, best first.
        fallbacks: Vec<(ServerId, ItemMeta)>,
        /// Carried forward for `Stale` reporting.
        best_seen: Option<Timestamp>,
    },
    /// Single-writer write: waiting for `needed` accepted acks.
    Write {
        acks: HashSet<ServerId>,
        needed: usize,
        ts: Timestamp,
        /// Kept for re-sending when the contact set widens.
        item: StoredItem,
    },
    /// Multi-writer read: collecting version lists.
    MwRead {
        data: DataId,
        consistency: Consistency,
        responded: HashMap<ServerId, Vec<StoredItem>>,
        /// Newest acceptable timestamp observed (for `Stale`).
        best_seen: Option<Timestamp>,
        awaiting_retry: bool,
    },
    /// Multi-writer write: waiting for `needed` accepted acks.
    MwWrite {
        acks: HashSet<ServerId>,
        needed: usize,
        ts: Timestamp,
        /// Kept for re-sending when the contact set widens.
        item: StoredItem,
    },
}

#[derive(Debug)]
pub(crate) struct Op {
    pub common: OpCommon,
    pub state: OpState,
}

/// The client state machine.
#[derive(Debug)]
pub struct ClientCore {
    id: ClientId,
    dir: Arc<Directory>,
    cfg: ClientConfig,
    key: SigningKey,
    contexts: HashMap<GroupId, Context>,
    sessions: HashMap<GroupId, u64>,
    /// Session numbers proposed by in-flight disconnects, adopted on ack.
    pending_session: HashMap<GroupId, u64>,
    ops: HashMap<OpId, Op>,
    next_op: u64,
    counters: CryptoCounters,
    /// Signatures this client has already verified — quorum reads deliver
    /// the same signed item from several servers, and repeated reads of a
    /// stable item should not re-pay the public-key operation.
    vcache: VerifyCache,
    /// Current fault estimate `b̂` for adaptive read quorums (always the
    /// full bound `b` unless `adaptive_read_quorum` is on).
    fault_estimate: usize,
}

impl ClientCore {
    /// Creates a client with the given identity and signing key.
    pub fn new(id: ClientId, dir: Arc<Directory>, cfg: ClientConfig, key: SigningKey) -> Self {
        let fault_estimate = if cfg.adaptive_read_quorum { 0 } else { dir.b() };
        ClientCore {
            id,
            dir,
            cfg,
            key,
            contexts: HashMap::new(),
            sessions: HashMap::new(),
            pending_session: HashMap::new(),
            ops: HashMap::new(),
            next_op: 1,
            counters: CryptoCounters::new(),
            vcache: VerifyCache::default(),
            fault_estimate,
        }
    }

    /// The verification cache (for hit/miss inspection by harnesses).
    pub fn verify_cache(&self) -> &VerifyCache {
        &self.vcache
    }

    /// The current read-quorum fault estimate `b̂`.
    pub fn fault_estimate(&self) -> usize {
        self.fault_estimate
    }

    /// Raises the fault estimate after observing suspicious behaviour
    /// (invalid response or an empty round), capped at the design bound.
    pub(crate) fn raise_fault_estimate(&mut self) {
        if self.cfg.adaptive_read_quorum && self.fault_estimate < self.dir.b() {
            self.fault_estimate += 1;
        }
    }

    /// The client's identity.
    pub fn id(&self) -> ClientId {
        self.id
    }

    /// Cryptographic-operation counters accumulated so far.
    pub fn counters(&self) -> CryptoCounters {
        self.counters
    }

    /// The client's current context for `group` (empty if never connected).
    pub fn context(&self, group: GroupId) -> Context {
        self.contexts
            .get(&group)
            .cloned()
            .unwrap_or_else(|| Context::new(group))
    }

    /// Drops all in-memory state except identity and key — simulates a
    /// client crash (contexts are lost; reconnect with `recover: true`).
    pub fn crash(&mut self) {
        self.contexts.clear();
        self.sessions.clear();
        self.ops.clear();
        // A crash loses in-memory state — including remembered verifications.
        self.vcache = VerifyCache::default();
    }

    /// Number of operations still in flight.
    pub fn inflight(&self) -> usize {
        self.ops.len()
    }

    /// Starts an operation; returns its id and the initial effects.
    pub fn begin(&mut self, op: ClientOp, now: SimTime, rng: &mut StdRng) -> (OpId, Output) {
        let id = OpId(self.next_op);
        self.next_op += 1;
        let offset = if self.cfg.sticky_rotation {
            self.id.0 as usize % self.dir.n()
        } else {
            rng.gen_range(0..self.dir.n())
        };
        let out = match op {
            ClientOp::Connect { group, recover } => {
                self.begin_connect(id, group, recover, now, offset)
            }
            ClientOp::Disconnect { group } => self.begin_disconnect(id, group, now, offset),
            ClientOp::Write {
                data,
                group,
                consistency,
                value,
            } => {
                let fuzz = match self.cfg.timestamp_fuzz {
                    Some(max) if max > 0 => rng.gen_range(0..=max),
                    _ => 0,
                };
                self.begin_write(id, data, group, consistency, value, now, offset, fuzz)
            }
            ClientOp::Read {
                data,
                group,
                consistency,
            } => self.begin_read(id, data, group, consistency, now, offset),
            ClientOp::MwWrite { data, group, value } => {
                self.begin_mw_write(id, data, group, value, now, offset)
            }
            ClientOp::MwRead {
                data,
                group,
                consistency,
            } => self.begin_mw_read(id, data, group, consistency, now, offset),
        };
        (id, out)
    }

    /// Feeds a server message into the state machine.
    pub fn on_message(&mut self, from: ServerId, msg: Msg, now: SimTime) -> Output {
        let Some(op_id) = msg.op() else {
            return Output::default(); // gossip never reaches clients
        };
        if !self.ops.contains_key(&op_id) {
            return Output::default(); // late response for a completed op
        }
        match msg {
            Msg::CtxReadResp { op, stored } => self.on_ctx_read_resp(op, from, stored, now),
            Msg::TsScanResp { op, entries } => self.on_ts_scan_resp(op, from, entries, now),
            Msg::CtxWriteAck { op } => self.on_ctx_write_ack(op, from, now),
            Msg::TsQueryResp {
                op, meta, inline, ..
            } => self.on_ts_query_resp(op, from, meta, inline, now),
            Msg::ReadResp { op, item } => self.on_read_resp(op, from, item, now),
            Msg::WriteAck { op, accepted } => self.on_write_ack(op, from, accepted, now),
            Msg::MwReadResp { op, versions, .. } => self.on_mw_read_resp(op, from, versions, now),
            Msg::Shed { op } => self.on_shed(op, from, now),
            _ => Output::default(),
        }
    }

    /// Handles an explicit server load-shed: unlike Byzantine silence, a
    /// shed is attributable, so the op escalates immediately — widening
    /// its contact set exactly as a phase timeout would ("retry
    /// elsewhere") instead of waiting the timer out. Only the *first*
    /// shed from each server escalates; repeats are ignored so one
    /// flapping server cannot burn the whole retry budget.
    fn on_shed(&mut self, op_id: OpId, from: ServerId, now: SimTime) -> Output {
        let newly = match self.ops.get_mut(&op_id) {
            Some(op) => op.common.sheds.insert(from),
            None => return Output::default(), // late shed for a completed op
        };
        if !newly {
            return Output::default();
        }
        self.on_op_timeout(op_id, now)
    }

    /// Abandons an in-flight operation past its transport-level deadline,
    /// returning a completed-with-error result. Real transports call this
    /// to turn a per-op deadline into a surfaced [`Outcome::Unavailable`]
    /// instead of leaving the op id pending forever; late responses for
    /// the expired op are ignored like any completed op's.
    pub fn expire(&mut self, op_id: OpId, now: SimTime) -> Option<OpResult> {
        let op = self.ops.remove(&op_id)?;
        Some(OpResult {
            op: op_id,
            kind: op.common.kind,
            outcome: Outcome::Unavailable,
            started: op.common.started,
            finished: now,
            rounds: op.common.round,
        })
    }

    /// Hedges a slow read: contacts one additional server with the op's
    /// current-phase request *without* consuming a retry round, so a
    /// straggling quorum member costs one duplicate request instead of a
    /// full phase timeout. Only read-family phases hedge (context reads,
    /// single-writer phase 1, multi-writer reads) — writes never fan out
    /// early, and ops already contacting every server return nothing.
    /// Transports gate this on a latency percentile and call it at most
    /// once per op.
    pub fn hedge(&mut self, op_id: OpId, _now: SimTime) -> Output {
        let mut out = Output::default();
        let Some(mut op) = self.take_op(op_id) else {
            return out;
        };
        let rotation = self.rotation(op.common.offset);
        let target = op.common.contacted.len().saturating_add(1);
        let client = self.id();
        let group = op.common.group;
        match &op.state {
            OpState::CtxRead { .. } => {
                Self::widen_contacts(
                    op_id,
                    &mut op.common,
                    &rotation,
                    target,
                    |op| Msg::CtxReadReq { op, client, group },
                    &mut out,
                );
            }
            OpState::ReadP1 { data, .. } => {
                let data = *data;
                Self::widen_contacts(
                    op_id,
                    &mut op.common,
                    &rotation,
                    target,
                    |op| Msg::TsQueryReq { op, data },
                    &mut out,
                );
            }
            OpState::MwRead { data, .. } => {
                let data = *data;
                Self::widen_contacts(
                    op_id,
                    &mut op.common,
                    &rotation,
                    target,
                    |op| Msg::MwReadReq { op, data },
                    &mut out,
                );
            }
            _ => {}
        }
        self.insert_op(op_id, op);
        out
    }

    /// Handles a timer token previously emitted in [`Output::timers`].
    pub fn on_timeout(&mut self, token: u64, now: SimTime) -> Output {
        let op_id = OpId(token & 0xff_ffff_ffff);
        let epoch = (token >> 40) as u32;
        let Some(op) = self.ops.get(&op_id) else {
            return Output::default();
        };
        if op.common.timer_epoch != epoch {
            return Output::default(); // superseded timer
        }
        self.on_op_timeout(op_id, now)
    }

    // ------------------------------------------------------------------
    // Shared helpers (used by the protocol submodules)
    // ------------------------------------------------------------------

    /// The rotation of all servers starting at `offset`.
    pub(crate) fn rotation(&self, offset: usize) -> Vec<ServerId> {
        let n = self.dir.n();
        (0..n)
            .map(|i| ServerId(((offset + i) % n) as u16))
            .collect()
    }

    /// Target contact-set size for `round` with base quorum `base`.
    pub(crate) fn target_count(&self, base: usize, round: u32) -> usize {
        (base + self.cfg.extra_fanout)
            .saturating_mul(round as usize)
            .min(self.dir.n())
    }

    /// Sends `make(op)` to servers in the rotation until the contact set
    /// reaches `target`, skipping already-contacted servers.
    pub(crate) fn widen_contacts(
        op_id: OpId,
        common: &mut OpCommon,
        rotation: &[ServerId],
        target: usize,
        make: impl Fn(OpId) -> Msg,
        out: &mut Output,
    ) {
        for &s in rotation.iter().take(target) {
            if common.contacted.insert(s) {
                out.sends.push((s, make(op_id)));
            }
        }
    }

    /// Arms the phase timer with the policy's backed-off delay for the
    /// op's current round (round 1 = the base timeout).
    pub(crate) fn arm_phase_timer(
        op_id: OpId,
        common: &mut OpCommon,
        retry: RetryPolicy,
        out: &mut Output,
    ) {
        let delay = retry.phase_delay(common.round);
        Self::arm_timer(op_id, common, delay, out);
    }

    /// Arms the stale-retry timer with the policy's backed-off delay for
    /// the op's current round.
    pub(crate) fn arm_stale_timer(
        op_id: OpId,
        common: &mut OpCommon,
        retry: RetryPolicy,
        out: &mut Output,
    ) {
        let delay = retry.stale_delay(common.round);
        Self::arm_timer(op_id, common, delay, out);
    }

    /// Arms the op's (sole valid) phase timer.
    pub(crate) fn arm_timer(op_id: OpId, common: &mut OpCommon, delay: SimTime, out: &mut Output) {
        common.timer_epoch += 1;
        debug_assert!(op_id.0 < (1 << 40), "op id overflows timer token");
        let token = op_id.0 | ((common.timer_epoch as u64) << 40);
        out.timers.push((delay, token));
    }

    /// Records a completed operation (the op must already be removed from
    /// the in-flight map).
    pub(crate) fn complete(op_id: OpId, op: Op, outcome: Outcome, now: SimTime, out: &mut Output) {
        out.done.push(OpResult {
            op: op_id,
            kind: op.common.kind,
            outcome,
            started: op.common.started,
            finished: now,
            rounds: op.common.round,
        });
    }

    /// Removes an in-flight op for processing (reinsert to keep it going).
    pub(crate) fn take_op(&mut self, op_id: OpId) -> Option<Op> {
        self.ops.remove(&op_id)
    }

    /// Reinserts an op that is still in flight.
    pub(crate) fn insert_op(&mut self, op_id: OpId, op: Op) {
        self.ops.insert(op_id, op);
    }

    /// Last committed session number for `group` (0 if never connected).
    pub(crate) fn session_of(&self, group: GroupId) -> u64 {
        self.sessions.get(&group).copied().unwrap_or(0)
    }

    /// This client's own public key (used to validate its stored contexts).
    pub(crate) fn verifying_key(&self) -> sstore_crypto::schnorr::VerifyingKey {
        self.key.verifying_key().clone()
    }

    /// Mutable access to the context of `group`, creating it if absent.
    pub(crate) fn ctx_mut(&mut self, group: GroupId) -> &mut Context {
        self.contexts
            .entry(group)
            .or_insert_with(|| Context::new(group))
    }

    /// Accessors for submodules.
    pub(crate) fn parts(
        &mut self,
    ) -> (
        &Arc<Directory>,
        &ClientConfig,
        &SigningKey,
        &mut HashMap<OpId, Op>,
        &mut CryptoCounters,
        &mut VerifyCache,
    ) {
        (
            &self.dir,
            &self.cfg,
            &self.key,
            &mut self.ops,
            &mut self.counters,
            &mut self.vcache,
        )
    }

    pub(crate) fn dir(&self) -> &Arc<Directory> {
        &self.dir
    }

    pub(crate) fn cfg(&self) -> &ClientConfig {
        &self.cfg
    }

    /// The retry/backoff policy this client runs under. Real transports
    /// reuse it for their own redial schedules so every retry loop in the
    /// system shares one bounded-backoff story.
    pub fn retry_policy(&self) -> RetryPolicy {
        self.cfg.retry
    }

    pub(crate) fn ctx_quorum(&self) -> usize {
        quorum::context_quorum(self.dir.n(), self.dir.b())
    }

    /// Dispatches a phase timeout to the family-specific handler.
    fn on_op_timeout(&mut self, op_id: OpId, now: SimTime) -> Output {
        let state_kind = {
            let Some(op) = self.ops.get(&op_id) else {
                // Timer fired after the op completed: nothing to do.
                return Output::default();
            };
            match &op.state {
                OpState::CtxRead { .. } => 0,
                OpState::CtxScan { .. } => 1,
                OpState::CtxWrite { .. } => 2,
                OpState::ReadP1 { .. } => 3,
                OpState::ReadP2 { .. } => 4,
                OpState::Write { .. } => 5,
                OpState::MwRead { .. } => 6,
                OpState::MwWrite { .. } => 7,
            }
        };
        match state_kind {
            0..=2 => self.session_timeout(op_id, now),
            3..=5 => self.ops_timeout(op_id, now),
            _ => self.multi_timeout(op_id, now),
        }
    }
}
