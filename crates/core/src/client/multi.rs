//! Multi-writer data protocols hardened against malicious clients
//! (paper §5.3).
//!
//! Timestamps become `(time, uid(C), d(v))` tuples; reads contact `2b+1`
//! servers and accept a value only when `b+1` of them report it, masking
//! servers that would report a write before its causal predecessors have
//! arrived. Clients need not verify signatures on this path — non-malicious
//! servers validate before reporting — but can be configured to.

use std::collections::{HashMap, HashSet};

use sstore_simnet::SimTime;

use crate::client::{ClientCore, Op, OpCommon, OpKind, OpState, Outcome, Output};
use crate::item::StoredItem;
use crate::quorum;
use crate::types::{Consistency, DataId, GroupId, OpId, ServerId, Timestamp, TsOrder};
use crate::wire::Msg;
use sstore_crypto::ct::ct_eq;
use sstore_crypto::sha256::digest;

impl ClientCore {
    /// Starts a multi-writer write: `2b+1` servers, augmented timestamp.
    pub(crate) fn begin_mw_write(
        &mut self,
        op_id: OpId,
        data: DataId,
        group: GroupId,
        value: Vec<u8>,
        now: SimTime,
        offset: usize,
    ) -> Output {
        let mut out = Output::default();
        // Lamport-style time: advance past everything this client has seen
        // in the group, so causality is respected across writers.
        let time = self
            .context(group)
            .iter()
            .map(|(_, ts)| ts.time())
            .max()
            .unwrap_or(0)
            + 1;
        let ts = Timestamp::Multi {
            time,
            writer: self.id(),
            digest: digest(&value),
        };
        self.ctx_mut(group).observe(data, ts);
        let writer_ctx = Some(self.context(group));
        let client = self.id();
        let item = {
            let (_, _, key, _, counters, _) = self.parts();
            StoredItem::create(data, group, ts, client, writer_ctx, value, key, counters)
        };
        let needed = quorum::multi_writer_quorum(self.dir().b());
        let mut common = OpCommon::start(OpKind::MwWrite, group, now, offset);
        let rotation = self.rotation(offset);
        {
            let item = &item;
            Self::widen_contacts(
                op_id,
                &mut common,
                &rotation,
                self.target_count(needed, 1),
                |op| Msg::WriteReq {
                    op,
                    item: item.clone(),
                },
                &mut out,
            );
        }
        Self::arm_phase_timer(op_id, &mut common, self.cfg().retry, &mut out);
        self.insert_op(
            op_id,
            Op {
                common,
                state: OpState::MwWrite {
                    acks: HashSet::new(),
                    needed,
                    ts,
                    item,
                },
            },
        );
        out
    }

    /// Starts a multi-writer read: version-list queries to `2b+1` servers.
    pub(crate) fn begin_mw_read(
        &mut self,
        op_id: OpId,
        data: DataId,
        group: GroupId,
        consistency: Consistency,
        now: SimTime,
        offset: usize,
    ) -> Output {
        let mut out = Output::default();
        let base = quorum::multi_writer_quorum(self.dir().b());
        let mut common = OpCommon::start(OpKind::MwRead, group, now, offset);
        let rotation = self.rotation(offset);
        Self::widen_contacts(
            op_id,
            &mut common,
            &rotation,
            self.target_count(base, 1),
            |op| Msg::MwReadReq { op, data },
            &mut out,
        );
        Self::arm_phase_timer(op_id, &mut common, self.cfg().retry, &mut out);
        self.insert_op(
            op_id,
            Op {
                common,
                state: OpState::MwRead {
                    data,
                    consistency,
                    responded: HashMap::new(),
                    best_seen: None,
                    awaiting_retry: false,
                },
            },
        );
        out
    }

    /// Handles a multi-writer write acknowledgement.
    pub(crate) fn on_mw_write_ack(
        &mut self,
        op_id: OpId,
        from: ServerId,
        accepted: bool,
        now: SimTime,
    ) -> Output {
        let mut out = Output::default();
        let Some(mut op) = self.take_op(op_id) else {
            return out;
        };
        let OpState::MwWrite {
            acks, needed, ts, ..
        } = &mut op.state
        else {
            self.insert_op(op_id, op);
            return out;
        };
        if op.common.contacted.contains(&from) && accepted {
            acks.insert(from);
        }
        if acks.len() >= *needed {
            let ts = *ts;
            Self::complete(op_id, op, Outcome::WriteOk { ts }, now, &mut out);
        } else {
            self.insert_op(op_id, op);
        }
        out
    }

    /// Handles a multi-writer version-list response.
    pub(crate) fn on_mw_read_resp(
        &mut self,
        op_id: OpId,
        from: ServerId,
        versions: Vec<StoredItem>,
        now: SimTime,
    ) -> Output {
        let mut out = Output::default();
        let Some(mut op) = self.take_op(op_id) else {
            return out;
        };
        let OpState::MwRead {
            responded,
            awaiting_retry,
            ..
        } = &mut op.state
        else {
            self.insert_op(op_id, op);
            return out;
        };
        if *awaiting_retry || !op.common.contacted.contains(&from) || responded.contains_key(&from)
        {
            self.insert_op(op_id, op);
            return out;
        }
        responded.insert(from, versions);
        if responded.len() >= op.common.contacted.len() {
            self.evaluate_mw_read(op_id, op, now, &mut out);
        } else {
            self.insert_op(op_id, op);
        }
        out
    }

    /// The acceptance rule of paper §5.3: a value counts only when `b+1`
    /// servers report it, and the newest acceptable value wins. Pairs of
    /// reported timestamps with equal `(time, writer)` but different
    /// digests expose a faulty writer.
    fn evaluate_mw_read(&mut self, op_id: OpId, mut op: Op, now: SimTime, out: &mut Output) {
        let OpState::MwRead {
            data,
            consistency,
            responded,
            best_seen,
            ..
        } = &mut op.state
        else {
            debug_assert!(false, "evaluate_mw_read on wrong state");
            return;
        };
        let data = *data;
        let consistency = *consistency;
        let group = op.common.group;
        let ctx_ts = self.context(group).timestamp(data);

        // Tally identical versions across servers.
        struct Bucket {
            item: StoredItem,
            holders: HashSet<ServerId>,
        }
        let mut buckets: Vec<Bucket> = Vec::new();
        let mut faulty_writer = false;
        let mut digest_checks = 0u64;
        for (&server, versions) in responded.iter() {
            for item in versions {
                if item.meta.data != data {
                    continue;
                }
                // The multi-writer timestamp binds the value: `d(v)` is a
                // component of the timestamp itself (paper §5.3). A copy
                // whose bytes do not hash to the timestamp's digest is a
                // server-side corruption and cannot vouch for anything.
                if let Timestamp::Multi { digest: d, .. } = item.meta.ts {
                    digest_checks += 1;
                    if !ct_eq(digest(&item.value).as_bytes(), d.as_bytes()) {
                        continue;
                    }
                }
                let mut placed = false;
                for bucket in &mut buckets {
                    match item.meta.ts.compare(&bucket.item.meta.ts) {
                        TsOrder::Equal => {
                            bucket.holders.insert(server);
                            placed = true;
                            break;
                        }
                        TsOrder::FaultyWriter => {
                            faulty_writer = true;
                        }
                        _ => {}
                    }
                }
                if !placed {
                    buckets.push(Bucket {
                        item: item.clone(),
                        holders: [server].into_iter().collect(),
                    });
                }
            }
        }
        {
            let (_, _, _, _, counters, _) = self.parts();
            for _ in 0..digest_checks {
                counters.count_digest();
            }
        }
        if faulty_writer {
            Self::complete(op_id, op, Outcome::FaultyWriterDetected { data }, now, out);
            return;
        }
        let accept = quorum::multi_writer_accept(self.dir().b());
        let verify_reads = self.cfg().verify_multi_writer_reads;
        let mut viable: Vec<(StoredItem, usize)> = Vec::new();
        for bucket in buckets {
            if best_seen.is_none_or(|b| bucket.item.meta.ts.is_newer_than(&b)) {
                *best_seen = Some(bucket.item.meta.ts);
            }
            if bucket.holders.len() < accept || !bucket.item.meta.ts.is_at_least(&ctx_ts) {
                continue;
            }
            if verify_reads {
                let Some(key) = self.dir().client_key(bucket.item.meta.writer).cloned() else {
                    continue;
                };
                let ok = {
                    let (_, _, _, _, counters, vcache) = self.parts();
                    bucket.item.verify_cached(&key, vcache, counters).is_ok()
                };
                if !ok {
                    continue;
                }
            }
            viable.push((bucket.item, bucket.holders.len()));
        }
        viable.sort_by(|a, b| match a.0.meta.ts.compare(&b.0.meta.ts) {
            TsOrder::Less => std::cmp::Ordering::Greater,
            TsOrder::Greater => std::cmp::Ordering::Less,
            _ => std::cmp::Ordering::Equal,
        });
        let best_seen = *best_seen;
        if let Some((item, confirmations)) = viable.into_iter().next() {
            let ctx = self.ctx_mut(group);
            ctx.observe(data, item.meta.ts);
            if consistency == Consistency::Cc {
                if let Some(wctx) = &item.meta.writer_ctx {
                    ctx.merge(wctx);
                }
            }
            let outcome = Outcome::ReadOk {
                ts: item.meta.ts,
                value: item.value,
                confirmations,
            };
            Self::complete(op_id, op, outcome, now, out);
        } else {
            self.escalate_mw_read(op_id, op, best_seen, now, out);
        }
    }

    /// Widen the contact set, or schedule a dissemination-wait retry, or
    /// give up `Stale`.
    fn escalate_mw_read(
        &mut self,
        op_id: OpId,
        mut op: Op,
        best_seen: Option<Timestamp>,
        now: SimTime,
        out: &mut Output,
    ) {
        if op.common.round >= self.cfg().retry.max_rounds {
            Self::complete(op_id, op, Outcome::Stale { best_seen }, now, out);
            return;
        }
        op.common.round += 1;
        let round = op.common.round;
        let base = quorum::multi_writer_quorum(self.dir().b());
        let target = self.target_count(base, round);
        let OpState::MwRead {
            data,
            responded,
            awaiting_retry,
            ..
        } = &mut op.state
        else {
            debug_assert!(false, "escalate_mw_read on non-MwRead op");
            return;
        };
        let data = *data;
        responded.clear();
        if target > op.common.contacted.len() {
            let rotation = self.rotation(op.common.offset);
            Self::widen_contacts(
                op_id,
                &mut op.common,
                &rotation,
                target,
                |op| Msg::MwReadReq { op, data },
                out,
            );
            // Re-query the previously contacted servers as well.
            for &s in op.common.contacted.clone().iter() {
                if !out
                    .sends
                    .iter()
                    .any(|(to, m)| *to == s && m.op() == Some(op_id))
                {
                    out.sends.push((s, Msg::MwReadReq { op: op_id, data }));
                }
            }
            Self::arm_phase_timer(op_id, &mut op.common, self.cfg().retry, out);
        } else {
            *awaiting_retry = true;
            Self::arm_stale_timer(op_id, &mut op.common, self.cfg().retry, out);
        }
        self.insert_op(op_id, op);
    }

    /// Timeout handling for the multi-writer states.
    pub(crate) fn multi_timeout(&mut self, op_id: OpId, now: SimTime) -> Output {
        let mut out = Output::default();
        let Some(mut op) = self.take_op(op_id) else {
            return out;
        };
        match &mut op.state {
            OpState::MwWrite {
                needed, item, acks, ..
            } => {
                if op.common.round >= self.cfg().retry.max_rounds {
                    Self::complete(op_id, op, Outcome::Unavailable, now, &mut out);
                    return out;
                }
                op.common.round += 1;
                let target = self.target_count(*needed, op.common.round);
                let rotation = self.rotation(op.common.offset);
                let item = item.clone();
                let acked = acks.clone();
                Self::widen_contacts(
                    op_id,
                    &mut op.common,
                    &rotation,
                    target,
                    |op| Msg::WriteReq {
                        op,
                        item: item.clone(),
                    },
                    &mut out,
                );
                // Re-deliver to servers that have not acked yet: a server
                // holding the write back for a causal dependency re-checks
                // admission on every delivery, so retries make progress once
                // the dependency has disseminated.
                for &s in op.common.contacted.iter() {
                    if acked.contains(&s)
                        || out
                            .sends
                            .iter()
                            .any(|(to, m)| *to == s && m.op() == Some(op_id))
                    {
                        continue;
                    }
                    out.sends.push((
                        s,
                        Msg::WriteReq {
                            op: op_id,
                            item: item.clone(),
                        },
                    ));
                }
                Self::arm_phase_timer(op_id, &mut op.common, self.cfg().retry, &mut out);
                self.insert_op(op_id, op);
            }
            OpState::MwRead {
                awaiting_retry,
                responded,
                data,
                ..
            } => {
                if *awaiting_retry {
                    *awaiting_retry = false;
                    responded.clear();
                    let data = *data;
                    for &s in &op.common.contacted {
                        out.sends.push((s, Msg::MwReadReq { op: op_id, data }));
                    }
                    Self::arm_phase_timer(op_id, &mut op.common, self.cfg().retry, &mut out);
                    self.insert_op(op_id, op);
                } else {
                    self.evaluate_mw_read(op_id, op, now, &mut out);
                }
            }
            _ => debug_assert!(false, "multi_timeout on non-multi op"),
        }
        out
    }
}
