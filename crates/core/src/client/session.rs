//! Session management: context acquisition, storage and reconstruction
//! (paper §5.1, Fig. 1).

use std::collections::{HashMap, HashSet};

use sstore_crypto::schnorr::{verify_batch, BatchEntry};
use sstore_simnet::SimTime;

use crate::client::{ClientCore, Op, OpCommon, OpKind, OpState, Outcome, Output};
use crate::item::{ItemMeta, SignedContext};
use crate::types::{DataId, GroupId, OpId, ServerId};
use crate::wire::Msg;

impl ClientCore {
    /// Starts a `Connect` (context read) or `Reconstruct` (full scan).
    pub(crate) fn begin_connect(
        &mut self,
        op_id: OpId,
        group: GroupId,
        recover: bool,
        now: SimTime,
        offset: usize,
    ) -> Output {
        let mut out = Output::default();
        let kind = if recover {
            OpKind::Reconstruct
        } else {
            OpKind::Connect
        };
        let mut common = OpCommon::start(kind, group, now, offset);
        let rotation = self.rotation(offset);
        let state = if recover {
            // Reconstruction reads item metadata from *all* servers.
            Self::widen_contacts(
                op_id,
                &mut common,
                &rotation,
                self.dir().n(),
                |op| Msg::TsScanReq { op, group },
                &mut out,
            );
            OpState::CtxScan {
                responded: HashSet::new(),
                metas: Vec::new(),
                grace: false,
            }
        } else {
            let client = self.id();
            Self::widen_contacts(
                op_id,
                &mut common,
                &rotation,
                self.target_count(self.ctx_quorum(), 1),
                |op| Msg::CtxReadReq { op, client, group },
                &mut out,
            );
            OpState::CtxRead {
                responded: HashSet::new(),
                candidates: Vec::new(),
            }
        };
        Self::arm_phase_timer(op_id, &mut common, self.cfg().retry, &mut out);
        self.insert_op(op_id, Op { common, state });
        out
    }

    /// Starts a `Disconnect`: sign and store the current context.
    pub(crate) fn begin_disconnect(
        &mut self,
        op_id: OpId,
        group: GroupId,
        now: SimTime,
        offset: usize,
    ) -> Output {
        let mut out = Output::default();
        let session = self.session_of(group) + 1;
        let ctx = self.context(group);
        let client = self.id();
        let signed = {
            let (_, _, key, _, counters, _) = self.parts();
            SignedContext::create(client, session, ctx, key, counters)
        };
        let mut common = OpCommon::start(OpKind::Disconnect, group, now, offset);
        let quorum = self.ctx_quorum();
        let rotation = self.rotation(offset);
        Self::widen_contacts(
            op_id,
            &mut common,
            &rotation,
            self.target_count(quorum, 1),
            |op| Msg::CtxWriteReq {
                op,
                group,
                signed: signed.clone(),
            },
            &mut out,
        );
        Self::arm_phase_timer(op_id, &mut common, self.cfg().retry, &mut out);
        self.insert_op(
            op_id,
            Op {
                common,
                state: OpState::CtxWrite {
                    acks: HashSet::new(),
                    quorum,
                },
            },
        );
        self.pending_session.insert(group, session);
        out
    }

    /// Handles a context-read response.
    pub(crate) fn on_ctx_read_resp(
        &mut self,
        op_id: OpId,
        from: ServerId,
        stored: Option<SignedContext>,
        now: SimTime,
    ) -> Output {
        let mut out = Output::default();
        let Some(mut op) = self.take_op(op_id) else {
            return out;
        };
        let OpState::CtxRead {
            responded,
            candidates,
        } = &mut op.state
        else {
            self.insert_op(op_id, op);
            return out;
        };
        if !op.common.contacted.contains(&from) || !responded.insert(from) {
            self.insert_op(op_id, op);
            return out;
        }
        if let Some(sc) = stored {
            // Only contexts claiming to be ours and for this group matter.
            if sc.client == self.id() && sc.ctx.group() == op.common.group {
                candidates.push(sc);
            }
        }
        if responded.len() >= self.ctx_quorum() {
            self.finish_ctx_read(op_id, op, now, &mut out);
        } else {
            self.insert_op(op_id, op);
        }
        out
    }

    /// Picks the latest *valid* candidate: sort by session descending and
    /// verify until one passes — "in the best case, context acquisition
    /// requires just one signature verification" (paper §6).
    fn finish_ctx_read(&mut self, op_id: OpId, mut op: Op, now: SimTime, out: &mut Output) {
        let OpState::CtxRead { candidates, .. } = &mut op.state else {
            debug_assert!(false, "finish_ctx_read on non-CtxRead op");
            return;
        };
        candidates.sort_by_key(|c| std::cmp::Reverse(c.session));
        let mut adopted: Option<SignedContext> = None;
        let my_key = self.verifying_key();
        for sc in candidates.drain(..) {
            let ok = {
                let (_, _, _, _, counters, vcache) = self.parts();
                sc.verify_cached(&my_key, vcache, counters).is_ok()
            };
            if ok {
                adopted = Some(sc);
                break;
            }
        }
        let group = op.common.group;
        let context_len = match adopted {
            Some(sc) => {
                let len = sc.ctx.len();
                self.sessions.insert(group, sc.session);
                self.contexts.insert(group, sc.ctx);
                len
            }
            None => {
                // Fresh client (or all copies invalid): start empty.
                self.contexts
                    .entry(group)
                    .or_insert_with(|| crate::context::Context::new(group));
                0
            }
        };
        Self::complete(op_id, op, Outcome::Connected { context_len }, now, out);
    }

    /// Handles a reconstruction-scan response.
    pub(crate) fn on_ts_scan_resp(
        &mut self,
        op_id: OpId,
        from: ServerId,
        entries: Vec<ItemMeta>,
        now: SimTime,
    ) -> Output {
        let mut out = Output::default();
        let Some(mut op) = self.take_op(op_id) else {
            return out;
        };
        let OpState::CtxScan {
            responded,
            metas,
            grace,
        } = &mut op.state
        else {
            self.insert_op(op_id, op);
            return out;
        };
        if !responded.insert(from) {
            self.insert_op(op_id, op);
            return out;
        }
        metas.push((from, entries));
        let done = responded.len();
        // Only faulty servers may withhold: n-b responses are guaranteed.
        // But finishing at the *first* n-b would let one fast faulty server
        // displace the lone honest holder of the client's latest write
        // (written to only a data quorum of b+1 servers), silently shrinking
        // the reconstructed context. Finish immediately only once everyone
        // answered; otherwise wait one bounded grace round for stragglers.
        if done >= self.dir().n() {
            self.finish_ctx_scan(op_id, op, now, &mut out);
        } else {
            if done >= self.dir().n() - self.dir().b() && !*grace {
                *grace = true;
                Self::arm_phase_timer(op_id, &mut op.common, self.cfg().retry, &mut out);
            }
            self.insert_op(op_id, op);
        }
        out
    }

    /// Builds the context from "the latest valid timestamp for each data
    /// item" (paper §5.1): per item, verify candidate metadata from newest
    /// to oldest and adopt the first that verifies.
    fn finish_ctx_scan(&mut self, op_id: OpId, mut op: Op, now: SimTime, out: &mut Output) {
        let OpState::CtxScan { metas, .. } = &mut op.state else {
            debug_assert!(false, "finish_ctx_scan on non-CtxScan op");
            return;
        };
        let group = op.common.group;
        let mut by_item: HashMap<DataId, Vec<ItemMeta>> = HashMap::new();
        for (_, entries) in metas.drain(..) {
            for m in entries {
                if m.group == group {
                    by_item.entry(m.data).or_default().push(m);
                }
            }
        }
        let mut items: Vec<(DataId, Vec<ItemMeta>)> = by_item.into_iter().collect();
        for (_, candidates) in &mut items {
            // Newest first; identical timestamps only need one verification.
            candidates.sort_by(|a, b| match a.ts.compare(&b.ts) {
                crate::types::TsOrder::Less => std::cmp::Ordering::Greater,
                crate::types::TsOrder::Greater => std::cmp::Ordering::Less,
                _ => std::cmp::Ordering::Equal,
            });
            candidates.dedup_by(|a, b| a.ts.compare(&b.ts) == crate::types::TsOrder::Equal);
        }
        // Common case: every item's newest candidate is honest and will be
        // the one adopted, so verify all of them as one batch up front.
        // Seeding charges nothing; the adoption loop below still counts one
        // `verify_cached` per adopted meta, keeping `logical_verifies()`
        // identical to unbatched execution.
        let heads: Vec<&ItemMeta> = items.iter().filter_map(|(_, c)| c.first()).collect();
        self.batch_preverify_metas(&heads);
        let mut ctx = crate::context::Context::new(group);
        for (data, candidates) in items {
            for meta in candidates {
                let Some(key) = self.dir().client_key(meta.writer).cloned() else {
                    continue;
                };
                let ok = {
                    let (_, _, _, _, counters, vcache) = self.parts();
                    meta.verify_cached(&key, vcache, counters).is_ok()
                };
                if ok {
                    ctx.observe(data, meta.ts);
                    break;
                }
            }
        }
        let context_len = ctx.len();
        self.contexts.insert(group, ctx);
        // The crashed session's number is unknown; derive a strictly larger
        // one from simulated time so the next stored context supersedes all
        // previous ones.
        let session = self.session_of(group).max(now.as_micros()).max(1);
        self.sessions.insert(group, session);
        Self::complete(op_id, op, Outcome::Connected { context_len }, now, out);
    }

    /// Handles a context-write acknowledgement.
    pub(crate) fn on_ctx_write_ack(&mut self, op_id: OpId, from: ServerId, now: SimTime) -> Output {
        let mut out = Output::default();
        let Some(mut op) = self.take_op(op_id) else {
            return out;
        };
        let OpState::CtxWrite { acks, quorum } = &mut op.state else {
            self.insert_op(op_id, op);
            return out;
        };
        if !op.common.contacted.contains(&from) {
            self.insert_op(op_id, op);
            return out;
        }
        acks.insert(from);
        if acks.len() >= *quorum {
            let group = op.common.group;
            if let Some(&s) = self.pending_session.get(&group) {
                self.sessions.insert(group, s);
                self.pending_session.remove(&group);
            }
            Self::complete(op_id, op, Outcome::Disconnected, now, &mut out);
        } else {
            self.insert_op(op_id, op);
        }
        out
    }

    /// Timeout handling for the three session states: widen the contact set
    /// round by round; give up after `max_rounds`.
    pub(crate) fn session_timeout(&mut self, op_id: OpId, now: SimTime) -> Output {
        let mut out = Output::default();
        let Some(mut op) = self.take_op(op_id) else {
            return out;
        };
        // A scan whose grace round expired finishes with what it has: at
        // least n-b servers (so every honest one reachable right now) have
        // already answered.
        if let OpState::CtxScan {
            grace: true,
            responded,
            ..
        } = &op.state
        {
            if !responded.is_empty() {
                self.finish_ctx_scan(op_id, op, now, &mut out);
                return out;
            }
        }
        let max_rounds = self.cfg().retry.max_rounds;
        if op.common.round >= max_rounds {
            // Best effort: a scan can still finish with what it has.
            if let OpState::CtxScan { responded, .. } = &op.state {
                if !responded.is_empty() {
                    self.finish_ctx_scan(op_id, op, now, &mut out);
                    return out;
                }
            }
            Self::complete(op_id, op, Outcome::Unavailable, now, &mut out);
            return out;
        }
        op.common.round += 1;
        let round = op.common.round;
        let rotation = self.rotation(op.common.offset);
        let group = op.common.group;
        let client = self.id();
        match &op.state {
            OpState::CtxRead { .. } => {
                let target = self.target_count(self.ctx_quorum(), round);
                Self::widen_contacts(
                    op_id,
                    &mut op.common,
                    &rotation,
                    target,
                    |op| Msg::CtxReadReq { op, client, group },
                    &mut out,
                );
            }
            OpState::CtxScan { .. } => {
                // Already contacted everyone; just wait another round.
            }
            OpState::CtxWrite { .. } => {
                let target = self.target_count(self.ctx_quorum(), round);
                let session = self.pending_session.get(&group).copied().unwrap_or(1);
                let ctx = self.context(group);
                let signed = {
                    let (_, _, key, _, counters, _) = self.parts();
                    SignedContext::create(client, session, ctx, key, counters)
                };
                Self::widen_contacts(
                    op_id,
                    &mut op.common,
                    &rotation,
                    target,
                    |op| Msg::CtxWriteReq {
                        op,
                        group,
                        signed: signed.clone(),
                    },
                    &mut out,
                );
            }
            _ => debug_assert!(false, "session_timeout on non-session op"),
        }
        Self::arm_phase_timer(op_id, &mut op.common, self.cfg().retry, &mut out);
        self.insert_op(op_id, op);
        out
    }

    /// Screens `metas` against the verify cache, checks the remainder as
    /// one random-linear-combination batch ([`verify_batch`]) and seeds
    /// the successes into the cache — the client-side twin of the server's
    /// gossip batch preverification. Seeding charges no counters; the
    /// caller's per-meta `verify_cached` still counts, so
    /// [`crate::metrics::CryptoCounters::logical_verifies`] is identical
    /// to unbatched execution. Metas the batch rejects are not seeded and
    /// fall back to (failing) individual verification.
    fn batch_preverify_metas(&mut self, metas: &[&ItemMeta]) {
        let dir = self.dir().clone();
        let mut candidates: Vec<(usize, Vec<u8>)> = Vec::new();
        for (i, meta) in metas.iter().enumerate() {
            if dir.client_key(meta.writer).is_none() {
                continue;
            }
            let payload = meta.payload();
            let cached = {
                let (_, _, _, _, _, vcache) = self.parts();
                vcache.check(meta.writer, &payload, &meta.signature)
            };
            if cached {
                continue;
            }
            candidates.push((i, payload));
        }
        // A batch of one is strictly more work than a plain verify.
        if candidates.len() < 2 {
            return;
        }
        let entries: Vec<BatchEntry<'_>> = candidates
            .iter()
            .filter_map(|(i, payload)| {
                let meta = metas.get(*i)?;
                let key = dir.client_key(meta.writer)?;
                Some(BatchEntry {
                    key,
                    message: payload.as_slice(),
                    signature: &meta.signature,
                })
            })
            .collect();
        let bad: HashSet<usize> = match verify_batch(&entries) {
            Ok(()) => HashSet::new(),
            Err(bad) => bad.into_iter().collect(),
        };
        let batched = entries.len() as u64;
        let (_, _, _, _, counters, vcache) = self.parts();
        counters.count_batch(batched);
        for (pos, (i, payload)) in candidates.iter().enumerate() {
            if bad.contains(&pos) {
                continue;
            }
            if let Some(meta) = metas.get(*i) {
                vcache.insert(meta.writer, payload, &meta.signature);
            }
        }
    }
}
