//! # sstore-core — a secure and highly available distributed store
//!
//! Rust reproduction of *"A Secure and Highly Available Distributed Store
//! for Meeting Diverse Data Storage Needs"* (Lakshmanan, Ahamad,
//! Venkateswaran — DSN 2001).
//!
//! The store is implemented by `n` replicated, **passive** servers, up to
//! `b` of which may fail arbitrarily (Byzantine). Clients sign everything
//! they store and enforce consistency themselves from per-group *context*
//! metadata, which buys small quorums:
//!
//! | Operation | Servers contacted |
//! |---|---|
//! | context read/write | `⌈(n+b+1)/2⌉` |
//! | single-writer data read/write | `b+1` |
//! | multi-writer data read/write | `2b+1` |
//!
//! compared with `⌈(n+2b+1)/2⌉` for masking quorums and `O(n²)` messages
//! for BFT state machine replication (see the `sstore-baselines` crate).
//!
//! ## Crate layout
//!
//! - [`types`], [`context`], [`item`], [`encoding`]: protocol data model —
//!   timestamps (plain versions and `(time, uid, d(v))` tuples), contexts,
//!   signed items, canonical signing bytes.
//! - [`codec`]: canonical binary wire codec (encode + strict decoder) used
//!   by the TCP deployment path (`sstore-net`).
//! - [`quorum`]: the quorum arithmetic above.
//! - [`server`]: the passive repository state machine — storage, gossip
//!   dissemination, multi-writer write logs with causal holdback and GC.
//! - [`client`]: the consistency-enforcing client — sessions (context
//!   acquisition/storage/reconstruction), MRC/CC reads and writes,
//!   multi-writer reads and writes.
//! - [`metrics`], [`vcache`]: §6 crypto-operation accounting and the
//!   bounded LRU verification cache that lets nodes skip re-verifying
//!   signatures they have already validated.
//! - [`faults`]: Byzantine server behaviours for fault injection.
//! - [`sim`]: a harness running whole clusters inside the deterministic
//!   `sstore-simnet` simulator.
//! - [`confidential`]: client-side encryption helpers (non-shared data) and
//!   fragmentation backends.
//!
//! ## Quickstart
//!
//! ```
//! use sstore_core::client::ClientOp;
//! use sstore_core::sim::{ClusterBuilder, Step};
//! use sstore_core::types::{Consistency, DataId, GroupId};
//!
//! let group = GroupId(1);
//! let mut cluster = ClusterBuilder::new(4, 1)
//!     .client(vec![
//!         Step::Do(ClientOp::Connect { group, recover: false }),
//!         Step::Do(ClientOp::Write {
//!             data: DataId(1),
//!             group,
//!             consistency: Consistency::Mrc,
//!             value: b"tax-return-2001".to_vec(),
//!         }),
//!         Step::Do(ClientOp::Read {
//!             data: DataId(1),
//!             group,
//!             consistency: Consistency::Mrc,
//!         }),
//!         Step::Do(ClientOp::Disconnect { group }),
//!     ])
//!     .build();
//! cluster.run_to_quiescence();
//! let results = cluster.client_results(0);
//! assert_eq!(results.len(), 4);
//! assert!(results.iter().all(|r| r.outcome.is_ok()));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chaos;
pub mod client;
pub mod codec;
pub mod confidential;
pub mod config;
pub mod context;
pub mod directory;
pub mod encoding;
pub mod faults;
pub mod item;
pub mod metrics;
pub mod quorum;
pub mod server;
pub mod sim;
pub mod types;
pub mod vcache;
pub mod wire;

pub use client::{ClientCore, ClientOp, OpKind, OpResult, Outcome};
pub use config::{ClientConfig, GossipConfig, MultiWriterConfig, RetryPolicy, ServerConfig};
pub use context::Context;
pub use directory::Directory;
pub use item::{ItemMeta, SignedContext, StoredItem};
pub use server::{Addr, ServerNode};
pub use types::{ClientId, Consistency, DataId, GroupId, OpId, ServerId, Timestamp};
pub use vcache::VerifyCache;
pub use wire::Msg;
