//! Tunable protocol parameters for clients and servers.

use sstore_simnet::SimTime;

/// Gossip/dissemination tuning (paper §4: "a frequency that can be tuned
/// according to the needs of the clients or the resources available to the
/// servers").
#[derive(Debug, Clone, PartialEq)]
pub struct GossipConfig {
    /// Whether servers run dissemination at all.
    pub enabled: bool,
    /// Interval between gossip rounds at each server.
    pub period: SimTime,
    /// Number of random peers contacted per round.
    pub fanout: usize,
    /// `true`: anti-entropy summaries (pull missing items both ways).
    /// `false`: push-only rumor mongering of recently changed items.
    pub anti_entropy: bool,
}

impl Default for GossipConfig {
    fn default() -> Self {
        GossipConfig {
            enabled: true,
            period: SimTime::from_millis(200),
            fanout: 2,
            anti_entropy: true,
        }
    }
}

/// Client-side retry behaviour when a quorum phase stalls or returns only
/// stale data (paper Fig. 2: "contact additional servers or try later").
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// How long to wait for quorum responses before widening/retrying.
    pub phase_timeout: SimTime,
    /// Delay before re-trying a read that found only stale data.
    pub stale_retry_delay: SimTime,
    /// Total rounds (initial attempt included) before the operation fails.
    pub max_rounds: u32,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            phase_timeout: SimTime::from_millis(500),
            stale_retry_delay: SimTime::from_millis(200),
            max_rounds: 6,
        }
    }
}

/// Multi-writer protocol options (paper §5.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MultiWriterConfig {
    /// Servers hold a write until its causal predecessors have arrived
    /// (defence against the spurious-context denial of service). Disabled
    /// only by fault injection.
    pub validate_causal_deps: bool,
    /// Upper bound on retained log entries per item, GC aside.
    pub log_capacity: usize,
}

impl Default for MultiWriterConfig {
    fn default() -> Self {
        MultiWriterConfig {
            validate_causal_deps: true,
            log_capacity: 8,
        }
    }
}

/// Complete server configuration.
#[derive(Debug, Clone, Default)]
pub struct ServerConfig {
    /// Gossip tuning.
    pub gossip: GossipConfig,
    /// Multi-writer options.
    pub multi_writer: MultiWriterConfig,
    /// Piggyback the full item on timestamp-query responses when the value
    /// is at most this many bytes, making common-case reads one round trip
    /// (0 = off, the paper's two-phase Fig. 2 read).
    pub read_inline_limit: usize,
}

/// Complete client configuration.
#[derive(Debug, Clone, Default)]
pub struct ClientConfig {
    /// Retry/timeout policy.
    pub retry: RetryPolicy,
    /// Extra servers contacted beyond the minimum quorum on the first
    /// attempt (0 reproduces the paper's exact message counts).
    pub extra_fanout: usize,
    /// Whether multi-writer reads additionally verify signatures at the
    /// client (the paper lets clients skip this because `b+1` matching
    /// server reports already mask faulty servers).
    pub verify_multi_writer_reads: bool,
    /// Keep a fixed (client-derived) rotation offset instead of a random
    /// one per operation. A sticky client always prefers the same `b+1`
    /// servers, so successive operations find their own prior writes
    /// without waiting for dissemination.
    pub sticky_rotation: bool,
    /// Confidentiality aid (paper §5.2): advance single-writer version
    /// numbers by a random extra amount in `1..=N` so observers cannot
    /// count how often an item is updated. `None` increments by exactly 1.
    pub timestamp_fuzz: Option<u64>,
    /// Dynamic-quorum extension (paper §3 cites Alvisi et al., "Dynamic
    /// Byzantine Quorum Systems"): start reads with an optimistic fault
    /// estimate `b̂ = 0` (contacting just one server) and raise `b̂` toward
    /// the configured bound whenever a response fails validation or a
    /// round comes up empty. Writes always use the full `b+1` — durability
    /// is never gambled on the estimate. Safety (MRC/CC) is context-based
    /// and unaffected; only freshness probing adapts.
    pub adaptive_read_quorum: bool,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let g = GossipConfig::default();
        assert!(g.enabled && g.fanout >= 1);
        let r = RetryPolicy::default();
        assert!(r.max_rounds >= 1);
        assert!(r.phase_timeout > SimTime::ZERO);
        let m = MultiWriterConfig::default();
        assert!(m.validate_causal_deps);
        assert!(m.log_capacity >= 2);
        let c = ClientConfig::default();
        assert_eq!(c.extra_fanout, 0, "paper-exact message counts by default");
        assert!(!c.verify_multi_writer_reads);
    }
}
