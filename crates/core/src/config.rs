//! Tunable protocol parameters for clients and servers.

use sstore_simnet::SimTime;

/// Gossip/dissemination tuning (paper §4: "a frequency that can be tuned
/// according to the needs of the clients or the resources available to the
/// servers").
#[derive(Debug, Clone, PartialEq)]
pub struct GossipConfig {
    /// Whether servers run dissemination at all.
    pub enabled: bool,
    /// Interval between gossip rounds at each server.
    pub period: SimTime,
    /// Number of random peers contacted per round.
    pub fanout: usize,
    /// `true`: anti-entropy summaries (pull missing items both ways).
    /// `false`: push-only rumor mongering of recently changed items.
    pub anti_entropy: bool,
    /// Anti-entropy amortization: send the full O(items) summary only
    /// every this many rounds; the rounds in between push just the dirty
    /// set, like rumor mongering. `1` (the default) summarizes every
    /// round — the pre-batching behavior. Only meaningful with
    /// `anti_entropy` on; clamped to at least 1.
    pub summary_every: u32,
}

impl Default for GossipConfig {
    fn default() -> Self {
        GossipConfig {
            enabled: true,
            period: SimTime::from_millis(200),
            fanout: 2,
            anti_entropy: true,
            summary_every: 1,
        }
    }
}

/// Client-side retry behaviour when a quorum phase stalls or returns only
/// stale data (paper Fig. 2: "contact additional servers or try later").
///
/// This one policy backs every retry loop in the system: the simulated
/// client's phase timers and stale-read retries, and the TCP client's
/// redial schedule. All delays grow exponentially (doubling per round,
/// capped at [`RetryPolicy::max_delay`]) so a lossy network sees bounded,
/// decreasingly aggressive retries instead of a fixed-rate hammer. Round 1
/// always uses the base values, so a healthy network's behaviour — and the
/// paper's §6 message counts — are unchanged from a flat policy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// How long to wait for quorum responses before widening/retrying
    /// (base value; round `r` waits `phase_delay(r)`).
    pub phase_timeout: SimTime,
    /// Delay before re-trying a read that found only stale data
    /// (base value; round `r` waits `stale_delay(r)`).
    pub stale_retry_delay: SimTime,
    /// Total rounds (initial attempt included) before the operation fails.
    pub max_rounds: u32,
    /// Ceiling on any backed-off delay.
    pub max_delay: SimTime,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            phase_timeout: SimTime::from_millis(500),
            stale_retry_delay: SimTime::from_millis(200),
            max_rounds: 6,
            max_delay: SimTime::from_secs(2),
        }
    }
}

impl RetryPolicy {
    /// Doubles `base` per completed round, capped at `max_delay`.
    /// `round` counts from 1 (the initial attempt).
    fn backoff(&self, base: SimTime, round: u32) -> SimTime {
        let exp = round.saturating_sub(1).min(32);
        let us = base
            .as_micros()
            .saturating_mul(1u64 << exp)
            .min(self.max_delay.as_micros().max(base.as_micros()));
        SimTime::from_micros(us)
    }

    /// Quorum-phase timeout for attempt `round` (1-based).
    pub fn phase_delay(&self, round: u32) -> SimTime {
        self.backoff(self.phase_timeout, round)
    }

    /// Stale-read retry delay for attempt `round` (1-based).
    pub fn stale_delay(&self, round: u32) -> SimTime {
        self.backoff(self.stale_retry_delay, round)
    }

    /// Redial delay after `attempt` consecutive failed connection attempts
    /// to the same server (1-based), for real-transport clients.
    pub fn dial_delay(&self, attempt: u32) -> SimTime {
        self.backoff(self.stale_retry_delay, attempt)
    }

    /// Whether another round is allowed after `round` completed attempts.
    pub fn allows_round(&self, round: u32) -> bool {
        round < self.max_rounds
    }
}

/// Multi-writer protocol options (paper §5.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MultiWriterConfig {
    /// Servers hold a write until its causal predecessors have arrived
    /// (defence against the spurious-context denial of service). Disabled
    /// only by fault injection.
    pub validate_causal_deps: bool,
    /// Upper bound on retained log entries per item, GC aside.
    pub log_capacity: usize,
}

impl Default for MultiWriterConfig {
    fn default() -> Self {
        MultiWriterConfig {
            validate_causal_deps: true,
            log_capacity: 8,
        }
    }
}

/// Complete server configuration.
#[derive(Debug, Clone, Default)]
pub struct ServerConfig {
    /// Gossip tuning.
    pub gossip: GossipConfig,
    /// Multi-writer options.
    pub multi_writer: MultiWriterConfig,
    /// Piggyback the full item on timestamp-query responses when the value
    /// is at most this many bytes, making common-case reads one round trip
    /// (0 = off, the paper's two-phase Fig. 2 read).
    pub read_inline_limit: usize,
}

/// Complete client configuration.
#[derive(Debug, Clone, Default)]
pub struct ClientConfig {
    /// Retry/timeout policy.
    pub retry: RetryPolicy,
    /// Extra servers contacted beyond the minimum quorum on the first
    /// attempt (0 reproduces the paper's exact message counts).
    pub extra_fanout: usize,
    /// Whether multi-writer reads additionally verify signatures at the
    /// client (the paper lets clients skip this because `b+1` matching
    /// server reports already mask faulty servers).
    pub verify_multi_writer_reads: bool,
    /// Keep a fixed (client-derived) rotation offset instead of a random
    /// one per operation. A sticky client always prefers the same `b+1`
    /// servers, so successive operations find their own prior writes
    /// without waiting for dissemination.
    pub sticky_rotation: bool,
    /// Confidentiality aid (paper §5.2): advance single-writer version
    /// numbers by a random extra amount in `1..=N` so observers cannot
    /// count how often an item is updated. `None` increments by exactly 1.
    pub timestamp_fuzz: Option<u64>,
    /// Dynamic-quorum extension (paper §3 cites Alvisi et al., "Dynamic
    /// Byzantine Quorum Systems"): start reads with an optimistic fault
    /// estimate `b̂ = 0` (contacting just one server) and raise `b̂` toward
    /// the configured bound whenever a response fails validation or a
    /// round comes up empty. Writes always use the full `b+1` — durability
    /// is never gambled on the estimate. Safety (MRC/CC) is context-based
    /// and unaffected; only freshness probing adapts.
    pub adaptive_read_quorum: bool,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let g = GossipConfig::default();
        assert!(g.enabled && g.fanout >= 1);
        let r = RetryPolicy::default();
        assert!(r.max_rounds >= 1);
        assert!(r.phase_timeout > SimTime::ZERO);
        assert!(r.max_delay >= r.phase_timeout);
    }

    #[test]
    fn backoff_starts_at_base_and_is_capped() {
        let r = RetryPolicy::default();
        // Round 1 is exactly the base values: fast paths are unchanged.
        assert_eq!(r.phase_delay(1), r.phase_timeout);
        assert_eq!(r.stale_delay(1), r.stale_retry_delay);
        assert_eq!(r.dial_delay(1), r.stale_retry_delay);
        // Doubling per round…
        assert_eq!(r.phase_delay(2), SimTime::from_millis(1000));
        assert_eq!(r.stale_delay(2), SimTime::from_millis(400));
        // …capped at max_delay, monotone non-decreasing far out.
        assert_eq!(r.phase_delay(3), r.max_delay);
        assert_eq!(r.phase_delay(60), r.max_delay);
        assert_eq!(r.stale_delay(60), r.max_delay);
    }

    #[test]
    fn backoff_degenerate_configs_do_not_overflow() {
        let r = RetryPolicy {
            phase_timeout: SimTime::from_micros(u64::MAX / 2),
            stale_retry_delay: SimTime::ZERO,
            max_rounds: u32::MAX,
            max_delay: SimTime::ZERO,
        };
        // max_delay below base: the base still applies (never shrink).
        assert_eq!(r.phase_delay(u32::MAX), r.phase_timeout);
        assert_eq!(r.stale_delay(u32::MAX), SimTime::ZERO);
        assert!(r.allows_round(1));
    }

    #[test]
    fn allows_round_bounds_retries() {
        let r = RetryPolicy::default();
        assert!(r.allows_round(r.max_rounds - 1));
        assert!(!r.allows_round(r.max_rounds));
        let m = MultiWriterConfig::default();
        assert!(m.validate_causal_deps);
        assert!(m.log_capacity >= 2);
        let c = ClientConfig::default();
        assert_eq!(c.extra_fanout, 0, "paper-exact message counts by default");
        assert!(!c.verify_multi_writer_reads);
    }
}
