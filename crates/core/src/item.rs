//! Signed stored items and signed contexts — the units servers keep.
//!
//! Servers are *passive repositories* (paper §1): everything they store is
//! signed by the writing client, so a malicious server can withhold or
//! replay but never fabricate or alter data undetectably.

use sstore_crypto::ct::ct_eq;
use sstore_crypto::schnorr::{Signature, SigningKey, VerifyingKey};
use sstore_crypto::sha256::{digest, Digest};
use sstore_crypto::CryptoError;

use crate::context::Context;
use crate::encoding::{context_payload, write_payload};
use crate::metrics::CryptoCounters;
use crate::types::{ClientId, DataId, GroupId, Timestamp};
use crate::vcache::VerifyCache;

/// Signed metadata of a stored data item.
///
/// The signature covers the value's *digest* rather than the value, so that
/// metadata can be verified on its own — which is exactly what the context
/// reconstruction protocol (paper §5.1) and gossip validation need.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ItemMeta {
    /// The data item `uid(x)`.
    pub data: DataId,
    /// The related group the item belongs to.
    pub group: GroupId,
    /// Timestamp of this write.
    pub ts: Timestamp,
    /// The writing client.
    pub writer: ClientId,
    /// Digest of the value, `d(v)`.
    pub value_digest: Digest,
    /// The writer's context at write time (`𝒳_writer`), present for CC data.
    pub writer_ctx: Option<Context>,
    /// Writer's signature over all fields above.
    pub signature: Signature,
}

impl ItemMeta {
    /// The canonical bytes the signature covers.
    pub fn payload(&self) -> Vec<u8> {
        write_payload(
            self.data,
            self.group,
            &self.ts,
            self.writer,
            &self.value_digest,
            self.writer_ctx.as_ref(),
        )
    }

    /// Verifies the writer's signature over the metadata.
    ///
    /// # Errors
    ///
    /// [`CryptoError::BadSignature`] when the signature does not match.
    pub fn verify(
        &self,
        key: &VerifyingKey,
        counters: &mut CryptoCounters,
    ) -> Result<(), CryptoError> {
        counters.count_verify();
        key.verify(&self.payload(), &self.signature)
    }

    /// As [`ItemMeta::verify`], but consults (and on success populates) the
    /// node's verification cache. A hit is counted as `verify_cached`
    /// instead of `verify` and performs no public-key operation.
    pub fn verify_cached(
        &self,
        key: &VerifyingKey,
        cache: &mut VerifyCache,
        counters: &mut CryptoCounters,
    ) -> Result<(), CryptoError> {
        let payload = self.payload();
        if cache.check(self.writer, &payload, &self.signature) {
            counters.count_verify_cached();
            return Ok(());
        }
        counters.count_verify();
        key.verify(&payload, &self.signature)?;
        cache.insert(self.writer, &payload, &self.signature);
        Ok(())
    }

    /// Estimated wire size in bytes.
    pub fn size_bytes(&self) -> usize {
        8 + 4
            + 43
            + 2
            + 32
            + self.writer_ctx.as_ref().map_or(1, |c| 1 + c.size_bytes())
            + self.signature.encoded_len()
    }
}

/// A stored data item: signed metadata plus the value bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StoredItem {
    /// Signed metadata.
    pub meta: ItemMeta,
    /// The value `v` (possibly client-side encrypted).
    pub value: Vec<u8>,
}

impl StoredItem {
    /// Creates and signs a new item as client `writer` would.
    #[allow(clippy::too_many_arguments)]
    pub fn create(
        data: DataId,
        group: GroupId,
        ts: Timestamp,
        writer: ClientId,
        writer_ctx: Option<Context>,
        value: Vec<u8>,
        key: &SigningKey,
        counters: &mut CryptoCounters,
    ) -> Self {
        counters.count_digest();
        let value_digest = digest(&value);
        let mut meta = ItemMeta {
            data,
            group,
            ts,
            writer,
            value_digest,
            writer_ctx,
            signature: Signature::from_bytes(&[0, 0, 0, 0]).expect("placeholder"),
        };
        counters.count_sign();
        meta.signature = key.sign(&meta.payload());
        StoredItem { meta, value }
    }

    /// Verifies both the signature and that the value matches the signed
    /// digest.
    ///
    /// # Errors
    ///
    /// [`CryptoError::BadSignature`] for a bad signature, or
    /// [`CryptoError::BadMac`] when the value does not hash to the signed
    /// digest (a corrupted value).
    pub fn verify(
        &self,
        key: &VerifyingKey,
        counters: &mut CryptoCounters,
    ) -> Result<(), CryptoError> {
        self.meta.verify(key, counters)?;
        counters.count_digest();
        if !ct_eq(
            digest(&self.value).as_bytes(),
            self.meta.value_digest.as_bytes(),
        ) {
            return Err(CryptoError::BadMac);
        }
        Ok(())
    }

    /// As [`StoredItem::verify`], but the signature check may be satisfied
    /// by the verification cache. The value is digest-checked against the
    /// signed digest on *every* call — the cache only ever replaces the
    /// public-key operation, never the integrity check of the bytes in
    /// hand.
    pub fn verify_cached(
        &self,
        key: &VerifyingKey,
        cache: &mut VerifyCache,
        counters: &mut CryptoCounters,
    ) -> Result<(), CryptoError> {
        self.meta.verify_cached(key, cache, counters)?;
        counters.count_digest();
        if !ct_eq(
            digest(&self.value).as_bytes(),
            self.meta.value_digest.as_bytes(),
        ) {
            return Err(CryptoError::BadMac);
        }
        Ok(())
    }

    /// Estimated wire size in bytes.
    pub fn size_bytes(&self) -> usize {
        self.meta.size_bytes() + 8 + self.value.len()
    }
}

/// A client's signed context as stored at servers (paper Fig. 1).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SignedContext {
    /// The owning client.
    pub client: ClientId,
    /// Session counter; strictly increases across the client's sessions,
    /// making "latest context" well defined.
    pub session: u64,
    /// The context itself.
    pub ctx: Context,
    /// Client's signature over `(client, session, ctx)`.
    pub signature: Signature,
}

impl SignedContext {
    /// Creates and signs a context snapshot.
    pub fn create(
        client: ClientId,
        session: u64,
        ctx: Context,
        key: &SigningKey,
        counters: &mut CryptoCounters,
    ) -> Self {
        counters.count_sign();
        let signature = key.sign(&context_payload(client, &ctx, session));
        SignedContext {
            client,
            session,
            ctx,
            signature,
        }
    }

    /// Verifies the owner's signature.
    ///
    /// # Errors
    ///
    /// [`CryptoError::BadSignature`] when the signature does not match.
    pub fn verify(
        &self,
        key: &VerifyingKey,
        counters: &mut CryptoCounters,
    ) -> Result<(), CryptoError> {
        counters.count_verify();
        key.verify(
            &context_payload(self.client, &self.ctx, self.session),
            &self.signature,
        )
    }

    /// As [`SignedContext::verify`], but consults (and on success
    /// populates) the node's verification cache.
    pub fn verify_cached(
        &self,
        key: &VerifyingKey,
        cache: &mut VerifyCache,
        counters: &mut CryptoCounters,
    ) -> Result<(), CryptoError> {
        let payload = context_payload(self.client, &self.ctx, self.session);
        if cache.check(self.client, &payload, &self.signature) {
            counters.count_verify_cached();
            return Ok(());
        }
        counters.count_verify();
        key.verify(&payload, &self.signature)?;
        cache.insert(self.client, &payload, &self.signature);
        Ok(())
    }

    /// Estimated wire size in bytes.
    pub fn size_bytes(&self) -> usize {
        2 + 8 + self.ctx.size_bytes() + self.signature.encoded_len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sstore_crypto::schnorr::SchnorrParams;

    fn key(seed: u64) -> SigningKey {
        SigningKey::from_seed(&SchnorrParams::toy(), seed)
    }

    fn sample_item(k: &SigningKey, c: &mut CryptoCounters) -> StoredItem {
        StoredItem::create(
            DataId(1),
            GroupId(1),
            Timestamp::Version(3),
            ClientId(1),
            None,
            b"value".to_vec(),
            k,
            c,
        )
    }

    #[test]
    fn item_roundtrip_and_counting() {
        let k = key(1);
        let mut c = CryptoCounters::new();
        let item = sample_item(&k, &mut c);
        assert_eq!(c.signs, 1);
        assert_eq!(c.digests, 1);
        item.verify(k.verifying_key(), &mut c).unwrap();
        assert_eq!(c.verifies, 1);
        assert_eq!(c.digests, 2);
    }

    #[test]
    fn tampered_value_detected() {
        let k = key(2);
        let mut c = CryptoCounters::new();
        let mut item = sample_item(&k, &mut c);
        item.value = b"evil".to_vec();
        assert_eq!(
            item.verify(k.verifying_key(), &mut c),
            Err(CryptoError::BadMac)
        );
    }

    #[test]
    fn tampered_meta_detected() {
        let k = key(3);
        let mut c = CryptoCounters::new();
        let mut item = sample_item(&k, &mut c);
        item.meta.ts = Timestamp::Version(99);
        assert_eq!(
            item.verify(k.verifying_key(), &mut c),
            Err(CryptoError::BadSignature)
        );
    }

    #[test]
    fn meta_verifiable_without_value() {
        let k = key(4);
        let mut c = CryptoCounters::new();
        let item = sample_item(&k, &mut c);
        // Context reconstruction sees only metadata.
        item.meta.verify(k.verifying_key(), &mut c).unwrap();
    }

    #[test]
    fn wrong_writer_key_rejected() {
        let k1 = key(5);
        let k2 = key(6);
        let mut c = CryptoCounters::new();
        let item = sample_item(&k1, &mut c);
        assert!(item.verify(k2.verifying_key(), &mut c).is_err());
    }

    #[test]
    fn cc_item_carries_writer_context() {
        let k = key(7);
        let mut c = CryptoCounters::new();
        let mut ctx = Context::new(GroupId(1));
        ctx.observe(DataId(2), Timestamp::Version(5));
        let item = StoredItem::create(
            DataId(1),
            GroupId(1),
            Timestamp::Version(3),
            ClientId(1),
            Some(ctx.clone()),
            b"v".to_vec(),
            &k,
            &mut c,
        );
        item.verify(k.verifying_key(), &mut c).unwrap();
        // Dropping the context invalidates the signature.
        let mut stripped = item.clone();
        stripped.meta.writer_ctx = None;
        assert!(stripped.verify(k.verifying_key(), &mut c).is_err());
    }

    #[test]
    fn signed_context_roundtrip() {
        let k = key(8);
        let mut c = CryptoCounters::new();
        let mut ctx = Context::new(GroupId(2));
        ctx.observe(DataId(1), Timestamp::Version(1));
        let sc = SignedContext::create(ClientId(1), 7, ctx, &k, &mut c);
        sc.verify(k.verifying_key(), &mut c).unwrap();
        assert_eq!(c.signs, 1);
        assert_eq!(c.verifies, 1);
    }

    #[test]
    fn signed_context_tamper_detected() {
        let k = key(9);
        let mut c = CryptoCounters::new();
        let sc = SignedContext::create(ClientId(1), 7, Context::new(GroupId(2)), &k, &mut c);
        let mut bad = sc.clone();
        bad.session = 8;
        assert!(bad.verify(k.verifying_key(), &mut c).is_err());
        let mut bad2 = sc;
        bad2.ctx.observe(DataId(1), Timestamp::Version(1));
        assert!(bad2.verify(k.verifying_key(), &mut c).is_err());
    }

    #[test]
    fn verify_cached_counts_hits_separately() {
        let k = key(11);
        let mut c = CryptoCounters::new();
        let mut cache = VerifyCache::new(16);
        let item = sample_item(&k, &mut c);
        item.verify_cached(k.verifying_key(), &mut cache, &mut c)
            .unwrap();
        assert_eq!((c.verifies, c.verify_cached), (1, 0));
        item.verify_cached(k.verifying_key(), &mut cache, &mut c)
            .unwrap();
        assert_eq!((c.verifies, c.verify_cached), (1, 1));
        assert_eq!(c.logical_verifies(), 2);
    }

    #[test]
    fn verify_cached_still_detects_corrupted_value() {
        let k = key(12);
        let mut c = CryptoCounters::new();
        let mut cache = VerifyCache::new(16);
        let item = sample_item(&k, &mut c);
        item.verify_cached(k.verifying_key(), &mut cache, &mut c)
            .unwrap();
        // Same signed metadata (cache hit), corrupted value bytes: the
        // digest check must still fire even though the signature is cached.
        let mut corrupt = item.clone();
        corrupt.value = b"evil".to_vec();
        assert_eq!(
            corrupt.verify_cached(k.verifying_key(), &mut cache, &mut c),
            Err(CryptoError::BadMac)
        );
    }

    #[test]
    fn failed_verifications_are_not_cached() {
        let k1 = key(13);
        let k2 = key(14);
        let mut c = CryptoCounters::new();
        let mut cache = VerifyCache::new(16);
        let item = sample_item(&k1, &mut c);
        // Verify against the wrong key: fails, must not populate the cache.
        assert!(item
            .verify_cached(k2.verifying_key(), &mut cache, &mut c)
            .is_err());
        assert!(cache.is_empty());
        // A later check against the wrong key is still a real (failing)
        // verification, not a hit.
        assert!(item
            .verify_cached(k2.verifying_key(), &mut cache, &mut c)
            .is_err());
        assert_eq!(c.verify_cached, 0);
    }

    #[test]
    fn signed_context_verify_cached_roundtrip() {
        let k = key(15);
        let mut c = CryptoCounters::new();
        let mut cache = VerifyCache::new(16);
        let mut ctx = Context::new(GroupId(2));
        ctx.observe(DataId(1), Timestamp::Version(1));
        let sc = SignedContext::create(ClientId(1), 7, ctx, &k, &mut c);
        sc.verify_cached(k.verifying_key(), &mut cache, &mut c)
            .unwrap();
        sc.verify_cached(k.verifying_key(), &mut cache, &mut c)
            .unwrap();
        assert_eq!((c.verifies, c.verify_cached), (1, 1));
        // Tampering misses the cache and fails verification.
        let mut bad = sc.clone();
        bad.session = 8;
        assert!(bad
            .verify_cached(k.verifying_key(), &mut cache, &mut c)
            .is_err());
    }

    #[test]
    fn size_estimates_positive() {
        let k = key(10);
        let mut c = CryptoCounters::new();
        let item = sample_item(&k, &mut c);
        assert!(item.size_bytes() > item.meta.size_bytes());
        assert!(item.meta.size_bytes() > 0);
    }
}
