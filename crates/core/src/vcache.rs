//! Bounded LRU cache of already-verified signatures.
//!
//! Servers and clients repeatedly see the *same* signed bytes: a server
//! re-validates an item when gossip offers it again, a reader re-verifies
//! the winning item of a quorum after verifying the same copy from another
//! server, a frequently-read item is verified on every read. Each of those
//! checks costs two modular exponentiations. The cache remembers the triple
//! `(writer, payload digest, signature digest)` of every signature that has
//! already verified on this node, so an identical re-check is a hash lookup
//! instead of a public-key operation.
//!
//! # Why a hit cannot weaken Byzantine guarantees
//!
//! A hit requires the *writer id*, the *full signed payload bytes* (by
//! SHA-256 digest) and the *signature bytes* (by digest) to be identical to
//! a triple this same node previously verified against the writer's public
//! key. Key resolution (writer id → [`VerifyingKey`]) is immutable for the
//! lifetime of a deployment, caches are per-node and only populated by that
//! node's own successful verifications, and value bytes are still digest-
//! checked against the signed digest on every call. A cache hit therefore
//! asserts exactly what a fresh verification would: *these bytes carry a
//! valid signature by this writer* — nothing more. Failed verifications are
//! never cached, so a forged signature is re-examined (and re-rejected)
//! every time. See DESIGN.md for the full argument.
//!
//! Nodes count hits via [`CryptoCounters::count_verify_cached`], separately
//! from real verifications, so the §6 formula tables remain exact: the
//! formulas predict [`CryptoCounters::logical_verifies`].
//!
//! [`CryptoCounters::count_verify_cached`]: crate::metrics::CryptoCounters::count_verify_cached
//! [`CryptoCounters::logical_verifies`]: crate::metrics::CryptoCounters::logical_verifies
//! [`VerifyingKey`]: sstore_crypto::schnorr::VerifyingKey

use std::collections::HashMap;

use sstore_crypto::schnorr::Signature;
use sstore_crypto::sha256::{digest, Digest};

use crate::types::ClientId;

/// Default number of verified triples a node remembers.
pub const DEFAULT_VERIFY_CACHE_CAPACITY: usize = 1024;

/// Cache key: who signed, what bytes were signed, and with what signature.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct Key {
    writer: ClientId,
    payload: Digest,
    signature: Digest,
}

impl Key {
    fn new(writer: ClientId, payload: &[u8], signature: &Signature) -> Self {
        Key {
            writer,
            payload: digest(payload),
            signature: digest(signature.to_bytes()),
        }
    }
}

/// One entry in the intrusive doubly-linked LRU list.
#[derive(Debug, Clone, Copy)]
struct Slot {
    key: Key,
    prev: usize,
    next: usize,
}

const NIL: usize = usize::MAX;

/// A bounded LRU set of verified `(writer, payload, signature)` triples.
///
/// Capacity is fixed at construction; inserting into a full cache evicts
/// the least-recently-used entry. Lookups refresh recency. All storage is
/// pre-sized — no allocation after the first `capacity` insertions.
#[derive(Debug, Clone)]
pub struct VerifyCache {
    map: HashMap<Key, usize>,
    slots: Vec<Slot>,
    /// Most recently used slot, or `NIL` when empty.
    head: usize,
    /// Least recently used slot, or `NIL` when empty.
    tail: usize,
    capacity: usize,
    hits: u64,
    misses: u64,
}

impl Default for VerifyCache {
    fn default() -> Self {
        Self::new(DEFAULT_VERIFY_CACHE_CAPACITY)
    }
}

impl VerifyCache {
    /// Creates a cache holding at most `capacity` triples (minimum 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        VerifyCache {
            map: HashMap::with_capacity(capacity),
            slots: Vec::with_capacity(capacity),
            head: NIL,
            tail: NIL,
            capacity,
            hits: 0,
            misses: 0,
        }
    }

    /// Whether this exact triple has already been verified. A hit refreshes
    /// the entry's recency.
    pub fn check(&mut self, writer: ClientId, payload: &[u8], signature: &Signature) -> bool {
        let key = Key::new(writer, payload, signature);
        match self.map.get(&key) {
            Some(&idx) => {
                self.touch(idx);
                self.hits += 1;
                true
            }
            None => {
                self.misses += 1;
                false
            }
        }
    }

    /// Records a successfully verified triple, evicting the least-recently-
    /// used entry when full. Only call after a *successful* verification.
    pub fn insert(&mut self, writer: ClientId, payload: &[u8], signature: &Signature) {
        let key = Key::new(writer, payload, signature);
        if let Some(&idx) = self.map.get(&key) {
            self.touch(idx);
            return;
        }
        let idx = if self.slots.len() < self.capacity {
            let idx = self.slots.len();
            self.slots.push(Slot {
                key,
                prev: NIL,
                next: NIL,
            });
            idx
        } else {
            // Reuse the LRU slot in place.
            let idx = self.tail;
            self.unlink(idx);
            self.map.remove(&self.slots[idx].key);
            self.slots[idx].key = key;
            idx
        };
        self.push_front(idx);
        self.map.insert(key, idx);
    }

    /// Entries currently cached.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Maximum entries.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Lookups answered from the cache.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Lookups that required a real verification.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    fn unlink(&mut self, idx: usize) {
        let Slot { prev, next, .. } = self.slots[idx];
        match prev {
            NIL => self.head = next,
            p => self.slots[p].next = next,
        }
        match next {
            NIL => self.tail = prev,
            n => self.slots[n].prev = prev,
        }
    }

    fn push_front(&mut self, idx: usize) {
        self.slots[idx].prev = NIL;
        self.slots[idx].next = self.head;
        match self.head {
            NIL => self.tail = idx,
            h => self.slots[h].prev = idx,
        }
        self.head = idx;
    }

    fn touch(&mut self, idx: usize) {
        if self.head != idx {
            self.unlink(idx);
            self.push_front(idx);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sstore_crypto::schnorr::{SchnorrParams, SigningKey};

    fn sig(n: u64) -> Signature {
        SigningKey::from_seed(&SchnorrParams::micro(), 1).sign(&n.to_be_bytes())
    }

    #[test]
    fn miss_then_hit() {
        let mut c = VerifyCache::new(4);
        let s = sig(1);
        assert!(!c.check(ClientId(1), b"payload", &s));
        c.insert(ClientId(1), b"payload", &s);
        assert!(c.check(ClientId(1), b"payload", &s));
        assert_eq!(c.hits(), 1);
        assert_eq!(c.misses(), 1);
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn key_distinguishes_all_three_components() {
        let mut c = VerifyCache::new(8);
        let s1 = sig(1);
        let s2 = sig(2);
        c.insert(ClientId(1), b"payload", &s1);
        assert!(!c.check(ClientId(2), b"payload", &s1), "different writer");
        assert!(!c.check(ClientId(1), b"other", &s1), "different payload");
        assert!(
            !c.check(ClientId(1), b"payload", &s2),
            "different signature"
        );
        assert!(c.check(ClientId(1), b"payload", &s1));
    }

    #[test]
    fn capacity_bounds_and_lru_eviction() {
        let mut c = VerifyCache::new(2);
        let s = sig(1);
        c.insert(ClientId(1), b"a", &s);
        c.insert(ClientId(1), b"b", &s);
        // Touch "a" so "b" becomes the LRU victim.
        assert!(c.check(ClientId(1), b"a", &s));
        c.insert(ClientId(1), b"c", &s);
        assert_eq!(c.len(), 2);
        assert!(c.check(ClientId(1), b"a", &s), "recently used survives");
        assert!(c.check(ClientId(1), b"c", &s), "new entry present");
        assert!(!c.check(ClientId(1), b"b", &s), "LRU entry evicted");
    }

    #[test]
    fn reinsert_refreshes_instead_of_duplicating() {
        let mut c = VerifyCache::new(2);
        let s = sig(1);
        c.insert(ClientId(1), b"a", &s);
        c.insert(ClientId(1), b"b", &s);
        c.insert(ClientId(1), b"a", &s); // refresh, not duplicate
        assert_eq!(c.len(), 2);
        c.insert(ClientId(1), b"c", &s); // evicts "b", the true LRU
        assert!(c.check(ClientId(1), b"a", &s));
        assert!(!c.check(ClientId(1), b"b", &s));
    }

    #[test]
    fn zero_capacity_clamped_to_one() {
        let mut c = VerifyCache::new(0);
        assert_eq!(c.capacity(), 1);
        let s = sig(1);
        c.insert(ClientId(1), b"a", &s);
        c.insert(ClientId(1), b"b", &s);
        assert_eq!(c.len(), 1);
        assert!(c.check(ClientId(1), b"b", &s));
    }

    #[test]
    fn heavy_churn_keeps_list_consistent() {
        let mut c = VerifyCache::new(8);
        let s = sig(1);
        for round in 0u64..200 {
            let payload = (round % 24).to_be_bytes();
            if !c.check(ClientId(1), &payload, &s) {
                c.insert(ClientId(1), &payload, &s);
            }
            assert!(c.len() <= 8);
        }
        assert_eq!(c.len(), 8);
        // The most recent payload must still be resident.
        assert!(c.check(ClientId(1), &(199u64 % 24).to_be_bytes(), &s));
    }
}
