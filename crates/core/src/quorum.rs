//! Quorum arithmetic for every protocol in the evaluation (paper §5–§6).
//!
//! | Operation                        | Servers contacted               |
//! |----------------------------------|---------------------------------|
//! | Context read/write               | `⌈(n+b+1)/2⌉`                   |
//! | Data read/write (single-writer)  | `b+1`                           |
//! | Data read/write (multi-writer)   | `2b+1`, accept on `b+1` matches |
//! | Masking quorum baseline          | `⌈(n+2b+1)/2⌉`, accept on `b+1` |
//! | PBFT-lite baseline               | all `n`, `O(n²)` messages       |

/// Quorum size for context read/write: `⌈(n+b+1)/2⌉`.
///
/// Two such quorums intersect in at least `b+1` servers, so at least one
/// *non-faulty* server participates in both the last context write and the
/// next context read. The paper's optimization over masking quorums: the
/// latest *validly signed* context from a single server suffices.
pub fn context_quorum(n: usize, b: usize) -> usize {
    (n + b + 1).div_ceil(2)
}

/// Servers contacted for single-writer data reads and writes: `b+1`
/// (guarantees at least one non-faulty participant).
pub fn data_quorum(b: usize) -> usize {
    b + 1
}

/// Servers contacted for multi-writer reads and writes: `2b+1`.
pub fn multi_writer_quorum(b: usize) -> usize {
    2 * b + 1
}

/// Matching responses a multi-writer read needs before accepting: `b+1`.
pub fn multi_writer_accept(b: usize) -> usize {
    b + 1
}

/// Masking-quorum size (Malkhi–Reiter): `⌈(n+2b+1)/2⌉`. Two such quorums
/// intersect in `2b+1` servers, of which `b+1` are correct and vouch for
/// the value.
pub fn masking_quorum(n: usize, b: usize) -> usize {
    (n + 2 * b + 1).div_ceil(2)
}

/// Minimum `n` for the context quorum to be available with `b` faulty
/// servers: `⌈(n+b+1)/2⌉ ≤ n - b` ⇒ `n ≥ 3b+1`.
pub fn min_servers_context(b: usize) -> usize {
    3 * b + 1
}

/// Minimum `n` for masking quorums to be available: `n ≥ 4b+1`.
pub fn min_servers_masking(b: usize) -> usize {
    4 * b + 1
}

/// Validates a secure-store configuration.
///
/// # Errors
///
/// Returns a description of the violated constraint.
pub fn validate(n: usize, b: usize) -> Result<(), String> {
    if n == 0 {
        return Err("need at least one server".into());
    }
    if n < min_servers_context(b) {
        return Err(format!(
            "context quorum needs n >= 3b+1 (n={n}, b={b}): quorum {} would exceed the {} servers guaranteed live",
            context_quorum(n, b),
            n - b
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn context_quorum_formula() {
        // Values straight from the paper's expression ⌈(n+b+1)/2⌉.
        assert_eq!(context_quorum(4, 1), 3);
        assert_eq!(context_quorum(7, 1), 5); // (7+1+1)/2 = 4.5 -> 5
        assert_eq!(context_quorum(7, 2), 5);
        assert_eq!(context_quorum(10, 3), 7);
        assert_eq!(context_quorum(16, 3), 10);
    }

    #[test]
    fn context_quorums_intersect_in_b_plus_1() {
        for n in 4..30 {
            for b in 1..=(n - 1) / 3 {
                let q = context_quorum(n, b);
                // |Q1 ∩ Q2| >= 2q - n >= b+1
                assert!(2 * q - n > b, "n={n} b={b} q={q}");
            }
        }
    }

    #[test]
    fn masking_quorums_intersect_in_2b_plus_1() {
        for n in 5usize..40 {
            for b in 1..=(n.saturating_sub(1)) / 4 {
                let q = masking_quorum(n, b);
                assert!(2 * q - n > 2 * b, "n={n} b={b} q={q}");
            }
        }
    }

    #[test]
    fn context_quorum_is_smaller_than_masking() {
        for n in 5..40 {
            for b in 1..=n / 5 {
                assert!(context_quorum(n, b) <= masking_quorum(n, b));
            }
        }
        // Strictly smaller whenever b >= 1 and parity cooperates.
        assert!(context_quorum(10, 2) < masking_quorum(10, 2));
    }

    #[test]
    fn availability_thresholds() {
        // Context quorum must still be formable with b servers down.
        for b in 1..6 {
            let n = min_servers_context(b);
            assert!(context_quorum(n, b) <= n - b, "b={b}");
            assert!(context_quorum(n - 1, b) > (n - 1) - b, "n-1 must fail");
        }
        for b in 1..6 {
            let n = min_servers_masking(b);
            assert!(masking_quorum(n, b) <= n - b, "b={b}");
        }
    }

    #[test]
    fn data_quorums() {
        assert_eq!(data_quorum(1), 2);
        assert_eq!(multi_writer_quorum(2), 5);
        assert_eq!(multi_writer_accept(2), 3);
    }

    #[test]
    fn validate_rejects_bad_configs() {
        assert!(validate(0, 0).is_err());
        assert!(validate(3, 1).is_err());
        assert!(validate(4, 1).is_ok());
        assert!(validate(7, 2).is_ok());
        assert!(validate(6, 2).is_err());
    }
}
