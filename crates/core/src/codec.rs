//! Canonical binary wire codec for [`Msg`] — the deployable counterpart
//! of the in-process transports.
//!
//! The encoder reuses the injective [`Enc`] primitives that already back
//! every signature in the store, so the bytes that travel on a socket are
//! built from the same canonical building blocks as the bytes that get
//! signed. The decoder is strict and bounds-checked: every length prefix is
//! validated against the remaining input, composite fields are tagged,
//! contexts must arrive in canonical (sorted, non-degenerate) form, and a
//! message must consume its buffer exactly. Malformed or truncated input
//! returns a [`CodecError`]; it never panics and never over-allocates.
//!
//! Layout of an encoded message:
//!
//! ```text
//! [version: u8 = WIRE_VERSION] [tag: u8] [variant fields...]
//! ```
//!
//! Framing (length prefixes on a byte stream) lives one layer up, in
//! `sstore-net`; this module is transport-agnostic.

use sstore_crypto::schnorr::Signature;
use sstore_crypto::sha256::{Digest, DIGEST_LEN};

use crate::context::Context;
use crate::encoding::Enc;
use crate::item::{ItemMeta, SignedContext, StoredItem};
use crate::types::{ClientId, DataId, GroupId, OpId, Timestamp};
use crate::wire::Msg;

/// Version byte leading every encoded message. Bumped on any incompatible
/// layout change so that mixed deployments fail loudly instead of
/// misparsing.
pub const WIRE_VERSION: u8 = 1;

/// Why a byte string failed to decode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CodecError {
    /// The input ended before the field being parsed did.
    Truncated,
    /// The leading version byte is not [`WIRE_VERSION`].
    BadVersion(u8),
    /// Unknown message (or composite-field) tag.
    BadTag(u8),
    /// The message parsed but left unconsumed bytes behind.
    TrailingBytes(usize),
    /// A length or count field exceeds what the remaining input could hold.
    BadLength,
    /// Structurally valid but non-canonical input (unsorted context,
    /// degenerate timestamp, out-of-range tag for an option/bool).
    NonCanonical(&'static str),
    /// An embedded structure (e.g. a signature) failed its own parser.
    Malformed(&'static str),
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::Truncated => write!(f, "input truncated"),
            CodecError::BadVersion(v) => write!(f, "unsupported wire version {v}"),
            CodecError::BadTag(t) => write!(f, "unknown tag {t}"),
            CodecError::TrailingBytes(n) => write!(f, "{n} trailing bytes after message"),
            CodecError::BadLength => write!(f, "length field exceeds input"),
            CodecError::NonCanonical(what) => write!(f, "non-canonical {what}"),
            CodecError::Malformed(what) => write!(f, "malformed {what}"),
        }
    }
}

impl std::error::Error for CodecError {}

// ---------------------------------------------------------------------------
// Message tags
// ---------------------------------------------------------------------------

const TAG_CTX_READ_REQ: u8 = 1;
const TAG_CTX_READ_RESP: u8 = 2;
const TAG_CTX_WRITE_REQ: u8 = 3;
const TAG_CTX_WRITE_ACK: u8 = 4;
const TAG_TS_SCAN_REQ: u8 = 5;
const TAG_TS_SCAN_RESP: u8 = 6;
const TAG_TS_QUERY_REQ: u8 = 7;
const TAG_TS_QUERY_RESP: u8 = 8;
const TAG_READ_REQ: u8 = 9;
const TAG_READ_RESP: u8 = 10;
const TAG_WRITE_REQ: u8 = 11;
const TAG_WRITE_ACK: u8 = 12;
const TAG_MW_READ_REQ: u8 = 13;
const TAG_MW_READ_RESP: u8 = 14;
const TAG_GOSSIP_PUSH: u8 = 15;
const TAG_GOSSIP_SUMMARY: u8 = 16;
/// A coalesced frame carrying several complete messages (each in its full
/// canonical encoding). Only [`decode_frame_msgs`] understands this tag —
/// [`decode_msg`] rejects it, which is also what makes nested batches
/// impossible.
const TAG_BATCH: u8 = 17;
const TAG_SHED: u8 = 18;

// ---------------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------------

fn enc_signature(e: Enc, sig: &Signature) -> Enc {
    e.bytes(&sig.to_bytes())
}

fn enc_meta(mut e: Enc, m: &ItemMeta) -> Enc {
    e = e
        .u64(m.data.0)
        .u32(m.group.0)
        .timestamp(&m.ts)
        .u16(m.writer.0)
        .digest(&m.value_digest);
    e = match &m.writer_ctx {
        Some(ctx) => e.u8(1).context(ctx),
        None => e.u8(0),
    };
    enc_signature(e, &m.signature)
}

fn enc_item(e: Enc, item: &StoredItem) -> Enc {
    enc_meta(e, &item.meta).bytes(&item.value)
}

fn enc_signed_context(e: Enc, s: &SignedContext) -> Enc {
    let e = e.u16(s.client.0).u64(s.session).context(&s.ctx);
    enc_signature(e, &s.signature)
}

fn enc_opt_meta(e: Enc, m: &Option<ItemMeta>) -> Enc {
    match m {
        Some(m) => enc_meta(e.u8(1), m),
        None => e.u8(0),
    }
}

fn enc_opt_item(e: Enc, i: &Option<StoredItem>) -> Enc {
    match i {
        Some(i) => enc_item(e.u8(1), i),
        None => e.u8(0),
    }
}

/// Encodes `msg` into its canonical wire form (version byte included).
pub fn encode_msg(msg: &Msg) -> Vec<u8> {
    let e = Enc::new().u8(WIRE_VERSION);
    let e = match msg {
        Msg::CtxReadReq { op, client, group } => {
            e.u8(TAG_CTX_READ_REQ).u64(op.0).u16(client.0).u32(group.0)
        }
        Msg::CtxReadResp { op, stored } => {
            let e = e.u8(TAG_CTX_READ_RESP).u64(op.0);
            match stored {
                Some(s) => enc_signed_context(e.u8(1), s),
                None => e.u8(0),
            }
        }
        Msg::CtxWriteReq { op, group, signed } => {
            enc_signed_context(e.u8(TAG_CTX_WRITE_REQ).u64(op.0).u32(group.0), signed)
        }
        Msg::CtxWriteAck { op } => e.u8(TAG_CTX_WRITE_ACK).u64(op.0),
        Msg::TsScanReq { op, group } => e.u8(TAG_TS_SCAN_REQ).u64(op.0).u32(group.0),
        Msg::TsScanResp { op, entries } => {
            let mut e = e.u8(TAG_TS_SCAN_RESP).u64(op.0).u64(entries.len() as u64);
            for m in entries {
                e = enc_meta(e, m);
            }
            e
        }
        Msg::TsQueryReq { op, data } => e.u8(TAG_TS_QUERY_REQ).u64(op.0).u64(data.0),
        Msg::TsQueryResp {
            op,
            data,
            meta,
            inline,
        } => {
            let e = e.u8(TAG_TS_QUERY_RESP).u64(op.0).u64(data.0);
            let e = enc_opt_meta(e, meta);
            enc_opt_item(e, inline)
        }
        Msg::ReadReq { op, data, ts } => e.u8(TAG_READ_REQ).u64(op.0).u64(data.0).timestamp(ts),
        Msg::ReadResp { op, item } => enc_opt_item(e.u8(TAG_READ_RESP).u64(op.0), item),
        Msg::WriteReq { op, item } => enc_item(e.u8(TAG_WRITE_REQ).u64(op.0), item),
        Msg::WriteAck { op, accepted } => e.u8(TAG_WRITE_ACK).u64(op.0).u8(u8::from(*accepted)),
        Msg::MwReadReq { op, data } => e.u8(TAG_MW_READ_REQ).u64(op.0).u64(data.0),
        Msg::Shed { op } => e.u8(TAG_SHED).u64(op.0),
        Msg::MwReadResp { op, data, versions } => {
            let mut e = e
                .u8(TAG_MW_READ_RESP)
                .u64(op.0)
                .u64(data.0)
                .u64(versions.len() as u64);
            for i in versions {
                e = enc_item(e, i);
            }
            e
        }
        Msg::GossipPush { items } => {
            let mut e = e.u8(TAG_GOSSIP_PUSH).u64(items.len() as u64);
            for i in items {
                e = enc_item(e, i);
            }
            e
        }
        Msg::GossipSummary {
            entries,
            want_reply,
        } => {
            let mut e = e
                .u8(TAG_GOSSIP_SUMMARY)
                .u8(u8::from(*want_reply))
                .u64(entries.len() as u64);
            for (d, ts) in entries {
                e = e.u64(d.0).timestamp(ts);
            }
            e
        }
    };
    e.finish()
}

// ---------------------------------------------------------------------------
// Decoding
// ---------------------------------------------------------------------------

/// Minimum encoded size of a timestamp (tag + u64 version).
const MIN_TS: usize = 1 + 8;
/// Minimum encoded size of a signature (u64 length prefix + 4-byte header).
const MIN_SIG: usize = 8 + 4;
/// Minimum encoded size of an item's metadata.
const MIN_META: usize = 8 + 4 + MIN_TS + 2 + DIGEST_LEN + 1 + MIN_SIG;
/// Minimum encoded size of a context entry.
const MIN_CTX_ENTRY: usize = 8 + MIN_TS;

/// Strict, bounds-checked cursor over an encoded message.
struct Dec<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Dec { buf, pos: 0 }
    }

    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        let end = self.pos.checked_add(n).ok_or(CodecError::Truncated)?;
        let out = self.buf.get(self.pos..end).ok_or(CodecError::Truncated)?;
        self.pos = end;
        Ok(out)
    }

    fn u8(&mut self) -> Result<u8, CodecError> {
        Ok(self.take(1)?.first().copied().unwrap_or(0))
    }

    fn u16(&mut self) -> Result<u16, CodecError> {
        let be: [u8; 2] = self
            .take(2)?
            .try_into()
            .map_err(|_| CodecError::Truncated)?;
        Ok(u16::from_be_bytes(be))
    }

    fn u32(&mut self) -> Result<u32, CodecError> {
        let be: [u8; 4] = self
            .take(4)?
            .try_into()
            .map_err(|_| CodecError::Truncated)?;
        Ok(u32::from_be_bytes(be))
    }

    fn u64(&mut self) -> Result<u64, CodecError> {
        let be: [u8; 8] = self
            .take(8)?
            .try_into()
            .map_err(|_| CodecError::Truncated)?;
        Ok(u64::from_be_bytes(be))
    }

    fn bool(&mut self) -> Result<bool, CodecError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(CodecError::NonCanonical("bool")),
        }
    }

    /// Tag of an `Option`: 0 = `None`, 1 = `Some`.
    fn opt(&mut self) -> Result<bool, CodecError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(CodecError::NonCanonical("option tag")),
        }
    }

    /// A length-prefixed byte string (the [`Enc::bytes`] encoding). The
    /// length is validated against the remaining input before any
    /// allocation.
    fn bytes(&mut self) -> Result<Vec<u8>, CodecError> {
        let len = self.u64()?;
        if len > self.remaining() as u64 {
            return Err(CodecError::BadLength);
        }
        Ok(self.take(len as usize)?.to_vec())
    }

    /// An element count, validated so that `count` elements of at least
    /// `min_elem` bytes each could still fit in the remaining input.
    fn count(&mut self, min_elem: usize) -> Result<usize, CodecError> {
        let count = self.u64()?;
        if count > (self.remaining() / min_elem.max(1)) as u64 {
            return Err(CodecError::BadLength);
        }
        Ok(count as usize)
    }

    fn digest(&mut self) -> Result<Digest, CodecError> {
        let bytes: [u8; DIGEST_LEN] = self
            .take(DIGEST_LEN)?
            .try_into()
            .map_err(|_| CodecError::Truncated)?;
        Ok(Digest::from(bytes))
    }

    fn timestamp(&mut self) -> Result<Timestamp, CodecError> {
        match self.u8()? {
            1 => Ok(Timestamp::Version(self.u64()?)),
            2 => Ok(Timestamp::Multi {
                time: self.u64()?,
                writer: ClientId(self.u16()?),
                digest: self.digest()?,
            }),
            t => Err(CodecError::BadTag(t)),
        }
    }

    fn signature(&mut self) -> Result<Signature, CodecError> {
        let bytes = self.bytes()?;
        let sig = Signature::from_bytes(&bytes).map_err(|_| CodecError::Malformed("signature"))?;
        // `from_bytes` tolerates some redundant encodings; insist on the
        // canonical one so decoding stays injective.
        if sig.to_bytes() != bytes {
            return Err(CodecError::NonCanonical("signature"));
        }
        // Scalars must be minimally encoded (no leading zero bytes):
        // zero-padding `e` or `s` yields a second wire encoding of the same
        // valid signature, and padded and minimal forms would also occupy
        // distinct verification-cache entries.
        if !sig.scalars_minimal() {
            return Err(CodecError::NonCanonical("signature scalar padding"));
        }
        Ok(sig)
    }

    /// A context in canonical form: entries strictly sorted by `DataId`,
    /// every timestamp strictly newer than [`Timestamp::GENESIS`].
    fn context(&mut self) -> Result<Context, CodecError> {
        let group = GroupId(self.u32()?);
        let count = self.count(MIN_CTX_ENTRY)?;
        let mut ctx = Context::new(group);
        let mut prev: Option<DataId> = None;
        for _ in 0..count {
            let data = DataId(self.u64()?);
            if prev.is_some_and(|p| p >= data) {
                return Err(CodecError::NonCanonical("context order"));
            }
            prev = Some(data);
            let ts = self.timestamp()?;
            if !ctx.observe(data, ts) {
                return Err(CodecError::NonCanonical("context entry"));
            }
        }
        Ok(ctx)
    }

    fn item_meta(&mut self) -> Result<ItemMeta, CodecError> {
        let data = DataId(self.u64()?);
        let group = GroupId(self.u32()?);
        let ts = self.timestamp()?;
        let writer = ClientId(self.u16()?);
        let value_digest = self.digest()?;
        let writer_ctx = if self.opt()? {
            Some(self.context()?)
        } else {
            None
        };
        let signature = self.signature()?;
        Ok(ItemMeta {
            data,
            group,
            ts,
            writer,
            value_digest,
            writer_ctx,
            signature,
        })
    }

    fn stored_item(&mut self) -> Result<StoredItem, CodecError> {
        Ok(StoredItem {
            meta: self.item_meta()?,
            value: self.bytes()?,
        })
    }

    fn signed_context(&mut self) -> Result<SignedContext, CodecError> {
        let client = ClientId(self.u16()?);
        let session = self.u64()?;
        let ctx = self.context()?;
        let signature = self.signature()?;
        Ok(SignedContext {
            client,
            session,
            ctx,
            signature,
        })
    }

    fn finish(self) -> Result<(), CodecError> {
        match self.remaining() {
            0 => Ok(()),
            n => Err(CodecError::TrailingBytes(n)),
        }
    }
}

// ---------------------------------------------------------------------------
// Coalesced multi-message frames
// ---------------------------------------------------------------------------

/// Encodes several messages as one frame payload. With two or more
/// messages this produces a `TAG_BATCH` frame — count followed by each
/// message in its full canonical encoding behind a length prefix; a
/// single message encodes as itself (no batch overhead), and both shapes
/// decode through [`decode_frame_msgs`]. An empty slice encodes a
/// zero-count batch, which the decoder rejects as non-canonical —
/// callers coalesce only when they have something to send.
pub fn encode_msg_batch(msgs: &[Msg]) -> Vec<u8> {
    let parts: Vec<Vec<u8>> = msgs.iter().map(encode_msg).collect();
    encode_msg_batch_parts(&parts)
}

/// [`encode_msg_batch`] over messages that are already encoded (each part
/// a full [`encode_msg`] output) — transports that encode per message for
/// byte accounting assemble the batch frame from the parts without
/// re-encoding. A single part is returned unchanged; an empty slice
/// yields a zero-count batch frame that decoders reject, mirroring
/// [`encode_msg_batch`] — callers coalesce only when they have something
/// to send.
pub fn encode_msg_batch_parts(parts: &[Vec<u8>]) -> Vec<u8> {
    if let [only] = parts {
        return only.clone();
    }
    let mut e = Enc::new()
        .u8(WIRE_VERSION)
        .u8(TAG_BATCH)
        .u64(parts.len() as u64);
    for part in parts {
        e = e.bytes(part);
    }
    e.finish()
}

/// Decodes one frame payload into the messages it carries: a `TAG_BATCH`
/// frame yields each contained message in order, anything else decodes
/// as a single message. Receivers that accept coalesced input use this
/// in place of [`decode_msg`]; the strictness guarantees are identical
/// (bounds-checked lengths, exact consumption, no panics), and a batch
/// nested inside a batch fails with [`CodecError::BadTag`].
///
/// # Errors
///
/// Any [`CodecError`] for truncated, malformed or non-canonical input,
/// including an empty batch.
pub fn decode_frame_msgs(bytes: &[u8]) -> Result<Vec<Msg>, CodecError> {
    if bytes.first() != Some(&WIRE_VERSION) || bytes.get(1) != Some(&TAG_BATCH) {
        return Ok(vec![decode_msg(bytes)?]);
    }
    let mut d = Dec::new(bytes);
    let _version = d.u8()?;
    let _tag = d.u8()?;
    // Each element is at least a u64 length prefix plus version + tag.
    let count = d.count(8 + 2)?;
    if count == 0 {
        return Err(CodecError::NonCanonical("empty batch"));
    }
    let mut out = Vec::with_capacity(count);
    for _ in 0..count {
        let chunk = d.bytes()?;
        out.push(decode_msg(&chunk)?);
    }
    d.finish()?;
    Ok(out)
}

// ---------------------------------------------------------------------------
// Standalone composite codecs (persistence records)
// ---------------------------------------------------------------------------

/// Encodes one [`StoredItem`] standalone — the payload of a persistence
/// WAL record. Same canonical layout as the item embedded in a message.
pub fn encode_stored_item(item: &StoredItem) -> Vec<u8> {
    enc_item(Enc::new(), item).finish()
}

/// Decodes a standalone [`StoredItem`] (inverse of [`encode_stored_item`]).
/// The whole input must be consumed.
///
/// # Errors
///
/// Any [`CodecError`] for truncated, malformed or non-canonical input.
/// Never panics.
pub fn decode_stored_item(bytes: &[u8]) -> Result<StoredItem, CodecError> {
    let mut d = Dec::new(bytes);
    let item = d.stored_item()?;
    d.finish()?;
    Ok(item)
}

/// Encodes a `(group, signed context)` pair standalone — the payload of a
/// persistence WAL record. The group is stored explicitly because a stored
/// context is keyed by the *request's* group, which the signature does not
/// bind.
pub fn encode_group_context(group: GroupId, signed: &SignedContext) -> Vec<u8> {
    enc_signed_context(Enc::new().u32(group.0), signed).finish()
}

/// Decodes a `(group, signed context)` pair (inverse of
/// [`encode_group_context`]). The whole input must be consumed.
///
/// # Errors
///
/// Any [`CodecError`] for truncated, malformed or non-canonical input.
/// Never panics.
pub fn decode_group_context(bytes: &[u8]) -> Result<(GroupId, SignedContext), CodecError> {
    let mut d = Dec::new(bytes);
    let group = GroupId(d.u32()?);
    let signed = d.signed_context()?;
    d.finish()?;
    Ok((group, signed))
}

/// Decodes one canonical message. The whole input must be consumed.
///
/// # Errors
///
/// Any [`CodecError`] for truncated, malformed, unknown-version or
/// non-canonical input. Never panics.
pub fn decode_msg(bytes: &[u8]) -> Result<Msg, CodecError> {
    let mut d = Dec::new(bytes);
    let version = d.u8()?;
    if version != WIRE_VERSION {
        return Err(CodecError::BadVersion(version));
    }
    let tag = d.u8()?;
    let msg = match tag {
        TAG_CTX_READ_REQ => Msg::CtxReadReq {
            op: OpId(d.u64()?),
            client: ClientId(d.u16()?),
            group: GroupId(d.u32()?),
        },
        TAG_CTX_READ_RESP => Msg::CtxReadResp {
            op: OpId(d.u64()?),
            stored: if d.opt()? {
                Some(d.signed_context()?)
            } else {
                None
            },
        },
        TAG_CTX_WRITE_REQ => Msg::CtxWriteReq {
            op: OpId(d.u64()?),
            group: GroupId(d.u32()?),
            signed: d.signed_context()?,
        },
        TAG_CTX_WRITE_ACK => Msg::CtxWriteAck { op: OpId(d.u64()?) },
        TAG_TS_SCAN_REQ => Msg::TsScanReq {
            op: OpId(d.u64()?),
            group: GroupId(d.u32()?),
        },
        TAG_TS_SCAN_RESP => {
            let op = OpId(d.u64()?);
            let count = d.count(MIN_META)?;
            let mut entries = Vec::with_capacity(count);
            for _ in 0..count {
                entries.push(d.item_meta()?);
            }
            Msg::TsScanResp { op, entries }
        }
        TAG_TS_QUERY_REQ => Msg::TsQueryReq {
            op: OpId(d.u64()?),
            data: DataId(d.u64()?),
        },
        TAG_TS_QUERY_RESP => Msg::TsQueryResp {
            op: OpId(d.u64()?),
            data: DataId(d.u64()?),
            meta: if d.opt()? { Some(d.item_meta()?) } else { None },
            inline: if d.opt()? {
                Some(d.stored_item()?)
            } else {
                None
            },
        },
        TAG_READ_REQ => Msg::ReadReq {
            op: OpId(d.u64()?),
            data: DataId(d.u64()?),
            ts: d.timestamp()?,
        },
        TAG_READ_RESP => Msg::ReadResp {
            op: OpId(d.u64()?),
            item: if d.opt()? {
                Some(d.stored_item()?)
            } else {
                None
            },
        },
        TAG_WRITE_REQ => Msg::WriteReq {
            op: OpId(d.u64()?),
            item: d.stored_item()?,
        },
        TAG_WRITE_ACK => Msg::WriteAck {
            op: OpId(d.u64()?),
            accepted: d.bool()?,
        },
        TAG_MW_READ_REQ => Msg::MwReadReq {
            op: OpId(d.u64()?),
            data: DataId(d.u64()?),
        },
        TAG_SHED => Msg::Shed { op: OpId(d.u64()?) },
        TAG_MW_READ_RESP => {
            let op = OpId(d.u64()?);
            let data = DataId(d.u64()?);
            let count = d.count(MIN_META)?;
            let mut versions = Vec::with_capacity(count);
            for _ in 0..count {
                versions.push(d.stored_item()?);
            }
            Msg::MwReadResp { op, data, versions }
        }
        TAG_GOSSIP_PUSH => {
            let count = d.count(MIN_META)?;
            let mut items = Vec::with_capacity(count);
            for _ in 0..count {
                items.push(d.stored_item()?);
            }
            Msg::GossipPush { items }
        }
        TAG_GOSSIP_SUMMARY => {
            let want_reply = d.bool()?;
            let count = d.count(8 + MIN_TS)?;
            let mut entries = Vec::with_capacity(count);
            for _ in 0..count {
                let data = DataId(d.u64()?);
                entries.push((data, d.timestamp()?));
            }
            Msg::GossipSummary {
                entries,
                want_reply,
            }
        }
        t => return Err(CodecError::BadTag(t)),
    };
    d.finish()?;
    Ok(msg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::directory::generate_client_keys;
    use crate::metrics::CryptoCounters;
    use sstore_crypto::sha256::digest;

    fn sample_ctx() -> Context {
        let mut ctx = Context::new(GroupId(3));
        ctx.observe(DataId(1), Timestamp::Version(4));
        ctx.observe(
            DataId(2),
            Timestamp::Multi {
                time: 9,
                writer: ClientId(1),
                digest: digest(b"mw"),
            },
        );
        ctx
    }

    fn sample_item(with_ctx: bool) -> StoredItem {
        let (keys, _) = generate_client_keys(2, 7);
        let mut c = CryptoCounters::new();
        StoredItem::create(
            DataId(5),
            GroupId(3),
            Timestamp::Version(2),
            ClientId(1),
            with_ctx.then(sample_ctx),
            b"wire value".to_vec(),
            &keys[&ClientId(1)],
            &mut c,
        )
    }

    fn sample_signed_ctx() -> SignedContext {
        let (keys, _) = generate_client_keys(2, 7);
        let mut c = CryptoCounters::new();
        SignedContext::create(ClientId(0), 11, sample_ctx(), &keys[&ClientId(0)], &mut c)
    }

    fn all_variants() -> Vec<Msg> {
        let item = sample_item(true);
        let plain = sample_item(false);
        vec![
            Msg::CtxReadReq {
                op: OpId(1),
                client: ClientId(2),
                group: GroupId(3),
            },
            Msg::CtxReadResp {
                op: OpId(2),
                stored: Some(sample_signed_ctx()),
            },
            Msg::CtxReadResp {
                op: OpId(3),
                stored: None,
            },
            Msg::CtxWriteReq {
                op: OpId(4),
                group: GroupId(3),
                signed: sample_signed_ctx(),
            },
            Msg::CtxWriteAck { op: OpId(5) },
            Msg::TsScanReq {
                op: OpId(6),
                group: GroupId(3),
            },
            Msg::TsScanResp {
                op: OpId(7),
                entries: vec![item.meta.clone(), plain.meta.clone()],
            },
            Msg::TsQueryReq {
                op: OpId(8),
                data: DataId(5),
            },
            Msg::TsQueryResp {
                op: OpId(9),
                data: DataId(5),
                meta: Some(item.meta.clone()),
                inline: Some(plain.clone()),
            },
            Msg::TsQueryResp {
                op: OpId(10),
                data: DataId(5),
                meta: None,
                inline: None,
            },
            Msg::ReadReq {
                op: OpId(11),
                data: DataId(5),
                ts: Timestamp::Version(2),
            },
            Msg::ReadResp {
                op: OpId(12),
                item: Some(item.clone()),
            },
            Msg::ReadResp {
                op: OpId(13),
                item: None,
            },
            Msg::WriteReq {
                op: OpId(14),
                item: item.clone(),
            },
            Msg::WriteAck {
                op: OpId(15),
                accepted: true,
            },
            Msg::MwReadReq {
                op: OpId(16),
                data: DataId(5),
            },
            Msg::MwReadResp {
                op: OpId(17),
                data: DataId(5),
                versions: vec![item.clone(), plain.clone()],
            },
            Msg::Shed { op: OpId(18) },
            Msg::GossipPush {
                items: vec![item, plain],
            },
            Msg::GossipSummary {
                entries: vec![
                    (DataId(1), Timestamp::Version(3)),
                    (
                        DataId(2),
                        Timestamp::Multi {
                            time: 4,
                            writer: ClientId(0),
                            digest: digest(b"x"),
                        },
                    ),
                ],
                want_reply: true,
            },
        ]
    }

    #[test]
    fn roundtrip_every_variant() {
        for msg in all_variants() {
            let bytes = encode_msg(&msg);
            assert_eq!(bytes[0], WIRE_VERSION);
            let back =
                decode_msg(&bytes).unwrap_or_else(|e| panic!("decode failed for {msg:?}: {e}"));
            assert_eq!(back, msg);
        }
    }

    #[test]
    fn every_strict_prefix_is_rejected() {
        for msg in all_variants() {
            let bytes = encode_msg(&msg);
            for cut in 0..bytes.len() {
                assert!(
                    decode_msg(&bytes[..cut]).is_err(),
                    "prefix of len {cut} decoded for {msg:?}"
                );
            }
        }
    }

    #[test]
    fn zero_padded_signature_scalars_rejected() {
        // Re-encode a valid signature with each scalar prefixed by a zero
        // byte: same mathematical signature, different wire bytes. The
        // decoder must refuse the padded variant to stay injective.
        let item = sample_item(false);
        let sig_bytes = item.meta.signature.to_bytes();
        let e_len = u32::from_be_bytes(sig_bytes[..4].try_into().unwrap()) as usize;
        let (e, s) = (&sig_bytes[4..4 + e_len], &sig_bytes[4 + e_len..]);
        let mut padded = Vec::new();
        padded.extend_from_slice(&(e_len as u32 + 1).to_be_bytes());
        padded.push(0);
        padded.extend_from_slice(e);
        padded.push(0);
        padded.extend_from_slice(s);
        let padded_sig = Signature::from_bytes(&padded).unwrap();
        assert!(!padded_sig.scalars_minimal());
        let mut bad = item;
        bad.meta.signature = padded_sig;
        let bytes = encode_msg(&Msg::ReadResp {
            op: OpId(1),
            item: Some(bad),
        });
        assert_eq!(
            decode_msg(&bytes),
            Err(CodecError::NonCanonical("signature scalar padding"))
        );
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut bytes = encode_msg(&Msg::CtxWriteAck { op: OpId(1) });
        bytes.push(0);
        assert_eq!(decode_msg(&bytes), Err(CodecError::TrailingBytes(1)));
    }

    #[test]
    fn wrong_version_rejected() {
        let mut bytes = encode_msg(&Msg::CtxWriteAck { op: OpId(1) });
        bytes[0] = WIRE_VERSION + 1;
        assert_eq!(
            decode_msg(&bytes),
            Err(CodecError::BadVersion(WIRE_VERSION + 1))
        );
    }

    #[test]
    fn unknown_tag_rejected() {
        let bytes = vec![WIRE_VERSION, 0xEE];
        assert_eq!(decode_msg(&bytes), Err(CodecError::BadTag(0xEE)));
    }

    #[test]
    fn absurd_count_rejected_without_allocation() {
        // GossipSummary claiming u64::MAX entries in a tiny buffer.
        let bytes = Enc::new()
            .u8(WIRE_VERSION)
            .u8(TAG_GOSSIP_SUMMARY)
            .u8(0)
            .u64(u64::MAX)
            .finish();
        assert_eq!(decode_msg(&bytes), Err(CodecError::BadLength));
    }

    #[test]
    fn oversized_value_length_rejected() {
        // ReadResp with an item whose value claims more bytes than remain.
        let item = sample_item(false);
        let msg = Msg::ReadResp {
            op: OpId(1),
            item: Some(item),
        };
        let mut bytes = encode_msg(&msg);
        // The value length prefix is the 8 bytes right before the value
        // itself (last 10 bytes are the value "wire value").
        let len_at = bytes.len() - b"wire value".len() - 8;
        bytes[len_at..len_at + 8].copy_from_slice(&u64::MAX.to_be_bytes());
        assert_eq!(decode_msg(&bytes), Err(CodecError::BadLength));
    }

    #[test]
    fn unsorted_context_rejected() {
        // Hand-build a CtxWriteAck-framed... rather: a context with
        // descending entries inside a CtxReadResp.
        let signed = sample_signed_ctx();
        let good = encode_msg(&Msg::CtxReadResp {
            op: OpId(1),
            stored: Some(signed.clone()),
        });
        assert!(decode_msg(&good).is_ok());
        // Re-encode with swapped entry order by crafting the bytes: encode a
        // two-entry context manually.
        let e = Enc::new()
            .u8(WIRE_VERSION)
            .u8(TAG_CTX_READ_RESP)
            .u64(1)
            .u8(1) // Some
            .u16(signed.client.0)
            .u64(signed.session)
            .u32(signed.ctx.group().0)
            .u64(2)
            // entries out of order: DataId(2) before DataId(1)
            .u64(2)
            .u8(1)
            .u64(4)
            .u64(1)
            .u8(1)
            .u64(4)
            .bytes(&signed.signature.to_bytes());
        assert_eq!(
            decode_msg(&e.finish()),
            Err(CodecError::NonCanonical("context order"))
        );
    }

    #[test]
    fn genesis_context_entry_rejected() {
        let signed = sample_signed_ctx();
        let e = Enc::new()
            .u8(WIRE_VERSION)
            .u8(TAG_CTX_READ_RESP)
            .u64(1)
            .u8(1)
            .u16(signed.client.0)
            .u64(signed.session)
            .u32(signed.ctx.group().0)
            .u64(1)
            .u64(1)
            .u8(1)
            .u64(0) // Timestamp::Version(0) can never appear in a context
            .bytes(&signed.signature.to_bytes());
        assert_eq!(
            decode_msg(&e.finish()),
            Err(CodecError::NonCanonical("context entry"))
        );
    }

    #[test]
    fn bad_option_and_bool_tags_rejected() {
        let bytes = Enc::new()
            .u8(WIRE_VERSION)
            .u8(TAG_CTX_READ_RESP)
            .u64(1)
            .u8(7) // option tag must be 0 or 1
            .finish();
        assert_eq!(
            decode_msg(&bytes),
            Err(CodecError::NonCanonical("option tag"))
        );
        let bytes = Enc::new()
            .u8(WIRE_VERSION)
            .u8(TAG_WRITE_ACK)
            .u64(1)
            .u8(9) // bool must be 0 or 1
            .finish();
        assert_eq!(decode_msg(&bytes), Err(CodecError::NonCanonical("bool")));
    }

    #[test]
    fn batch_frame_roundtrips_in_order() {
        let msgs = all_variants();
        let bytes = encode_msg_batch(&msgs);
        assert_eq!(bytes[1], TAG_BATCH);
        let back = decode_frame_msgs(&bytes).unwrap();
        assert_eq!(back, msgs);
    }

    #[test]
    fn singleton_batch_is_a_plain_message() {
        let msg = Msg::CtxWriteAck { op: OpId(1) };
        let bytes = encode_msg_batch(std::slice::from_ref(&msg));
        assert_eq!(bytes, encode_msg(&msg), "no batch overhead for one");
        assert_eq!(decode_frame_msgs(&bytes).unwrap(), vec![msg]);
    }

    #[test]
    fn plain_frames_decode_through_the_batch_entry_point() {
        for msg in all_variants() {
            let bytes = encode_msg(&msg);
            assert_eq!(decode_frame_msgs(&bytes).unwrap(), vec![msg]);
        }
    }

    #[test]
    fn nested_and_empty_batches_rejected() {
        let inner = encode_msg_batch(&[
            Msg::CtxWriteAck { op: OpId(1) },
            Msg::CtxWriteAck { op: OpId(2) },
        ]);
        // Hand-nest the batch frame inside another batch element.
        let nested = Enc::new()
            .u8(WIRE_VERSION)
            .u8(TAG_BATCH)
            .u64(1)
            .bytes(&inner)
            .finish();
        assert_eq!(
            decode_frame_msgs(&nested),
            Err(CodecError::BadTag(TAG_BATCH))
        );
        // decode_msg never accepts a batch frame directly.
        assert_eq!(decode_msg(&inner), Err(CodecError::BadTag(TAG_BATCH)));
        let empty = encode_msg_batch(&[]);
        assert_eq!(
            decode_frame_msgs(&empty),
            Err(CodecError::NonCanonical("empty batch"))
        );
    }

    #[test]
    fn batch_strict_prefixes_and_trailing_bytes_rejected() {
        let msgs = vec![
            Msg::CtxWriteAck { op: OpId(1) },
            Msg::WriteAck {
                op: OpId(2),
                accepted: true,
            },
        ];
        let bytes = encode_msg_batch(&msgs);
        for cut in 2..bytes.len() {
            assert!(
                decode_frame_msgs(&bytes[..cut]).is_err(),
                "batch prefix of len {cut} decoded"
            );
        }
        let mut long = bytes.clone();
        long.push(0);
        assert!(decode_frame_msgs(&long).is_err());
        // An element length lying about its size must not slide the parse.
        let mut lying = bytes;
        lying[10..18].copy_from_slice(&u64::MAX.to_be_bytes());
        assert!(decode_frame_msgs(&lying).is_err());
    }

    #[test]
    fn corrupted_bytes_never_panic() {
        // Flip every byte of every variant one at a time; decoding must
        // return (any) Result, never panic.
        for msg in all_variants() {
            let bytes = encode_msg(&msg);
            for i in 0..bytes.len() {
                let mut corrupt = bytes.clone();
                corrupt[i] ^= 0xA5;
                let _ = decode_msg(&corrupt);
            }
        }
    }

    #[test]
    fn encoded_size_matches_encoding() {
        for msg in all_variants() {
            assert_eq!(msg.encoded_size(), encode_msg(&msg).len());
        }
    }
}
