//! Byzantine server behaviours for fault-injection experiments.
//!
//! The paper assumes up to `b` servers "can behave arbitrarily while
//! executing the secure store protocols" (§4). The simulator realizes a
//! representative adversary menu by intercepting a correct server's wire
//! traffic — the adversary sees exactly what a compromised server would see
//! (messages), never the honest implementation's internals:
//!
//! - [`Behavior::Crash`] — stops responding entirely.
//! - [`Behavior::Stale`] — answers with the *first* value it ever saw for
//!   each item/context, hiding all later updates.
//! - [`Behavior::CorruptValue`] — flips bits in returned values (clients
//!   catch this via the signed digest).
//! - [`Behavior::CorruptSig`] — replaces signatures with garbage.
//! - [`Behavior::Equivocate`] — advertises fabricated, inflated timestamps
//!   in phase-1 replies to lure readers (it can never produce a signed
//!   value to match).
//! - [`Behavior::Premature`] — reports multi-writer values before their
//!   causal predecessors arrived (configured via
//!   `MultiWriterConfig::validate_causal_deps = false`).

use std::collections::HashMap;

use sstore_crypto::schnorr::Signature;

use crate::item::{SignedContext, StoredItem};
use crate::server::Addr;
use crate::types::{ClientId, DataId, GroupId, Timestamp};
use crate::wire::Msg;

/// The fault menu for a simulated server.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Behavior {
    /// Follows the protocol.
    #[default]
    Honest,
    /// Crash fault: never responds, never gossips.
    Crash,
    /// Serves the oldest state it ever held.
    Stale,
    /// Corrupts value bytes in read responses and gossip.
    CorruptValue,
    /// Replaces signatures with garbage in read responses.
    CorruptSig,
    /// Advertises fabricated high timestamps in timestamp queries.
    Equivocate,
    /// Skips multi-writer causal-dependency validation and reports pending
    /// writes immediately (the attack §5.3's `2b+1`/`b+1` rule masks).
    Premature,
}

impl Behavior {
    /// Whether this behaviour counts as Byzantine (vs. honest).
    pub fn is_faulty(&self) -> bool {
        !matches!(self, Behavior::Honest)
    }
}

/// Adversary memory: the first-seen versions used by [`Behavior::Stale`].
#[derive(Debug, Default)]
pub struct AdversaryState {
    first_items: HashMap<DataId, StoredItem>,
    first_ctxs: HashMap<(ClientId, GroupId), SignedContext>,
}

impl AdversaryState {
    /// Creates empty adversary memory.
    pub fn new() -> Self {
        Self::default()
    }

    /// Observes an inbound message (before the honest logic handles it),
    /// capturing first-seen state for later stale replays.
    pub fn observe_inbound(&mut self, msg: &Msg) {
        match msg {
            Msg::WriteReq { item, .. } => {
                self.first_items
                    .entry(item.meta.data)
                    .or_insert_with(|| item.clone());
            }
            Msg::GossipPush { items } => {
                for item in items {
                    self.first_items
                        .entry(item.meta.data)
                        .or_insert_with(|| item.clone());
                }
            }
            Msg::CtxWriteReq { group, signed, .. } => {
                self.first_ctxs
                    .entry((signed.client, *group))
                    .or_insert_with(|| signed.clone());
            }
            _ => {}
        }
    }

    /// Rewrites the honest server's outbound messages according to
    /// `behavior`. Returns the (possibly emptied) message list.
    pub fn mutate_outbound(
        &self,
        behavior: Behavior,
        outbound: Vec<(Addr, Msg)>,
    ) -> Vec<(Addr, Msg)> {
        match behavior {
            Behavior::Crash => Vec::new(),
            Behavior::Honest | Behavior::Premature => outbound,
            Behavior::Stale => outbound
                .into_iter()
                .map(|(to, msg)| (to, self.make_stale(msg)))
                .collect(),
            Behavior::CorruptValue => outbound
                .into_iter()
                .map(|(to, msg)| (to, corrupt_values(msg)))
                .collect(),
            Behavior::CorruptSig => outbound
                .into_iter()
                .map(|(to, msg)| (to, corrupt_signatures(msg)))
                .collect(),
            Behavior::Equivocate => outbound
                .into_iter()
                .map(|(to, msg)| (to, equivocate(msg)))
                .collect(),
        }
    }

    fn make_stale(&self, msg: Msg) -> Msg {
        match msg {
            Msg::TsQueryResp { op, data, .. } => Msg::TsQueryResp {
                op,
                data,
                meta: self.first_items.get(&data).map(|i| i.meta.clone()),
                inline: None,
            },
            Msg::ReadResp { op, item } => Msg::ReadResp {
                op,
                item: item
                    .and_then(|i| self.first_items.get(&i.meta.data).cloned())
                    .or(None),
            },
            Msg::MwReadResp { op, data, .. } => Msg::MwReadResp {
                op,
                data,
                versions: self.first_items.get(&data).cloned().into_iter().collect(),
            },
            Msg::CtxReadResp { op, stored } => Msg::CtxReadResp {
                op,
                stored: stored
                    .and_then(|s| self.first_ctxs.get(&(s.client, s.ctx.group())).cloned()),
            },
            Msg::TsScanResp { op, entries } => Msg::TsScanResp {
                op,
                entries: entries
                    .into_iter()
                    .map(|m| {
                        self.first_items
                            .get(&m.data)
                            .map(|i| i.meta.clone())
                            .unwrap_or(m)
                    })
                    .collect(),
            },
            other => other,
        }
    }
}

fn garbage_signature() -> Signature {
    Signature::from_bytes(&[0, 0, 0, 4, 0xde, 0xad, 0xbe, 0xef]).expect("static bytes parse")
}

fn corrupt_item_value(mut item: StoredItem) -> StoredItem {
    if item.value.is_empty() {
        item.value = vec![0xff];
    } else {
        item.value[0] ^= 0xff;
    }
    item
}

fn corrupt_item_sig(mut item: StoredItem) -> StoredItem {
    item.meta.signature = garbage_signature();
    item
}

fn corrupt_values(msg: Msg) -> Msg {
    match msg {
        Msg::ReadResp { op, item } => Msg::ReadResp {
            op,
            item: item.map(corrupt_item_value),
        },
        Msg::TsQueryResp {
            op,
            data,
            meta,
            inline,
        } => Msg::TsQueryResp {
            op,
            data,
            meta,
            inline: inline.map(corrupt_item_value),
        },
        Msg::MwReadResp { op, data, versions } => Msg::MwReadResp {
            op,
            data,
            versions: versions.into_iter().map(corrupt_item_value).collect(),
        },
        Msg::GossipPush { items } => Msg::GossipPush {
            items: items.into_iter().map(corrupt_item_value).collect(),
        },
        other => other,
    }
}

fn corrupt_signatures(msg: Msg) -> Msg {
    match msg {
        Msg::ReadResp { op, item } => Msg::ReadResp {
            op,
            item: item.map(corrupt_item_sig),
        },
        Msg::TsQueryResp {
            op,
            data,
            meta,
            inline,
        } => Msg::TsQueryResp {
            op,
            data,
            meta,
            inline: inline.map(corrupt_item_sig),
        },
        Msg::MwReadResp { op, data, versions } => Msg::MwReadResp {
            op,
            data,
            versions: versions.into_iter().map(corrupt_item_sig).collect(),
        },
        Msg::GossipPush { items } => Msg::GossipPush {
            items: items.into_iter().map(corrupt_item_sig).collect(),
        },
        Msg::CtxReadResp { op, stored } => Msg::CtxReadResp {
            op,
            stored: stored.map(|mut s| {
                s.signature = garbage_signature();
                s
            }),
        },
        other => other,
    }
}

fn equivocate(msg: Msg) -> Msg {
    match msg {
        Msg::TsQueryResp {
            op,
            data,
            meta: Some(mut m),
            ..
        } => {
            // Advertise a timestamp far in the future; the server cannot
            // back it with a signed value, so phase 2 will fail at honest
            // verification — the paper's argument for why this only costs
            // retries, not safety.
            m.ts = match m.ts {
                Timestamp::Version(v) => Timestamp::Version(v + 1_000_000),
                Timestamp::Multi {
                    time,
                    writer,
                    digest,
                } => Timestamp::Multi {
                    time: time + 1_000_000,
                    writer,
                    digest,
                },
            };
            Msg::TsQueryResp {
                op,
                data,
                meta: Some(m),
                inline: None,
            }
        }
        other => other,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::CryptoCounters;
    use crate::types::OpId;
    use sstore_crypto::schnorr::{SchnorrParams, SigningKey};

    fn item(data: u64, ver: u64, value: &[u8]) -> StoredItem {
        let key = SigningKey::from_seed(&SchnorrParams::toy(), 1);
        StoredItem::create(
            DataId(data),
            GroupId(1),
            Timestamp::Version(ver),
            ClientId(1),
            None,
            value.to_vec(),
            &key,
            &mut CryptoCounters::new(),
        )
    }

    fn read_resp(i: StoredItem) -> Vec<(Addr, Msg)> {
        vec![(
            Addr::Client(ClientId(1)),
            Msg::ReadResp {
                op: OpId(1),
                item: Some(i),
            },
        )]
    }

    #[test]
    fn crash_silences_everything() {
        let adv = AdversaryState::new();
        let out = adv.mutate_outbound(Behavior::Crash, read_resp(item(1, 1, b"v")));
        assert!(out.is_empty());
    }

    #[test]
    fn honest_passes_through() {
        let adv = AdversaryState::new();
        let msgs = read_resp(item(1, 1, b"v"));
        let out = adv.mutate_outbound(Behavior::Honest, msgs.clone());
        assert_eq!(out.len(), msgs.len());
    }

    #[test]
    fn stale_replays_first_seen() {
        let mut adv = AdversaryState::new();
        let old = item(1, 1, b"old");
        let new = item(1, 5, b"new");
        adv.observe_inbound(&Msg::WriteReq {
            op: OpId(1),
            item: old.clone(),
        });
        adv.observe_inbound(&Msg::WriteReq {
            op: OpId(2),
            item: new.clone(),
        });
        let out = adv.mutate_outbound(Behavior::Stale, read_resp(new));
        match &out[0].1 {
            Msg::ReadResp { item: Some(i), .. } => assert_eq!(i.value, b"old"),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn corrupt_value_breaks_digest_not_shape() {
        let adv = AdversaryState::new();
        let orig = item(1, 1, b"payload");
        let out = adv.mutate_outbound(Behavior::CorruptValue, read_resp(orig.clone()));
        match &out[0].1 {
            Msg::ReadResp { item: Some(i), .. } => {
                assert_ne!(i.value, orig.value);
                assert_eq!(i.meta, orig.meta, "metadata untouched");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn corrupt_sig_replaces_signature() {
        let adv = AdversaryState::new();
        let orig = item(1, 1, b"payload");
        let out = adv.mutate_outbound(Behavior::CorruptSig, read_resp(orig.clone()));
        match &out[0].1 {
            Msg::ReadResp { item: Some(i), .. } => {
                assert_ne!(i.meta.signature, orig.meta.signature);
                assert_eq!(i.value, orig.value);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn equivocate_inflates_ts_query_only() {
        let adv = AdversaryState::new();
        let orig = item(1, 3, b"v");
        let msgs = vec![(
            Addr::Client(ClientId(1)),
            Msg::TsQueryResp {
                op: OpId(1),
                data: DataId(1),
                meta: Some(orig.meta.clone()),
                inline: None,
            },
        )];
        let out = adv.mutate_outbound(Behavior::Equivocate, msgs);
        match &out[0].1 {
            Msg::TsQueryResp { meta: Some(m), .. } => {
                assert!(m.ts.is_newer_than(&orig.meta.ts));
            }
            other => panic!("unexpected {other:?}"),
        }
        // Read responses pass through untouched (the lie is only in phase 1).
        let out = adv.mutate_outbound(Behavior::Equivocate, read_resp(orig.clone()));
        match &out[0].1 {
            Msg::ReadResp { item: Some(i), .. } => assert_eq!(i, &orig),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn behavior_classification() {
        assert!(!Behavior::Honest.is_faulty());
        for b in [
            Behavior::Crash,
            Behavior::Stale,
            Behavior::CorruptValue,
            Behavior::CorruptSig,
            Behavior::Equivocate,
            Behavior::Premature,
        ] {
            assert!(b.is_faulty());
        }
    }
}
