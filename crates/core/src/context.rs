//! The client *context*: per-group vector of `(uid, timestamp)` pairs
//! (paper §5.1).
//!
//! A context captures a client's past interactions with the store. It is
//! the client-side metadata from which all consistency decisions are made:
//! MRC compares a single entry, CC merges the writer's context into the
//! reader's. Contexts form a join-semilattice under [`Context::merge`].

use std::collections::BTreeMap;

use crate::types::{DataId, GroupId, Timestamp, TsOrder};

/// A client's context for one related group of data items.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Context {
    group: GroupId,
    entries: BTreeMap<DataId, Timestamp>,
}

impl Context {
    /// Creates an empty context for `group`.
    pub fn new(group: GroupId) -> Self {
        Context {
            group,
            entries: BTreeMap::new(),
        }
    }

    /// The group this context describes.
    pub fn group(&self) -> GroupId {
        self.group
    }

    /// Number of tracked data items.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the context tracks no items yet.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The timestamp recorded for `data` ([`Timestamp::GENESIS`] if none).
    pub fn timestamp(&self, data: DataId) -> Timestamp {
        self.entries
            .get(&data)
            .copied()
            .unwrap_or(Timestamp::GENESIS)
    }

    /// Records that `ts` was observed for `data`, keeping the maximum.
    ///
    /// Returns `true` if the entry advanced. Incomparable or equivocating
    /// timestamps leave the entry unchanged (callers detect writer faults
    /// through [`Timestamp::compare`] before updating contexts).
    pub fn observe(&mut self, data: DataId, ts: Timestamp) -> bool {
        let current = self.timestamp(data);
        match ts.compare(&current) {
            TsOrder::Greater => {
                self.entries.insert(data, ts);
                true
            }
            _ => false,
        }
    }

    /// Pointwise-maximum merge with another context (used by CC reads:
    /// "update each timestamp in `𝒳_i` to max of value in `𝒳_i` and the
    /// corresponding value in `𝒳_writer`", paper Fig. 2).
    pub fn merge(&mut self, other: &Context) {
        debug_assert_eq!(self.group, other.group, "cross-group context merge");
        for (&data, &ts) in &other.entries {
            self.observe(data, ts);
        }
    }

    /// Whether every entry of `other` is dominated by this context
    /// (i.e. this context is at least as recent everywhere).
    pub fn dominates(&self, other: &Context) -> bool {
        other
            .entries
            .iter()
            .all(|(&data, ts)| self.timestamp(data).is_at_least(ts))
    }

    /// Iterates entries in `DataId` order.
    pub fn iter(&self) -> impl Iterator<Item = (DataId, &Timestamp)> + '_ {
        self.entries.iter().map(|(&d, ts)| (d, ts))
    }

    /// Estimated wire size in bytes (for message cost accounting).
    pub fn size_bytes(&self) -> usize {
        4 + 8 + self.entries.len() * (8 + 43)
    }
}

impl FromIterator<(DataId, Timestamp)> for Context {
    /// Builds a context in group 0; use [`Context::new`] + `observe` when
    /// the group matters.
    fn from_iter<I: IntoIterator<Item = (DataId, Timestamp)>>(iter: I) -> Self {
        let mut ctx = Context::new(GroupId(0));
        for (d, ts) in iter {
            ctx.observe(d, ts);
        }
        ctx
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::ClientId;
    use sstore_crypto::sha256::digest;

    fn v(n: u64) -> Timestamp {
        Timestamp::Version(n)
    }

    #[test]
    fn empty_context_returns_genesis() {
        let ctx = Context::new(GroupId(1));
        assert_eq!(ctx.timestamp(DataId(9)), Timestamp::GENESIS);
        assert!(ctx.is_empty());
        assert_eq!(ctx.len(), 0);
    }

    #[test]
    fn observe_keeps_maximum() {
        let mut ctx = Context::new(GroupId(1));
        assert!(ctx.observe(DataId(1), v(5)));
        assert!(!ctx.observe(DataId(1), v(3)), "older values ignored");
        assert!(!ctx.observe(DataId(1), v(5)), "equal values ignored");
        assert!(ctx.observe(DataId(1), v(9)));
        assert_eq!(ctx.timestamp(DataId(1)), v(9));
    }

    #[test]
    fn merge_is_pointwise_max() {
        let mut a = Context::new(GroupId(1));
        a.observe(DataId(1), v(5));
        a.observe(DataId(2), v(1));
        let mut b = Context::new(GroupId(1));
        b.observe(DataId(1), v(3));
        b.observe(DataId(2), v(7));
        b.observe(DataId(3), v(2));
        a.merge(&b);
        assert_eq!(a.timestamp(DataId(1)), v(5));
        assert_eq!(a.timestamp(DataId(2)), v(7));
        assert_eq!(a.timestamp(DataId(3)), v(2));
    }

    #[test]
    fn merge_semilattice_laws() {
        let build = |pairs: &[(u64, u64)]| {
            let mut c = Context::new(GroupId(1));
            for &(d, t) in pairs {
                c.observe(DataId(d), v(t));
            }
            c
        };
        let a = build(&[(1, 5), (2, 1)]);
        let b = build(&[(1, 3), (3, 4)]);
        let c = build(&[(2, 9)]);
        // Idempotent
        let mut aa = a.clone();
        aa.merge(&a);
        assert_eq!(aa, a);
        // Commutative
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba);
        // Associative
        let mut abc1 = a.clone();
        abc1.merge(&b);
        abc1.merge(&c);
        let mut bc = b.clone();
        bc.merge(&c);
        let mut abc2 = a.clone();
        abc2.merge(&bc);
        assert_eq!(abc1, abc2);
    }

    #[test]
    fn dominates_checks_every_entry() {
        let mut a = Context::new(GroupId(1));
        a.observe(DataId(1), v(5));
        a.observe(DataId(2), v(5));
        let mut b = Context::new(GroupId(1));
        b.observe(DataId(1), v(4));
        assert!(a.dominates(&b));
        assert!(!b.dominates(&a));
        b.observe(DataId(3), v(1));
        assert!(!a.dominates(&b), "b has an entry a lacks");
        assert!(
            a.dominates(&Context::new(GroupId(1))),
            "everything dominates empty"
        );
    }

    #[test]
    fn multi_writer_timestamps_merge() {
        let m1 = Timestamp::Multi {
            time: 1,
            writer: ClientId(1),
            digest: digest(b"a"),
        };
        let m2 = Timestamp::Multi {
            time: 2,
            writer: ClientId(0),
            digest: digest(b"b"),
        };
        let mut ctx = Context::new(GroupId(2));
        ctx.observe(DataId(1), m1);
        ctx.observe(DataId(1), m2);
        assert_eq!(ctx.timestamp(DataId(1)), m2);
        // Older multi-writer ts does not regress.
        ctx.observe(DataId(1), m1);
        assert_eq!(ctx.timestamp(DataId(1)), m2);
    }

    #[test]
    fn iter_is_sorted() {
        let mut ctx = Context::new(GroupId(1));
        ctx.observe(DataId(3), v(1));
        ctx.observe(DataId(1), v(1));
        ctx.observe(DataId(2), v(1));
        let ids: Vec<u64> = ctx.iter().map(|(d, _)| d.0).collect();
        assert_eq!(ids, vec![1, 2, 3]);
    }

    #[test]
    fn from_iterator_collects() {
        let ctx: Context = [(DataId(1), v(2)), (DataId(2), v(3))].into_iter().collect();
        assert_eq!(ctx.len(), 2);
        assert_eq!(ctx.timestamp(DataId(2)), v(3));
    }
}
