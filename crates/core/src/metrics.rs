//! Cryptographic-operation accounting (paper §6's "computational overhead").
//!
//! The paper counts signatures, signature verifications and digests per
//! operation; every client and server in the reproduction tallies them here
//! so the benchmark harness can compare measured counts against the
//! formulas (e.g. "context write: one signature and `⌈(n+b+1)/2⌉`
//! verifications").

/// Counts of cryptographic operations performed by one node.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CryptoCounters {
    /// Signatures produced.
    pub signs: u64,
    /// Signature verifications performed.
    pub verifies: u64,
    /// Digest computations (value hashing).
    pub digests: u64,
    /// MAC computations (used by the PBFT-lite baseline).
    pub macs: u64,
}

impl CryptoCounters {
    /// Creates zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one signature.
    pub fn count_sign(&mut self) {
        self.signs += 1;
    }

    /// Records one verification.
    pub fn count_verify(&mut self) {
        self.verifies += 1;
    }

    /// Records one digest computation.
    pub fn count_digest(&mut self) {
        self.digests += 1;
    }

    /// Records one MAC computation.
    pub fn count_mac(&mut self) {
        self.macs += 1;
    }

    /// Element-wise sum.
    pub fn merged(self, other: CryptoCounters) -> CryptoCounters {
        CryptoCounters {
            signs: self.signs + other.signs,
            verifies: self.verifies + other.verifies,
            digests: self.digests + other.digests,
            macs: self.macs + other.macs,
        }
    }

    /// Element-wise difference against an earlier snapshot.
    pub fn since(self, earlier: CryptoCounters) -> CryptoCounters {
        CryptoCounters {
            signs: self.signs - earlier.signs,
            verifies: self.verifies - earlier.verifies,
            digests: self.digests - earlier.digests,
            macs: self.macs - earlier.macs,
        }
    }
}

impl std::fmt::Display for CryptoCounters {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "sign={} verify={} digest={} mac={}",
            self.signs, self.verifies, self.digests, self.macs
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counting_and_merging() {
        let mut a = CryptoCounters::new();
        a.count_sign();
        a.count_verify();
        a.count_verify();
        a.count_digest();
        a.count_mac();
        let b = a;
        let sum = a.merged(b);
        assert_eq!(sum.signs, 2);
        assert_eq!(sum.verifies, 4);
        assert_eq!(sum.digests, 2);
        assert_eq!(sum.macs, 2);
    }

    #[test]
    fn since_snapshot() {
        let mut c = CryptoCounters::new();
        c.count_sign();
        let snap = c;
        c.count_sign();
        c.count_verify();
        let d = c.since(snap);
        assert_eq!(d.signs, 1);
        assert_eq!(d.verifies, 1);
    }

    #[test]
    fn display_is_nonempty() {
        assert!(!format!("{}", CryptoCounters::new()).is_empty());
    }
}
