//! Cryptographic-operation accounting (paper §6's "computational overhead")
//! and wire-byte accounting for the deployment path.
//!
//! The paper counts signatures, signature verifications and digests per
//! operation; every client and server in the reproduction tallies them here
//! so the benchmark harness can compare measured counts against the
//! formulas (e.g. "context write: one signature and `⌈(n+b+1)/2⌉`
//! verifications").
//!
//! [`WireStats`] extends the §6 message-cost accounting from *formula
//! estimates* ([`sstore_simnet::Message::size_bytes`]) to *measured bytes*:
//! the TCP transport records the exact encoded frame length of every
//! message next to the formula figure, per message kind, so cost tables can
//! print both columns and the divergence between them.

use std::collections::BTreeMap;

use sstore_simnet::Message;

use crate::wire::Msg;

/// Counts of cryptographic operations performed by one node.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CryptoCounters {
    /// Signatures produced.
    pub signs: u64,
    /// Signature verifications performed (actual public-key operations).
    pub verifies: u64,
    /// Verifications satisfied by the verification cache: the node needed a
    /// signature check but had already verified the identical
    /// `(writer, payload, signature)` triple, so no public-key operation
    /// ran. Counted separately so the §6 formula tables can report both the
    /// logical demand ([`CryptoCounters::logical_verifies`]) and the actual
    /// cost.
    pub verify_cached: u64,
    /// Digest computations (value hashing).
    pub digests: u64,
    /// MAC computations (used by the PBFT-lite baseline).
    pub macs: u64,
    /// Batched signature-verification operations run (each covers
    /// `batch_items` signatures with ~2 multi-exponentiations). Telemetry
    /// only: the per-signature demand is still accounted under
    /// `verifies`/`verify_cached`, so [`CryptoCounters::logical_verifies`]
    /// is unchanged by batching.
    pub batch_ops: u64,
    /// Signatures covered by batched verification operations.
    pub batch_items: u64,
}

impl CryptoCounters {
    /// Creates zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one signature.
    pub fn count_sign(&mut self) {
        self.signs += 1;
    }

    /// Records one verification.
    pub fn count_verify(&mut self) {
        self.verifies += 1;
    }

    /// Records one verification satisfied from the cache.
    pub fn count_verify_cached(&mut self) {
        self.verify_cached += 1;
    }

    /// Verifications the protocol *demanded*, whether served by a fresh
    /// public-key operation or by the cache. This is the quantity the §6
    /// formulas predict.
    pub fn logical_verifies(&self) -> u64 {
        self.verifies + self.verify_cached
    }

    /// Records one digest computation.
    pub fn count_digest(&mut self) {
        self.digests += 1;
    }

    /// Records one MAC computation.
    pub fn count_mac(&mut self) {
        self.macs += 1;
    }

    /// Records one batched verification covering `items` signatures.
    pub fn count_batch(&mut self, items: u64) {
        self.batch_ops += 1;
        self.batch_items += items;
    }

    /// Element-wise sum.
    pub fn merged(self, other: CryptoCounters) -> CryptoCounters {
        CryptoCounters {
            signs: self.signs + other.signs,
            verifies: self.verifies + other.verifies,
            verify_cached: self.verify_cached + other.verify_cached,
            digests: self.digests + other.digests,
            macs: self.macs + other.macs,
            batch_ops: self.batch_ops + other.batch_ops,
            batch_items: self.batch_items + other.batch_items,
        }
    }

    /// Element-wise difference against an earlier snapshot.
    pub fn since(self, earlier: CryptoCounters) -> CryptoCounters {
        CryptoCounters {
            signs: self.signs - earlier.signs,
            verifies: self.verifies - earlier.verifies,
            verify_cached: self.verify_cached - earlier.verify_cached,
            digests: self.digests - earlier.digests,
            macs: self.macs - earlier.macs,
            batch_ops: self.batch_ops - earlier.batch_ops,
            batch_items: self.batch_items - earlier.batch_items,
        }
    }
}

impl std::fmt::Display for CryptoCounters {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "sign={} verify={} verify-cached={} digest={} mac={} batch={}x{}",
            self.signs,
            self.verifies,
            self.verify_cached,
            self.digests,
            self.macs,
            self.batch_ops,
            self.batch_items
        )
    }
}

/// Byte accounting for one message kind.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WireKindStats {
    /// Messages recorded.
    pub count: u64,
    /// Sum of the §6 formula estimates (`size_bytes`).
    pub formula_bytes: u64,
    /// Sum of actual encoded frame lengths.
    pub encoded_bytes: u64,
    /// Smallest encoded frame seen.
    pub min_frame: u64,
    /// Largest encoded frame seen.
    pub max_frame: u64,
}

impl WireKindStats {
    fn record(&mut self, formula: u64, encoded: u64) {
        if self.count == 0 {
            self.min_frame = encoded;
            self.max_frame = encoded;
        } else {
            self.min_frame = self.min_frame.min(encoded);
            self.max_frame = self.max_frame.max(encoded);
        }
        self.count += 1;
        self.formula_bytes += formula;
        self.encoded_bytes += encoded;
    }

    /// Mean encoded frame length (0 when nothing was recorded).
    pub fn mean_frame(&self) -> u64 {
        self.encoded_bytes.checked_div(self.count).unwrap_or(0)
    }
}

/// Per-[`Msg::kind`] measured-vs-formula byte accounting.
///
/// Fed by the socket transport (`sstore-net`) with the exact number of
/// bytes each frame put on the wire. Keyed by the same `kind()` labels the
/// simulator's [`sstore_simnet::NetStats`] uses, so the two tables line up.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WireStats {
    per_kind: BTreeMap<&'static str, WireKindStats>,
}

impl WireStats {
    /// Creates empty accounting.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one message and the encoded frame length it produced.
    pub fn record(&mut self, msg: &Msg, encoded_len: usize) {
        self.per_kind
            .entry(msg.kind())
            .or_default()
            .record(msg.size_bytes() as u64, encoded_len as u64);
    }

    /// Records a message by encoding it (for callers that do not already
    /// hold the encoded bytes).
    pub fn record_encoding(&mut self, msg: &Msg) {
        self.record(msg, msg.encoded_size());
    }

    /// Stats for one message kind, if any were recorded.
    pub fn kind(&self, kind: &str) -> Option<&WireKindStats> {
        self.per_kind.get(kind)
    }

    /// Iterates `(kind, stats)` in kind order.
    pub fn kinds(&self) -> impl Iterator<Item = (&'static str, &WireKindStats)> + '_ {
        self.per_kind.iter().map(|(&k, v)| (k, v))
    }

    /// Total messages recorded.
    pub fn total_count(&self) -> u64 {
        self.per_kind.values().map(|s| s.count).sum()
    }

    /// Total encoded bytes recorded.
    pub fn total_encoded_bytes(&self) -> u64 {
        self.per_kind.values().map(|s| s.encoded_bytes).sum()
    }

    /// Folds another accounting into this one.
    pub fn merge(&mut self, other: &WireStats) {
        for (kind, s) in other.kinds() {
            let slot = self.per_kind.entry(kind).or_default();
            if slot.count == 0 {
                *slot = *s;
            } else if s.count > 0 {
                slot.count += s.count;
                slot.formula_bytes += s.formula_bytes;
                slot.encoded_bytes += s.encoded_bytes;
                slot.min_frame = slot.min_frame.min(s.min_frame);
                slot.max_frame = slot.max_frame.max(s.max_frame);
            }
        }
    }
}

impl std::fmt::Display for WireStats {
    /// A fixed-width table: kind, count, formula vs measured bytes,
    /// min/mean/max frame.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "{:<16} {:>8} {:>12} {:>12} {:>8} {:>8} {:>8}",
            "kind", "count", "formula-B", "measured-B", "min", "mean", "max"
        )?;
        for (kind, s) in self.kinds() {
            writeln!(
                f,
                "{:<16} {:>8} {:>12} {:>12} {:>8} {:>8} {:>8}",
                kind,
                s.count,
                s.formula_bytes,
                s.encoded_bytes,
                s.min_frame,
                s.mean_frame(),
                s.max_frame
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counting_and_merging() {
        let mut a = CryptoCounters::new();
        a.count_sign();
        a.count_verify();
        a.count_verify();
        a.count_verify_cached();
        a.count_digest();
        a.count_mac();
        let b = a;
        let sum = a.merged(b);
        assert_eq!(sum.signs, 2);
        assert_eq!(sum.verifies, 4);
        assert_eq!(sum.verify_cached, 2);
        assert_eq!(sum.logical_verifies(), 6);
        assert_eq!(sum.digests, 2);
        assert_eq!(sum.macs, 2);
    }

    #[test]
    fn cached_verifies_tracked_separately() {
        let mut c = CryptoCounters::new();
        c.count_verify();
        let snap = c;
        c.count_verify_cached();
        c.count_verify_cached();
        let d = c.since(snap);
        assert_eq!(d.verifies, 0);
        assert_eq!(d.verify_cached, 2);
        assert_eq!(d.logical_verifies(), 2);
        assert!(format!("{c}").contains("verify-cached=2"));
    }

    #[test]
    fn since_snapshot() {
        let mut c = CryptoCounters::new();
        c.count_sign();
        let snap = c;
        c.count_sign();
        c.count_verify();
        let d = c.since(snap);
        assert_eq!(d.signs, 1);
        assert_eq!(d.verifies, 1);
    }

    #[test]
    fn display_is_nonempty() {
        assert!(!format!("{}", CryptoCounters::new()).is_empty());
    }

    use crate::types::{ClientId, GroupId, OpId};

    fn ack() -> Msg {
        Msg::CtxWriteAck { op: OpId(1) }
    }

    fn req() -> Msg {
        Msg::CtxReadReq {
            op: OpId(2),
            client: ClientId(1),
            group: GroupId(1),
        }
    }

    #[test]
    fn wire_stats_records_both_columns() {
        let mut w = WireStats::new();
        w.record_encoding(&ack());
        w.record_encoding(&ack());
        w.record_encoding(&req());
        let acks = w.kind("ctx-write-ack").unwrap();
        assert_eq!(acks.count, 2);
        assert_eq!(acks.encoded_bytes, 2 * ack().encoded_size() as u64);
        assert_eq!(acks.formula_bytes, 2 * ack().size_bytes() as u64);
        assert_eq!(acks.min_frame, acks.max_frame);
        assert_eq!(acks.mean_frame(), ack().encoded_size() as u64);
        assert_eq!(w.total_count(), 3);
        assert!(w.total_encoded_bytes() > 0);
    }

    #[test]
    fn wire_stats_merge_accumulates() {
        let mut a = WireStats::new();
        a.record(&ack(), 10);
        let mut b = WireStats::new();
        b.record(&ack(), 30);
        b.record(&req(), 20);
        a.merge(&b);
        let acks = a.kind("ctx-write-ack").unwrap();
        assert_eq!(acks.count, 2);
        assert_eq!(acks.encoded_bytes, 40);
        assert_eq!(acks.min_frame, 10);
        assert_eq!(acks.max_frame, 30);
        assert_eq!(a.total_count(), 3);
    }

    #[test]
    fn wire_stats_display_lists_kinds() {
        let mut w = WireStats::new();
        w.record_encoding(&req());
        let table = format!("{w}");
        assert!(table.contains("ctx-read-req"));
        assert!(table.contains("measured-B"));
    }
}
