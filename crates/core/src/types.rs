//! Core identifiers, timestamps and stored-item types (paper §4.1).

use sstore_crypto::sha256::Digest;

/// Identifies a secure-store server `S_i`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ServerId(pub u16);

impl std::fmt::Display for ServerId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "S{}", self.0)
    }
}

/// Identifies a client `C_i`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ClientId(pub u16);

impl std::fmt::Display for ClientId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "C{}", self.0)
    }
}

/// Unique identifier of a data item, `uid(x_i)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct DataId(pub u64);

impl std::fmt::Display for DataId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "x{}", self.0)
    }
}

/// Identifies a *related group* of data items (paper §4: consistency is
/// maintained within a group, not across groups).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct GroupId(pub u32);

impl std::fmt::Display for GroupId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "G{}", self.0)
    }
}

/// Correlates a client request with server responses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct OpId(pub u64);

/// Consistency level fixed for a data group at creation time (paper §4.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Consistency {
    /// Monotonic Read Consistency: a client never reads a value older than
    /// one it has already read for the same item.
    Mrc,
    /// Causal Consistency: additionally, no read returns a causally
    /// overwritten value across related items.
    Cc,
}

impl std::fmt::Display for Consistency {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Consistency::Mrc => f.write_str("MRC"),
            Consistency::Cc => f.write_str("CC"),
        }
    }
}

/// A write timestamp (paper §4.1 and §5.3).
///
/// Single-writer data uses a plain version number. Multi-writer data uses
/// the 3-tuple `(time, uid(C), d(v))`: ordered by time, ties broken by
/// writer id; equal `(time, writer)` with different digests expose a faulty
/// writer (two values under one timestamp).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Timestamp {
    /// Version number for non-shared / single-writer data.
    Version(u64),
    /// `(time, writer, digest)` for multi-writer data.
    Multi {
        /// Writer-local clock value.
        time: u64,
        /// The writing client.
        writer: ClientId,
        /// Digest of the written value, binding the timestamp to it.
        digest: Digest,
    },
}

/// Outcome of comparing two timestamps.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TsOrder {
    /// Left is older.
    Less,
    /// Identical timestamps (same digest where applicable).
    Equal,
    /// Left is newer.
    Greater,
    /// Same `(time, writer)` but different digests: the writer signed two
    /// values under one timestamp and is provably faulty (paper §5.3).
    FaultyWriter,
    /// A version timestamp compared against a multi-writer one; the two
    /// families never mix within a data group.
    Incomparable,
}

impl Timestamp {
    /// The zero timestamp that precedes every write of the same family.
    pub const GENESIS: Timestamp = Timestamp::Version(0);

    /// The writer-local time component.
    pub fn time(&self) -> u64 {
        match *self {
            Timestamp::Version(v) => v,
            Timestamp::Multi { time, .. } => time,
        }
    }

    /// Compares two timestamps per the paper's order.
    ///
    /// [`Timestamp::GENESIS`] (version 0) is treated as older than any
    /// multi-writer timestamp, since every context starts there.
    pub fn compare(&self, other: &Timestamp) -> TsOrder {
        use Timestamp::*;
        match (self, other) {
            (Version(a), Version(b)) => match a.cmp(b) {
                std::cmp::Ordering::Less => TsOrder::Less,
                std::cmp::Ordering::Equal => TsOrder::Equal,
                std::cmp::Ordering::Greater => TsOrder::Greater,
            },
            (
                Multi {
                    time: t1,
                    writer: w1,
                    digest: d1,
                },
                Multi {
                    time: t2,
                    writer: w2,
                    digest: d2,
                },
            ) => match (t1, w1).cmp(&(t2, w2)) {
                std::cmp::Ordering::Less => TsOrder::Less,
                std::cmp::Ordering::Greater => TsOrder::Greater,
                std::cmp::Ordering::Equal => {
                    if d1 == d2 {
                        TsOrder::Equal
                    } else {
                        TsOrder::FaultyWriter
                    }
                }
            },
            (Version(0), Multi { .. }) => TsOrder::Less,
            (Multi { .. }, Version(0)) => TsOrder::Greater,
            _ => TsOrder::Incomparable,
        }
    }

    /// Whether `self` is strictly newer than `other`.
    pub fn is_newer_than(&self, other: &Timestamp) -> bool {
        self.compare(other) == TsOrder::Greater
    }

    /// Whether `self` is at least as new as `other`.
    pub fn is_at_least(&self, other: &Timestamp) -> bool {
        matches!(self.compare(other), TsOrder::Greater | TsOrder::Equal)
    }
}

impl std::fmt::Display for Timestamp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Timestamp::Version(v) => write!(f, "v{v}"),
            Timestamp::Multi { time, writer, .. } => write!(f, "t{time}@{writer}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sstore_crypto::sha256::digest;

    fn multi(time: u64, writer: u16, val: &[u8]) -> Timestamp {
        Timestamp::Multi {
            time,
            writer: ClientId(writer),
            digest: digest(val),
        }
    }

    #[test]
    fn version_ordering() {
        assert_eq!(
            Timestamp::Version(1).compare(&Timestamp::Version(2)),
            TsOrder::Less
        );
        assert_eq!(
            Timestamp::Version(2).compare(&Timestamp::Version(2)),
            TsOrder::Equal
        );
        assert!(Timestamp::Version(3).is_newer_than(&Timestamp::Version(2)));
    }

    #[test]
    fn multi_ordering_time_then_writer() {
        assert_eq!(multi(1, 5, b"a").compare(&multi(2, 1, b"a")), TsOrder::Less);
        assert_eq!(multi(2, 1, b"a").compare(&multi(2, 2, b"a")), TsOrder::Less);
        assert_eq!(
            multi(2, 2, b"a").compare(&multi(2, 1, b"b")),
            TsOrder::Greater
        );
    }

    #[test]
    fn equal_time_writer_same_digest_is_equal() {
        assert_eq!(
            multi(3, 1, b"v").compare(&multi(3, 1, b"v")),
            TsOrder::Equal
        );
    }

    #[test]
    fn equivocation_detected() {
        assert_eq!(
            multi(3, 1, b"v1").compare(&multi(3, 1, b"v2")),
            TsOrder::FaultyWriter
        );
    }

    #[test]
    fn genesis_precedes_multi() {
        assert_eq!(
            Timestamp::GENESIS.compare(&multi(1, 1, b"v")),
            TsOrder::Less
        );
        assert_eq!(
            multi(1, 1, b"v").compare(&Timestamp::GENESIS),
            TsOrder::Greater
        );
        assert!(multi(1, 1, b"v").is_at_least(&Timestamp::GENESIS));
    }

    #[test]
    fn nonzero_version_vs_multi_incomparable() {
        assert_eq!(
            Timestamp::Version(5).compare(&multi(1, 1, b"v")),
            TsOrder::Incomparable
        );
    }

    #[test]
    fn display_forms() {
        assert_eq!(format!("{}", ServerId(3)), "S3");
        assert_eq!(format!("{}", ClientId(2)), "C2");
        assert_eq!(format!("{}", DataId(9)), "x9");
        assert_eq!(format!("{}", GroupId(1)), "G1");
        assert_eq!(format!("{}", Timestamp::Version(4)), "v4");
        assert_eq!(format!("{}", Consistency::Cc), "CC");
    }
}
