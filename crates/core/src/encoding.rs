//! Canonical byte encoding for signed protocol payloads.
//!
//! Every signature in the secure store is computed over a *canonical*
//! encoding of the signed fields, so that a client and every server derive
//! byte-identical input for signing and verification. The encoding is
//! injective: all variable-length fields are length-prefixed and all
//! composite fields are tagged.

use sstore_crypto::sha256::Digest;

use crate::context::Context;
use crate::types::{ClientId, DataId, GroupId, Timestamp};

/// Incremental canonical encoder.
///
/// ```
/// use sstore_core::encoding::Enc;
///
/// let bytes = Enc::new().u64(7).bytes(b"payload").finish();
/// assert_eq!(bytes.len(), 8 + 8 + 7);
/// ```
#[derive(Debug, Default)]
pub struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    /// Creates an empty encoder.
    pub fn new() -> Self {
        Enc::default()
    }

    /// Appends a raw byte.
    pub fn u8(mut self, v: u8) -> Self {
        self.buf.push(v);
        self
    }

    /// Appends a big-endian `u16`.
    pub fn u16(mut self, v: u16) -> Self {
        self.buf.extend_from_slice(&v.to_be_bytes());
        self
    }

    /// Appends a big-endian `u32`.
    pub fn u32(mut self, v: u32) -> Self {
        self.buf.extend_from_slice(&v.to_be_bytes());
        self
    }

    /// Appends a big-endian `u64`.
    pub fn u64(mut self, v: u64) -> Self {
        self.buf.extend_from_slice(&v.to_be_bytes());
        self
    }

    /// Appends a length-prefixed byte string.
    pub fn bytes(mut self, v: &[u8]) -> Self {
        self.buf.extend_from_slice(&(v.len() as u64).to_be_bytes());
        self.buf.extend_from_slice(v);
        self
    }

    /// Appends a fixed-size digest (no length prefix needed).
    pub fn digest(mut self, d: &Digest) -> Self {
        self.buf.extend_from_slice(d.as_bytes());
        self
    }

    /// Appends a timestamp (tagged by family).
    pub fn timestamp(self, ts: &Timestamp) -> Self {
        match ts {
            Timestamp::Version(v) => self.u8(1).u64(*v),
            Timestamp::Multi {
                time,
                writer,
                digest,
            } => self.u8(2).u64(*time).u16(writer.0).digest(digest),
        }
    }

    /// Appends a whole context: group id, entry count, sorted entries.
    pub fn context(mut self, ctx: &Context) -> Self {
        self = self.u32(ctx.group().0).u64(ctx.len() as u64);
        for (data, ts) in ctx.iter() {
            self = self.u64(data.0).timestamp(ts);
        }
        self
    }

    /// Returns the encoded bytes.
    pub fn finish(self) -> Vec<u8> {
        self.buf
    }
}

/// Canonical signing payload for a data write (paper Fig. 2).
///
/// Covers `uid(x)`, the group, the timestamp, the writer, the value digest
/// and — for CC data — the writer's context `𝒳_writer`. Signing the digest
/// of the value rather than the value itself lets third parties verify
/// *metadata* (e.g. during context reconstruction) without the value.
pub fn write_payload(
    data: DataId,
    group: GroupId,
    ts: &Timestamp,
    writer: ClientId,
    value_digest: &Digest,
    writer_ctx: Option<&Context>,
) -> Vec<u8> {
    let mut e = Enc::new()
        .u8(b'W')
        .u64(data.0)
        .u32(group.0)
        .timestamp(ts)
        .u16(writer.0)
        .digest(value_digest);
    match writer_ctx {
        Some(ctx) => e = e.u8(1).context(ctx),
        None => e = e.u8(0),
    }
    e.finish()
}

/// Canonical signing payload for a stored context (paper Fig. 1).
pub fn context_payload(client: ClientId, ctx: &Context, session: u64) -> Vec<u8> {
    Enc::new()
        .u8(b'X')
        .u16(client.0)
        .u64(session)
        .context(ctx)
        .finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sstore_crypto::sha256::digest;

    fn sample_ctx() -> Context {
        let mut ctx = Context::new(GroupId(1));
        ctx.observe(DataId(1), Timestamp::Version(3));
        ctx.observe(DataId(2), Timestamp::Version(5));
        ctx
    }

    #[test]
    fn primitive_encoding_shapes() {
        assert_eq!(Enc::new().u8(7).finish(), vec![7]);
        assert_eq!(Enc::new().u16(1).finish(), vec![0, 1]);
        assert_eq!(Enc::new().u64(1).finish(), vec![0, 0, 0, 0, 0, 0, 0, 1]);
        let b = Enc::new().bytes(b"ab").finish();
        assert_eq!(&b[..8], &2u64.to_be_bytes());
        assert_eq!(&b[8..], b"ab");
    }

    #[test]
    fn timestamps_are_tagged() {
        let v = Enc::new().timestamp(&Timestamp::Version(1)).finish();
        let m = Enc::new()
            .timestamp(&Timestamp::Multi {
                time: 1,
                writer: ClientId(0),
                digest: digest(b"v"),
            })
            .finish();
        assert_ne!(v[0], m[0]);
    }

    #[test]
    fn write_payload_distinguishes_fields() {
        let d = digest(b"value");
        let base = write_payload(
            DataId(1),
            GroupId(1),
            &Timestamp::Version(1),
            ClientId(1),
            &d,
            None,
        );
        let other_item = write_payload(
            DataId(2),
            GroupId(1),
            &Timestamp::Version(1),
            ClientId(1),
            &d,
            None,
        );
        let other_ts = write_payload(
            DataId(1),
            GroupId(1),
            &Timestamp::Version(2),
            ClientId(1),
            &d,
            None,
        );
        let with_ctx = write_payload(
            DataId(1),
            GroupId(1),
            &Timestamp::Version(1),
            ClientId(1),
            &d,
            Some(&sample_ctx()),
        );
        assert_ne!(base, other_item);
        assert_ne!(base, other_ts);
        assert_ne!(base, with_ctx);
    }

    #[test]
    fn context_payload_depends_on_session_and_entries() {
        let ctx = sample_ctx();
        let a = context_payload(ClientId(1), &ctx, 1);
        let b = context_payload(ClientId(1), &ctx, 2);
        assert_ne!(a, b);
        let mut ctx2 = ctx.clone();
        ctx2.observe(DataId(1), Timestamp::Version(4));
        assert_ne!(a, context_payload(ClientId(1), &ctx2, 1));
    }

    #[test]
    fn context_encoding_is_order_independent() {
        // Contexts iterate sorted by DataId, so insertion order must not
        // change the canonical bytes.
        let mut a = Context::new(GroupId(1));
        a.observe(DataId(2), Timestamp::Version(5));
        a.observe(DataId(1), Timestamp::Version(3));
        let b = sample_ctx();
        assert_eq!(
            Enc::new().context(&a).finish(),
            Enc::new().context(&b).finish()
        );
    }
}
