//! The static system directory: who the servers are, how many can be
//! faulty, and everyone's well-known public keys (paper §4 assumes keys
//! are well known; key management is out of scope).

use std::collections::HashMap;
use std::sync::Arc;

use rand::rngs::StdRng;
use rand::SeedableRng;

use sstore_crypto::schnorr::{SchnorrParams, SigningKey, VerifyingKey};

use crate::quorum;
use crate::types::{ClientId, ServerId};

/// Immutable directory of the deployment, shared by every node.
#[derive(Debug, Clone)]
pub struct Directory {
    n: usize,
    b: usize,
    client_keys: HashMap<ClientId, VerifyingKey>,
}

impl Directory {
    /// Builds a directory for `n` servers tolerating `b` faults, with the
    /// given client public keys.
    ///
    /// # Panics
    ///
    /// Panics if `(n, b)` violates the protocol's availability constraint
    /// `n ≥ 3b+1` (see [`quorum::validate`]).
    pub fn new(n: usize, b: usize, client_keys: HashMap<ClientId, VerifyingKey>) -> Arc<Self> {
        quorum::validate(n, b).expect("invalid (n, b) configuration");
        Arc::new(Directory { n, b, client_keys })
    }

    /// Total number of servers.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Assumed bound on faulty servers.
    pub fn b(&self) -> usize {
        self.b
    }

    /// All server ids, `S_0 … S_{n-1}`.
    pub fn servers(&self) -> impl Iterator<Item = ServerId> + '_ {
        (0..self.n as u16).map(ServerId)
    }

    /// Public key of `client`, if registered.
    pub fn client_key(&self, client: ClientId) -> Option<&VerifyingKey> {
        self.client_keys.get(&client)
    }

    /// Whether `client` is authorized (has a registered key). Stands in for
    /// the paper's assumed external authorization service.
    pub fn is_authorized(&self, client: ClientId) -> bool {
        self.client_keys.contains_key(&client)
    }
}

/// Deterministically generates a keyring of `count` clients on the toy
/// Schnorr group, returning both the signing keys and a directory-ready
/// public-key map. Fixture helper used across tests, benches and examples.
pub fn generate_client_keys(
    count: u16,
    seed: u64,
) -> (
    HashMap<ClientId, SigningKey>,
    HashMap<ClientId, VerifyingKey>,
) {
    let params = SchnorrParams::toy();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut signing = HashMap::new();
    let mut verifying = HashMap::new();
    for i in 0..count {
        let key = SigningKey::generate(&params, &mut rng);
        verifying.insert(ClientId(i), key.verifying_key().clone());
        signing.insert(ClientId(i), key);
    }
    (signing, verifying)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn directory_basics() {
        let (_, pubs) = generate_client_keys(3, 1);
        let dir = Directory::new(7, 2, pubs);
        assert_eq!(dir.n(), 7);
        assert_eq!(dir.b(), 2);
        assert_eq!(dir.servers().count(), 7);
        assert!(dir.is_authorized(ClientId(0)));
        assert!(!dir.is_authorized(ClientId(9)));
        assert!(dir.client_key(ClientId(2)).is_some());
    }

    #[test]
    #[should_panic(expected = "invalid (n, b)")]
    fn rejects_unavailable_config() {
        let (_, pubs) = generate_client_keys(1, 1);
        Directory::new(3, 1, pubs);
    }

    #[test]
    fn keygen_is_deterministic() {
        let (_, a) = generate_client_keys(2, 9);
        let (_, b) = generate_client_keys(2, 9);
        assert_eq!(a.get(&ClientId(0)), b.get(&ClientId(0)));
        let (_, c) = generate_client_keys(2, 10);
        assert_ne!(a.get(&ClientId(0)), c.get(&ClientId(0)));
    }

    #[test]
    fn signing_keys_match_directory_keys() {
        let (signing, pubs) = generate_client_keys(2, 3);
        for (id, sk) in &signing {
            assert_eq!(sk.verifying_key(), pubs.get(id).unwrap());
        }
    }
}
