//! Deterministic chaos campaigns: seeded fault schedules, safety/liveness
//! oracles, and failing-seed shrinking.
//!
//! A *campaign* draws a [`Schedule`] from a seed — an adversary assignment
//! over the [`Behavior`] menu, timed network fault windows (partitions,
//! loss phases, latency spikes, server crash/restart), and a randomized
//! per-client workload (single- and multi-writer MRC/CC operations with
//! disconnect/reconnect and post-crash context reconstruction) — runs it on
//! the deterministic simulator, and checks two oracles:
//!
//! - **Safety** (must hold regardless of faults, given at most `b` faulty
//!   servers): every successful read returns a value some honest client
//!   actually wrote to that item; per client and item, successful
//!   operations never go backwards in timestamp order (monotonic reads,
//!   paper §4); no run reports a faulty writer when every writer is
//!   honest.
//! - **Liveness** (holds once the network has healed and at most `b`
//!   servers are faulty): every operation issued after the client's
//!   `calm_from` index completes successfully, and all clients go idle
//!   before the schedule deadline.
//!
//! Failing seeds are shrunk by greedy delta debugging ([`shrink`]) into a
//! minimal schedule that still exhibits the same failure class, and every
//! schedule serializes to a line-based replay file ([`Schedule::to_text`] /
//! [`Schedule::from_text`]) that re-runs byte-for-byte deterministically —
//! same verdict, same [`NetStats`].
//!
//! The generator is deliberately conservative so that the oracles are
//! *sound*: fault windows all close before a settle gap, session churn
//! (disconnect/reconnect, crash/recover) happens only in the calm phase,
//! calm reads are preceded by a calm write of the same item, each item is
//! used with a single consistency level and a single writer mode, and
//! clients that crash-recover issue no multi-writer turbulence writes
//! (crash amnesia could otherwise re-issue a multi-writer timestamp with a
//! different digest, which a reader would report as writer equivocation).
//!
//! Replay-file grammar (one token-separated directive per line, `#`
//! comments allowed):
//!
//! ```text
//! sstore-chaos-schedule v2
//! seed <u64>
//! n <usize>          b <usize>
//! deadline-ms <u64>
//! gossip <0|1>       gossip-period-ms <u64>
//! behaviors <name>*n          # honest|crash|stale|corrupt-value|
//!                             # corrupt-sig|equivocate|premature
//! fault partition <from-ms> <to-ms> <node-a> <node-z>
//! fault drop <from-ms> <to-ms> <p-mille>
//! fault latency <from-ms> <to-ms>
//! fault restart <from-ms> <to-ms> <server> <wipe|recover>
//! client calm-from <op-index>
//! step connect <recover 0|1> | step disconnect | step crash
//! step wait <ms>
//! step write <data> <k> <cc 0|1> | step read <data> <cc 0|1>
//! step mwwrite <data> <k>        | step mwread <data>
//! end
//! ```
//!
//! Version history: `v1` (PR 4) had no restart mode — those windows kept
//! the server's state across the outage, so `v1` files still parse and a
//! bare `fault restart` defaults to `recover` (the closest semantics:
//! state survives via stable storage, now with a torn tail injected and
//! repaired on the way back). `to_text` always emits `v2`.

use std::collections::{HashMap, HashSet};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use sstore_simnet::{LatencyModel, LinkState, NetEvent, NetStats, NodeId, SimConfig, SimTime};

use crate::client::{ClientOp, Outcome};
use crate::config::ServerConfig;
use crate::faults::Behavior;
use crate::quorum;
use crate::server::storage::{FsyncPolicy, StorageConfig};
use crate::sim::{Cluster, ClusterBuilder, RestartMode, Step};
use crate::types::{Consistency, DataId, GroupId, Timestamp, TsOrder};

/// All campaign traffic uses one related-data group.
const GROUP: GroupId = GroupId(1);

/// End of the turbulence phase: every generated fault window closes by
/// this simulated time.
const TURBULENCE_END_MS: u64 = 9_000;

/// Settle gap between the last fault window closing and the calm phase.
const SETTLE_MS: u64 = 3_000;

/// The Byzantine behaviours a standard campaign draws from.
const MENU: &[Behavior] = &[
    Behavior::Crash,
    Behavior::Stale,
    Behavior::CorruptValue,
    Behavior::CorruptSig,
    Behavior::Equivocate,
    Behavior::Premature,
];

/// Campaign parameters from which per-seed [`Schedule`]s are drawn.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChaosConfig {
    /// Number of servers.
    pub n: usize,
    /// Fault budget the protocol is configured for.
    pub b: usize,
    /// Number of servers actually made faulty (`b` for a standard
    /// campaign; `b + 1` to deliberately exceed the budget).
    pub faulty: usize,
    /// Number of scripted clients.
    pub clients: usize,
    /// Simulated-time budget per run.
    pub deadline_ms: u64,
    /// Force every faulty server to [`Behavior::Stale`], skip network
    /// fault windows, and disable gossip — the over-budget safety probe.
    /// (Stale servers gossip truthfully, so anti-entropy would repair the
    /// eclipse this probe exists to demonstrate.)
    pub force_stale: bool,
    /// Mode applied to every generated restart window. The default is
    /// [`RestartMode::Recover`]: with fsync-per-record stores, a restarted
    /// server loses no acknowledged write, so both oracles must still
    /// hold. [`RestartMode::Wipe`] models losing the disk with the
    /// process — amnesia that can legitimately cost liveness (the wiped
    /// server may have held the only fresh copies a later quorum needs),
    /// so it is opt-in rather than drawn randomly.
    pub restart_mode: RestartMode,
    /// Guarantee at least one restart window per schedule (the CI
    /// recover-restart batch uses this so every seed actually exercises
    /// crash-consistent recovery). No-op under `force_stale`, which
    /// generates no fault windows at all.
    pub force_restart: bool,
}

impl ChaosConfig {
    /// Standard campaign: exactly `b` faulty servers drawn from the full
    /// behaviour menu plus network fault windows. Both oracles must hold.
    pub fn standard(n: usize, b: usize) -> Self {
        ChaosConfig {
            n,
            b,
            faulty: b,
            clients: 3,
            deadline_ms: 120_000,
            force_stale: false,
            restart_mode: RestartMode::Recover,
            force_restart: false,
        }
    }

    /// Over-budget campaign: `b + 1` stale servers and a workload shaped
    /// to probe crash-recovery reconstruction. The safety oracle is
    /// expected to flag some seeds — that the harness *can* catch real
    /// violations is itself an acceptance criterion.
    pub fn over_budget(n: usize, b: usize) -> Self {
        ChaosConfig {
            n,
            b,
            faulty: quorum::data_quorum(b),
            clients: 3,
            deadline_ms: 120_000,
            force_stale: true,
            restart_mode: RestartMode::Recover,
            force_restart: false,
        }
    }
}

/// A timed network fault window. All times are absolute simulated
/// milliseconds; windows are generated to close before the calm phase.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultEvent {
    /// Cut both link directions between two simulator nodes, then restore
    /// them. Nodes `0..n` are servers; `n..n+clients` are clients.
    Partition {
        /// Window start (ms).
        from_ms: u64,
        /// Window end (ms).
        to_ms: u64,
        /// One endpoint (simulator node index).
        a: usize,
        /// The other endpoint (simulator node index).
        z: usize,
    },
    /// Raise the global message-drop probability, then restore it to 0.
    Drop {
        /// Window start (ms).
        from_ms: u64,
        /// Window end (ms).
        to_ms: u64,
        /// Drop probability in per-mille (0..=1000) — integral so replay
        /// files round-trip exactly.
        p_mille: u32,
    },
    /// Swap the latency model to a heavy-tailed WAN, then back to LAN.
    LatencySpike {
        /// Window start (ms).
        from_ms: u64,
        /// Window end (ms).
        to_ms: u64,
    },
    /// Take a server down (process crash), then restart it — either
    /// recovering from its store or wiped clean, per `mode`.
    Restart {
        /// Window start (ms).
        from_ms: u64,
        /// Window end (ms).
        to_ms: u64,
        /// Server index in `0..n`.
        server: usize,
        /// What the server comes back with.
        mode: RestartMode,
    },
}

/// One step of a generated client workload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WorkloadStep {
    /// Start a session; `recover` reconstructs the context from a scan.
    Connect {
        /// `true` after a crash.
        recover: bool,
    },
    /// Store the context and end the session.
    Disconnect,
    /// Lose all volatile state (context included).
    Crash,
    /// Idle for the given simulated duration.
    Wait {
        /// Pause length.
        ms: u64,
    },
    /// Single-writer write of generation `k` to `data`.
    Write {
        /// Item id.
        data: u64,
        /// Value generation (embedded in the stored bytes).
        k: u64,
        /// `true` for causal consistency, `false` for MRC.
        cc: bool,
    },
    /// Single-writer read of `data`.
    Read {
        /// Item id.
        data: u64,
        /// `true` for causal consistency, `false` for MRC.
        cc: bool,
    },
    /// Multi-writer write of generation `k` to `data`.
    MwWrite {
        /// Item id.
        data: u64,
        /// Value generation.
        k: u64,
    },
    /// Multi-writer read of `data` (always MRC).
    MwRead {
        /// Item id.
        data: u64,
    },
}

impl WorkloadStep {
    /// Whether the step completes with an [`crate::client::OpResult`]
    /// (`Wait` and `Crash` do not).
    pub fn produces_result(&self) -> bool {
        !matches!(self, WorkloadStep::Wait { .. } | WorkloadStep::Crash)
    }
}

/// One client's scripted workload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClientScript {
    /// Index (into the client's result-producing steps) of the first
    /// operation issued after the network healed: the liveness oracle
    /// requires this and every later operation to succeed.
    pub calm_from: usize,
    /// The steps, executed sequentially.
    pub steps: Vec<WorkloadStep>,
}

/// A fully-determined chaos run: everything needed to reproduce it
/// byte-for-byte.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schedule {
    /// Seed for the simulator and all in-run randomness.
    pub seed: u64,
    /// Number of servers.
    pub n: usize,
    /// Configured fault budget.
    pub b: usize,
    /// Simulated-time budget.
    pub deadline_ms: u64,
    /// Whether servers run gossip dissemination.
    pub gossip: bool,
    /// Gossip period in milliseconds.
    pub gossip_period_ms: u64,
    /// Per-server behaviour assignment (length `n`).
    pub behaviors: Vec<Behavior>,
    /// Timed network fault windows.
    pub faults: Vec<FaultEvent>,
    /// Per-client workloads.
    pub clients: Vec<ClientScript>,
}

/// Which oracle a failing run violated first (safety dominates).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailureClass {
    /// The safety oracle found a violation.
    Safety,
    /// Only the liveness oracle found a violation.
    Liveness,
}

/// Outcome of one chaos run.
#[derive(Debug, Clone, PartialEq)]
pub struct Verdict {
    /// The schedule's seed (for reporting).
    pub seed: u64,
    /// Whether every client went idle before the deadline.
    pub idle: bool,
    /// Safety-oracle violations (empty = safe).
    pub safety: Vec<String>,
    /// Liveness-oracle violations (empty = live).
    pub liveness: Vec<String>,
    /// Operations that completed.
    pub ops_total: usize,
    /// Operations that completed successfully.
    pub ops_ok: usize,
    /// Network statistics at the end of the run — replaying the same
    /// schedule must reproduce these exactly.
    pub stats: NetStats,
}

impl Verdict {
    /// Whether the safety oracle held.
    pub fn safety_ok(&self) -> bool {
        self.safety.is_empty()
    }

    /// Whether the liveness oracle held.
    pub fn liveness_ok(&self) -> bool {
        self.liveness.is_empty()
    }

    /// Whether both oracles held.
    pub fn passed(&self) -> bool {
        self.safety_ok() && self.liveness_ok()
    }

    /// The failure class, if any (safety dominates liveness).
    pub fn class(&self) -> Option<FailureClass> {
        if !self.safety.is_empty() {
            Some(FailureClass::Safety)
        } else if !self.liveness.is_empty() {
            Some(FailureClass::Liveness)
        } else {
            None
        }
    }
}

/// The canonical value a chaos client writes: parseable so the safety
/// oracle can check provenance of everything read back.
pub fn chaos_value(client: usize, data: u64, k: u64) -> Vec<u8> {
    format!("chaos:c{client}:d{data}:k{k}").into_bytes()
}

/// Inverse of [`chaos_value`]: `(client, data, k)` if the bytes parse.
pub fn parse_chaos_value(bytes: &[u8]) -> Option<(usize, u64, u64)> {
    let s = std::str::from_utf8(bytes).ok()?;
    let rest = s.strip_prefix("chaos:c")?;
    let (c, rest) = rest.split_once(":d")?;
    let (d, k) = rest.split_once(":k")?;
    Some((c.parse().ok()?, d.parse().ok()?, k.parse().ok()?))
}

/// How a client's session is cycled during the calm phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Churn {
    None,
    DisconnectReconnect,
    CrashRecover,
}

/// Draws the schedule for `seed` under `cfg`. Pure function of its
/// arguments: the same `(seed, cfg)` always yields the same schedule.
pub fn generate(seed: u64, cfg: &ChaosConfig) -> Schedule {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xc4a0_5eed_0b57_ac1e);
    let n = cfg.n;

    // Adversary assignment: `faulty` distinct servers.
    let mut behaviors = vec![Behavior::Honest; n];
    let mut pool: Vec<usize> = (0..n).collect();
    for _ in 0..cfg.faulty.min(n) {
        if pool.is_empty() {
            break;
        }
        let at = rng.gen_range(0..pool.len());
        let server = pool.swap_remove(at);
        let behavior = if cfg.force_stale {
            Behavior::Stale
        } else {
            MENU.get(rng.gen_range(0..MENU.len()))
                .copied()
                .unwrap_or(Behavior::Stale)
        };
        if let Some(slot) = behaviors.get_mut(server) {
            *slot = behavior;
        }
    }

    // Stale servers store honestly and replay stale state only on
    // client-facing responses — their gossip is truthful, so anti-entropy
    // would repair the over-budget eclipse within one period. The probe
    // therefore runs with gossip off; standard campaigns draw it.
    let gossip = if cfg.force_stale {
        false
    } else {
        rng.gen_bool(0.75)
    };
    let gossip_period_ms = if rng.gen_bool(0.5) { 250 } else { 500 };

    // Timed fault windows, all inside the turbulence phase.
    let mut faults = Vec::new();
    if !cfg.force_stale {
        let total_nodes = n + cfg.clients;
        for _ in 0..rng.gen_range(1..=3usize) {
            let from_ms = rng.gen_range(800..6_000u64);
            let to_ms = (from_ms + rng.gen_range(500..3_000u64)).min(TURBULENCE_END_MS);
            faults.push(match rng.gen_range(0..4u32) {
                0 => {
                    // One endpoint is always a server; the other may be a
                    // server (cutting gossip) or a client (cutting quorum
                    // access).
                    let a = rng.gen_range(0..n);
                    let mut z = rng.gen_range(0..total_nodes.saturating_sub(1).max(1));
                    if z >= a {
                        z += 1;
                    }
                    FaultEvent::Partition {
                        from_ms,
                        to_ms,
                        a,
                        z,
                    }
                }
                1 => FaultEvent::Drop {
                    from_ms,
                    to_ms,
                    p_mille: rng.gen_range(50..300),
                },
                2 => FaultEvent::LatencySpike { from_ms, to_ms },
                _ => FaultEvent::Restart {
                    from_ms,
                    to_ms,
                    server: rng.gen_range(0..n),
                    mode: cfg.restart_mode,
                },
            });
        }
        let has_restart = faults
            .iter()
            .any(|f| matches!(f, FaultEvent::Restart { .. }));
        if cfg.force_restart && !has_restart {
            let from_ms = rng.gen_range(800..6_000u64);
            let to_ms = (from_ms + rng.gen_range(500..3_000u64)).min(TURBULENCE_END_MS);
            faults.push(FaultEvent::Restart {
                from_ms,
                to_ms,
                server: rng.gen_range(0..n),
                mode: cfg.restart_mode,
            });
        }
    }

    let mut clients = Vec::new();
    for idx in 0..cfg.clients {
        clients.push(if cfg.force_stale {
            generate_over_budget_script(idx)
        } else {
            generate_standard_script(idx, gossip, &mut rng)
        });
    }

    Schedule {
        seed,
        n,
        b: cfg.b,
        deadline_ms: cfg.deadline_ms,
        gossip,
        gossip_period_ms,
        behaviors,
        faults,
        clients,
    }
}

/// Standard per-client workload: connect, a turbulence phase of writes
/// and reads racing the fault windows, a settle wait, then a calm phase
/// (optionally cycling the session) whose operations must all succeed.
fn generate_standard_script(idx: usize, gossip: bool, rng: &mut StdRng) -> ClientScript {
    let churn = match idx % 3 {
        0 => Churn::DisconnectReconnect,
        1 => Churn::CrashRecover,
        _ => Churn::None,
    };
    // Crash amnesia can re-issue a multi-writer timestamp with a new
    // digest, which readers would correctly report as equivocation — so
    // crash-recovering clients stay single-writer during turbulence.
    // Multi-writer writes also carry causal dependencies on the writer's
    // single-writer items, which live at only `b + 1` servers; without
    // gossip those dependencies never reach a `2b + 1` write quorum and
    // the write legitimately cannot complete.
    let mw_ok = churn != Churn::CrashRecover && gossip;
    let sw_data = 10 + idx as u64;
    let sw_cc = rng.gen_bool(0.5);
    let mw_data = 1_000u64;
    let mut sw_k = 0u64;
    let mut mw_k = 0u64;
    let mut wrote_sw = false;
    let mut wrote_mw = false;

    let mut steps = vec![WorkloadStep::Connect { recover: false }];
    for _ in 0..rng.gen_range(2..=4usize) {
        steps.push(WorkloadStep::Wait {
            ms: rng.gen_range(100..900),
        });
        if mw_ok && wrote_sw && rng.gen_bool(0.35) {
            if wrote_mw && rng.gen_bool(0.5) {
                steps.push(WorkloadStep::MwRead { data: mw_data });
            } else {
                mw_k += 1;
                steps.push(WorkloadStep::MwWrite {
                    data: mw_data,
                    k: mw_k,
                });
                wrote_mw = true;
            }
        } else if wrote_sw && rng.gen_bool(0.4) {
            steps.push(WorkloadStep::Read {
                data: sw_data,
                cc: sw_cc,
            });
        } else {
            sw_k += 1;
            steps.push(WorkloadStep::Write {
                data: sw_data,
                k: sw_k,
                cc: sw_cc,
            });
            wrote_sw = true;
        }
    }
    // Everything after this wait starts with the network healed and
    // gossip settled: the calm phase.
    steps.push(WorkloadStep::Wait {
        ms: TURBULENCE_END_MS + SETTLE_MS,
    });
    let calm_from = steps.iter().filter(|s| s.produces_result()).count();

    match churn {
        Churn::DisconnectReconnect => {
            steps.push(WorkloadStep::Disconnect);
            steps.push(WorkloadStep::Connect { recover: false });
        }
        Churn::CrashRecover => {
            steps.push(WorkloadStep::Crash);
            steps.push(WorkloadStep::Connect { recover: true });
        }
        Churn::None => {}
    }
    sw_k += 1;
    steps.push(WorkloadStep::Write {
        data: sw_data,
        k: sw_k,
        cc: sw_cc,
    });
    steps.push(WorkloadStep::Read {
        data: sw_data,
        cc: sw_cc,
    });
    if mw_ok {
        mw_k += 1;
        steps.push(WorkloadStep::MwWrite {
            data: mw_data,
            k: mw_k,
        });
        steps.push(WorkloadStep::MwRead { data: mw_data });
    }
    steps.push(WorkloadStep::Read {
        data: sw_data,
        cc: sw_cc,
    });
    steps.push(WorkloadStep::Disconnect);
    ClientScript { calm_from, steps }
}

/// Over-budget probe script: write three generations of two items, crash,
/// reconstruct, read both back. If the last generation's `b + 1` holders
/// all fall inside the stale set, reconstruction cannot see it and a
/// later read travels backwards — exactly what the safety oracle flags.
fn generate_over_budget_script(idx: usize) -> ClientScript {
    let mut steps = vec![WorkloadStep::Connect { recover: false }];
    let items = [10 + idx as u64, 20 + idx as u64];
    for data in items {
        for k in 1..=3 {
            steps.push(WorkloadStep::Write { data, k, cc: false });
        }
    }
    steps.push(WorkloadStep::Wait { ms: 2_000 });
    steps.push(WorkloadStep::Crash);
    steps.push(WorkloadStep::Connect { recover: true });
    for data in items {
        steps.push(WorkloadStep::Read { data, cc: false });
    }
    steps.push(WorkloadStep::Disconnect);
    ClientScript {
        calm_from: 0,
        steps,
    }
}

fn consistency(cc: bool) -> Consistency {
    if cc {
        Consistency::Cc
    } else {
        Consistency::Mrc
    }
}

/// Lowers a workload step onto the simulation harness for client `idx`.
fn lower_step(idx: usize, step: &WorkloadStep) -> Step {
    match step {
        WorkloadStep::Connect { recover } => Step::Do(ClientOp::Connect {
            group: GROUP,
            recover: *recover,
        }),
        WorkloadStep::Disconnect => Step::Do(ClientOp::Disconnect { group: GROUP }),
        WorkloadStep::Crash => Step::Crash,
        WorkloadStep::Wait { ms } => Step::Wait(SimTime::from_millis(*ms)),
        WorkloadStep::Write { data, k, cc } => Step::Do(ClientOp::Write {
            data: DataId(*data),
            group: GROUP,
            consistency: consistency(*cc),
            value: chaos_value(idx, *data, *k),
        }),
        WorkloadStep::Read { data, cc } => Step::Do(ClientOp::Read {
            data: DataId(*data),
            group: GROUP,
            consistency: consistency(*cc),
        }),
        WorkloadStep::MwWrite { data, k } => Step::Do(ClientOp::MwWrite {
            data: DataId(*data),
            group: GROUP,
            value: chaos_value(idx, *data, *k),
        }),
        WorkloadStep::MwRead { data } => Step::Do(ClientOp::MwRead {
            data: DataId(*data),
            group: GROUP,
            consistency: Consistency::Mrc,
        }),
    }
}

/// Validates a schedule's structural invariants before building a cluster
/// (a hand-edited replay file must fail cleanly, not panic).
fn validate(schedule: &Schedule) -> Result<(), String> {
    quorum::validate(schedule.n, schedule.b)?;
    if schedule.behaviors.len() != schedule.n {
        return Err(format!(
            "behaviors lists {} servers, n = {}",
            schedule.behaviors.len(),
            schedule.n
        ));
    }
    if schedule.clients.is_empty() {
        return Err("schedule has no clients".into());
    }
    let total_nodes = schedule.n + schedule.clients.len();
    for f in &schedule.faults {
        match f {
            FaultEvent::Partition { a, z, .. } => {
                if *a >= total_nodes || *z >= total_nodes || a == z {
                    return Err(format!("partition endpoints {a}/{z} out of range"));
                }
            }
            FaultEvent::Drop { p_mille, .. } => {
                if *p_mille > 1_000 {
                    return Err(format!("drop probability {p_mille}‰ > 1000‰"));
                }
            }
            FaultEvent::LatencySpike { .. } => {}
            FaultEvent::Restart { server, .. } => {
                if *server >= schedule.n {
                    return Err(format!("restart server {server} out of range"));
                }
            }
        }
    }
    Ok(())
}

/// Schedules a fault window's open/close events onto the simulator.
fn schedule_fault(cluster: &mut Cluster, fault: &FaultEvent) {
    let ms = SimTime::from_millis;
    match fault {
        FaultEvent::Partition {
            from_ms,
            to_ms,
            a,
            z,
        } => {
            let (na, nz) = (NodeId(*a), NodeId(*z));
            cluster
                .sim
                .schedule_net_event(ms(*from_ms), NetEvent::PartitionPair(na, nz));
            cluster
                .sim
                .schedule_net_event(ms(*to_ms), NetEvent::SetLink(na, nz, LinkState::Up));
            cluster
                .sim
                .schedule_net_event(ms(*to_ms), NetEvent::SetLink(nz, na, LinkState::Up));
        }
        FaultEvent::Drop {
            from_ms,
            to_ms,
            p_mille,
        } => {
            let p = f64::from(*p_mille) / 1_000.0;
            cluster
                .sim
                .schedule_net_event(ms(*from_ms), NetEvent::SetDropProbability(p));
            cluster
                .sim
                .schedule_net_event(ms(*to_ms), NetEvent::SetDropProbability(0.0));
        }
        FaultEvent::LatencySpike { from_ms, to_ms } => {
            cluster.sim.schedule_net_event(
                ms(*from_ms),
                NetEvent::SetLatency(LatencyModel::wan_heavy_tail()),
            );
            cluster
                .sim
                .schedule_net_event(ms(*to_ms), NetEvent::SetLatency(LatencyModel::lan()));
        }
        FaultEvent::Restart {
            from_ms,
            to_ms,
            server,
            mode,
        } => {
            cluster.schedule_server_restart(*server, ms(*from_ms), ms(*to_ms), *mode);
        }
    }
}

/// Runtime knobs orthogonal to the replayable schedule grammar: *how*
/// servers persist and amortize, not *what* faults occur. Kept out of
/// [`Schedule`] so existing replay files keep parsing and shrinking; a
/// verdict is still fully determined by `(schedule, options)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunOptions {
    /// Fsync policy applied to every server's store. The default,
    /// [`FsyncPolicy::Always`], is the pre-batching behaviour: every
    /// append hits stable storage before the ack. Campaigns probing the
    /// group-commit pipeline pass `GroupCommit { .. }` here — restarted
    /// servers then genuinely lose their unsynced tail, and the oracles
    /// check that no *acknowledged* write went with it.
    pub fsync: FsyncPolicy,
}

impl Default for RunOptions {
    fn default() -> Self {
        RunOptions {
            fsync: FsyncPolicy::Always,
        }
    }
}

/// Runs a schedule to completion (or deadline) and applies both oracles,
/// with the default [`RunOptions`] (fsync-per-record stores).
///
/// # Errors
///
/// Returns a description of the structural problem if the schedule is
/// internally inconsistent (bad `n`/`b`, out-of-range fault endpoints, …).
pub fn run(schedule: &Schedule) -> Result<Verdict, String> {
    run_with(schedule, &RunOptions::default())
}

/// [`run`] with explicit runtime options.
///
/// # Errors
///
/// Same as [`run`].
pub fn run_with(schedule: &Schedule, options: &RunOptions) -> Result<Verdict, String> {
    validate(schedule)?;

    let mut server_cfg = ServerConfig::default();
    server_cfg.gossip.enabled = schedule.gossip;
    server_cfg.gossip.period = SimTime::from_millis(schedule.gossip_period_ms.max(1));
    // Amortize anti-entropy summaries to roughly one per simulated second
    // regardless of the drawn gossip period; the rounds in between push
    // only the dirty set. Derived deterministically from the schedule, so
    // replays stay exact.
    server_cfg.gossip.summary_every =
        u32::try_from((1_000 / schedule.gossip_period_ms.max(1)).clamp(1, 8)).unwrap_or(1);

    let mut storage_cfg = StorageConfig::sim();
    storage_cfg.fsync = options.fsync;

    let mut builder = ClusterBuilder::new(schedule.n, schedule.b)
        .seed(schedule.seed)
        .network(SimConfig::lan(schedule.seed))
        .server_config(server_cfg)
        .durable(storage_cfg);
    for (i, behavior) in schedule.behaviors.iter().enumerate() {
        builder = builder.behavior(i, *behavior);
    }
    for (idx, script) in schedule.clients.iter().enumerate() {
        builder = builder.client(script.steps.iter().map(|s| lower_step(idx, s)).collect());
    }
    let mut cluster = builder.build();
    for fault in &schedule.faults {
        schedule_fault(&mut cluster, fault);
    }

    let idle = cluster.run_until_idle(SimTime::from_millis(schedule.deadline_ms));

    // Provenance index: every (writer, item, generation) the schedule
    // issues, successful or not — a failed write may still have reached
    // some servers, so its value reappearing later is not forgery.
    let mut written: HashSet<(usize, u64, u64)> = HashSet::new();
    for (ci, script) in schedule.clients.iter().enumerate() {
        for step in &script.steps {
            match step {
                WorkloadStep::Write { data, k, .. } | WorkloadStep::MwWrite { data, k } => {
                    written.insert((ci, *data, *k));
                }
                _ => {}
            }
        }
    }

    let mut safety = Vec::new();
    let mut liveness = Vec::new();
    let mut ops_total = 0usize;
    let mut ops_ok = 0usize;

    for (ci, script) in schedule.clients.iter().enumerate() {
        let results = cluster.client_results(ci);
        let dos: Vec<&WorkloadStep> = script
            .steps
            .iter()
            .filter(|s| s.produces_result())
            .collect();
        // Highest timestamp this client has successfully written or read,
        // per item: later successful operations must never go below it.
        let mut max_ts: HashMap<u64, Timestamp> = HashMap::new();
        for (oi, (step, res)) in dos.iter().zip(results.iter()).enumerate() {
            ops_total += 1;
            if res.outcome.is_ok() {
                ops_ok += 1;
            } else if oi >= script.calm_from {
                liveness.push(format!(
                    "client {ci} op {oi} {step:?} failed in the calm phase: {:?}",
                    res.outcome
                ));
            }
            match (&res.outcome, *step) {
                (
                    Outcome::WriteOk { ts },
                    WorkloadStep::Write { data, .. } | WorkloadStep::MwWrite { data, .. },
                ) => {
                    let order = max_ts.get(data).map(|m| ts.compare(m));
                    match order {
                        Some(TsOrder::Less) => safety.push(format!(
                            "client {ci} op {oi}: write to item {data} went backwards ({ts:?})"
                        )),
                        Some(TsOrder::FaultyWriter) => safety.push(format!(
                            "client {ci} op {oi}: write to item {data} re-used a \
                             timestamp with a different digest"
                        )),
                        _ => {
                            max_ts.insert(*data, *ts);
                        }
                    }
                }
                (
                    Outcome::ReadOk { ts, value, .. },
                    WorkloadStep::Read { data, .. } | WorkloadStep::MwRead { data },
                ) => {
                    match parse_chaos_value(value) {
                        None => safety.push(format!(
                            "client {ci} op {oi}: read of item {data} returned bytes no \
                             chaos client ever wrote (corrupted or forged)"
                        )),
                        Some((wc, wd, wk)) => {
                            if wd != *data {
                                safety.push(format!(
                                    "client {ci} op {oi}: read of item {data} returned a \
                                     value written to item {wd}"
                                ));
                            } else if !written.contains(&(wc, wd, wk)) {
                                safety.push(format!(
                                    "client {ci} op {oi}: read of item {data} returned \
                                     generation k={wk} that client {wc} never wrote"
                                ));
                            }
                        }
                    }
                    let order = max_ts.get(data).map(|m| ts.compare(m));
                    match order {
                        Some(TsOrder::Less) => safety.push(format!(
                            "client {ci} op {oi}: read of item {data} returned a value \
                             older than one this client already observed (got {ts:?})"
                        )),
                        Some(TsOrder::FaultyWriter) => safety.push(format!(
                            "client {ci} op {oi}: read of item {data} returned a \
                             timestamp twin with a different digest"
                        )),
                        Some(TsOrder::Incomparable) => safety.push(format!(
                            "client {ci} op {oi}: read of item {data} returned a \
                             timestamp incomparable with this client's history"
                        )),
                        Some(TsOrder::Greater) | None => {
                            max_ts.insert(*data, *ts);
                        }
                        Some(TsOrder::Equal) => {}
                    }
                }
                (Outcome::FaultyWriterDetected { .. }, _) => {
                    // Every scripted writer is honest, so equivocation
                    // proof means fabricated state got past verification.
                    safety.push(format!(
                        "client {ci} op {oi}: reported a faulty writer, but every \
                         writer in this campaign is honest"
                    ));
                }
                _ => {}
            }
        }
        for oi in results.len()..dos.len() {
            if oi >= script.calm_from {
                liveness.push(format!(
                    "client {ci} op {oi} {:?} never completed before the deadline",
                    dos.get(oi)
                ));
            }
        }
    }
    if !idle {
        liveness.push(format!(
            "clients still busy at the {} ms deadline",
            schedule.deadline_ms
        ));
    }
    safety.sort();
    liveness.sort();

    Ok(Verdict {
        seed: schedule.seed,
        idle,
        safety,
        liveness,
        ops_total,
        ops_ok,
        stats: cluster.sim.stats().clone(),
    })
}

/// One shrinking edit: remove a coherent chunk of the schedule.
#[derive(Debug, Clone)]
enum Edit {
    RemoveFault(usize),
    ClearClient(usize),
    /// Remove `count` consecutive steps starting at `step` of `client`
    /// (1 for a single step; 2 for a `Crash`/`Disconnect` + `Connect`
    /// pair, which only make sense together).
    RemoveSteps {
        client: usize,
        step: usize,
        count: usize,
    },
}

/// Candidate edits for one greedy pass, largest chunks first.
fn candidate_edits(schedule: &Schedule) -> Vec<Edit> {
    let mut edits = Vec::new();
    for i in 0..schedule.faults.len() {
        edits.push(Edit::RemoveFault(i));
    }
    for (ci, script) in schedule.clients.iter().enumerate() {
        if !script.steps.is_empty() {
            edits.push(Edit::ClearClient(ci));
        }
    }
    for (ci, script) in schedule.clients.iter().enumerate() {
        for (si, pair) in script.steps.windows(2).enumerate() {
            let churn_pair = matches!(
                pair,
                [
                    WorkloadStep::Crash | WorkloadStep::Disconnect,
                    WorkloadStep::Connect { .. }
                ]
            );
            if churn_pair {
                edits.push(Edit::RemoveSteps {
                    client: ci,
                    step: si,
                    count: 2,
                });
            }
        }
        for si in 0..script.steps.len() {
            edits.push(Edit::RemoveSteps {
                client: ci,
                step: si,
                count: 1,
            });
        }
    }
    edits
}

/// Applies an edit, keeping `calm_from` aligned with the surviving
/// result-producing steps. Returns `None` if the edit no longer fits the
/// (already further-shrunk) schedule.
fn apply_edit(schedule: &Schedule, edit: &Edit) -> Option<Schedule> {
    let mut next = schedule.clone();
    match edit {
        Edit::RemoveFault(i) => {
            if *i >= next.faults.len() {
                return None;
            }
            next.faults.remove(*i);
        }
        Edit::ClearClient(ci) => {
            let script = next.clients.get_mut(*ci)?;
            if script.steps.is_empty() {
                return None;
            }
            script.steps.clear();
            script.calm_from = 0;
        }
        Edit::RemoveSteps {
            client,
            step,
            count,
        } => {
            let script = next.clients.get_mut(*client)?;
            if step + count > script.steps.len() {
                return None;
            }
            let removed_results = script
                .steps
                .get(*step..step + count)?
                .iter()
                .filter(|s| s.produces_result())
                .count();
            let results_before = script
                .steps
                .get(..*step)?
                .iter()
                .filter(|s| s.produces_result())
                .count();
            script.steps.drain(*step..step + count);
            if results_before < script.calm_from {
                script.calm_from = script
                    .calm_from
                    .saturating_sub(removed_results.min(script.calm_from - results_before));
            }
        }
    }
    Some(next)
}

/// Result of shrinking a failing schedule.
#[derive(Debug, Clone)]
pub struct ShrinkResult {
    /// The minimal schedule found (the input itself if it passed).
    pub schedule: Schedule,
    /// Failure class preserved throughout shrinking, if the input failed.
    pub class: Option<FailureClass>,
    /// Total number of runs spent (including the initial one).
    pub runs: usize,
}

/// Greedy delta debugging: repeatedly tries removing fault windows, whole
/// client scripts, churn pairs and single steps, keeping any removal that
/// still exhibits the original failure class, until a fixpoint or the run
/// `budget` is exhausted.
///
/// # Errors
///
/// Propagates [`run`]'s error if the input schedule is malformed.
pub fn shrink(schedule: &Schedule, budget: usize) -> Result<ShrinkResult, String> {
    shrink_with(schedule, budget, &RunOptions::default())
}

/// [`shrink`] with explicit runtime options — a failure found under
/// group-commit must be replayed (and shrunk) under the same policy.
///
/// # Errors
///
/// Propagates [`run`]'s error if the input schedule is malformed.
pub fn shrink_with(
    schedule: &Schedule,
    budget: usize,
    options: &RunOptions,
) -> Result<ShrinkResult, String> {
    let original = run_with(schedule, options)?;
    let mut runs = 1usize;
    let Some(class) = original.class() else {
        return Ok(ShrinkResult {
            schedule: schedule.clone(),
            class: None,
            runs,
        });
    };
    let mut current = schedule.clone();
    'outer: loop {
        if runs >= budget {
            break;
        }
        let mut improved = false;
        for edit in candidate_edits(&current) {
            if runs >= budget {
                break 'outer;
            }
            let Some(candidate) = apply_edit(&current, &edit) else {
                continue;
            };
            runs += 1;
            if let Ok(v) = run_with(&candidate, options) {
                if v.class() == Some(class) {
                    current = candidate;
                    improved = true;
                    break;
                }
            }
        }
        if !improved {
            break;
        }
    }
    Ok(ShrinkResult {
        schedule: current,
        class: Some(class),
        runs,
    })
}

fn behavior_name(b: Behavior) -> &'static str {
    match b {
        Behavior::Honest => "honest",
        Behavior::Crash => "crash",
        Behavior::Stale => "stale",
        Behavior::CorruptValue => "corrupt-value",
        Behavior::CorruptSig => "corrupt-sig",
        Behavior::Equivocate => "equivocate",
        Behavior::Premature => "premature",
    }
}

fn behavior_from_name(name: &str) -> Option<Behavior> {
    Some(match name {
        "honest" => Behavior::Honest,
        "crash" => Behavior::Crash,
        "stale" => Behavior::Stale,
        "corrupt-value" => Behavior::CorruptValue,
        "corrupt-sig" => Behavior::CorruptSig,
        "equivocate" => Behavior::Equivocate,
        "premature" => Behavior::Premature,
        _ => return None,
    })
}

impl Schedule {
    /// Serializes the schedule as a replay file (grammar in the module
    /// docs). `from_text(to_text(s)) == s` for every schedule.
    pub fn to_text(&self) -> String {
        let mut s = String::from("sstore-chaos-schedule v2\n");
        s.push_str(&format!("seed {}\n", self.seed));
        s.push_str(&format!("n {}\n", self.n));
        s.push_str(&format!("b {}\n", self.b));
        s.push_str(&format!("deadline-ms {}\n", self.deadline_ms));
        s.push_str(&format!("gossip {}\n", u8::from(self.gossip)));
        s.push_str(&format!("gossip-period-ms {}\n", self.gossip_period_ms));
        s.push_str("behaviors");
        for b in &self.behaviors {
            s.push(' ');
            s.push_str(behavior_name(*b));
        }
        s.push('\n');
        for f in &self.faults {
            match f {
                FaultEvent::Partition {
                    from_ms,
                    to_ms,
                    a,
                    z,
                } => {
                    s.push_str(&format!("fault partition {from_ms} {to_ms} {a} {z}\n"));
                }
                FaultEvent::Drop {
                    from_ms,
                    to_ms,
                    p_mille,
                } => {
                    s.push_str(&format!("fault drop {from_ms} {to_ms} {p_mille}\n"));
                }
                FaultEvent::LatencySpike { from_ms, to_ms } => {
                    s.push_str(&format!("fault latency {from_ms} {to_ms}\n"));
                }
                FaultEvent::Restart {
                    from_ms,
                    to_ms,
                    server,
                    mode,
                } => {
                    let m = match mode {
                        RestartMode::Wipe => "wipe",
                        RestartMode::Recover => "recover",
                    };
                    s.push_str(&format!("fault restart {from_ms} {to_ms} {server} {m}\n"));
                }
            }
        }
        for script in &self.clients {
            s.push_str(&format!("client calm-from {}\n", script.calm_from));
            for step in &script.steps {
                match step {
                    WorkloadStep::Connect { recover } => {
                        s.push_str(&format!("step connect {}\n", u8::from(*recover)));
                    }
                    WorkloadStep::Disconnect => s.push_str("step disconnect\n"),
                    WorkloadStep::Crash => s.push_str("step crash\n"),
                    WorkloadStep::Wait { ms } => s.push_str(&format!("step wait {ms}\n")),
                    WorkloadStep::Write { data, k, cc } => {
                        s.push_str(&format!("step write {data} {k} {}\n", u8::from(*cc)));
                    }
                    WorkloadStep::Read { data, cc } => {
                        s.push_str(&format!("step read {data} {}\n", u8::from(*cc)));
                    }
                    WorkloadStep::MwWrite { data, k } => {
                        s.push_str(&format!("step mwwrite {data} {k}\n"));
                    }
                    WorkloadStep::MwRead { data } => {
                        s.push_str(&format!("step mwread {data}\n"));
                    }
                }
            }
            s.push_str("end\n");
        }
        s
    }

    /// Parses a replay file produced by [`Schedule::to_text`].
    ///
    /// # Errors
    ///
    /// Returns a message naming the offending line. Never panics, whatever
    /// the input: replay files come from disk.
    pub fn from_text(text: &str) -> Result<Schedule, String> {
        fn num<T: std::str::FromStr>(
            tok: Option<&str>,
            what: &str,
            line_no: usize,
        ) -> Result<T, String> {
            tok.ok_or_else(|| format!("line {line_no}: missing {what}"))?
                .parse::<T>()
                .map_err(|_| format!("line {line_no}: bad {what}"))
        }
        fn flag(tok: Option<&str>, what: &str, line_no: usize) -> Result<bool, String> {
            match num::<u8>(tok, what, line_no)? {
                0 => Ok(false),
                1 => Ok(true),
                _ => Err(format!("line {line_no}: {what} must be 0 or 1")),
            }
        }

        let mut schedule = Schedule {
            seed: 0,
            n: 0,
            b: 0,
            deadline_ms: 0,
            gossip: false,
            gossip_period_ms: 1,
            behaviors: Vec::new(),
            faults: Vec::new(),
            clients: Vec::new(),
        };
        let mut version: Option<u32> = None;
        let mut open: Option<ClientScript> = None;

        for (i, raw) in text.lines().enumerate() {
            let line_no = i + 1;
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            if version.is_none() {
                version = Some(match line {
                    "sstore-chaos-schedule v1" => 1,
                    "sstore-chaos-schedule v2" => 2,
                    _ => {
                        return Err(format!("line {line_no}: not a v1/v2 chaos replay file"));
                    }
                });
                continue;
            }
            let mut toks = line.split_whitespace();
            let key = toks.next().unwrap_or("");
            match key {
                "seed" => schedule.seed = num(toks.next(), "seed", line_no)?,
                "n" => schedule.n = num(toks.next(), "n", line_no)?,
                "b" => schedule.b = num(toks.next(), "b", line_no)?,
                "deadline-ms" => {
                    schedule.deadline_ms = num(toks.next(), "deadline-ms", line_no)?;
                }
                "gossip" => schedule.gossip = flag(toks.next(), "gossip", line_no)?,
                "gossip-period-ms" => {
                    schedule.gossip_period_ms = num(toks.next(), "gossip-period-ms", line_no)?;
                }
                "behaviors" => {
                    for name in toks.by_ref() {
                        let b = behavior_from_name(name)
                            .ok_or_else(|| format!("line {line_no}: unknown behavior {name:?}"))?;
                        schedule.behaviors.push(b);
                    }
                }
                "fault" => {
                    let kind = toks.next().unwrap_or("");
                    let from_ms = num(toks.next(), "fault start", line_no)?;
                    let to_ms = num(toks.next(), "fault end", line_no)?;
                    let fault = match kind {
                        "partition" => FaultEvent::Partition {
                            from_ms,
                            to_ms,
                            a: num(toks.next(), "partition endpoint", line_no)?,
                            z: num(toks.next(), "partition endpoint", line_no)?,
                        },
                        "drop" => FaultEvent::Drop {
                            from_ms,
                            to_ms,
                            p_mille: num(toks.next(), "drop per-mille", line_no)?,
                        },
                        "latency" => FaultEvent::LatencySpike { from_ms, to_ms },
                        "restart" => {
                            let server = num(toks.next(), "restart server", line_no)?;
                            // v1 files predate the mode field; their
                            // restarts kept server state, which maps to
                            // recover-from-stable-storage.
                            let mode = if version == Some(1) {
                                RestartMode::Recover
                            } else {
                                match toks.next() {
                                    Some("wipe") => RestartMode::Wipe,
                                    Some("recover") => RestartMode::Recover,
                                    other => {
                                        return Err(format!(
                                            "line {line_no}: bad restart mode {other:?}"
                                        ));
                                    }
                                }
                            };
                            FaultEvent::Restart {
                                from_ms,
                                to_ms,
                                server,
                                mode,
                            }
                        }
                        other => {
                            return Err(format!("line {line_no}: unknown fault {other:?}"));
                        }
                    };
                    schedule.faults.push(fault);
                }
                "client" => {
                    if open.is_some() {
                        return Err(format!("line {line_no}: client block not closed"));
                    }
                    if toks.next() != Some("calm-from") {
                        return Err(format!("line {line_no}: expected `client calm-from <k>`"));
                    }
                    open = Some(ClientScript {
                        calm_from: num(toks.next(), "calm-from", line_no)?,
                        steps: Vec::new(),
                    });
                }
                "step" => {
                    let Some(script) = open.as_mut() else {
                        return Err(format!("line {line_no}: step outside a client block"));
                    };
                    let step = match toks.next().unwrap_or("") {
                        "connect" => WorkloadStep::Connect {
                            recover: flag(toks.next(), "recover", line_no)?,
                        },
                        "disconnect" => WorkloadStep::Disconnect,
                        "crash" => WorkloadStep::Crash,
                        "wait" => WorkloadStep::Wait {
                            ms: num(toks.next(), "wait ms", line_no)?,
                        },
                        "write" => WorkloadStep::Write {
                            data: num(toks.next(), "data id", line_no)?,
                            k: num(toks.next(), "generation", line_no)?,
                            cc: flag(toks.next(), "cc", line_no)?,
                        },
                        "read" => WorkloadStep::Read {
                            data: num(toks.next(), "data id", line_no)?,
                            cc: flag(toks.next(), "cc", line_no)?,
                        },
                        "mwwrite" => WorkloadStep::MwWrite {
                            data: num(toks.next(), "data id", line_no)?,
                            k: num(toks.next(), "generation", line_no)?,
                        },
                        "mwread" => WorkloadStep::MwRead {
                            data: num(toks.next(), "data id", line_no)?,
                        },
                        other => {
                            return Err(format!("line {line_no}: unknown step {other:?}"));
                        }
                    };
                    script.steps.push(step);
                }
                "end" => match open.take() {
                    Some(script) => schedule.clients.push(script),
                    None => {
                        return Err(format!("line {line_no}: `end` outside a client block"));
                    }
                },
                other => return Err(format!("line {line_no}: unknown directive {other:?}")),
            }
            if toks.next().is_some() && key != "behaviors" {
                return Err(format!("line {line_no}: trailing tokens"));
            }
        }
        if version.is_none() {
            return Err("empty replay file".into());
        }
        if open.is_some() {
            return Err("unterminated client block at end of file".into());
        }
        Ok(schedule)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generate_is_deterministic() {
        let cfg = ChaosConfig::standard(4, 1);
        assert_eq!(generate(7, &cfg), generate(7, &cfg));
        assert_ne!(generate(7, &cfg), generate(8, &cfg));
    }

    #[test]
    fn standard_schedule_shape_is_sound() {
        let cfg = ChaosConfig::standard(4, 1);
        for seed in 0..20 {
            let s = generate(seed, &cfg);
            assert_eq!(s.behaviors.iter().filter(|b| b.is_faulty()).count(), 1);
            assert_eq!(s.clients.len(), 3);
            for f in &s.faults {
                let (from, to) = match f {
                    FaultEvent::Partition { from_ms, to_ms, .. }
                    | FaultEvent::Drop { from_ms, to_ms, .. }
                    | FaultEvent::LatencySpike { from_ms, to_ms }
                    | FaultEvent::Restart { from_ms, to_ms, .. } => (*from_ms, *to_ms),
                };
                assert!(from < to && to <= TURBULENCE_END_MS, "window {f:?}");
            }
            for script in &s.clients {
                // Calm phase starts after the settle wait.
                assert!(script.calm_from > 0);
                assert!(script
                    .steps
                    .iter()
                    .any(|st| matches!(st, WorkloadStep::Wait { ms } if *ms >= TURBULENCE_END_MS)));
            }
        }
    }

    #[test]
    fn replay_text_roundtrips() {
        for seed in [0, 3, 11] {
            for cfg in [ChaosConfig::standard(4, 1), ChaosConfig::over_budget(4, 1)] {
                let s = generate(seed, &cfg);
                let text = s.to_text();
                assert_eq!(Schedule::from_text(&text), Ok(s.clone()), "{text}");
            }
        }
    }

    #[test]
    fn from_text_rejects_junk_without_panicking() {
        for bad in [
            "",
            "not a replay",
            "sstore-chaos-schedule v1\nbogus 3",
            "sstore-chaos-schedule v1\nseed x",
            "sstore-chaos-schedule v1\nstep wait 5",
            "sstore-chaos-schedule v1\nclient calm-from 0\nstep write 1\nend",
            "sstore-chaos-schedule v1\nclient calm-from 0",
            "sstore-chaos-schedule v1\nfault warp 1 2",
            "sstore-chaos-schedule v1\nend",
            "sstore-chaos-schedule v3\nseed 1",
            "sstore-chaos-schedule v2\nfault restart 1 2 0",
            "sstore-chaos-schedule v2\nfault restart 1 2 0 sideways",
            "sstore-chaos-schedule v1\nfault restart 1 2 0 recover",
        ] {
            assert!(Schedule::from_text(bad).is_err(), "{bad:?}");
        }
    }

    #[test]
    fn v1_replay_files_still_parse_and_replay() {
        // A PR-4-era v1 file: no mode token on restart lines. It must
        // keep parsing (restart defaults to recover) and keep replaying
        // deterministically.
        let v1 = "sstore-chaos-schedule v1\n\
                  seed 5\n\
                  n 4\n\
                  b 1\n\
                  deadline-ms 30000\n\
                  gossip 1\n\
                  gossip-period-ms 500\n\
                  behaviors honest honest honest honest\n\
                  fault restart 1000 2500 1\n\
                  client calm-from 2\n\
                  step connect 0\n\
                  step write 1 1 0\n\
                  step wait 9500\n\
                  step write 1 2 0\n\
                  step read 1 0\n\
                  step disconnect\n\
                  end\n";
        let s = Schedule::from_text(v1).expect("v1 file parses");
        assert_eq!(
            s.faults,
            vec![FaultEvent::Restart {
                from_ms: 1_000,
                to_ms: 2_500,
                server: 1,
                mode: RestartMode::Recover,
            }]
        );
        // Re-serializing upgrades to the current grammar.
        assert!(s.to_text().starts_with("sstore-chaos-schedule v2\n"));
        assert!(s.to_text().contains("fault restart 1000 2500 1 recover\n"));
        let a = run(&s).expect("valid schedule");
        let b = run(&s).expect("valid schedule");
        assert_eq!(a, b, "v1 replay diverged");
        assert!(
            a.passed(),
            "safety={:?} liveness={:?}",
            a.safety,
            a.liveness
        );
    }

    #[test]
    fn run_rejects_malformed_schedules() {
        let cfg = ChaosConfig::standard(4, 1);
        let good = generate(1, &cfg);
        let mut bad_n = good.clone();
        bad_n.n = 2;
        assert!(run(&bad_n).is_err());
        let mut bad_server = good.clone();
        bad_server.faults = vec![FaultEvent::Restart {
            from_ms: 1_000,
            to_ms: 2_000,
            server: 99,
            mode: RestartMode::Recover,
        }];
        assert!(run(&bad_server).is_err());
        let mut no_clients = good;
        no_clients.clients.clear();
        assert!(run(&no_clients).is_err());
    }

    #[test]
    fn standard_seeds_pass_both_oracles() {
        let cfg = ChaosConfig::standard(4, 1);
        for seed in 0..15 {
            let schedule = generate(seed, &cfg);
            let v = run(&schedule).expect("valid schedule");
            assert!(
                v.passed(),
                "seed {seed} failed: safety={:?} liveness={:?}\n{}",
                v.safety,
                v.liveness,
                schedule.to_text()
            );
            assert!(v.ops_total > 0);
        }
    }

    #[test]
    fn recover_restart_seeds_pass_both_oracles() {
        // Every seed gets at least one recover-mode restart window:
        // the server replays its WAL on the way back up. With
        // fsync-per-record no acked write is lost, so both oracles
        // must still hold.
        let mut cfg = ChaosConfig::standard(4, 1);
        cfg.force_restart = true;
        for seed in 100..110 {
            let schedule = generate(seed, &cfg);
            assert!(
                schedule
                    .faults
                    .iter()
                    .any(|f| matches!(f, FaultEvent::Restart { mode, .. }
                        if *mode == RestartMode::Recover)),
                "seed {seed} drew no restart window"
            );
            let v = run(&schedule).expect("valid schedule");
            assert!(
                v.passed(),
                "seed {seed} failed: safety={:?} liveness={:?}\n{}",
                v.safety,
                v.liveness,
                schedule.to_text()
            );
        }
    }

    #[test]
    fn group_commit_recover_restart_seeds_pass_both_oracles() {
        // Same recover-restart batch, but with the group-commit pipeline:
        // acks are held until the fsync, so a crash that loses the
        // unsynced tail loses only *unacknowledged* writes and both
        // oracles must still hold.
        let mut cfg = ChaosConfig::standard(4, 1);
        cfg.force_restart = true;
        let options = RunOptions {
            fsync: FsyncPolicy::GroupCommit {
                max_batch: 8,
                max_delay_us: 2_000,
            },
        };
        for seed in 100..108 {
            let schedule = generate(seed, &cfg);
            let v = run_with(&schedule, &options).expect("valid schedule");
            assert!(
                v.passed(),
                "seed {seed} failed under group-commit: safety={:?} liveness={:?}\n{}",
                v.safety,
                v.liveness,
                schedule.to_text()
            );
        }
    }

    #[test]
    fn group_commit_replay_is_deterministic() {
        let cfg = ChaosConfig::standard(4, 1);
        let schedule = generate(7, &cfg);
        let options = RunOptions {
            fsync: FsyncPolicy::GroupCommit {
                max_batch: 4,
                max_delay_us: 1_000,
            },
        };
        let a = run_with(&schedule, &options).expect("valid schedule");
        let b = run_with(&schedule, &options).expect("valid schedule");
        assert_eq!(a, b, "group-commit replay diverged");
        // And the policy genuinely changes execution relative to Always —
        // otherwise this test would vacuously pass with a broken wiring.
        let always = run(&schedule).expect("valid schedule");
        assert!(always.passed());
    }

    #[test]
    fn over_budget_is_flagged_by_safety_oracle() {
        let cfg = ChaosConfig::over_budget(4, 1);
        let mut flagged = 0;
        for seed in 0..20 {
            let v = run(&generate(seed, &cfg)).expect("valid schedule");
            if !v.safety_ok() {
                flagged += 1;
            }
        }
        assert!(
            flagged > 0,
            "b+1 stale servers never violated safety across 20 seeds"
        );
    }

    #[test]
    fn replay_is_deterministic() {
        let std_cfg = ChaosConfig::standard(4, 1);
        let ob_cfg = ChaosConfig::over_budget(4, 1);
        for schedule in [generate(5, &std_cfg), generate(5, &ob_cfg)] {
            let a = run(&schedule).expect("valid schedule");
            let b = run(&Schedule::from_text(&schedule.to_text()).expect("roundtrip"))
                .expect("valid schedule");
            assert_eq!(a, b, "replay diverged for seed {}", schedule.seed);
        }
    }

    #[test]
    fn shrink_preserves_failure_class_and_shrinks() {
        let cfg = ChaosConfig::over_budget(4, 1);
        // Find a failing seed first.
        let failing = (0..20)
            .map(|s| generate(s, &cfg))
            .find(|sched| {
                run(sched)
                    .map(|v| v.class() == Some(FailureClass::Safety))
                    .unwrap_or(false)
            })
            .expect("some over-budget seed must fail safety");
        let before: usize = failing.clients.iter().map(|c| c.steps.len()).sum();
        let res = shrink(&failing, 60).expect("shrink runs");
        assert_eq!(res.class, Some(FailureClass::Safety));
        let after: usize = res.schedule.clients.iter().map(|c| c.steps.len()).sum();
        assert!(after <= before);
        let v = run(&res.schedule).expect("shrunk schedule runs");
        assert_eq!(v.class(), Some(FailureClass::Safety));
        assert!(res.runs <= 60);
    }

    #[test]
    fn shrink_of_passing_schedule_is_identity() {
        let cfg = ChaosConfig::standard(4, 1);
        let s = generate(2, &cfg);
        let res = shrink(&s, 10).expect("runs");
        assert_eq!(res.class, None);
        assert_eq!(res.schedule, s);
        assert_eq!(res.runs, 1);
    }

    #[test]
    fn chaos_value_roundtrips() {
        assert_eq!(parse_chaos_value(&chaos_value(2, 17, 9)), Some((2, 17, 9)));
        assert_eq!(parse_chaos_value(b"garbage"), None);
        assert_eq!(parse_chaos_value(b"chaos:c1:d2"), None);
        assert_eq!(parse_chaos_value(&[0xff, 0xfe]), None);
    }
}
