//! Confidentiality layers for stored values (paper §5.2 end, §5.3 end).
//!
//! Servers must never learn confidential values, so encryption happens at
//! the client. Three backends:
//!
//! - [`ValueCipher`]: client-side authenticated encryption (the paper's
//!   non-shared / shared-key scheme). Metadata stays plaintext; the
//!   timestamp doubles as the nonce since the protocol forces it to be
//!   unique per write.
//! - [`FragmentStore::shamir`]: information-theoretic secret sharing — no
//!   `b` colluding servers learn anything, at `n×` storage.
//! - [`FragmentStore::ida`]: Rabin dispersal — `n/k×` storage, erasure
//!   tolerance, computational confidentiality (the paper's cited
//!   fragmentation-scattering alternative).

use rand::rngs::StdRng;

use sstore_crypto::cipher::{SealKey, Sealed};
use sstore_crypto::{ida, shamir, CryptoError};

use crate::types::Timestamp;

/// Client-side value encryption keyed from a user master secret.
///
/// ```
/// use sstore_core::confidential::ValueCipher;
/// use sstore_core::types::Timestamp;
///
/// let cipher = ValueCipher::new(b"household master secret", b"medical");
/// let ts = Timestamp::Version(3);
/// let blob = cipher.encrypt(b"blood type O+", &ts);
/// assert_eq!(cipher.decrypt(&blob, &ts).unwrap(), b"blood type O+");
/// ```
#[derive(Debug, Clone)]
pub struct ValueCipher {
    key: SealKey,
}

impl ValueCipher {
    /// Derives the cipher from a master secret and a per-group label.
    pub fn new(master: &[u8], label: &[u8]) -> Self {
        ValueCipher {
            key: SealKey::derive(master, label),
        }
    }

    /// Encrypts `plaintext` for the write stamped `ts`, producing the bytes
    /// to hand to [`crate::client::ClientOp::Write`].
    pub fn encrypt(&self, plaintext: &[u8], ts: &Timestamp) -> Vec<u8> {
        let sealed = self.key.seal(plaintext, nonce_of(ts));
        let mut blob = Vec::with_capacity(sealed.encoded_len());
        blob.extend_from_slice(&sealed.nonce.to_be_bytes());
        blob.extend_from_slice(sealed.tag.as_bytes());
        blob.extend_from_slice(&sealed.ciphertext);
        blob
    }

    /// Decrypts a value read back from the store.
    ///
    /// # Errors
    ///
    /// [`CryptoError::BadMac`] when the blob was corrupted or sealed under
    /// a different key/nonce; [`CryptoError::BadParams`] when too short.
    pub fn decrypt(&self, blob: &[u8], ts: &Timestamp) -> Result<Vec<u8>, CryptoError> {
        if blob.len() < 8 + 32 {
            return Err(CryptoError::BadParams("ciphertext too short"));
        }
        let nonce = u64::from_be_bytes(blob[..8].try_into().expect("8 bytes"));
        if nonce != nonce_of(ts) {
            return Err(CryptoError::BadMac);
        }
        let mut tag = [0u8; 32];
        tag.copy_from_slice(&blob[8..40]);
        let sealed = Sealed {
            nonce,
            ciphertext: blob[40..].to_vec(),
            tag: sstore_crypto::sha256::Digest(tag),
        };
        self.key.open(&sealed)
    }
}

/// The write timestamp as a cipher nonce: unique per write because the
/// protocol orders timestamps strictly.
fn nonce_of(ts: &Timestamp) -> u64 {
    match ts {
        Timestamp::Version(v) => *v,
        Timestamp::Multi { time, writer, .. } => (*time << 16) | writer.0 as u64,
    }
}

/// Which fragmentation scheme a [`FragmentStore`] uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FragmentScheme {
    /// Shamir secret sharing: information-theoretic, `n×` storage.
    Shamir,
    /// Rabin IDA: `n/k×` storage, computational confidentiality.
    Ida,
}

/// Fragments values so each server holds only an unusable piece.
#[derive(Debug, Clone)]
pub struct FragmentStore {
    scheme: FragmentScheme,
    k: usize,
    n: usize,
}

/// One per-server fragment of a value, tagged with its server index.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ValueFragment {
    /// Index identifying which share/fragment this is.
    pub index: u8,
    /// Encoded fragment bytes (scheme-specific framing included).
    pub bytes: Vec<u8>,
}

impl FragmentStore {
    /// Shamir-sharing store: any `k` of `n` fragments reconstruct; fewer
    /// reveal nothing.
    pub fn shamir(k: usize, n: usize) -> Self {
        FragmentStore {
            scheme: FragmentScheme::Shamir,
            k,
            n,
        }
    }

    /// IDA store: any `k` of `n` fragments reconstruct at `n/k×` storage.
    pub fn ida(k: usize, n: usize) -> Self {
        FragmentStore {
            scheme: FragmentScheme::Ida,
            k,
            n,
        }
    }

    /// The scheme in use.
    pub fn scheme(&self) -> FragmentScheme {
        self.scheme
    }

    /// Splits `value` into `n` per-server fragments.
    ///
    /// # Errors
    ///
    /// Propagates invalid `(k, n)` parameters.
    pub fn split(&self, value: &[u8], rng: &mut StdRng) -> Result<Vec<ValueFragment>, CryptoError> {
        match self.scheme {
            FragmentScheme::Shamir => Ok(shamir::split(value, self.k, self.n, rng)?
                .into_iter()
                .map(|s| ValueFragment {
                    index: s.x,
                    bytes: s.data,
                })
                .collect()),
            FragmentScheme::Ida => Ok(ida::disperse(value, self.k, self.n)?
                .into_iter()
                .map(|f| {
                    let mut bytes = f.data_len.to_be_bytes().to_vec();
                    bytes.extend_from_slice(&f.data);
                    ValueFragment {
                        index: f.index,
                        bytes,
                    }
                })
                .collect()),
        }
    }

    /// Reconstructs the value from at least `k` fragments.
    ///
    /// # Errors
    ///
    /// [`CryptoError::BadShares`] when too few or inconsistent fragments
    /// are supplied.
    pub fn reconstruct(&self, frags: &[ValueFragment]) -> Result<Vec<u8>, CryptoError> {
        match self.scheme {
            FragmentScheme::Shamir => {
                let shares: Vec<shamir::Share> = frags
                    .iter()
                    .map(|f| shamir::Share {
                        x: f.index,
                        data: f.bytes.clone(),
                    })
                    .collect();
                shamir::reconstruct(&shares, self.k)
            }
            FragmentScheme::Ida => {
                let fragments: Vec<ida::Fragment> = frags
                    .iter()
                    .map(|f| {
                        if f.bytes.len() < 8 {
                            return Err(CryptoError::BadShares("fragment too short"));
                        }
                        Ok(ida::Fragment {
                            index: f.index,
                            data_len: u64::from_be_bytes(f.bytes[..8].try_into().expect("8 bytes")),
                            data: f.bytes[8..].to_vec(),
                        })
                    })
                    .collect::<Result<_, _>>()?;
                ida::reconstruct(&fragments, self.k)
            }
        }
    }

    /// Total stored bytes across all fragments for a value of `len` bytes
    /// (storage-blowup accounting for experiment F7).
    pub fn storage_bytes(&self, len: usize) -> usize {
        match self.scheme {
            FragmentScheme::Shamir => self.n * len,
            FragmentScheme::Ida => self.n * (len.div_ceil(self.k).max(1) + 8),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::ClientId;
    use rand::SeedableRng;
    use sstore_crypto::sha256::digest;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(5)
    }

    #[test]
    fn cipher_roundtrip() {
        let c = ValueCipher::new(b"master", b"records");
        let ts = Timestamp::Version(7);
        let blob = c.encrypt(b"secret value", &ts);
        assert_eq!(c.decrypt(&blob, &ts).unwrap(), b"secret value");
    }

    #[test]
    fn cipher_binds_timestamp() {
        let c = ValueCipher::new(b"master", b"records");
        let blob = c.encrypt(b"v", &Timestamp::Version(7));
        assert!(c.decrypt(&blob, &Timestamp::Version(8)).is_err());
    }

    #[test]
    fn cipher_rejects_corruption_and_short_blobs() {
        let c = ValueCipher::new(b"master", b"records");
        let ts = Timestamp::Version(1);
        let mut blob = c.encrypt(b"value", &ts);
        let last = blob.len() - 1;
        blob[last] ^= 1;
        assert!(c.decrypt(&blob, &ts).is_err());
        assert!(c.decrypt(&[1, 2, 3], &ts).is_err());
    }

    #[test]
    fn cipher_key_separation() {
        let a = ValueCipher::new(b"master", b"group-a");
        let b = ValueCipher::new(b"master", b"group-b");
        let ts = Timestamp::Version(1);
        let blob = a.encrypt(b"v", &ts);
        assert!(b.decrypt(&blob, &ts).is_err());
    }

    #[test]
    fn multi_writer_nonces_distinct_per_writer() {
        let t1 = Timestamp::Multi {
            time: 1,
            writer: ClientId(1),
            digest: digest(b"a"),
        };
        let t2 = Timestamp::Multi {
            time: 1,
            writer: ClientId(2),
            digest: digest(b"a"),
        };
        assert_ne!(nonce_of(&t1), nonce_of(&t2));
    }

    #[test]
    fn shamir_store_roundtrip() {
        let store = FragmentStore::shamir(2, 4);
        let frags = store.split(b"fragment me", &mut rng()).unwrap();
        assert_eq!(frags.len(), 4);
        assert_eq!(store.reconstruct(&frags[1..3]).unwrap(), b"fragment me");
    }

    #[test]
    fn ida_store_roundtrip_and_smaller_storage() {
        let shamir = FragmentStore::shamir(3, 7);
        let ida = FragmentStore::ida(3, 7);
        let value = vec![9u8; 900];
        let frags = ida.split(&value, &mut rng()).unwrap();
        let picked = vec![frags[0].clone(), frags[3].clone(), frags[6].clone()];
        assert_eq!(ida.reconstruct(&picked).unwrap(), value);
        assert!(ida.storage_bytes(900) < shamir.storage_bytes(900));
    }

    #[test]
    fn too_few_fragments_fail() {
        let store = FragmentStore::shamir(3, 5);
        let frags = store.split(b"v", &mut rng()).unwrap();
        assert!(store.reconstruct(&frags[..2]).is_err());
    }
}
