//! Wire messages exchanged between clients and servers.
//!
//! One message enum covers the whole protocol family so a single simulator
//! network can carry context management, data access, multi-writer access
//! and gossip. Each variant reports a `kind` label used by the message
//! accounting that reproduces the paper's §6 cost formulas.

use sstore_simnet::Message;

use crate::item::{ItemMeta, SignedContext, StoredItem};
use crate::types::{ClientId, DataId, GroupId, OpId, Timestamp};

/// All secure-store protocol messages.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Msg {
    // ------------------------------------------------------------------
    // Context management (paper §5.1, Fig. 1)
    // ------------------------------------------------------------------
    /// Client requests its stored context for a group.
    CtxReadReq {
        /// Correlates responses with the client operation.
        op: OpId,
        /// Requesting client.
        client: ClientId,
        /// Group whose context is requested.
        group: GroupId,
    },
    /// Server's reply: the stored signed context, if any.
    CtxReadResp {
        /// Echoed operation id.
        op: OpId,
        /// The stored context, or `None` if this server has none.
        stored: Option<SignedContext>,
    },
    /// Client stores its signed context.
    CtxWriteReq {
        /// Correlates acks with the client operation.
        op: OpId,
        /// Group being written (context carries it too; echoed for routing).
        group: GroupId,
        /// The signed context.
        signed: SignedContext,
    },
    /// Server acknowledges a context write.
    CtxWriteAck {
        /// Echoed operation id.
        op: OpId,
    },

    // ------------------------------------------------------------------
    // Context reconstruction (paper §5.1, crash-recovery path)
    // ------------------------------------------------------------------
    /// Client asks for the metadata of every item in a group.
    TsScanReq {
        /// Correlates responses with the client operation.
        op: OpId,
        /// Group to scan.
        group: GroupId,
    },
    /// Server's reply: verifiable metadata of all items it holds in the
    /// group.
    TsScanResp {
        /// Echoed operation id.
        op: OpId,
        /// Signed metadata entries (no values).
        entries: Vec<ItemMeta>,
    },

    // ------------------------------------------------------------------
    // Single-writer data path (paper §5.2, Fig. 2)
    // ------------------------------------------------------------------
    /// Phase 1 of a read: ask a server for its current timestamp of `data`.
    TsQueryReq {
        /// Correlates responses with the client operation.
        op: OpId,
        /// Item being read.
        data: DataId,
    },
    /// Server's reply with the metadata it holds (timestamp and proof).
    TsQueryResp {
        /// Echoed operation id.
        op: OpId,
        /// Item being read (echoed).
        data: DataId,
        /// Metadata of the server's copy, or `None` if it has no copy.
        meta: Option<ItemMeta>,
        /// The full item, piggybacked when the value is small enough
        /// (server-side `read_inline_limit`); lets common-case reads finish
        /// in one round trip — §6's "read response time could be the same
        /// as write".
        inline: Option<StoredItem>,
    },
    /// Phase 2 of a read: fetch the value from the chosen server.
    ReadReq {
        /// Correlates responses with the client operation.
        op: OpId,
        /// Item being read.
        data: DataId,
        /// The timestamp the client expects (from phase 1).
        ts: Timestamp,
    },
    /// Server's reply with the full item.
    ReadResp {
        /// Echoed operation id.
        op: OpId,
        /// The stored item, or `None` if the server no longer has that
        /// timestamp.
        item: Option<StoredItem>,
    },
    /// A write: the full signed item.
    WriteReq {
        /// Correlates acks with the client operation.
        op: OpId,
        /// The signed item.
        item: StoredItem,
    },
    /// Server acknowledges a write (accepted or rejected).
    WriteAck {
        /// Echoed operation id.
        op: OpId,
        /// Whether the server accepted (verified and stored) the write.
        accepted: bool,
    },

    // ------------------------------------------------------------------
    // Multi-writer data path (paper §5.3)
    // ------------------------------------------------------------------
    /// Multi-writer read: ask for the server's log of latest writes.
    MwReadReq {
        /// Correlates responses with the client operation.
        op: OpId,
        /// Item being read.
        data: DataId,
    },
    /// Server's reply: the set of latest *reportable* writes it holds.
    MwReadResp {
        /// Echoed operation id.
        op: OpId,
        /// Item being read (echoed).
        data: DataId,
        /// Latest reportable writes (full items so clients can verify).
        versions: Vec<StoredItem>,
    },

    // ------------------------------------------------------------------
    // Overload control
    // ------------------------------------------------------------------
    /// Server load-shed: the server is overloaded (its write queue to
    /// this client crossed the high-water mark) and refuses to process
    /// the request. Unlike Byzantine *silence*, a shed is an explicit,
    /// attributable signal — the client retries elsewhere immediately
    /// instead of waiting out a phase timer.
    Shed {
        /// Echoed operation id of the refused request.
        op: OpId,
    },

    // ------------------------------------------------------------------
    // Server-to-server dissemination (paper §4, §5.2)
    // ------------------------------------------------------------------
    /// Push gossip: recently updated items, with original signatures.
    GossipPush {
        /// Items being disseminated.
        items: Vec<StoredItem>,
    },
    /// Anti-entropy summary of a server's per-item timestamps.
    GossipSummary {
        /// `(item, timestamp)` pairs the sender holds.
        entries: Vec<(DataId, Timestamp)>,
        /// Whether the receiver should answer with its own summary.
        want_reply: bool,
    },
}

impl Msg {
    /// The operation id carried by client-path messages, if any.
    pub fn op(&self) -> Option<OpId> {
        match self {
            Msg::CtxReadReq { op, .. }
            | Msg::CtxReadResp { op, .. }
            | Msg::CtxWriteReq { op, .. }
            | Msg::CtxWriteAck { op }
            | Msg::TsScanReq { op, .. }
            | Msg::TsScanResp { op, .. }
            | Msg::TsQueryReq { op, .. }
            | Msg::TsQueryResp { op, .. }
            | Msg::ReadReq { op, .. }
            | Msg::ReadResp { op, .. }
            | Msg::WriteReq { op, .. }
            | Msg::WriteAck { op, .. }
            | Msg::MwReadReq { op, .. }
            | Msg::MwReadResp { op, .. }
            | Msg::Shed { op } => Some(*op),
            Msg::GossipPush { .. } | Msg::GossipSummary { .. } => None,
        }
    }

    /// The *measured* wire size: the length of this message's canonical
    /// binary encoding ([`crate::codec::encode_msg`]), version byte
    /// included. [`Message::size_bytes`] keeps reporting the paper's §6
    /// formula estimate so simulator cost tables stay comparable across
    /// revisions; deployment-path accounting records both (see
    /// [`crate::metrics::WireStats`]).
    pub fn encoded_size(&self) -> usize {
        crate::codec::encode_msg(self).len()
    }
}

impl Message for Msg {
    fn kind(&self) -> &'static str {
        match self {
            Msg::CtxReadReq { .. } => "ctx-read-req",
            Msg::CtxReadResp { .. } => "ctx-read-resp",
            Msg::CtxWriteReq { .. } => "ctx-write-req",
            Msg::CtxWriteAck { .. } => "ctx-write-ack",
            Msg::TsScanReq { .. } => "ts-scan-req",
            Msg::TsScanResp { .. } => "ts-scan-resp",
            Msg::TsQueryReq { .. } => "ts-query-req",
            Msg::TsQueryResp { .. } => "ts-query-resp",
            Msg::ReadReq { .. } => "read-req",
            Msg::ReadResp { .. } => "read-resp",
            Msg::WriteReq { .. } => "write-req",
            Msg::WriteAck { .. } => "write-ack",
            Msg::MwReadReq { .. } => "mw-read-req",
            Msg::MwReadResp { .. } => "mw-read-resp",
            Msg::Shed { .. } => "shed",
            Msg::GossipPush { .. } => "gossip-push",
            Msg::GossipSummary { .. } => "gossip-summary",
        }
    }

    fn size_bytes(&self) -> usize {
        const HDR: usize = 16; // op id, routing, framing
        match self {
            Msg::CtxReadReq { .. } => HDR + 6,
            Msg::CtxReadResp { stored, .. } => {
                HDR + 1 + stored.as_ref().map_or(0, |s| s.size_bytes())
            }
            Msg::CtxWriteReq { signed, .. } => HDR + 4 + signed.size_bytes(),
            Msg::CtxWriteAck { .. } => HDR,
            Msg::TsScanReq { .. } => HDR + 4,
            Msg::TsScanResp { entries, .. } => {
                HDR + entries.iter().map(|m| m.size_bytes()).sum::<usize>()
            }
            Msg::TsQueryReq { .. } => HDR + 8,
            Msg::TsQueryResp { meta, inline, .. } => {
                HDR + 8
                    + 1
                    + meta.as_ref().map_or(0, |m| m.size_bytes())
                    + inline.as_ref().map_or(0, |i| 8 + i.value.len())
            }
            Msg::ReadReq { .. } => HDR + 8 + 43,
            Msg::ReadResp { item, .. } => HDR + 1 + item.as_ref().map_or(0, |i| i.size_bytes()),
            Msg::WriteReq { item, .. } => HDR + item.size_bytes(),
            Msg::WriteAck { .. } => HDR + 1,
            Msg::MwReadReq { .. } => HDR + 8,
            Msg::MwReadResp { versions, .. } => {
                HDR + 8 + versions.iter().map(|i| i.size_bytes()).sum::<usize>()
            }
            Msg::Shed { .. } => HDR,
            Msg::GossipPush { items } => HDR + items.iter().map(|i| i.size_bytes()).sum::<usize>(),
            Msg::GossipSummary { entries, .. } => HDR + 1 + entries.len() * (8 + 43),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn op_extraction() {
        let m = Msg::CtxReadReq {
            op: OpId(7),
            client: ClientId(1),
            group: GroupId(1),
        };
        assert_eq!(m.op(), Some(OpId(7)));
        let g = Msg::GossipSummary {
            entries: vec![],
            want_reply: false,
        };
        assert_eq!(g.op(), None);
    }

    #[test]
    fn kinds_are_distinct_for_req_resp() {
        let req = Msg::TsQueryReq {
            op: OpId(1),
            data: DataId(1),
        };
        let resp = Msg::TsQueryResp {
            op: OpId(1),
            data: DataId(1),
            meta: None,
            inline: None,
        };
        assert_ne!(req.kind(), resp.kind());
    }

    #[test]
    fn sizes_scale_with_payload() {
        let small = Msg::GossipSummary {
            entries: vec![],
            want_reply: false,
        };
        let big = Msg::GossipSummary {
            entries: (0..10)
                .map(|i| (DataId(i), Timestamp::Version(i)))
                .collect(),
            want_reply: false,
        };
        assert!(big.size_bytes() > small.size_bytes());
    }
}
