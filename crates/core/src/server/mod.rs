//! The secure-store server: a passive, signed-data repository
//! (paper §4–§5).
//!
//! Servers never originate data. They store client-signed items and
//! contexts, answer quorum requests, disseminate updates to peers, and —
//! for multi-writer data — hold writes until their causal predecessors
//! arrive and log recent versions (paper §5.3). All consistency enforcement
//! is the *client's* job; this keeps the power entrusted to servers minimal.
//!
//! The server is a sans-I/O state machine: [`ServerNode::handle`] maps an
//! incoming message to outgoing messages; [`ServerNode::on_gossip_timer`]
//! drives dissemination. Adapters in `sim` and `sstore-transport` connect
//! it to the simulator and to real threads.

pub mod storage;
mod wlog;

pub use wlog::WriteLog;

use std::collections::{BTreeSet, HashMap, HashSet};
use std::sync::Arc;

use rand::rngs::StdRng;
use rand::seq::SliceRandom;

use sstore_crypto::schnorr::{verify_batch, BatchEntry};
use sstore_simnet::SimTime;

use crate::config::ServerConfig;
use crate::directory::Directory;
use crate::item::{SignedContext, StoredItem};
use crate::metrics::CryptoCounters;
use crate::types::{ClientId, DataId, GroupId, ServerId, Timestamp};
use crate::vcache::VerifyCache;
use crate::wire::Msg;

/// A participant address: either a peer server or a client.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Addr {
    /// A secure-store server.
    Server(ServerId),
    /// A client.
    Client(ClientId),
}

impl std::fmt::Display for Addr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Addr::Server(s) => write!(f, "{s}"),
            Addr::Client(c) => write!(f, "{c}"),
        }
    }
}

/// The server state machine.
#[derive(Debug)]
pub struct ServerNode {
    id: ServerId,
    dir: Arc<Directory>,
    cfg: ServerConfig,
    /// Latest admitted item per data id (authoritative current copy).
    items: HashMap<DataId, StoredItem>,
    /// Multi-writer reportable logs.
    logs: HashMap<DataId, WriteLog>,
    /// Multi-writer writes awaiting causal predecessors, with requester for
    /// deferred acks.
    pending: Vec<(StoredItem, Option<(Addr, crate::types::OpId)>)>,
    /// Stored client contexts, keyed by (client, group).
    contexts: HashMap<(ClientId, GroupId), SignedContext>,
    /// Items per group, for context scans.
    group_index: HashMap<GroupId, BTreeSet<DataId>>,
    /// Items changed since the last push-gossip round.
    dirty: HashSet<DataId>,
    /// Timestamps peers are known to hold (from gossip summaries); drives
    /// multi-writer log GC ("erase once a new value is available at 2b+1
    /// servers").
    peer_knowledge: HashMap<ServerId, HashMap<DataId, Timestamp>>,
    counters: CryptoCounters,
    /// Signatures this server has already verified — gossip and quorum
    /// traffic re-deliver the same signed bytes constantly, and a repeat
    /// admission check should not cost another public-key operation.
    vcache: VerifyCache,
    /// Durable storage, if attached. `None` keeps the PR-4 in-memory
    /// behavior (restarts lose everything).
    store: Option<storage::Store>,
    /// True while replaying recovered records, so admission paths do not
    /// re-append what was just read back.
    replaying: bool,
    /// Records produced by the message being handled, appended to the
    /// store as one batch at the exit of [`ServerNode::handle`]
    /// (group-commit WAL: one backend write, one fsync-policy decision).
    wal_buf: Vec<storage::Record>,
    /// Durability acknowledgements held back until the records they cover
    /// are synced (the `GroupCommit` fsync policy); released by
    /// [`ServerNode::flush_commits`].
    deferred_acks: Vec<(Addr, Msg)>,
    /// Latest time by which deferred work must be synced and released.
    commit_deadline: Option<SimTime>,
    /// Storage operations (append/snapshot/sync) that failed while the
    /// node kept serving from memory. Durability is degraded whenever
    /// this is nonzero — operators and oracles alert on it.
    storage_faults: u64,
    /// Gossip rounds run so far (drives the anti-entropy summary cadence).
    gossip_round: u32,
}

/// Hard cap on durability acknowledgements held back for an unsynced
/// group-commit window. A stalled or failing fsync otherwise grows
/// [`ServerNode`]'s deferred-ack queue without bound; past the cap the
/// node rejects further writes explicitly (see
/// [`ServerNode::flush_commits`]) and counts each rejection in
/// [`ServerNode::storage_faults`].
pub const DEFERRED_ACKS_MAX: usize = 1024;

impl ServerNode {
    /// Creates an empty server.
    pub fn new(id: ServerId, dir: Arc<Directory>, cfg: ServerConfig) -> Self {
        ServerNode {
            id,
            dir,
            cfg,
            items: HashMap::new(),
            logs: HashMap::new(),
            pending: Vec::new(),
            contexts: HashMap::new(),
            group_index: HashMap::new(),
            dirty: HashSet::new(),
            peer_knowledge: HashMap::new(),
            counters: CryptoCounters::new(),
            vcache: VerifyCache::default(),
            store: None,
            replaying: false,
            wal_buf: Vec::new(),
            deferred_acks: Vec::new(),
            commit_deadline: None,
            storage_faults: 0,
            gossip_round: 0,
        }
    }

    /// How many storage operations have failed since startup (the node
    /// keeps serving from memory; nonzero means durability is degraded).
    pub fn storage_faults(&self) -> u64 {
        self.storage_faults
    }

    /// Durability acknowledgements currently held back for an unsynced
    /// group-commit window (bounded by [`DEFERRED_ACKS_MAX`]).
    pub fn deferred_acks_len(&self) -> usize {
        self.deferred_acks.len()
    }

    /// This server's identity.
    pub fn id(&self) -> ServerId {
        self.id
    }

    /// Cryptographic-operation counters accumulated so far.
    pub fn counters(&self) -> CryptoCounters {
        self.counters
    }

    /// The verification cache (for hit/miss inspection by harnesses).
    pub fn verify_cache(&self) -> &VerifyCache {
        &self.vcache
    }

    /// The configured gossip period (used by adapters to re-arm timers).
    pub fn gossip_period(&self) -> SimTime {
        self.cfg.gossip.period
    }

    /// The server's current copy of `data`, if any (test/harness hook).
    pub fn item(&self, data: DataId) -> Option<&StoredItem> {
        self.items.get(&data)
    }

    /// Number of reportable log entries for `data` (test/harness hook).
    pub fn log_len(&self, data: DataId) -> usize {
        self.logs.get(&data).map_or(0, WriteLog::len)
    }

    /// Number of writes held back waiting for causal predecessors.
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }

    /// Number of stored items (test/harness hook).
    pub fn item_count(&self) -> usize {
        self.items.len()
    }

    /// The shared directory (lets adapters rebuild a server on restart).
    pub fn directory(&self) -> Arc<Directory> {
        self.dir.clone()
    }

    /// The server configuration (lets adapters rebuild on restart).
    pub fn config(&self) -> &ServerConfig {
        &self.cfg
    }

    /// Attaches durable storage. Every admitted item, multi-writer log
    /// entry, hold-back, and stored context is appended from here on.
    pub fn attach_store(&mut self, store: storage::Store) {
        self.store = Some(store);
    }

    /// Detaches and returns the store (the disk survives the process: a
    /// restart adapter moves it to the replacement node).
    pub fn take_store(&mut self) -> Option<storage::Store> {
        self.store.take()
    }

    /// Storage pipeline counters, if a store is attached.
    pub fn storage_stats(&self) -> Option<storage::StorageStats> {
        self.store.as_ref().map(storage::Store::stats)
    }

    /// Crash-point injection hook: appends a raw partial frame to the
    /// attached store, modelling a write torn mid-append (test/chaos).
    pub fn inject_torn_tail(&mut self, bytes: &[u8]) {
        if let Some(store) = self.store.as_mut() {
            store.inject_torn_tail(bytes);
        }
    }

    /// Replays the attached store through the live admission paths.
    /// Every record is re-verified (signature and value digest) before it
    /// can be served — the CRC layer only proves the bytes survived the
    /// disk, not that they were ever legitimate. Records failing
    /// verification (bit-rot past the CRC, tampering) or staleness checks
    /// are counted in [`storage::RecoveryReport::rejected`] and dropped.
    ///
    /// A no-op returning a default report when no store is attached.
    ///
    /// # Errors
    ///
    /// [`storage::StorageError`] when the backend cannot be read.
    pub fn recover(&mut self) -> Result<storage::RecoveryReport, storage::StorageError> {
        let Some(store) = self.store.as_mut() else {
            return Ok(storage::RecoveryReport::default());
        };
        let (records, mut report) = store.recover()?;
        self.replaying = true;
        for rec in records {
            if !self.apply_record(rec) {
                report.rejected += 1;
            }
        }
        self.replaying = false;
        // Admit whatever hold-backs now have their predecessors. The
        // original requesters are gone, so the acks (None replies) vanish.
        let _ = self.release_pending();
        self.flush_wal();
        Ok(report)
    }

    /// Applies one recovered record through the same admission logic as
    /// live traffic. Returns `false` when the record was rejected
    /// (verification failure or staleness).
    fn apply_record(&mut self, rec: storage::Record) -> bool {
        match rec {
            storage::Record::Item(item) => {
                if !self.verify_item(&item) {
                    return false;
                }
                let current_ts = self
                    .items
                    .get(&item.meta.data)
                    .map(|i| i.meta.ts)
                    .unwrap_or(Timestamp::GENESIS);
                if item.meta.ts.is_newer_than(&current_ts) {
                    self.index_and_store(item);
                }
                true
            }
            storage::Record::MwAdmit(item) => {
                if !self.verify_item(&item) {
                    return false;
                }
                // Admitted before the crash: hold-back already passed.
                self.admit_multi_writer(item);
                true
            }
            storage::Record::Pending(item) => {
                if !self.verify_item(&item) {
                    return false;
                }
                self.pending.push((item, None));
                true
            }
            storage::Record::Context(group, signed) => self.accept_context(group, signed),
        }
    }

    /// Stages one record for the attached store (no-op without one, or
    /// during replay). Records are buffered and land in one
    /// [`storage::Store::append_batch`] when the current message finishes
    /// ([`ServerNode::flush_wal`]), so a multi-record admission — a gossip
    /// push, a hold-back release cascade — costs one backend write and at
    /// most one fsync instead of one per record.
    fn persist(&mut self, rec: storage::Record) {
        if self.replaying || self.store.is_none() {
            return;
        }
        self.wal_buf.push(rec);
    }

    /// Drains staged records into the store. Storage errors leave the
    /// in-memory state authoritative: the server keeps serving, and the
    /// failure is counted in [`ServerNode::storage_faults`] (and the
    /// store's own io_errors stat).
    fn flush_wal(&mut self) {
        if self.wal_buf.is_empty() {
            return;
        }
        let recs = std::mem::take(&mut self.wal_buf);
        if let Some(store) = self.store.as_mut() {
            let appended = match recs.as_slice() {
                [rec] => store.append(rec),
                many => store.append_batch(many),
            };
            if appended.is_err() {
                self.storage_faults = self.storage_faults.saturating_add(1);
            }
        }
    }

    /// Installs a snapshot once enough appends have accumulated. Called
    /// only at the end of [`ServerNode::handle`], where the in-memory
    /// state is consistent — never mid-admission, where a snapshot could
    /// miss the record that triggered it (or hold-backs transiently
    /// detached by the release fixpoint) and then compact it away.
    fn maybe_snapshot(&mut self) {
        let wants = self
            .store
            .as_ref()
            .is_some_and(storage::Store::wants_snapshot);
        if !wants {
            return;
        }
        let records = self.state_records();
        if let Some(store) = self.store.as_mut() {
            if store.install_snapshot(&records).is_err() {
                self.storage_faults = self.storage_faults.saturating_add(1);
            }
        }
    }

    /// The full current state as a record stream — the snapshot contents.
    /// Sorted deterministically so identical states produce identical
    /// snapshots. Volatile state (gossip dirty set, peer knowledge, the
    /// verify cache) is deliberately absent: it regenerates.
    fn state_records(&self) -> Vec<storage::Record> {
        let mut out = Vec::new();
        let mut items: Vec<&StoredItem> = self.items.values().collect();
        items.sort_by_key(|i| i.meta.data);
        for item in items {
            out.push(storage::Record::Item(item.clone()));
        }
        let mut logs: Vec<(&DataId, &WriteLog)> = self.logs.iter().collect();
        logs.sort_by_key(|(data, _)| **data);
        for (_, log) in logs {
            for entry in log.reportable() {
                out.push(storage::Record::MwAdmit(entry.clone()));
            }
        }
        for (item, _) in &self.pending {
            out.push(storage::Record::Pending(item.clone()));
        }
        let mut contexts: Vec<(&(ClientId, GroupId), &SignedContext)> =
            self.contexts.iter().collect();
        contexts.sort_by_key(|(slot, _)| **slot);
        for ((_, group), signed) in contexts {
            out.push(storage::Record::Context(*group, signed.clone()));
        }
        out
    }

    /// Handles one incoming message, returning the messages to send.
    ///
    /// Under the `GroupCommit` fsync policy the returned messages may
    /// exclude durability acknowledgements: those wait in a deferred queue
    /// until their records are synced and are released by
    /// [`ServerNode::flush_commits`] — which the serving adapter must call
    /// (per event-loop tick, or with `force` per message for adapters
    /// without a timer).
    pub fn handle(&mut self, from: Addr, msg: Msg, now: SimTime) -> Vec<(Addr, Msg)> {
        let out = match msg {
            Msg::CtxReadReq { op, client, group } => {
                if !self.dir.is_authorized(client) {
                    return Vec::new();
                }
                let stored = self.contexts.get(&(client, group)).cloned();
                vec![(from, Msg::CtxReadResp { op, stored })]
            }
            Msg::CtxWriteReq { op, group, signed } => {
                if self.accept_context(group, signed) {
                    vec![(from, Msg::CtxWriteAck { op })]
                } else {
                    Vec::new()
                }
            }
            Msg::TsScanReq { op, group } => {
                let entries = self
                    .group_index
                    .get(&group)
                    .into_iter()
                    .flatten()
                    .filter_map(|d| self.items.get(d))
                    .map(|i| i.meta.clone())
                    .collect();
                vec![(from, Msg::TsScanResp { op, entries })]
            }
            Msg::TsQueryReq { op, data } => {
                let item = self.items.get(&data);
                let meta = item.map(|i| i.meta.clone());
                let inline = item
                    .filter(|i| i.value.len() <= self.cfg.read_inline_limit)
                    .cloned();
                vec![(
                    from,
                    Msg::TsQueryResp {
                        op,
                        data,
                        meta,
                        inline,
                    },
                )]
            }
            Msg::ReadReq { op, data, ts } => {
                let item = self
                    .items
                    .get(&data)
                    .filter(|i| i.meta.ts.is_at_least(&ts))
                    .cloned();
                vec![(from, Msg::ReadResp { op, item })]
            }
            Msg::WriteReq { op, item } => match item.meta.ts {
                Timestamp::Version(_) => {
                    // An ack means "this server durably holds your write or
                    // a newer one" — so re-deliveries (client retries racing
                    // with gossip) still ack positively.
                    let ts = item.meta.ts;
                    let data = item.meta.data;
                    let accepted = self.accept_item(item)
                        || self
                            .items
                            .get(&data)
                            .is_some_and(|cur| cur.meta.ts.is_at_least(&ts));
                    let mut out = vec![(from, Msg::WriteAck { op, accepted })];
                    // A new single-writer item may satisfy the causal
                    // dependency a held-back multi-writer write is waiting on.
                    out.extend(self.release_pending());
                    out
                }
                Timestamp::Multi { .. } => self.accept_multi_writer(item, Some((from, op))),
            },
            Msg::MwReadReq { op, data } => {
                let versions = self
                    .logs
                    .get(&data)
                    .map(|l| l.reportable().cloned().collect())
                    .unwrap_or_default();
                vec![(from, Msg::MwReadResp { op, data, versions })]
            }
            Msg::GossipPush { items } => {
                self.batch_preverify(&items);
                let mut out = Vec::new();
                for item in items {
                    match item.meta.ts {
                        Timestamp::Version(_) => {
                            self.accept_item(item);
                        }
                        Timestamp::Multi { .. } => {
                            out.extend(self.accept_multi_writer(item, None));
                        }
                    }
                }
                // Gossiped single-writer items may satisfy causal
                // dependencies held-back multi-writer writes are waiting on.
                out.extend(self.release_pending());
                out
            }
            Msg::GossipSummary {
                entries,
                want_reply,
            } => self.handle_summary(from, entries, want_reply),
            // Responses are client-side messages; a server receiving one
            // (misrouted or adversarial noise) ignores it.
            Msg::CtxReadResp { .. }
            | Msg::CtxWriteAck { .. }
            | Msg::TsScanResp { .. }
            | Msg::TsQueryResp { .. }
            | Msg::ReadResp { .. }
            | Msg::WriteAck { .. }
            | Msg::MwReadResp { .. }
            | Msg::Shed { .. } => Vec::new(),
        };
        self.flush_wal();
        self.maybe_snapshot();
        self.hold_commit_acks(out, now)
    }

    /// Under the `GroupCommit` fsync policy, splits durability
    /// acknowledgements (positive write acks, context-write acks) out of
    /// the outgoing messages while their records are still unsynced, and
    /// arms the commit deadline. Everything else — reads, negative acks,
    /// gossip — passes straight through. When the store has nothing
    /// unsynced (an eager `max_batch` sync or a snapshot made everything
    /// durable) any queued acks are released immediately.
    fn hold_commit_acks(&mut self, out: Vec<(Addr, Msg)>, now: SimTime) -> Vec<(Addr, Msg)> {
        let Some(store) = self.store.as_ref() else {
            return out;
        };
        let storage::FsyncPolicy::GroupCommit { max_delay_us, .. } = store.config().fsync else {
            return out;
        };
        if !store.has_unsynced() {
            self.commit_deadline = None;
            if self.deferred_acks.is_empty() {
                return out;
            }
            let mut released = std::mem::take(&mut self.deferred_acks);
            released.extend(out);
            return released;
        }
        let mut pass = Vec::new();
        for (to, msg) in out {
            let durability_ack = matches!(
                msg,
                Msg::WriteAck { accepted: true, .. } | Msg::CtxWriteAck { .. }
            );
            if !durability_ack {
                pass.push((to, msg));
            } else if self.deferred_acks.len() < DEFERRED_ACKS_MAX {
                self.deferred_acks.push((to, msg));
            } else {
                // A wedged fsync must surface as rejected writes, not
                // unbounded memory growth: over the cap, positive write
                // acks are downgraded to explicit rejections and context
                // acks are dropped (silence), each counted as a storage
                // fault so operators and oracles see the degradation.
                self.storage_faults = self.storage_faults.saturating_add(1);
                if let Msg::WriteAck { op, .. } = msg {
                    pass.push((
                        to,
                        Msg::WriteAck {
                            op,
                            accepted: false,
                        },
                    ));
                }
            }
        }
        if self.commit_deadline.is_none() {
            self.commit_deadline = Some(now + SimTime::from_micros(max_delay_us));
        }
        pass
    }

    /// Releases deferred durability acknowledgements once their records
    /// are synced. With `force`, or once the commit deadline has passed,
    /// the store is synced now; otherwise acks release only if the store
    /// already synced on its own (eager `max_batch` sync, snapshot
    /// install). A sync *failure* still releases the acks: appends are
    /// best-effort by design (the in-memory state stays authoritative and
    /// the failure shows in [`storage::StorageStats::io_errors`]), exactly
    /// as the per-record `Always` path acks on a failed append.
    pub fn flush_commits(&mut self, now: SimTime, force: bool) -> Vec<(Addr, Msg)> {
        let unsynced = self
            .store
            .as_ref()
            .is_some_and(storage::Store::has_unsynced);
        if unsynced {
            let due = force || self.commit_deadline.is_some_and(|d| d <= now);
            if !due {
                return Vec::new();
            }
            if let Some(store) = self.store.as_mut() {
                if store.sync_now().is_err() {
                    self.storage_faults = self.storage_faults.saturating_add(1);
                }
            }
        }
        self.commit_deadline = None;
        std::mem::take(&mut self.deferred_acks)
    }

    /// When the next [`ServerNode::flush_commits`] must run at the latest
    /// (adapters cap their sleep with this).
    pub fn pending_commit_deadline(&self) -> Option<SimTime> {
        self.commit_deadline
    }

    /// Runs one gossip round: contacts `fanout` random peers with either an
    /// anti-entropy summary or a push of recently changed items.
    ///
    /// With `anti_entropy` on, the full O(items) summary goes out only
    /// every [`GossipConfig::summary_every`]-th round; the rounds in
    /// between push just the dirty set. Summaries are the dominant
    /// steady-state gossip cost once the store grows, and the exchange a
    /// summary triggers (peer pushes what we miss, replies with its own
    /// summary, we push what it misses) already repairs both directions —
    /// thinning it out loses nothing but repair latency, bounded by
    /// `summary_every × period`.
    ///
    /// [`GossipConfig::summary_every`]: crate::config::GossipConfig::summary_every
    pub fn on_gossip_timer(&mut self, _now: SimTime, rng: &mut StdRng) -> Vec<(Addr, Msg)> {
        if !self.cfg.gossip.enabled {
            return Vec::new();
        }
        let round = self.gossip_round;
        self.gossip_round = self.gossip_round.wrapping_add(1);
        let summary_round = self.cfg.gossip.anti_entropy
            && round.is_multiple_of(self.cfg.gossip.summary_every.max(1));
        let mut peers: Vec<ServerId> = self.dir.servers().filter(|&s| s != self.id).collect();
        peers.shuffle(rng);
        peers.truncate(self.cfg.gossip.fanout);
        let mut out = Vec::new();
        if summary_round {
            let entries: Vec<(DataId, Timestamp)> =
                self.items.iter().map(|(&d, i)| (d, i.meta.ts)).collect();
            for peer in peers {
                out.push((
                    Addr::Server(peer),
                    Msg::GossipSummary {
                        entries: entries.clone(),
                        want_reply: true,
                    },
                ));
            }
            // The summary exchange repairs anything the dirty set covers.
            self.dirty.clear();
        } else {
            let items: Vec<StoredItem> = self
                .dirty
                .iter()
                .filter_map(|d| self.items.get(d))
                .cloned()
                .collect();
            if !items.is_empty() {
                for peer in peers {
                    out.push((
                        Addr::Server(peer),
                        Msg::GossipPush {
                            items: items.clone(),
                        },
                    ));
                }
                self.dirty.clear();
            }
        }
        out
    }

    /// Verifies and stores a signed context if it is newer than the stored
    /// one. Returns whether it was accepted.
    fn accept_context(&mut self, group: GroupId, signed: SignedContext) -> bool {
        let Some(key) = self.dir.client_key(signed.client) else {
            return false;
        };
        let key = key.clone();
        if signed
            .verify_cached(&key, &mut self.vcache, &mut self.counters)
            .is_err()
        {
            return false;
        }
        let slot = (signed.client, group);
        match self.contexts.get(&slot) {
            Some(existing) if existing.session >= signed.session => false,
            _ => {
                self.persist(storage::Record::Context(group, signed.clone()));
                self.contexts.insert(slot, signed);
                true
            }
        }
    }

    /// Verifies and stores a single-writer item if newer than the current
    /// copy. Returns whether the item advanced the store.
    fn accept_item(&mut self, item: StoredItem) -> bool {
        if !self.verify_item(&item) {
            return false;
        }
        let current_ts = self
            .items
            .get(&item.meta.data)
            .map(|i| i.meta.ts)
            .unwrap_or(Timestamp::GENESIS);
        if !item.meta.ts.is_newer_than(&current_ts) {
            return false;
        }
        self.persist(storage::Record::Item(item.clone()));
        self.index_and_store(item);
        true
    }

    /// Multi-writer admission (paper §5.3): verify, then hold the write
    /// until its causal predecessors (per `𝒳_writer`) have arrived; once
    /// admitted, log it and ack. Admission of one write can release others.
    fn accept_multi_writer(
        &mut self,
        item: StoredItem,
        reply: Option<(Addr, crate::types::OpId)>,
    ) -> Vec<(Addr, Msg)> {
        if !self.verify_item(&item) {
            return match reply {
                Some((to, op)) => vec![(
                    to,
                    Msg::WriteAck {
                        op,
                        accepted: false,
                    },
                )],
                None => Vec::new(),
            };
        }
        self.persist(storage::Record::Pending(item.clone()));
        self.pending.push((item, reply));
        self.release_pending()
    }

    /// Fixpoint: admit every pending multi-writer write whose predecessors
    /// are present; each admission may unlock more. Called whenever new
    /// state arrives that could satisfy a causal dependency — a multi-writer
    /// write, but also single-writer writes and gossiped items.
    fn release_pending(&mut self) -> Vec<(Addr, Msg)> {
        let mut out = Vec::new();
        loop {
            let mut progressed = false;
            for (item, reply) in std::mem::take(&mut self.pending) {
                if self.causal_preds_present(&item) {
                    self.admit_multi_writer(item);
                    if let Some((to, op)) = reply {
                        out.push((to, Msg::WriteAck { op, accepted: true }));
                    }
                    progressed = true;
                } else {
                    self.pending.push((item, reply));
                }
            }
            if !progressed {
                break;
            }
        }
        out
    }

    /// Whether every causal predecessor named in the item's writer context
    /// has already been admitted at this server.
    fn causal_preds_present(&self, item: &StoredItem) -> bool {
        if !self.cfg.multi_writer.validate_causal_deps {
            return true;
        }
        let Some(ctx) = &item.meta.writer_ctx else {
            return true;
        };
        ctx.iter().all(|(data, ts)| {
            if data == item.meta.data {
                // The write itself satisfies its own entry.
                return true;
            }
            let known = self
                .items
                .get(&data)
                .map(|i| i.meta.ts)
                .unwrap_or(Timestamp::GENESIS);
            known.is_at_least(ts)
        })
    }

    fn admit_multi_writer(&mut self, item: StoredItem) {
        self.persist(storage::Record::MwAdmit(item.clone()));
        let data = item.meta.data;
        let log = self
            .logs
            .entry(data)
            .or_insert_with(|| WriteLog::new(self.cfg.multi_writer.log_capacity));
        log.insert(item.clone());
        // Advance the authoritative copy if newer.
        let current_ts = self
            .items
            .get(&data)
            .map(|i| i.meta.ts)
            .unwrap_or(Timestamp::GENESIS);
        if item.meta.ts.is_newer_than(&current_ts) {
            self.index_and_store(item);
        }
        self.gc_log(data);
    }

    fn index_and_store(&mut self, item: StoredItem) {
        self.group_index
            .entry(item.meta.group)
            .or_default()
            .insert(item.meta.data);
        self.dirty.insert(item.meta.data);
        self.items.insert(item.meta.data, item);
    }

    /// Amortizes admission crypto for a multi-item delivery: signatures
    /// not already in the verify cache are checked as one random-linear-
    /// combination batch ([`verify_batch`]) and the successes are seeded
    /// into the cache, so the per-item admission path that follows hits
    /// the cache instead of paying one public-key operation each.
    ///
    /// Counter exactness: seeding charges nothing; admission still counts
    /// one `verify_cached` per item, so
    /// [`CryptoCounters::logical_verifies`] is identical to unbatched
    /// execution. Items the batch rejects are simply not seeded — the
    /// admission path re-verifies them individually (and rejects), so a
    /// forged item never poisons honest batch-mates.
    fn batch_preverify(&mut self, items: &[StoredItem]) {
        let mut candidates: Vec<(usize, Vec<u8>)> = Vec::new();
        for (i, item) in items.iter().enumerate() {
            if self.dir.client_key(item.meta.writer).is_none() {
                continue;
            }
            let payload = item.meta.payload();
            if self
                .vcache
                .check(item.meta.writer, &payload, &item.meta.signature)
            {
                continue;
            }
            candidates.push((i, payload));
        }
        // A batch of one is strictly more work than a plain verify.
        if candidates.len() < 2 {
            return;
        }
        let dir = self.dir.clone();
        let entries: Vec<BatchEntry<'_>> = candidates
            .iter()
            .filter_map(|(i, payload)| {
                let item = items.get(*i)?;
                let key = dir.client_key(item.meta.writer)?;
                Some(BatchEntry {
                    key,
                    message: payload.as_slice(),
                    signature: &item.meta.signature,
                })
            })
            .collect();
        let bad: HashSet<usize> = match verify_batch(&entries) {
            Ok(()) => HashSet::new(),
            Err(bad) => bad.into_iter().collect(),
        };
        self.counters.count_batch(entries.len() as u64);
        for (pos, (i, payload)) in candidates.iter().enumerate() {
            if bad.contains(&pos) {
                continue;
            }
            if let Some(item) = items.get(*i) {
                self.vcache
                    .insert(item.meta.writer, payload, &item.meta.signature);
            }
        }
    }

    /// Full verification of a client-signed item (signature + value digest),
    /// skipping the public-key operation when this exact item was already
    /// verified here.
    fn verify_item(&mut self, item: &StoredItem) -> bool {
        let Some(key) = self.dir.client_key(item.meta.writer) else {
            return false;
        };
        let key = key.clone();
        item.verify_cached(&key, &mut self.vcache, &mut self.counters)
            .is_ok()
    }

    /// Processes an anti-entropy summary: learn what the peer has, send it
    /// what it is missing, optionally reply with our own summary.
    fn handle_summary(
        &mut self,
        from: Addr,
        entries: Vec<(DataId, Timestamp)>,
        want_reply: bool,
    ) -> Vec<(Addr, Msg)> {
        let Addr::Server(peer) = from else {
            return Vec::new(); // summaries are server-to-server only
        };
        let knowledge = self.peer_knowledge.entry(peer).or_default();
        let mut their_ts: HashMap<DataId, Timestamp> = HashMap::new();
        for (data, ts) in entries {
            their_ts.insert(data, ts);
            let slot = knowledge.entry(data).or_insert(Timestamp::GENESIS);
            if ts.is_newer_than(slot) {
                *slot = ts;
            }
        }
        // Items we hold that the peer is missing or holds stale.
        let missing: Vec<StoredItem> = self
            .items
            .values()
            .filter(|i| {
                let theirs = their_ts
                    .get(&i.meta.data)
                    .copied()
                    .unwrap_or(Timestamp::GENESIS);
                i.meta.ts.is_newer_than(&theirs)
            })
            .cloned()
            .collect();
        let gc_candidates: Vec<DataId> = their_ts.keys().copied().collect();
        for data in gc_candidates {
            self.gc_log(data);
        }
        let mut out = Vec::new();
        if !missing.is_empty() {
            out.push((from, Msg::GossipPush { items: missing }));
        }
        if want_reply {
            let entries: Vec<(DataId, Timestamp)> =
                self.items.iter().map(|(&d, i)| (d, i.meta.ts)).collect();
            out.push((
                from,
                Msg::GossipSummary {
                    entries,
                    want_reply: false,
                },
            ));
        }
        out
    }

    /// Garbage-collects the multi-writer log of `data`: entries older than
    /// the newest timestamp known to be held by at least `2b+1` servers
    /// (this one included) can no longer be needed by any reader (paper
    /// §5.3's erasure rule).
    fn gc_log(&mut self, data: DataId) {
        let Some(log) = self.logs.get_mut(&data) else {
            return;
        };
        let threshold = crate::quorum::multi_writer_quorum(self.dir.b());
        // Collect candidate timestamps from our own log (newest first) and
        // find the newest one replicated widely enough.
        let candidates: Vec<Timestamp> = log.reportable().map(|i| i.meta.ts).collect();
        let my_ts = self.items.get(&data).map(|i| i.meta.ts);
        for ts in candidates {
            let mut holders = 0usize;
            if my_ts.is_some_and(|mine| mine.is_at_least(&ts)) {
                holders += 1;
            }
            holders += self
                .peer_knowledge
                .values()
                .filter(|k| k.get(&data).is_some_and(|theirs| theirs.is_at_least(&ts)))
                .count();
            if holders >= threshold {
                log.retain_from(ts);
                break;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::Context;
    use crate::directory::generate_client_keys;
    use crate::item::StoredItem;
    use crate::types::OpId;
    use sstore_crypto::schnorr::SigningKey;

    struct Fixture {
        server: ServerNode,
        keys: HashMap<ClientId, SigningKey>,
        counters: CryptoCounters,
    }

    fn fixture(n: usize, b: usize) -> Fixture {
        let (keys, pubs) = generate_client_keys(4, 42);
        let dir = Directory::new(n, b, pubs);
        Fixture {
            server: ServerNode::new(ServerId(0), dir, ServerConfig::default()),
            keys,
            counters: CryptoCounters::new(),
        }
    }

    fn now() -> SimTime {
        SimTime::ZERO
    }

    fn item_v(f: &mut Fixture, client: u16, data: u64, ver: u64, value: &[u8]) -> StoredItem {
        StoredItem::create(
            DataId(data),
            GroupId(1),
            Timestamp::Version(ver),
            ClientId(client),
            None,
            value.to_vec(),
            &f.keys[&ClientId(client)],
            &mut f.counters,
        )
    }

    fn client_addr(c: u16) -> Addr {
        Addr::Client(ClientId(c))
    }

    #[test]
    fn write_then_read_roundtrip() {
        let mut f = fixture(4, 1);
        let item = item_v(&mut f, 0, 1, 1, b"hello");
        let out = f.server.handle(
            client_addr(0),
            Msg::WriteReq {
                op: OpId(1),
                item: item.clone(),
            },
            now(),
        );
        assert!(matches!(out[0].1, Msg::WriteAck { accepted: true, .. }));
        let out = f.server.handle(
            client_addr(0),
            Msg::ReadReq {
                op: OpId(2),
                data: DataId(1),
                ts: Timestamp::Version(1),
            },
            now(),
        );
        match &out[0].1 {
            Msg::ReadResp {
                item: Some(got), ..
            } => assert_eq!(got.value, b"hello"),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn stale_write_acked_but_not_stored() {
        let mut f = fixture(4, 1);
        let new = item_v(&mut f, 0, 1, 5, b"v5");
        let old = item_v(&mut f, 0, 1, 3, b"v3");
        f.server.handle(
            client_addr(0),
            Msg::WriteReq {
                op: OpId(1),
                item: new,
            },
            now(),
        );
        let out = f.server.handle(
            client_addr(0),
            Msg::WriteReq {
                op: OpId(2),
                item: old,
            },
            now(),
        );
        // The server holds something at least as new: positive ack (the
        // write is durably superseded), but the stored value is unchanged.
        assert!(matches!(out[0].1, Msg::WriteAck { accepted: true, .. }));
        assert_eq!(
            f.server.item(DataId(1)).unwrap().meta.ts,
            Timestamp::Version(5)
        );
        assert_eq!(f.server.item(DataId(1)).unwrap().value, b"v5");
    }

    #[test]
    fn forged_write_rejected() {
        let mut f = fixture(4, 1);
        let mut item = item_v(&mut f, 0, 1, 1, b"real");
        item.value = b"fake".to_vec(); // signature no longer matches
        let out = f
            .server
            .handle(client_addr(0), Msg::WriteReq { op: OpId(1), item }, now());
        assert!(matches!(
            out[0].1,
            Msg::WriteAck {
                accepted: false,
                ..
            }
        ));
        assert!(f.server.item(DataId(1)).is_none());
    }

    #[test]
    fn unknown_writer_rejected() {
        let mut f = fixture(4, 1);
        // Sign with a key not registered in the directory.
        let (other_keys, _) = generate_client_keys(10, 999);
        let item = StoredItem::create(
            DataId(1),
            GroupId(1),
            Timestamp::Version(1),
            ClientId(9),
            None,
            b"v".to_vec(),
            &other_keys[&ClientId(9)],
            &mut f.counters,
        );
        let out = f
            .server
            .handle(client_addr(0), Msg::WriteReq { op: OpId(1), item }, now());
        assert!(matches!(
            out[0].1,
            Msg::WriteAck {
                accepted: false,
                ..
            }
        ));
    }

    #[test]
    fn ts_query_reports_current_meta() {
        let mut f = fixture(4, 1);
        let out = f.server.handle(
            client_addr(0),
            Msg::TsQueryReq {
                op: OpId(1),
                data: DataId(1),
            },
            now(),
        );
        assert!(matches!(&out[0].1, Msg::TsQueryResp { meta: None, .. }));
        let item = item_v(&mut f, 0, 1, 2, b"x");
        f.server
            .handle(client_addr(0), Msg::WriteReq { op: OpId(2), item }, now());
        let out = f.server.handle(
            client_addr(0),
            Msg::TsQueryReq {
                op: OpId(3),
                data: DataId(1),
            },
            now(),
        );
        match &out[0].1 {
            Msg::TsQueryResp { meta: Some(m), .. } => assert_eq!(m.ts, Timestamp::Version(2)),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn read_of_newer_ts_than_held_returns_none() {
        let mut f = fixture(4, 1);
        let item = item_v(&mut f, 0, 1, 1, b"v1");
        f.server
            .handle(client_addr(0), Msg::WriteReq { op: OpId(1), item }, now());
        let out = f.server.handle(
            client_addr(0),
            Msg::ReadReq {
                op: OpId(2),
                data: DataId(1),
                ts: Timestamp::Version(9),
            },
            now(),
        );
        assert!(matches!(&out[0].1, Msg::ReadResp { item: None, .. }));
    }

    #[test]
    fn context_store_and_fetch() {
        let mut f = fixture(4, 1);
        let mut ctx = Context::new(GroupId(1));
        ctx.observe(DataId(1), Timestamp::Version(2));
        let signed =
            SignedContext::create(ClientId(0), 1, ctx, &f.keys[&ClientId(0)], &mut f.counters);
        let out = f.server.handle(
            client_addr(0),
            Msg::CtxWriteReq {
                op: OpId(1),
                group: GroupId(1),
                signed: signed.clone(),
            },
            now(),
        );
        assert!(matches!(out[0].1, Msg::CtxWriteAck { .. }));
        let out = f.server.handle(
            client_addr(0),
            Msg::CtxReadReq {
                op: OpId(2),
                client: ClientId(0),
                group: GroupId(1),
            },
            now(),
        );
        match &out[0].1 {
            Msg::CtxReadResp {
                stored: Some(s), ..
            } => assert_eq!(s, &signed),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn older_session_context_does_not_overwrite() {
        let mut f = fixture(4, 1);
        let newer = SignedContext::create(
            ClientId(0),
            5,
            Context::new(GroupId(1)),
            &f.keys[&ClientId(0)],
            &mut f.counters,
        );
        let older = SignedContext::create(
            ClientId(0),
            3,
            Context::new(GroupId(1)),
            &f.keys[&ClientId(0)],
            &mut f.counters,
        );
        f.server.handle(
            client_addr(0),
            Msg::CtxWriteReq {
                op: OpId(1),
                group: GroupId(1),
                signed: newer.clone(),
            },
            now(),
        );
        let out = f.server.handle(
            client_addr(0),
            Msg::CtxWriteReq {
                op: OpId(2),
                group: GroupId(1),
                signed: older,
            },
            now(),
        );
        assert!(out.is_empty(), "stale context write not acked");
        let out = f.server.handle(
            client_addr(0),
            Msg::CtxReadReq {
                op: OpId(3),
                client: ClientId(0),
                group: GroupId(1),
            },
            now(),
        );
        match &out[0].1 {
            Msg::CtxReadResp {
                stored: Some(s), ..
            } => assert_eq!(s.session, 5),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn tampered_context_rejected() {
        let mut f = fixture(4, 1);
        let mut signed = SignedContext::create(
            ClientId(0),
            1,
            Context::new(GroupId(1)),
            &f.keys[&ClientId(0)],
            &mut f.counters,
        );
        signed.session = 99; // breaks the signature
        let out = f.server.handle(
            client_addr(0),
            Msg::CtxWriteReq {
                op: OpId(1),
                group: GroupId(1),
                signed,
            },
            now(),
        );
        assert!(out.is_empty());
    }

    #[test]
    fn ts_scan_lists_group_items() {
        let mut f = fixture(4, 1);
        for (d, v) in [(1u64, 2u64), (2, 3)] {
            let item = item_v(&mut f, 0, d, v, b"x");
            f.server
                .handle(client_addr(0), Msg::WriteReq { op: OpId(d), item }, now());
        }
        let out = f.server.handle(
            client_addr(0),
            Msg::TsScanReq {
                op: OpId(9),
                group: GroupId(1),
            },
            now(),
        );
        match &out[0].1 {
            Msg::TsScanResp { entries, .. } => {
                assert_eq!(entries.len(), 2);
                // Metadata must be independently verifiable.
                let key = f.keys[&ClientId(0)].verifying_key();
                for m in entries {
                    m.verify(key, &mut f.counters).unwrap();
                }
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn gossip_push_accepts_signed_rejects_forged() {
        let mut f = fixture(4, 1);
        let good = item_v(&mut f, 0, 1, 1, b"good");
        let mut forged = item_v(&mut f, 0, 2, 1, b"orig");
        forged.value = b"tampered".to_vec();
        f.server.handle(
            Addr::Server(ServerId(1)),
            Msg::GossipPush {
                items: vec![good, forged],
            },
            now(),
        );
        assert!(f.server.item(DataId(1)).is_some());
        assert!(f.server.item(DataId(2)).is_none());
    }

    #[test]
    fn gossip_summary_sends_missing_items_and_reply() {
        let mut f = fixture(4, 1);
        let item = item_v(&mut f, 0, 1, 3, b"mine");
        f.server
            .handle(client_addr(0), Msg::WriteReq { op: OpId(1), item }, now());
        // Peer claims an older version.
        let out = f.server.handle(
            Addr::Server(ServerId(2)),
            Msg::GossipSummary {
                entries: vec![(DataId(1), Timestamp::Version(1))],
                want_reply: true,
            },
            now(),
        );
        let kinds: Vec<&str> = out
            .iter()
            .map(|(_, m)| sstore_simnet::Message::kind(m))
            .collect();
        assert!(kinds.contains(&"gossip-push"));
        assert!(kinds.contains(&"gossip-summary"));
        // Reply summary must not request another reply (no loops).
        for (_, m) in &out {
            if let Msg::GossipSummary { want_reply, .. } = m {
                assert!(!want_reply);
            }
        }
    }

    #[test]
    fn gossip_timer_contacts_fanout_peers() {
        use rand::SeedableRng;
        let mut f = fixture(7, 2);
        let item = item_v(&mut f, 0, 1, 1, b"x");
        f.server
            .handle(client_addr(0), Msg::WriteReq { op: OpId(1), item }, now());
        let mut rng = StdRng::seed_from_u64(1);
        let out = f.server.on_gossip_timer(now(), &mut rng);
        assert_eq!(out.len(), f.server.cfg.gossip.fanout);
        for (to, _) in &out {
            assert!(matches!(to, Addr::Server(s) if *s != ServerId(0)));
        }
    }

    #[test]
    fn push_mode_sends_dirty_once() {
        use rand::SeedableRng;
        let mut f = fixture(4, 1);
        f.server.cfg.gossip.anti_entropy = false;
        let item = item_v(&mut f, 0, 1, 1, b"x");
        f.server
            .handle(client_addr(0), Msg::WriteReq { op: OpId(1), item }, now());
        let mut rng = StdRng::seed_from_u64(1);
        let first = f.server.on_gossip_timer(now(), &mut rng);
        assert!(!first.is_empty());
        let second = f.server.on_gossip_timer(now(), &mut rng);
        assert!(second.is_empty(), "dirty set cleared after push");
    }

    #[test]
    fn gossip_batch_preverify_keeps_logical_verifies_exact() {
        // Two identical servers; one receives 4 items in a single push
        // (batch verification kicks in), the other receives them one push
        // at a time (pure individual verification). The §6 quantity
        // logical_verifies() must be identical; only the telemetry-only
        // batch counters may differ.
        let mut batched = fixture(4, 1);
        let mut unbatched = fixture(4, 1);
        let items: Vec<StoredItem> = (0..4)
            .map(|i| item_v(&mut batched, 0, 10 + i, 1, b"gossip"))
            .collect();
        batched.server.handle(
            Addr::Server(ServerId(1)),
            Msg::GossipPush {
                items: items.clone(),
            },
            now(),
        );
        for item in &items {
            unbatched.server.handle(
                Addr::Server(ServerId(1)),
                Msg::GossipPush {
                    items: vec![item.clone()],
                },
                now(),
            );
        }
        let b = batched.server.counters();
        let u = unbatched.server.counters();
        assert_eq!(b.logical_verifies(), u.logical_verifies());
        assert_eq!(b.logical_verifies(), 4);
        assert_eq!(b.batch_ops, 1, "4-item push verified as one batch");
        assert_eq!(b.batch_items, 4);
        assert_eq!(u.batch_ops, 0, "singleton pushes never batch");
        // The batch replaced 4 public-key ops with cache seeds: admission
        // then hit the cache for all 4.
        assert_eq!((b.verifies, b.verify_cached), (0, 4));
        assert_eq!((u.verifies, u.verify_cached), (4, 0));
        assert_eq!(batched.server.item_count(), 4);
        assert_eq!(unbatched.server.item_count(), 4);
    }

    #[test]
    fn gossip_batch_with_forged_item_admits_only_honest_ones() {
        let mut f = fixture(4, 1);
        let mut items: Vec<StoredItem> = (0..4)
            .map(|i| item_v(&mut f, 0, 20 + i, 1, b"ok"))
            .collect();
        items[2].value = b"tampered".to_vec();
        items[2].meta.value_digest = sstore_crypto::sha256::digest(b"something-else");
        f.server
            .handle(Addr::Server(ServerId(1)), Msg::GossipPush { items }, now());
        assert!(f.server.item(DataId(20)).is_some());
        assert!(f.server.item(DataId(21)).is_some());
        assert!(f.server.item(DataId(22)).is_none(), "forged item rejected");
        assert!(f.server.item(DataId(23)).is_some());
        let c = f.server.counters();
        assert_eq!(c.batch_ops, 1);
        // 3 honest items seeded by the batch (cache hits at admission);
        // the forged one fell back to an individual public-key reject.
        assert_eq!((c.verifies, c.verify_cached), (1, 3));
        assert_eq!(c.logical_verifies(), 4);
    }

    #[test]
    fn summary_cadence_pushes_dirty_between_summaries() {
        use rand::SeedableRng;
        let mut f = fixture(4, 1);
        f.server.cfg.gossip.summary_every = 3;
        let mut rng = StdRng::seed_from_u64(1);
        let kinds = |out: &Vec<(Addr, Msg)>| {
            out.iter()
                .map(|(_, m)| sstore_simnet::Message::kind(m))
                .collect::<std::collections::BTreeSet<_>>()
        };
        // Round 0: summary round.
        let item = item_v(&mut f, 0, 1, 1, b"x");
        f.server
            .handle(client_addr(0), Msg::WriteReq { op: OpId(1), item }, now());
        let out = f.server.on_gossip_timer(now(), &mut rng);
        assert_eq!(
            kinds(&out),
            std::collections::BTreeSet::from(["gossip-summary"])
        );
        // Rounds 1 and 2: dirty pushes only (summary skipped).
        let item = item_v(&mut f, 0, 2, 1, b"y");
        f.server
            .handle(client_addr(0), Msg::WriteReq { op: OpId(2), item }, now());
        let out = f.server.on_gossip_timer(now(), &mut rng);
        assert_eq!(
            kinds(&out),
            std::collections::BTreeSet::from(["gossip-push"])
        );
        let out = f.server.on_gossip_timer(now(), &mut rng);
        assert!(out.is_empty(), "dirty set cleared, no summary due");
        // Round 3: summary again.
        let out = f.server.on_gossip_timer(now(), &mut rng);
        assert_eq!(
            kinds(&out),
            std::collections::BTreeSet::from(["gossip-summary"])
        );
    }

    fn group_commit_store(max_batch: u32, max_delay_us: u64) -> storage::Store {
        storage::Store::in_memory(storage::StorageConfig {
            fsync: storage::FsyncPolicy::GroupCommit {
                max_batch,
                max_delay_us,
            },
            segment_bytes: 1 << 20,
            snapshot_every: 10_000,
        })
    }

    #[test]
    fn group_commit_defers_acks_until_flush() {
        let mut f = fixture(4, 1);
        f.server.attach_store(group_commit_store(64, 500));
        let t0 = SimTime::from_millis(10);
        let item = item_v(&mut f, 0, 1, 1, b"deferred");
        let out = f
            .server
            .handle(client_addr(0), Msg::WriteReq { op: OpId(1), item }, t0);
        assert!(out.is_empty(), "ack held back until the record is synced");
        assert_eq!(
            f.server.pending_commit_deadline(),
            Some(t0 + SimTime::from_micros(500))
        );
        // Reads pass through untouched while a commit is pending.
        let out = f.server.handle(
            client_addr(0),
            Msg::ReadReq {
                op: OpId(2),
                data: DataId(1),
                ts: Timestamp::Version(1),
            },
            t0,
        );
        assert!(matches!(out[0].1, Msg::ReadResp { .. }));
        // Before the deadline, a non-forced flush releases nothing.
        assert!(f.server.flush_commits(t0, false).is_empty());
        assert_eq!(f.server.storage_stats().unwrap().syncs, 0);
        // At the deadline the sync happens and the ack is released.
        let released = f
            .server
            .flush_commits(t0 + SimTime::from_micros(500), false);
        assert_eq!(released.len(), 1);
        assert!(matches!(
            released[0].1,
            Msg::WriteAck { accepted: true, .. }
        ));
        assert_eq!(f.server.storage_stats().unwrap().syncs, 1);
        assert!(f.server.pending_commit_deadline().is_none());
    }

    #[test]
    fn group_commit_forced_flush_releases_immediately() {
        let mut f = fixture(4, 1);
        f.server.attach_store(group_commit_store(64, 10_000));
        let item = item_v(&mut f, 0, 1, 1, b"forced");
        let out = f
            .server
            .handle(client_addr(0), Msg::WriteReq { op: OpId(1), item }, now());
        assert!(out.is_empty());
        let released = f.server.flush_commits(now(), true);
        assert_eq!(released.len(), 1);
        assert_eq!(f.server.storage_stats().unwrap().syncs, 1);
    }

    #[test]
    fn group_commit_max_batch_releases_without_timer() {
        let mut f = fixture(4, 1);
        f.server.attach_store(group_commit_store(2, 1_000_000));
        let a = item_v(&mut f, 0, 1, 1, b"a");
        let b = item_v(&mut f, 0, 2, 1, b"b");
        let out = f.server.handle(
            client_addr(0),
            Msg::WriteReq {
                op: OpId(1),
                item: a,
            },
            now(),
        );
        assert!(out.is_empty(), "first ack waits for a batch-mate");
        // The second write reaches max_batch: the store syncs eagerly and
        // BOTH acks come out of handle() itself — no timer involved.
        let out = f.server.handle(
            client_addr(0),
            Msg::WriteReq {
                op: OpId(2),
                item: b,
            },
            now(),
        );
        assert_eq!(out.len(), 2);
        for (_, msg) in &out {
            assert!(matches!(msg, Msg::WriteAck { accepted: true, .. }));
        }
        assert_eq!(f.server.storage_stats().unwrap().syncs, 1);
        assert!(f.server.pending_commit_deadline().is_none());
    }

    #[test]
    fn group_commit_unacked_write_can_be_lost_but_acked_cannot() {
        // The ack-after-fsync invariant, crash edition: a write whose ack
        // was still deferred may vanish on crash; once flush_commits has
        // released the ack, the record must survive.
        let mut f = fixture(4, 1);
        f.server.attach_store(group_commit_store(64, 500));
        let a = item_v(&mut f, 0, 1, 1, b"acked");
        f.server.handle(
            client_addr(0),
            Msg::WriteReq {
                op: OpId(1),
                item: a,
            },
            now(),
        );
        let released = f.server.flush_commits(now(), true);
        assert_eq!(released.len(), 1, "ack released after sync");
        let b = item_v(&mut f, 0, 2, 1, b"unacked");
        let out = f.server.handle(
            client_addr(0),
            Msg::WriteReq {
                op: OpId(2),
                item: b,
            },
            now(),
        );
        assert!(out.is_empty(), "second ack still deferred");
        // Crash before the second flush: only the acked write survives.
        let mut store = f.server.take_store().expect("store");
        store.crash(0);
        let (dir, cfg) = (f.server.directory(), f.server.config().clone());
        f.server = ServerNode::new(ServerId(0), dir, cfg);
        f.server.attach_store(store);
        let report = f.server.recover().expect("recovery");
        assert_eq!(report.rejected, 0);
        assert!(f.server.item(DataId(1)).is_some(), "acked write durable");
        assert!(
            f.server.item(DataId(2)).is_none(),
            "unacked write may be lost — its ack never left the server"
        );
    }

    fn restart_with_same_disk(f: &mut Fixture) -> storage::RecoveryReport {
        let store = f.server.take_store().expect("store attached");
        let (dir, cfg) = (f.server.directory(), f.server.config().clone());
        f.server = ServerNode::new(ServerId(0), dir, cfg);
        f.server.attach_store(store);
        f.server.recover().expect("recovery")
    }

    #[test]
    fn recovery_restores_items_contexts_and_holdbacks() {
        let mut f = fixture(4, 1);
        f.server
            .attach_store(storage::Store::in_memory(storage::StorageConfig::sim()));
        let item = item_v(&mut f, 0, 1, 3, b"durable");
        f.server
            .handle(client_addr(0), Msg::WriteReq { op: OpId(1), item }, now());
        let mut ctx = Context::new(GroupId(1));
        ctx.observe(DataId(1), Timestamp::Version(3));
        let signed =
            SignedContext::create(ClientId(0), 2, ctx, &f.keys[&ClientId(0)], &mut f.counters);
        f.server.handle(
            client_addr(0),
            Msg::CtxWriteReq {
                op: OpId(2),
                group: GroupId(1),
                signed: signed.clone(),
            },
            now(),
        );
        // A multi-writer write held back on a missing predecessor.
        let mut writer_ctx = Context::new(GroupId(1));
        writer_ctx.observe(DataId(7), Timestamp::Version(9));
        let held = StoredItem::create(
            DataId(2),
            GroupId(1),
            Timestamp::Multi {
                time: 1,
                writer: ClientId(1),
                digest: sstore_crypto::sha256::digest(b"held"),
            },
            ClientId(1),
            Some(writer_ctx),
            b"held".to_vec(),
            &f.keys[&ClientId(1)],
            &mut f.counters,
        );
        f.server.handle(
            client_addr(1),
            Msg::WriteReq {
                op: OpId(3),
                item: held,
            },
            now(),
        );
        assert_eq!(f.server.pending_len(), 1);

        let report = restart_with_same_disk(&mut f);
        assert_eq!(report.rejected, 0);
        assert!(!report.torn_tail);
        let got = f.server.item(DataId(1)).expect("item recovered");
        assert_eq!(got.value, b"durable");
        assert_eq!(got.meta.ts, Timestamp::Version(3));
        assert_eq!(f.server.pending_len(), 1, "hold-back recovered");
        let out = f.server.handle(
            client_addr(0),
            Msg::CtxReadReq {
                op: OpId(9),
                client: ClientId(0),
                group: GroupId(1),
            },
            now(),
        );
        match &out[0].1 {
            Msg::CtxReadResp {
                stored: Some(s), ..
            } => assert_eq!(s, &signed),
            other => panic!("unexpected {other:?}"),
        }
        // The predecessor arriving after recovery releases the hold-back.
        let pred = item_v(&mut f, 0, 7, 9, b"pred");
        f.server.handle(
            client_addr(0),
            Msg::WriteReq {
                op: OpId(10),
                item: pred,
            },
            now(),
        );
        assert_eq!(f.server.pending_len(), 0);
        assert_eq!(f.server.log_len(DataId(2)), 1);
    }

    #[test]
    fn recovery_survives_torn_tail_and_snapshot_compaction() {
        let mut f = fixture(4, 1);
        f.server
            .attach_store(storage::Store::in_memory(storage::StorageConfig {
                fsync: storage::FsyncPolicy::Always,
                segment_bytes: 2048,
                snapshot_every: 4,
            }));
        for v in 1..=10u64 {
            let item = item_v(&mut f, 0, v, v, b"x");
            f.server
                .handle(client_addr(0), Msg::WriteReq { op: OpId(v), item }, now());
        }
        let stats = f.server.storage_stats().expect("stats");
        assert!(stats.snapshots >= 1, "snapshot_every=4 must have fired");
        f.server.inject_torn_tail(&[0x13, 0x37, 0x00]);
        let report = restart_with_same_disk(&mut f);
        assert!(report.torn_tail, "torn fragment detected and truncated");
        assert_eq!(f.server.item_count(), 10, "all writes recovered");
        // The truncated tail is gone for good: a second restart is clean.
        let report = restart_with_same_disk(&mut f);
        assert!(!report.torn_tail);
        assert_eq!(f.server.item_count(), 10);
    }

    #[test]
    fn recovery_never_serves_unverifiable_records() {
        let mut f = fixture(4, 1);
        // Forge a record whose CRC is fine but whose signature is not —
        // bit-rot past the checksum, or a tampered disk.
        let mut forged = item_v(&mut f, 0, 5, 1, b"real");
        forged.value = b"tampered".to_vec();
        let mut store = storage::Store::in_memory(storage::StorageConfig::sim());
        let good = item_v(&mut f, 0, 6, 2, b"good");
        store
            .append(&storage::Record::Item(forged))
            .expect("append");
        store.append(&storage::Record::Item(good)).expect("append");
        f.server.attach_store(store);
        let report = f.server.recover().expect("recovery");
        assert_eq!(report.records, 2);
        assert_eq!(report.rejected, 1, "forged record dropped");
        assert!(
            f.server.item(DataId(5)).is_none(),
            "unverifiable record never served"
        );
        assert!(f.server.item(DataId(6)).is_some());
    }

    /// A backend whose fsync is permanently wedged: appends land, syncs
    /// always fail, so the group-commit window never closes on its own.
    #[derive(Debug)]
    struct WedgedBackend(storage::MemBackend);

    impl storage::Backend for WedgedBackend {
        fn append(&mut self, bytes: &[u8]) -> Result<(), storage::StorageError> {
            self.0.append(bytes)
        }
        fn sync(&mut self) -> Result<(), storage::StorageError> {
            Err(storage::StorageError {
                op: "fsync",
                detail: "wedged".to_string(),
            })
        }
        fn rotate(&mut self) -> Result<(), storage::StorageError> {
            self.0.rotate()
        }
        fn install_snapshot(&mut self, bytes: &[u8]) -> Result<(), storage::StorageError> {
            self.0.install_snapshot(bytes)
        }
        fn load(&mut self) -> Result<storage::Loaded, storage::StorageError> {
            self.0.load()
        }
        fn truncate_active(&mut self, len: u64) -> Result<(), storage::StorageError> {
            self.0.truncate_active(len)
        }
    }

    #[test]
    fn wedged_fsync_caps_deferred_acks_and_rejects_overflow() {
        let mut f = fixture(4, 1);
        let cfg = storage::StorageConfig {
            fsync: storage::FsyncPolicy::GroupCommit {
                max_batch: u32::MAX,
                max_delay_us: 1_000_000_000,
            },
            segment_bytes: u64::MAX,
            snapshot_every: u64::MAX,
        };
        let store =
            storage::Store::with_backend(Box::new(WedgedBackend(storage::MemBackend::new())), cfg);
        f.server.attach_store(store);
        // One signed item re-written forever: the first admission leaves
        // unsynced bytes, the wedged fsync never clears them, and every
        // positive ack after that is deferred — until the cap.
        let item = item_v(&mut f, 0, 1, 1, b"wedge");
        let extra = 5u64;
        let total = DEFERRED_ACKS_MAX as u64 + extra;
        let mut rejected = 0u64;
        for i in 0..total {
            let out = f.server.handle(
                client_addr(0),
                Msg::WriteReq {
                    op: OpId(i + 1),
                    item: item.clone(),
                },
                now(),
            );
            for (_, msg) in out {
                match msg {
                    Msg::WriteAck {
                        accepted: false, ..
                    } => rejected += 1,
                    Msg::WriteAck { accepted: true, .. } => {
                        panic!("positive ack escaped the unsynced window")
                    }
                    _ => {}
                }
            }
        }
        assert_eq!(f.server.deferred_acks_len(), DEFERRED_ACKS_MAX);
        assert_eq!(rejected, extra, "over-cap writes rejected explicitly");
        assert_eq!(f.server.storage_faults(), extra, "rejections are counted");
        // A forced flush still releases the capped queue (memory stays
        // authoritative; the failed sync is one more counted fault).
        let released = f.server.flush_commits(now(), true);
        assert_eq!(released.len(), DEFERRED_ACKS_MAX);
        assert_eq!(f.server.deferred_acks_len(), 0);
        assert_eq!(f.server.storage_faults(), extra + 1);
    }
}
