//! WAL record codec: CRC-checksummed, length-prefixed frames around
//! canonically encoded server state records.
//!
//! On-disk frame layout (all integers big-endian):
//!
//! ```text
//! [payload-len u32][crc32(payload) u32][payload]
//! ```
//!
//! The payload is one [`Record`]: a tag byte followed by the same canonical
//! encoding used on the wire (`codec.rs`), so the WAL inherits the wire
//! codec's strict bounds checking and canonicality rules. The CRC protects
//! against torn writes and bit-rot; it is *not* an authenticity mechanism —
//! every replayed record is still re-verified against the writer's
//! signature before the server serves it (verify-before-use).

use crate::codec::{
    decode_group_context, decode_stored_item, encode_group_context, encode_stored_item, CodecError,
};
use crate::item::{SignedContext, StoredItem};
use crate::types::GroupId;

/// Upper bound on a single record payload. A length field above this is
/// treated as corruption rather than an allocation request.
pub const MAX_RECORD_BYTES: usize = 16 * 1024 * 1024;

const TAG_ITEM: u8 = 1;
const TAG_MW_ADMIT: u8 = 2;
const TAG_PENDING: u8 = 3;
const TAG_CONTEXT: u8 = 4;

/// One durable unit of server state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Record {
    /// The authoritative copy of an item advanced (single-writer admission
    /// or a gossip/anti-entropy advance).
    Item(StoredItem),
    /// A multi-writer write admitted into the reportable log (which also
    /// advances the authoritative copy when newer).
    MwAdmit(StoredItem),
    /// A multi-writer write held back awaiting causal predecessors.
    Pending(StoredItem),
    /// A stored client context, keyed by the request's group (which the
    /// signature does not bind — hence stored explicitly).
    Context(GroupId, SignedContext),
}

impl Record {
    /// Canonical payload bytes: tag byte plus the wire-codec encoding.
    pub fn encode(&self) -> Vec<u8> {
        let (tag, body) = match self {
            Record::Item(i) => (TAG_ITEM, encode_stored_item(i)),
            Record::MwAdmit(i) => (TAG_MW_ADMIT, encode_stored_item(i)),
            Record::Pending(i) => (TAG_PENDING, encode_stored_item(i)),
            Record::Context(g, s) => (TAG_CONTEXT, encode_group_context(*g, s)),
        };
        let mut out = Vec::with_capacity(1 + body.len());
        out.push(tag);
        out.extend_from_slice(&body);
        out
    }

    /// Decodes a record payload (inverse of [`Record::encode`]).
    ///
    /// # Errors
    ///
    /// Any [`CodecError`] for empty, truncated, malformed or
    /// non-canonical input. Never panics, whatever the bytes.
    pub fn decode(bytes: &[u8]) -> Result<Record, CodecError> {
        let Some((tag, body)) = bytes.split_first() else {
            return Err(CodecError::Truncated);
        };
        match *tag {
            TAG_ITEM => Ok(Record::Item(decode_stored_item(body)?)),
            TAG_MW_ADMIT => Ok(Record::MwAdmit(decode_stored_item(body)?)),
            TAG_PENDING => Ok(Record::Pending(decode_stored_item(body)?)),
            TAG_CONTEXT => {
                let (group, signed) = decode_group_context(body)?;
                Ok(Record::Context(group, signed))
            }
            t => Err(CodecError::BadTag(t)),
        }
    }
}

/// CRC-32 (IEEE 802.3, reflected polynomial `0xEDB88320`) — the classic
/// zlib/Ethernet checksum, table-driven.
pub fn crc32(bytes: &[u8]) -> u32 {
    static TABLE: std::sync::OnceLock<[u32; 256]> = std::sync::OnceLock::new();
    let table = TABLE.get_or_init(|| {
        let mut table = [0u32; 256];
        for (i, slot) in table.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 {
                    0xEDB8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
            }
            *slot = c;
        }
        table
    });
    let mut crc = !0u32;
    for &b in bytes {
        let idx = ((crc ^ u32::from(b)) & 0xFF) as usize;
        crc = table.get(idx).copied().unwrap_or(0) ^ (crc >> 8);
    }
    !crc
}

/// Wraps a record payload in its on-disk frame:
/// `[len u32][crc32 u32][payload]`.
pub fn frame(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(8 + payload.len());
    out.extend_from_slice(&(payload.len() as u32).to_be_bytes());
    out.extend_from_slice(&crc32(payload).to_be_bytes());
    out.extend_from_slice(payload);
    out
}

/// Why a frame could not be read at some stream position.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameError {
    /// The stream ends inside the frame header or payload — the shape of
    /// a write torn by a crash.
    Torn,
    /// The bytes are all present but inconsistent: an overlong length
    /// field, a checksum mismatch, or a payload the record codec rejects —
    /// the shape of bit-rot (or tampering).
    Corrupt,
}

/// Reads the frame starting at `buf`. Returns the payload slice and the
/// total frame size consumed, or `Ok(None)` at an exact end of stream.
///
/// # Errors
///
/// [`FrameError::Torn`] when the stream ends mid-frame,
/// [`FrameError::Corrupt`] on a length or checksum inconsistency.
pub fn read_frame(buf: &[u8]) -> Result<Option<(&[u8], usize)>, FrameError> {
    if buf.is_empty() {
        return Ok(None);
    }
    let Some((len_bytes, rest)) = buf.split_at_checked(4) else {
        return Err(FrameError::Torn);
    };
    let Some((crc_bytes, rest)) = rest.split_at_checked(4) else {
        return Err(FrameError::Torn);
    };
    let Ok(len_arr) = <[u8; 4]>::try_from(len_bytes) else {
        return Err(FrameError::Torn);
    };
    let Ok(crc_arr) = <[u8; 4]>::try_from(crc_bytes) else {
        return Err(FrameError::Torn);
    };
    let len = u32::from_be_bytes(len_arr) as usize;
    if len > MAX_RECORD_BYTES {
        return Err(FrameError::Corrupt);
    }
    let Some((payload, _)) = rest.split_at_checked(len) else {
        return Err(FrameError::Torn);
    };
    if crc32(payload) != u32::from_be_bytes(crc_arr) {
        return Err(FrameError::Corrupt);
    }
    Ok(Some((payload, 8 + len)))
}

/// Result of scanning one segment or snapshot byte stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Scan {
    /// Frame-valid, codec-valid records in stream order, up to the first
    /// fault.
    pub records: Vec<Record>,
    /// Byte offset of the first undecodable frame, if any — the length of
    /// the valid prefix.
    pub fault_at: Option<usize>,
    /// What stopped the scan, if anything.
    pub fault: Option<FrameError>,
}

/// Scans a stream of frames, stopping at the first fault. Records after a
/// fault are unreachable (a corrupt length field makes resynchronization
/// unsound), so the valid prefix is all that is ever recovered.
pub fn scan_stream(buf: &[u8]) -> Scan {
    let mut records = Vec::new();
    let mut pos = 0usize;
    while let Some(rest) = buf.get(pos..) {
        match read_frame(rest) {
            Ok(None) => break,
            Ok(Some((payload, used))) => match Record::decode(payload) {
                Ok(r) => {
                    records.push(r);
                    pos += used;
                }
                Err(_) => {
                    return Scan {
                        records,
                        fault_at: Some(pos),
                        fault: Some(FrameError::Corrupt),
                    }
                }
            },
            Err(e) => {
                return Scan {
                    records,
                    fault_at: Some(pos),
                    fault: Some(e),
                }
            }
        }
    }
    Scan {
        records,
        fault_at: None,
        fault: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::CryptoCounters;
    use crate::types::{ClientId, DataId, Timestamp};
    use sstore_crypto::schnorr::{SchnorrParams, SigningKey};

    fn sample_item(data: u64, ver: u64) -> StoredItem {
        let key = SigningKey::from_seed(&SchnorrParams::toy(), 7);
        StoredItem::create(
            DataId(data),
            GroupId(1),
            Timestamp::Version(ver),
            ClientId(0),
            None,
            b"payload".to_vec(),
            &key,
            &mut CryptoCounters::new(),
        )
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // The standard check value for CRC-32/ISO-HDLC.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn record_roundtrip_all_tags() {
        let item = sample_item(1, 3);
        let signed = SignedContext::create(
            ClientId(0),
            1,
            crate::context::Context::new(GroupId(2)),
            &SigningKey::from_seed(&SchnorrParams::toy(), 7),
            &mut CryptoCounters::new(),
        );
        for rec in [
            Record::Item(item.clone()),
            Record::MwAdmit(item.clone()),
            Record::Pending(item),
            Record::Context(GroupId(2), signed),
        ] {
            let bytes = rec.encode();
            assert_eq!(Record::decode(&bytes).unwrap(), rec);
        }
    }

    #[test]
    fn frame_roundtrip_and_stream_scan() {
        let a = Record::Item(sample_item(1, 1));
        let b = Record::Item(sample_item(2, 5));
        let mut stream = frame(&a.encode());
        stream.extend_from_slice(&frame(&b.encode()));
        let scan = scan_stream(&stream);
        assert_eq!(scan.records, vec![a, b]);
        assert_eq!(scan.fault, None);
    }

    #[test]
    fn torn_tail_yields_valid_prefix() {
        let a = Record::Item(sample_item(1, 1));
        let b = Record::Item(sample_item(2, 5));
        let first = frame(&a.encode());
        let mut stream = first.clone();
        stream.extend_from_slice(&frame(&b.encode()));
        // Cut anywhere inside the second frame: only the first survives,
        // and the fault offset is exactly the valid prefix length.
        for cut in first.len() + 1..stream.len() {
            let scan = scan_stream(&stream[..cut]);
            assert_eq!(scan.records, vec![a.clone()], "cut at {cut}");
            assert_eq!(scan.fault_at, Some(first.len()));
            assert_eq!(scan.fault, Some(FrameError::Torn));
        }
    }

    #[test]
    fn corrupted_byte_detected() {
        let a = Record::Item(sample_item(1, 1));
        let stream = frame(&a.encode());
        for i in 8..stream.len() {
            let mut bad = stream.clone();
            bad[i] ^= 0x40;
            let scan = scan_stream(&bad);
            assert!(scan.records.is_empty(), "flip at {i} must not decode");
            assert!(scan.fault.is_some());
        }
    }

    #[test]
    fn oversized_length_is_corrupt_not_alloc() {
        let mut bytes = ((MAX_RECORD_BYTES + 1) as u32).to_be_bytes().to_vec();
        bytes.extend_from_slice(&[0u8; 12]);
        assert_eq!(read_frame(&bytes), Err(FrameError::Corrupt));
    }

    #[test]
    fn empty_stream_is_clean() {
        let scan = scan_stream(&[]);
        assert!(scan.records.is_empty() && scan.fault.is_none());
    }
}
