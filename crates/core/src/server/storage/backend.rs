//! Storage backends: where WAL and snapshot bytes physically live.
//!
//! [`FsBackend`] is the real thing — one directory per server holding
//! `snapshot.bin` plus `wal-<seq>.log` segments. [`MemBackend`] is a
//! deterministic in-memory "disk" for the simulator whose synced prefix
//! survives a modelled crash, so chaos campaigns can exercise the exact
//! recovery code without filesystem nondeterminism.

use std::fs;
use std::io::Write;
use std::path::{Path, PathBuf};

use super::StorageError;

/// Everything a backend found on open: the latest snapshot (if any) and
/// the WAL segment byte streams, oldest first. The last segment is the
/// active one.
#[derive(Debug, Default)]
pub struct Loaded {
    /// Snapshot byte stream, if a snapshot exists.
    pub snapshot: Option<Vec<u8>>,
    /// Segment byte streams, oldest first (last = active).
    pub segments: Vec<Vec<u8>>,
}

/// Where bytes physically live. Appends are sequential; torn writes only
/// appear at crash boundaries.
pub trait Backend: std::fmt::Debug + Send {
    /// Appends raw bytes to the active segment.
    ///
    /// # Errors
    ///
    /// [`StorageError`] on an I/O failure.
    fn append(&mut self, bytes: &[u8]) -> Result<(), StorageError>;

    /// Forces previously appended bytes to stable storage.
    ///
    /// # Errors
    ///
    /// [`StorageError`] on an I/O failure.
    fn sync(&mut self) -> Result<(), StorageError>;

    /// Seals the active segment (syncing it) and starts a new empty one.
    ///
    /// # Errors
    ///
    /// [`StorageError`] on an I/O failure.
    fn rotate(&mut self) -> Result<(), StorageError>;

    /// Atomically replaces the snapshot with `bytes` and deletes every
    /// WAL segment (compaction). A crash in the middle leaves either the
    /// old snapshot + old segments or the new snapshot.
    ///
    /// # Errors
    ///
    /// [`StorageError`] on an I/O failure.
    fn install_snapshot(&mut self, bytes: &[u8]) -> Result<(), StorageError>;

    /// Reads everything back for recovery.
    ///
    /// # Errors
    ///
    /// [`StorageError`] on an I/O failure.
    fn load(&mut self) -> Result<Loaded, StorageError>;

    /// Truncates the active (last) segment to `len` bytes — how recovery
    /// discards a torn tail so later appends land at a clean boundary.
    ///
    /// # Errors
    ///
    /// [`StorageError`] on an I/O failure.
    fn truncate_active(&mut self, len: u64) -> Result<(), StorageError>;

    /// Crash-injection hook: models a process crash by dropping bytes
    /// appended since the last sync, except a `keep_unsynced`-byte prefix
    /// (a write racing the crash). No-op for real disks, where the kernel
    /// decides what survived.
    fn crash(&mut self, _keep_unsynced: usize) {}
}

/// Deterministic in-memory backend for the simulator.
#[derive(Debug, Default)]
pub struct MemBackend {
    snapshot: Option<Vec<u8>>,
    sealed: Vec<Vec<u8>>,
    active: Vec<u8>,
    synced_len: usize,
}

impl MemBackend {
    /// An empty in-memory disk.
    pub fn new() -> MemBackend {
        MemBackend::default()
    }

    /// Bytes appended to the active segment since the last sync.
    pub fn unsynced_len(&self) -> usize {
        self.active.len().saturating_sub(self.synced_len)
    }
}

impl Backend for MemBackend {
    fn append(&mut self, bytes: &[u8]) -> Result<(), StorageError> {
        self.active.extend_from_slice(bytes);
        Ok(())
    }

    fn sync(&mut self) -> Result<(), StorageError> {
        self.synced_len = self.active.len();
        Ok(())
    }

    fn rotate(&mut self) -> Result<(), StorageError> {
        self.sealed.push(std::mem::take(&mut self.active));
        self.synced_len = 0;
        Ok(())
    }

    fn install_snapshot(&mut self, bytes: &[u8]) -> Result<(), StorageError> {
        self.snapshot = Some(bytes.to_vec());
        self.sealed.clear();
        self.active.clear();
        self.synced_len = 0;
        Ok(())
    }

    fn load(&mut self) -> Result<Loaded, StorageError> {
        let mut segments = self.sealed.clone();
        segments.push(self.active.clone());
        Ok(Loaded {
            snapshot: self.snapshot.clone(),
            segments,
        })
    }

    fn truncate_active(&mut self, len: u64) -> Result<(), StorageError> {
        let len = usize::try_from(len).unwrap_or(usize::MAX);
        self.active.truncate(len);
        self.synced_len = self.synced_len.min(self.active.len());
        Ok(())
    }

    fn crash(&mut self, keep_unsynced: usize) {
        let keep = self
            .synced_len
            .saturating_add(keep_unsynced)
            .min(self.active.len());
        self.active.truncate(keep);
        self.synced_len = self.synced_len.min(self.active.len());
    }
}

/// Filesystem backend: a directory holding `snapshot.bin` plus
/// `wal-<seq>.log` segments. Snapshot installation goes through a
/// write-to-temp + fsync + rename so a crash never leaves a half-written
/// snapshot in place.
#[derive(Debug)]
pub struct FsBackend {
    dir: PathBuf,
    active: fs::File,
    active_seq: u64,
}

const SNAPSHOT_NAME: &str = "snapshot.bin";
const SNAPSHOT_TMP: &str = "snapshot.tmp";

fn io_err(op: &'static str, e: &std::io::Error) -> StorageError {
    StorageError {
        op,
        detail: e.to_string(),
    }
}

fn segment_path(dir: &Path, seq: u64) -> PathBuf {
    dir.join(format!("wal-{seq:08}.log"))
}

/// Segment sequence numbers present in `dir`, ascending.
fn segment_seqs(dir: &Path) -> Result<Vec<u64>, StorageError> {
    let entries = fs::read_dir(dir).map_err(|e| io_err("read_dir", &e))?;
    let mut seqs = Vec::new();
    for entry in entries {
        let entry = entry.map_err(|e| io_err("read_dir", &e))?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        let Some(rest) = name.strip_prefix("wal-") else {
            continue;
        };
        let Some(digits) = rest.strip_suffix(".log") else {
            continue;
        };
        if let Ok(seq) = digits.parse::<u64>() {
            seqs.push(seq);
        }
    }
    seqs.sort_unstable();
    Ok(seqs)
}

/// Fsync the directory itself so renames and newly created files are
/// durable (required on POSIX for crash consistency of the namespace).
fn sync_dir(dir: &Path) -> Result<(), StorageError> {
    let d = fs::File::open(dir).map_err(|e| io_err("open_dir", &e))?;
    d.sync_all().map_err(|e| io_err("sync_dir", &e))
}

impl FsBackend {
    /// Opens (creating if needed) the storage directory and its active
    /// segment.
    ///
    /// # Errors
    ///
    /// [`StorageError`] when the directory cannot be created or the
    /// active segment cannot be opened.
    pub fn open(dir: &Path) -> Result<FsBackend, StorageError> {
        fs::create_dir_all(dir).map_err(|e| io_err("create_dir", &e))?;
        let active_seq = segment_seqs(dir)?.last().copied().unwrap_or(0);
        let active = fs::OpenOptions::new()
            .create(true)
            .append(true)
            .read(true)
            .open(segment_path(dir, active_seq))
            .map_err(|e| io_err("open_segment", &e))?;
        Ok(FsBackend {
            dir: dir.to_path_buf(),
            active,
            active_seq,
        })
    }

    fn open_fresh_segment(&mut self, seq: u64) -> Result<(), StorageError> {
        self.active = fs::OpenOptions::new()
            .create(true)
            .append(true)
            .read(true)
            .open(segment_path(&self.dir, seq))
            .map_err(|e| io_err("open_segment", &e))?;
        self.active_seq = seq;
        sync_dir(&self.dir)
    }
}

impl Backend for FsBackend {
    fn append(&mut self, bytes: &[u8]) -> Result<(), StorageError> {
        self.active
            .write_all(bytes)
            .map_err(|e| io_err("append", &e))
    }

    fn sync(&mut self) -> Result<(), StorageError> {
        self.active.sync_data().map_err(|e| io_err("fsync", &e))
    }

    fn rotate(&mut self) -> Result<(), StorageError> {
        self.sync()?;
        let next = self.active_seq.saturating_add(1);
        self.open_fresh_segment(next)
    }

    fn install_snapshot(&mut self, bytes: &[u8]) -> Result<(), StorageError> {
        let tmp = self.dir.join(SNAPSHOT_TMP);
        let mut f = fs::File::create(&tmp).map_err(|e| io_err("snapshot_create", &e))?;
        f.write_all(bytes)
            .map_err(|e| io_err("snapshot_write", &e))?;
        f.sync_all().map_err(|e| io_err("snapshot_fsync", &e))?;
        drop(f);
        fs::rename(&tmp, self.dir.join(SNAPSHOT_NAME))
            .map_err(|e| io_err("snapshot_rename", &e))?;
        sync_dir(&self.dir)?;
        // The snapshot now supersedes every segment: delete them and
        // start a fresh active one.
        let old = segment_seqs(&self.dir)?;
        let next = old.last().copied().unwrap_or(0).saturating_add(1);
        for seq in old {
            fs::remove_file(segment_path(&self.dir, seq))
                .map_err(|e| io_err("segment_remove", &e))?;
        }
        self.open_fresh_segment(next)
    }

    fn load(&mut self) -> Result<Loaded, StorageError> {
        let snapshot = match fs::read(self.dir.join(SNAPSHOT_NAME)) {
            Ok(bytes) => Some(bytes),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => None,
            Err(e) => return Err(io_err("snapshot_read", &e)),
        };
        let mut segments = Vec::new();
        for seq in segment_seqs(&self.dir)? {
            segments.push(
                fs::read(segment_path(&self.dir, seq)).map_err(|e| io_err("segment_read", &e))?,
            );
        }
        Ok(Loaded { snapshot, segments })
    }

    fn truncate_active(&mut self, len: u64) -> Result<(), StorageError> {
        self.active
            .set_len(len)
            .map_err(|e| io_err("truncate", &e))?;
        self.active.sync_data().map_err(|e| io_err("fsync", &e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mem_crash_keeps_synced_prefix() {
        let mut m = MemBackend::new();
        m.append(b"durable").unwrap();
        m.sync().unwrap();
        m.append(b"lost-on-crash").unwrap();
        assert_eq!(m.unsynced_len(), 13);
        m.crash(4);
        let loaded = m.load().unwrap();
        assert_eq!(loaded.segments, vec![b"durablelost".to_vec()]);
    }

    #[test]
    fn mem_rotate_and_snapshot() {
        let mut m = MemBackend::new();
        m.append(b"one").unwrap();
        m.rotate().unwrap();
        m.append(b"two").unwrap();
        let loaded = m.load().unwrap();
        assert_eq!(loaded.segments.len(), 2);
        m.install_snapshot(b"snap").unwrap();
        let loaded = m.load().unwrap();
        assert_eq!(loaded.snapshot.as_deref(), Some(&b"snap"[..]));
        assert_eq!(loaded.segments, vec![Vec::<u8>::new()]);
    }

    #[test]
    fn fs_backend_roundtrip() {
        let dir = std::env::temp_dir().join(format!(
            "sstore-backend-test-{}-{:?}",
            std::process::id(),
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .unwrap()
                .as_nanos()
        ));
        let mut b = FsBackend::open(&dir).unwrap();
        b.append(b"hello ").unwrap();
        b.append(b"world").unwrap();
        b.sync().unwrap();
        b.rotate().unwrap();
        b.append(b"tail").unwrap();
        let loaded = b.load().unwrap();
        assert_eq!(loaded.snapshot, None);
        assert_eq!(
            loaded.segments,
            vec![b"hello world".to_vec(), b"tail".to_vec()]
        );

        // Reopen at the same dir: same contents, appends go to the tail.
        drop(b);
        let mut b = FsBackend::open(&dir).unwrap();
        b.append(b"+more").unwrap();
        let loaded = b.load().unwrap();
        assert_eq!(
            loaded.segments,
            vec![b"hello world".to_vec(), b"tail+more".to_vec()]
        );

        b.truncate_active(4).unwrap();
        let loaded = b.load().unwrap();
        assert_eq!(
            loaded.segments,
            vec![b"hello world".to_vec(), b"tail".to_vec()]
        );

        b.install_snapshot(b"snapped").unwrap();
        let loaded = b.load().unwrap();
        assert_eq!(loaded.snapshot.as_deref(), Some(&b"snapped"[..]));
        assert_eq!(loaded.segments, vec![Vec::<u8>::new()]);

        fs::remove_dir_all(&dir).unwrap();
    }
}
