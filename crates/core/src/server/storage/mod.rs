//! Durable server state: append-only WAL plus snapshots, crash-consistent
//! recovery.
//!
//! Layout per server data directory:
//!
//! - `wal-<seq>.log` — append-only segments of CRC-framed [`Record`]s
//!   (format in [`record`]); the highest-numbered segment is active and
//!   rotates once it exceeds [`StorageConfig::segment_bytes`].
//! - `snapshot.bin` — the full server state as one frame stream, installed
//!   atomically (write-temp + fsync + rename) every
//!   [`StorageConfig::snapshot_every`] appends; installation deletes all
//!   WAL segments (compaction).
//!
//! Recovery replays the snapshot then every segment in order, with two
//! distinct failure rules:
//!
//! - **Torn tail** — a fault in the *active* (last) segment marks the end
//!   of the stream: the valid prefix is kept and the file is physically
//!   truncated at the fault offset so later appends land on a clean
//!   boundary. This is the expected shape of a crash mid-append.
//! - **Bit-rot** — a fault in the snapshot or a *sealed* segment is real
//!   corruption: the remainder of that stream is unrecoverable (a corrupt
//!   length field makes resynchronization unsound) and the affected
//!   records are treated as absent. They are counted in
//!   [`RecoveryReport::bitrot`] and never served.
//!
//! The CRC only proves the bytes survived the disk; authenticity comes
//! from replaying every record through the same verify-before-use
//! admission path as live traffic (`ServerNode::recover`).

mod backend;
mod record;

pub use backend::{Backend, FsBackend, Loaded, MemBackend};
pub use record::{
    crc32, frame, read_frame, scan_stream, FrameError, Record, Scan, MAX_RECORD_BYTES,
};

use std::path::Path;

/// When appended WAL bytes are forced to stable storage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// Sync after every record: an acknowledged write is durable. The
    /// default, and what the chaos harness assumes for `recover`-mode
    /// restarts.
    Always,
    /// Sync every `n` records (and on rotation); a crash can lose up to
    /// `n - 1` acknowledged records. `EveryN(0)` is normalized to
    /// [`FsyncPolicy::Always`] at store construction.
    EveryN(u32),
    /// Group commit: defer the sync so records accumulated across a
    /// readiness tick share one fsync, but **hold acknowledgements back**
    /// until that sync lands (`ServerNode::flush_commits`). The store
    /// syncs eagerly once `max_batch` records are pending; the serving
    /// layer forces a sync no later than `max_delay_us` after the first
    /// deferred record. Unlike [`FsyncPolicy::EveryN`], no acknowledged
    /// write is ever lost: acks trail durability instead of leading it.
    GroupCommit {
        /// Sync as soon as this many records are pending.
        max_batch: u32,
        /// Upper bound on how long the serving layer may hold an ack
        /// waiting for more batch-mates, in microseconds.
        max_delay_us: u64,
    },
    /// Never sync explicitly; the OS decides. A crash can lose anything
    /// since the last rotation or snapshot.
    Never,
}

/// Persistence tuning knobs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StorageConfig {
    /// Fsync policy for appends.
    pub fsync: FsyncPolicy,
    /// Rotate the active segment once it would exceed this many bytes.
    pub segment_bytes: u64,
    /// Install a snapshot (and compact the WAL) every this many appends.
    pub snapshot_every: u64,
}

impl Default for StorageConfig {
    fn default() -> Self {
        StorageConfig {
            fsync: FsyncPolicy::Always,
            segment_bytes: 4 * 1024 * 1024,
            snapshot_every: 4096,
        }
    }
}

impl StorageConfig {
    /// Small segments and frequent snapshots, so simulator-scale
    /// workloads actually exercise rotation and compaction.
    pub fn sim() -> Self {
        StorageConfig {
            fsync: FsyncPolicy::Always,
            segment_bytes: 16 * 1024,
            snapshot_every: 64,
        }
    }
}

/// A storage failure. Appends are best-effort from the protocol's point
/// of view: on error the server keeps serving from memory and the failure
/// shows up in [`StorageStats::io_errors`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StorageError {
    /// The operation that failed (`"append"`, `"fsync"`, ...).
    pub op: &'static str,
    /// Human-readable cause.
    pub detail: String,
}

impl std::fmt::Display for StorageError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "storage {} failed: {}", self.op, self.detail)
    }
}

impl std::error::Error for StorageError {}

/// Pipeline counters for observability and tests.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StorageStats {
    /// Records appended to the WAL.
    pub appended: u64,
    /// Explicit fsyncs issued.
    pub syncs: u64,
    /// Segment rotations.
    pub rotations: u64,
    /// Snapshots installed.
    pub snapshots: u64,
    /// Append/sync/snapshot failures (the server kept serving).
    pub io_errors: u64,
    /// Multi-record `append_batch` calls issued.
    pub batch_appends: u64,
    /// Records written through `append_batch` (so the mean batch size is
    /// `batched_records / batch_appends`).
    pub batched_records: u64,
}

/// What recovery found on disk.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Records read back from disk (before re-verification).
    pub records: u64,
    /// Replayed records rejected by verify-before-use or staleness
    /// checks during replay (filled in by `ServerNode::recover`).
    pub rejected: u64,
    /// Whether a torn tail was truncated off the active segment.
    pub torn_tail: bool,
    /// Bit-rot faults: streams cut short in the snapshot or a sealed
    /// segment. Affected records are treated as absent, never served.
    pub bitrot: u64,
}

/// The persistence pipeline: frames records, rotates segments, installs
/// snapshots, and recovers the valid prefix after a crash.
#[derive(Debug)]
pub struct Store {
    backend: Box<dyn Backend>,
    cfg: StorageConfig,
    stats: StorageStats,
    active_bytes: u64,
    unsynced: u32,
    since_snapshot: u64,
}

impl Store {
    /// A store over a deterministic in-memory backend (simulator use).
    pub fn in_memory(cfg: StorageConfig) -> Store {
        Store::with_backend(Box::new(MemBackend::new()), cfg)
    }

    /// Opens a store over a filesystem directory, creating it if needed.
    /// Call [`Store::recover`] (via `ServerNode::recover`) before
    /// appending.
    ///
    /// # Errors
    ///
    /// [`StorageError`] when the directory or active segment cannot be
    /// opened.
    pub fn open(dir: &Path, cfg: StorageConfig) -> Result<Store, StorageError> {
        Ok(Store::with_backend(Box::new(FsBackend::open(dir)?), cfg))
    }

    /// A store over any backend. `EveryN(0)` would otherwise mean "sync
    /// after every 0 records" — an always-true threshold dressed up as a
    /// batching policy — so it is normalized to [`FsyncPolicy::Always`].
    pub fn with_backend(backend: Box<dyn Backend>, mut cfg: StorageConfig) -> Store {
        if cfg.fsync == FsyncPolicy::EveryN(0) {
            cfg.fsync = FsyncPolicy::Always;
        }
        Store {
            backend,
            cfg,
            stats: StorageStats::default(),
            active_bytes: 0,
            unsynced: 0,
            since_snapshot: 0,
        }
    }

    /// The configured knobs.
    pub fn config(&self) -> &StorageConfig {
        &self.cfg
    }

    /// Pipeline counters so far.
    pub fn stats(&self) -> StorageStats {
        self.stats
    }

    /// Appends one record: frame, rotate if the segment is full, then
    /// sync per the configured [`FsyncPolicy`].
    ///
    /// # Errors
    ///
    /// [`StorageError`] on an I/O failure; the in-memory server state is
    /// unaffected and the caller may keep serving.
    pub fn append(&mut self, rec: &Record) -> Result<(), StorageError> {
        let bytes = frame(&rec.encode());
        let len = bytes.len() as u64;
        if self.active_bytes > 0 && self.active_bytes.saturating_add(len) > self.cfg.segment_bytes {
            self.rotate()?;
        }
        self.backend.append(&bytes).inspect_err(|_| {
            self.stats.io_errors += 1;
        })?;
        self.active_bytes += len;
        self.stats.appended += 1;
        self.since_snapshot += 1;
        self.after_append(1)
    }

    /// Appends a batch of records as one backend write per segment,
    /// rotating between records when the active segment fills. The fsync
    /// policy sees the batch as `recs.len()` records (not one append
    /// call), so `EveryN(n)` still bounds loss at `n - 1` records and
    /// `GroupCommit` syncs once `max_batch` records are pending.
    ///
    /// # Errors
    ///
    /// [`StorageError`] on an I/O failure; records framed before the
    /// failure may or may not have reached the backend, which is the
    /// same torn-tail exposure a crash mid-append has.
    pub fn append_batch(&mut self, recs: &[Record]) -> Result<(), StorageError> {
        if recs.is_empty() {
            return Ok(());
        }
        let mut buf: Vec<u8> = Vec::new();
        for rec in recs {
            let bytes = frame(&rec.encode());
            let len = bytes.len() as u64;
            let pending = buf.len() as u64;
            if self.active_bytes.saturating_add(pending) > 0
                && self
                    .active_bytes
                    .saturating_add(pending)
                    .saturating_add(len)
                    > self.cfg.segment_bytes
            {
                self.flush_chunk(&mut buf)?;
                self.rotate()?;
            }
            buf.extend_from_slice(&bytes);
        }
        self.flush_chunk(&mut buf)?;
        self.stats.appended += recs.len() as u64;
        self.stats.batch_appends += 1;
        self.stats.batched_records += recs.len() as u64;
        self.since_snapshot += recs.len() as u64;
        self.after_append(recs.len() as u32)
    }

    /// Writes the accumulated chunk to the active segment in one backend
    /// call and charges it to `active_bytes`.
    fn flush_chunk(&mut self, buf: &mut Vec<u8>) -> Result<(), StorageError> {
        if buf.is_empty() {
            return Ok(());
        }
        self.backend.append(buf).inspect_err(|_| {
            self.stats.io_errors += 1;
        })?;
        self.active_bytes += buf.len() as u64;
        buf.clear();
        Ok(())
    }

    /// Applies the fsync policy after `n` records landed in the backend.
    fn after_append(&mut self, n: u32) -> Result<(), StorageError> {
        match self.cfg.fsync {
            FsyncPolicy::Always => self.sync()?,
            FsyncPolicy::EveryN(every) => {
                self.unsynced = self.unsynced.saturating_add(n);
                if self.unsynced >= every.max(1) {
                    self.sync()?;
                }
            }
            FsyncPolicy::GroupCommit { max_batch, .. } => {
                self.unsynced = self.unsynced.saturating_add(n);
                if self.unsynced >= max_batch.max(1) {
                    self.sync()?;
                }
            }
            FsyncPolicy::Never => {}
        }
        Ok(())
    }

    /// Whether appended records are still waiting on an explicit sync
    /// (only meaningful under `EveryN` / `GroupCommit`).
    pub fn has_unsynced(&self) -> bool {
        self.unsynced > 0
    }

    /// Forces deferred records to stable storage now — the group-commit
    /// flush point. No-op when nothing is pending.
    ///
    /// # Errors
    ///
    /// [`StorageError`] when the backend sync fails.
    pub fn sync_now(&mut self) -> Result<(), StorageError> {
        if self.unsynced > 0 {
            self.sync()?;
        }
        Ok(())
    }

    fn sync(&mut self) -> Result<(), StorageError> {
        self.backend.sync().inspect_err(|_| {
            self.stats.io_errors += 1;
        })?;
        self.stats.syncs += 1;
        self.unsynced = 0;
        Ok(())
    }

    fn rotate(&mut self) -> Result<(), StorageError> {
        self.backend.rotate().inspect_err(|_| {
            self.stats.io_errors += 1;
        })?;
        self.stats.rotations += 1;
        self.active_bytes = 0;
        self.unsynced = 0;
        Ok(())
    }

    /// Whether enough appends have accumulated to warrant a snapshot.
    pub fn wants_snapshot(&self) -> bool {
        self.since_snapshot >= self.cfg.snapshot_every.max(1)
    }

    /// Atomically replaces the snapshot with the given full-state record
    /// stream and compacts the WAL.
    ///
    /// # Errors
    ///
    /// [`StorageError`] on an I/O failure.
    pub fn install_snapshot(&mut self, records: &[Record]) -> Result<(), StorageError> {
        let mut blob = Vec::new();
        for rec in records {
            blob.extend_from_slice(&frame(&rec.encode()));
        }
        self.backend.install_snapshot(&blob).inspect_err(|_| {
            self.stats.io_errors += 1;
        })?;
        self.stats.snapshots += 1;
        self.active_bytes = 0;
        self.unsynced = 0;
        self.since_snapshot = 0;
        Ok(())
    }

    /// Reads everything back, repairing the tail: snapshot first, then
    /// each segment in order, applying the torn-tail / bit-rot rules from
    /// the module docs. Physically truncates a torn active segment.
    ///
    /// # Errors
    ///
    /// [`StorageError`] when the backend cannot be read or repaired.
    pub fn recover(&mut self) -> Result<(Vec<Record>, RecoveryReport), StorageError> {
        let loaded = self.backend.load()?;
        let mut report = RecoveryReport::default();
        let mut records = Vec::new();
        if let Some(snapshot) = &loaded.snapshot {
            let scan = scan_stream(snapshot);
            if scan.fault.is_some() {
                report.bitrot += 1;
            }
            records.extend(scan.records);
        }
        let last = loaded.segments.len().saturating_sub(1);
        let mut active_len = 0u64;
        for (i, segment) in loaded.segments.iter().enumerate() {
            let scan = scan_stream(segment);
            if i == last {
                active_len = scan.fault_at.unwrap_or(segment.len()) as u64;
                if scan.fault.is_some() {
                    report.torn_tail = true;
                }
            } else if scan.fault.is_some() {
                report.bitrot += 1;
            }
            records.extend(scan.records);
        }
        if report.torn_tail {
            self.backend.truncate_active(active_len)?;
        }
        self.active_bytes = active_len;
        report.records = records.len() as u64;
        Ok((records, report))
    }

    /// Crash-point injection hook: appends raw bytes with no framing and
    /// no sync, modelling a record cut mid-append by a crash. Recovery
    /// must truncate this tail. Test/chaos use only.
    pub fn inject_torn_tail(&mut self, bytes: &[u8]) {
        if self.backend.append(bytes).is_ok() {
            self.active_bytes += bytes.len() as u64;
        }
    }

    /// Crash-injection hook: drops unsynced bytes except a
    /// `keep_unsynced` prefix (see [`Backend::crash`]). The unsynced
    /// counter resets — the dropped records no longer exist, so there is
    /// nothing left to sync.
    pub fn crash(&mut self, keep_unsynced: usize) {
        self.backend.crash(keep_unsynced);
        self.unsynced = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::item::StoredItem;
    use crate::metrics::CryptoCounters;
    use crate::types::{ClientId, DataId, GroupId, Timestamp};
    use sstore_crypto::schnorr::{SchnorrParams, SigningKey};

    fn item(data: u64, ver: u64) -> StoredItem {
        let key = SigningKey::from_seed(&SchnorrParams::toy(), 11);
        StoredItem::create(
            DataId(data),
            GroupId(1),
            Timestamp::Version(ver),
            ClientId(0),
            None,
            vec![0xAB; 16],
            &key,
            &mut CryptoCounters::new(),
        )
    }

    fn sim_store() -> Store {
        Store::in_memory(StorageConfig {
            fsync: FsyncPolicy::Always,
            segment_bytes: 512,
            snapshot_every: 1000,
        })
    }

    #[test]
    fn append_recover_roundtrip() {
        let mut s = sim_store();
        let recs: Vec<Record> = (0..5).map(|i| Record::Item(item(i, i + 1))).collect();
        for r in &recs {
            s.append(r).unwrap();
        }
        assert!(s.stats().rotations > 0, "small segments must rotate");
        let (back, report) = s.recover().unwrap();
        assert_eq!(back, recs);
        assert!(!report.torn_tail);
        assert_eq!(report.bitrot, 0);
    }

    #[test]
    fn batch_append_roundtrips_and_rotates_like_singles() {
        let mut batched = sim_store();
        let mut singles = sim_store();
        let recs: Vec<Record> = (0..9).map(|i| Record::Item(item(i, i + 1))).collect();
        batched.append_batch(&recs).unwrap();
        for r in &recs {
            singles.append(r).unwrap();
        }
        assert!(batched.stats().rotations > 0, "small segments must rotate");
        assert_eq!(batched.stats().rotations, singles.stats().rotations);
        assert_eq!(batched.stats().appended, 9);
        assert_eq!(batched.stats().batch_appends, 1);
        assert_eq!(batched.stats().batched_records, 9);
        let (back, report) = batched.recover().unwrap();
        assert_eq!(back, recs);
        assert!(!report.torn_tail);
        assert_eq!(report.bitrot, 0);
    }

    #[test]
    fn every_n_counts_records_not_append_calls() {
        let mut s = Store::in_memory(StorageConfig {
            fsync: FsyncPolicy::EveryN(3),
            segment_bytes: 1 << 20,
            snapshot_every: 1000,
        });
        // One batched call carrying 3 records must trip the threshold,
        // exactly as 3 separate appends would.
        let recs: Vec<Record> = (0..3).map(|i| Record::Item(item(i, i + 1))).collect();
        s.append_batch(&recs).unwrap();
        assert_eq!(s.stats().syncs, 1, "3 records in one call reach EveryN(3)");
        assert!(!s.has_unsynced());
        // A 2-record batch stays below the threshold and remains volatile.
        s.append_batch(&recs[..2]).unwrap();
        assert_eq!(s.stats().syncs, 1);
        assert!(s.has_unsynced());
        s.crash(0);
        let (back, _) = s.recover().unwrap();
        assert_eq!(back, recs, "only the synced batch survives");
    }

    #[test]
    fn every_n_zero_is_clamped_to_always() {
        let mut s = Store::in_memory(StorageConfig {
            fsync: FsyncPolicy::EveryN(0),
            segment_bytes: 1 << 20,
            snapshot_every: 1000,
        });
        assert_eq!(s.config().fsync, FsyncPolicy::Always);
        let a = Record::Item(item(1, 1));
        s.append(&a).unwrap();
        assert_eq!(s.stats().syncs, 1);
        s.crash(0);
        let (back, _) = s.recover().unwrap();
        assert_eq!(back, vec![a]);
    }

    #[test]
    fn group_commit_defers_until_sync_now_or_max_batch() {
        let mut s = Store::in_memory(StorageConfig {
            fsync: FsyncPolicy::GroupCommit {
                max_batch: 4,
                max_delay_us: 1_000,
            },
            segment_bytes: 1 << 20,
            snapshot_every: 1000,
        });
        let recs: Vec<Record> = (0..6).map(|i| Record::Item(item(i, i + 1))).collect();
        // Two records: below max_batch, so nothing is synced yet.
        s.append_batch(&recs[..2]).unwrap();
        assert_eq!(s.stats().syncs, 0);
        assert!(s.has_unsynced());
        // The explicit flush point makes them durable in one fsync.
        s.sync_now().unwrap();
        assert_eq!(s.stats().syncs, 1);
        assert!(!s.has_unsynced());
        s.sync_now().unwrap();
        assert_eq!(s.stats().syncs, 1, "idle flush is a no-op");
        // A 4-record batch reaches max_batch and syncs eagerly.
        s.append_batch(&recs[2..]).unwrap();
        assert_eq!(s.stats().syncs, 2);
        s.crash(0);
        let (back, _) = s.recover().unwrap();
        assert_eq!(back, recs, "everything synced before the crash");
    }

    #[test]
    fn group_commit_unsynced_records_lost_without_flush() {
        let mut s = Store::in_memory(StorageConfig {
            fsync: FsyncPolicy::GroupCommit {
                max_batch: 64,
                max_delay_us: 1_000,
            },
            segment_bytes: 1 << 20,
            snapshot_every: 1000,
        });
        let a = Record::Item(item(1, 1));
        s.append(&a).unwrap();
        assert!(s.has_unsynced());
        s.crash(0);
        let (back, _) = s.recover().unwrap();
        assert_eq!(
            back,
            Vec::<Record>::new(),
            "records the server has not flushed (and so has not acked) can vanish"
        );
    }

    #[test]
    fn torn_tail_truncated_and_appendable() {
        let mut s = Store::in_memory(StorageConfig::default());
        let a = Record::Item(item(1, 1));
        s.append(&a).unwrap();
        s.inject_torn_tail(&[0xDE, 0xAD, 0xBE]);
        let (back, report) = s.recover().unwrap();
        assert_eq!(back, vec![a.clone()]);
        assert!(report.torn_tail);
        // The torn fragment is physically gone: a post-recovery append
        // lands on a clean boundary and both records read back.
        let b = Record::Item(item(2, 7));
        s.append(&b).unwrap();
        let (back, report) = s.recover().unwrap();
        assert_eq!(back, vec![a, b]);
        assert!(!report.torn_tail);
    }

    #[test]
    fn unsynced_records_lost_on_crash_with_every_n() {
        let mut s = Store::in_memory(StorageConfig {
            fsync: FsyncPolicy::EveryN(100),
            segment_bytes: 1 << 20,
            snapshot_every: 1000,
        });
        let a = Record::Item(item(1, 1));
        let b = Record::Item(item(2, 2));
        s.append(&a).unwrap();
        s.append(&b).unwrap();
        s.crash(0);
        let (back, _) = s.recover().unwrap();
        assert_eq!(back, Vec::<Record>::new(), "nothing was synced");
    }

    #[test]
    fn crash_mid_append_leaves_recoverable_prefix() {
        let a = Record::Item(item(1, 1));
        let b = Record::Item(item(2, 2));
        // Nothing synced; the crash keeps the whole first frame plus a
        // 5-byte prefix of the second — a torn tail.
        let mut s = Store::in_memory(StorageConfig {
            fsync: FsyncPolicy::Never,
            ..StorageConfig::default()
        });
        s.append(&a).unwrap();
        s.append(&b).unwrap();
        s.crash(frame(&a.encode()).len() + 5);
        let (back, report) = s.recover().unwrap();
        assert_eq!(back, vec![a]);
        assert!(report.torn_tail);
    }

    #[test]
    fn snapshot_compacts_and_survives() {
        let mut s = Store::in_memory(StorageConfig {
            fsync: FsyncPolicy::Always,
            segment_bytes: 1 << 20,
            snapshot_every: 3,
        });
        let recs: Vec<Record> = (0..3).map(|i| Record::Item(item(i, i + 1))).collect();
        for r in &recs {
            s.append(r).unwrap();
        }
        assert!(s.wants_snapshot());
        s.install_snapshot(&recs).unwrap();
        let tail = Record::Item(item(9, 9));
        s.append(&tail).unwrap();
        let (back, report) = s.recover().unwrap();
        assert_eq!(back.len(), 4);
        assert_eq!(back.last(), Some(&tail));
        assert_eq!(report.bitrot, 0);
        assert_eq!(s.stats().snapshots, 1);
    }

    #[test]
    fn sealed_segment_corruption_is_bitrot_not_torn() {
        // Build a store with a sealed segment, then corrupt the sealed
        // one: recovery must flag bit-rot, keep the active segment's
        // records, and not truncate anything.
        let mut mem = MemBackend::new();
        let a = Record::Item(item(1, 1));
        let b = Record::Item(item(2, 2));
        let mut sealed = frame(&a.encode());
        // Flip a payload byte: CRC now mismatches.
        if let Some(byte) = sealed.last_mut() {
            *byte ^= 0xFF;
        }
        mem.append(&sealed).unwrap();
        mem.rotate().unwrap();
        mem.append(&frame(&b.encode())).unwrap();
        mem.sync().unwrap();
        let mut s = Store::with_backend(Box::new(mem), StorageConfig::default());
        let (back, report) = s.recover().unwrap();
        assert_eq!(back, vec![b]);
        assert_eq!(report.bitrot, 1);
        assert!(!report.torn_tail);
    }

    #[test]
    fn corrupt_snapshot_is_flagged_and_wal_still_replays() {
        let mut mem = MemBackend::new();
        let a = Record::Item(item(1, 1));
        mem.install_snapshot(b"not a frame stream").unwrap();
        mem.append(&frame(&a.encode())).unwrap();
        mem.sync().unwrap();
        let mut s = Store::with_backend(Box::new(mem), StorageConfig::default());
        let (back, report) = s.recover().unwrap();
        assert_eq!(back, vec![a]);
        assert_eq!(report.bitrot, 1);
    }
}
