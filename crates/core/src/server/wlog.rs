//! Per-item multi-writer write log (paper §5.3).
//!
//! Non-malicious servers "log the writes and report a set of latest writes
//! for a particular data item so that a client can choose a common value
//! from b+1 lists" — keeping an overwritten value readable while its
//! replacement disseminates. Entries are erased once a newer value is known
//! to sit at `2b+1` servers (driven by [`retain_from`]) or when the
//! capacity bound is hit.
//!
//! [`retain_from`]: WriteLog::retain_from

use std::collections::VecDeque;

use crate::item::StoredItem;
use crate::types::{Timestamp, TsOrder};

/// Bounded newest-first log of admitted writes for one data item.
#[derive(Debug, Clone)]
pub struct WriteLog {
    entries: VecDeque<StoredItem>,
    capacity: usize,
}

impl WriteLog {
    /// Creates an empty log bounded at `capacity` entries. A zero
    /// capacity is clamped to 1 — a log must at least hold the current
    /// value, and a configuration typo should degrade capacity, not
    /// crash a server that verifies Byzantine input for a living.
    pub fn new(capacity: usize) -> Self {
        WriteLog {
            entries: VecDeque::new(),
            capacity: capacity.max(1),
        }
    }

    /// Number of retained entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the log holds nothing.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Inserts an admitted write, keeping entries sorted newest-first and
    /// deduplicating identical timestamps. Equivocating writes (same
    /// `(time, writer)`, different digest) are *both* retained so clients
    /// can observe the writer fault.
    pub fn insert(&mut self, item: StoredItem) {
        let ts = item.meta.ts;
        // Dedup first: an identical timestamp anywhere means a duplicate
        // delivery (gossip and client retries re-send items freely).
        if self
            .entries
            .iter()
            .any(|e| ts.compare(&e.meta.ts) == TsOrder::Equal)
        {
            return;
        }
        let mut idx = self.entries.len();
        for (i, existing) in self.entries.iter().enumerate() {
            match ts.compare(&existing.meta.ts) {
                TsOrder::Greater => {
                    idx = i;
                    break;
                }
                TsOrder::FaultyWriter => {
                    // Keep both as evidence; order deterministically by
                    // digest so all correct servers report the same list.
                    let after = match (&ts, &existing.meta.ts) {
                        (
                            Timestamp::Multi { digest: d1, .. },
                            Timestamp::Multi { digest: d2, .. },
                        ) => d1 > d2,
                        _ => false,
                    };
                    idx = if after { i } else { i + 1 };
                    break;
                }
                TsOrder::Equal | TsOrder::Less | TsOrder::Incomparable => continue,
            }
        }
        self.entries.insert(idx, item);
        while self.entries.len() > self.capacity {
            self.entries.pop_back();
        }
    }

    /// Iterates reportable entries, newest first.
    pub fn reportable(&self) -> impl Iterator<Item = &StoredItem> + '_ {
        self.entries.iter()
    }

    /// Drops every entry strictly older than `ts` (the GC rule: a value
    /// replicated at `2b+1` servers makes its predecessors unneeded).
    pub fn retain_from(&mut self, ts: Timestamp) {
        self.entries
            .retain(|e| !matches!(e.meta.ts.compare(&ts), TsOrder::Less));
    }

    /// The newest entry, if any.
    pub fn newest(&self) -> Option<&StoredItem> {
        self.entries.front()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::CryptoCounters;
    use crate::types::{ClientId, DataId, GroupId};
    use sstore_crypto::schnorr::{SchnorrParams, SigningKey};
    use sstore_crypto::sha256::digest;

    fn mk(time: u64, writer: u16, value: &[u8]) -> StoredItem {
        let key = SigningKey::from_seed(&SchnorrParams::toy(), writer as u64);
        let ts = Timestamp::Multi {
            time,
            writer: ClientId(writer),
            digest: digest(value),
        };
        StoredItem::create(
            DataId(1),
            GroupId(1),
            ts,
            ClientId(writer),
            None,
            value.to_vec(),
            &key,
            &mut CryptoCounters::new(),
        )
    }

    #[test]
    fn insert_keeps_newest_first() {
        let mut log = WriteLog::new(4);
        log.insert(mk(2, 0, b"b"));
        log.insert(mk(1, 0, b"a"));
        log.insert(mk(3, 0, b"c"));
        let times: Vec<u64> = log.reportable().map(|i| i.meta.ts.time()).collect();
        assert_eq!(times, vec![3, 2, 1]);
        assert_eq!(log.newest().unwrap().value, b"c");
    }

    #[test]
    fn duplicate_timestamps_deduplicated() {
        let mut log = WriteLog::new(4);
        log.insert(mk(1, 0, b"a"));
        log.insert(mk(1, 0, b"a"));
        assert_eq!(log.len(), 1);
    }

    #[test]
    fn capacity_evicts_oldest() {
        let mut log = WriteLog::new(2);
        for t in 1..=5 {
            log.insert(mk(t, 0, b"v"));
        }
        assert_eq!(log.len(), 2);
        let times: Vec<u64> = log.reportable().map(|i| i.meta.ts.time()).collect();
        assert_eq!(times, vec![5, 4]);
    }

    #[test]
    fn equivocating_writes_both_retained() {
        let mut log = WriteLog::new(4);
        log.insert(mk(1, 0, b"v1"));
        log.insert(mk(1, 0, b"v2")); // same (time, writer), different digest
        assert_eq!(log.len(), 2, "evidence of the faulty writer kept");
    }

    #[test]
    fn equivocating_insert_order_is_deterministic() {
        let mut a = WriteLog::new(4);
        a.insert(mk(1, 0, b"v1"));
        a.insert(mk(1, 0, b"v2"));
        let mut b = WriteLog::new(4);
        b.insert(mk(1, 0, b"v2"));
        b.insert(mk(1, 0, b"v1"));
        let order_a: Vec<Vec<u8>> = a.reportable().map(|i| i.value.clone()).collect();
        let order_b: Vec<Vec<u8>> = b.reportable().map(|i| i.value.clone()).collect();
        assert_eq!(order_a, order_b);
    }

    #[test]
    fn retain_from_drops_older() {
        let mut log = WriteLog::new(8);
        for t in 1..=5 {
            log.insert(mk(t, 0, b"v"));
        }
        let cutoff = mk(3, 0, b"v").meta.ts;
        log.retain_from(cutoff);
        let times: Vec<u64> = log.reportable().map(|i| i.meta.ts.time()).collect();
        assert_eq!(times, vec![5, 4, 3]);
    }

    #[test]
    fn different_writers_same_time_ordered_by_writer() {
        let mut log = WriteLog::new(4);
        log.insert(mk(1, 1, b"w1"));
        log.insert(mk(1, 2, b"w2"));
        // Higher writer id wins the tie → newest first puts writer 2 first.
        let writers: Vec<u16> = log
            .reportable()
            .map(|i| match i.meta.ts {
                Timestamp::Multi { writer, .. } => writer.0,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(writers, vec![2, 1]);
    }

    #[test]
    fn zero_capacity_clamps_to_one() {
        let mut log = WriteLog::new(0);
        for t in 1..=3 {
            log.insert(mk(t, 0, b"v"));
        }
        assert_eq!(log.len(), 1);
        let times: Vec<u64> = log.reportable().map(|i| i.meta.ts.time()).collect();
        assert_eq!(times, vec![3], "the newest value must be the survivor");
    }
}
