//! Simulation harness: runs secure-store clusters inside `sstore-simnet`.
//!
//! [`ClusterBuilder`] wires up `n` servers (optionally Byzantine via
//! [`Behavior`]) and any number of scripted clients, then [`Cluster`]
//! drives the run and exposes per-node results, crypto counters and network
//! statistics — everything the benchmark harness needs to regenerate the
//! paper's §6 cost tables.
//!
//! ```
//! use sstore_core::sim::{ClusterBuilder, Step};
//! use sstore_core::client::ClientOp;
//! use sstore_core::types::{Consistency, DataId, GroupId};
//!
//! let mut cluster = ClusterBuilder::new(4, 1)
//!     .seed(7)
//!     .client(vec![
//!         Step::Do(ClientOp::Connect { group: GroupId(1), recover: false }),
//!         Step::Do(ClientOp::Write {
//!             data: DataId(1), group: GroupId(1),
//!             consistency: Consistency::Mrc, value: b"hello".to_vec(),
//!         }),
//!         Step::Do(ClientOp::Disconnect { group: GroupId(1) }),
//!     ])
//!     .build();
//! cluster.run_to_quiescence();
//! let results = cluster.client_results(0);
//! assert!(results.iter().all(|r| r.outcome.is_ok()));
//! ```

use std::collections::VecDeque;
use std::sync::Arc;

use rand::Rng;

use sstore_crypto::schnorr::SigningKey;
use sstore_simnet::{
    Actor, Context as SimContext, NetEvent, NodeId, SimConfig, SimTime, Simulation,
};

use crate::client::{ClientCore, ClientOp, OpResult, Output};
use crate::config::{ClientConfig, ServerConfig};
use crate::directory::{generate_client_keys, Directory};
use crate::faults::{AdversaryState, Behavior};
use crate::metrics::CryptoCounters;
use crate::server::storage::{StorageConfig, Store};
use crate::server::{Addr, ServerNode};
use crate::types::{ClientId, ServerId};
use crate::wire::Msg;

/// Maps protocol addresses to simulator node ids.
///
/// Servers occupy nodes `0..n`; clients occupy `n..n+c`.
#[derive(Debug, Clone, Copy)]
pub struct AddrBook {
    n_servers: usize,
}

impl AddrBook {
    /// Creates a book for a cluster with `n_servers` servers.
    pub fn new(n_servers: usize) -> Self {
        AddrBook { n_servers }
    }

    /// The simulator node carrying `addr`.
    pub fn node_of(&self, addr: Addr) -> NodeId {
        match addr {
            Addr::Server(s) => NodeId(s.0 as usize),
            Addr::Client(c) => NodeId(self.n_servers + c.0 as usize),
        }
    }

    /// The protocol address of simulator node `node`.
    pub fn addr_of(&self, node: NodeId) -> Addr {
        if node.0 < self.n_servers {
            Addr::Server(ServerId(node.0 as u16))
        } else {
            Addr::Client(ClientId((node.0 - self.n_servers) as u16))
        }
    }
}

/// Timer token used for gossip rounds at servers.
const GOSSIP_TOKEN: u64 = u64::MAX;
/// Timer token used to advance a client's script.
const SCRIPT_TOKEN: u64 = u64::MAX - 1;
/// Timer token that restarts a server with wiped state.
const RESTART_WIPE_TOKEN: u64 = u64::MAX - 2;
/// Timer token that restarts a server recovering from its store.
const RESTART_RECOVER_TOKEN: u64 = u64::MAX - 3;
/// Timer token that flushes a server's group-commit window: syncs the
/// store and releases the acks held back until durability.
const COMMIT_TOKEN: u64 = u64::MAX - 4;

/// What a restarted server comes back with.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RestartMode {
    /// Fresh, empty state — the process *and* its disk are gone (the
    /// pre-durability chaos behaviour, kept as an explicit mode).
    Wipe,
    /// Replay the server's store through verify-before-use: a process
    /// crash with stable storage.
    Recover,
}

/// Simulator actor wrapping a [`ServerNode`], with optional Byzantine
/// behaviour layered on its wire traffic.
pub struct ServerActor {
    node: ServerNode,
    book: AddrBook,
    behavior: Behavior,
    adversary: AdversaryState,
    /// Deadline the currently armed [`COMMIT_TOKEN`] timer targets, so a
    /// burst of writes in one group-commit window arms one timer, not one
    /// per write.
    commit_armed: Option<SimTime>,
}

impl ServerActor {
    /// Wraps `node` with the given behaviour.
    pub fn new(node: ServerNode, book: AddrBook, behavior: Behavior) -> Self {
        ServerActor {
            node,
            book,
            behavior,
            adversary: AdversaryState::new(),
            commit_armed: None,
        }
    }

    /// Arms (or re-arms) the group-commit flush timer to match the
    /// server's pending commit deadline, if any.
    fn arm_commit(&mut self, ctx: &mut SimContext<'_, Msg>) {
        match self.node.pending_commit_deadline() {
            Some(deadline) => {
                if self.commit_armed != Some(deadline) {
                    self.commit_armed = Some(deadline);
                    ctx.set_timer(deadline.saturating_sub(ctx.now()), COMMIT_TOKEN);
                }
            }
            None => self.commit_armed = None,
        }
    }

    /// The wrapped server (inspection hook).
    pub fn node(&self) -> &ServerNode {
        &self.node
    }

    fn dispatch(&self, outbound: Vec<(Addr, Msg)>, ctx: &mut SimContext<'_, Msg>) {
        let mutated = self.adversary.mutate_outbound(self.behavior, outbound);
        for (to, msg) in mutated {
            ctx.send(self.book.node_of(to), msg);
        }
    }

    /// Replaces the wrapped server with a freshly constructed one, as a
    /// process restart would. In [`RestartMode::Recover`] the old node's
    /// store survives and is replayed — after a torn fragment is injected
    /// at its tail, modelling the append the crash cut short. In
    /// [`RestartMode::Wipe`] the disk is replaced along with the process.
    fn restart(&mut self, mode: RestartMode, ctx: &mut SimContext<'_, Msg>) {
        let id = self.node.id();
        let dir = self.node.directory();
        let cfg = self.node.config().clone();
        let mut fresh = ServerNode::new(id, dir, cfg);
        match (mode, self.node.take_store()) {
            (RestartMode::Recover, Some(mut store)) => {
                // A crash first loses whatever the group-commit window had
                // not fsynced yet (keeping a random prefix, as a write
                // racing the crash would) — a no-op under `Always`, where
                // everything is synced — then the torn fragment models the
                // append the crash cut short.
                store.crash(ctx.rng().gen_range(0..16usize));
                let torn_len = ctx.rng().gen_range(3..24usize);
                let torn: Vec<u8> = (0..torn_len).map(|_| ctx.rng().gen()).collect();
                store.inject_torn_tail(&torn);
                fresh.attach_store(store);
                let _ = fresh.recover();
            }
            (RestartMode::Wipe, Some(store)) => {
                fresh.attach_store(Store::in_memory(store.config().clone()));
            }
            (_, None) => {}
        }
        self.node = fresh;
        self.adversary = AdversaryState::new();
        // Any deferred acks died with the process; the armed flush timer
        // (if one is in flight) finds nothing pending and is a no-op.
        self.commit_armed = None;
    }
}

impl Actor<Msg> for ServerActor {
    fn on_message(&mut self, from: NodeId, msg: Msg, ctx: &mut SimContext<'_, Msg>) {
        if self.behavior == Behavior::Crash {
            return;
        }
        self.adversary.observe_inbound(&msg);
        let from_addr = self.book.addr_of(from);
        let out = self.node.handle(from_addr, msg, ctx.now());
        self.dispatch(out, ctx);
        self.arm_commit(ctx);
    }

    fn on_timer(&mut self, token: u64, ctx: &mut SimContext<'_, Msg>) {
        if token == COMMIT_TOKEN {
            if self.behavior == Behavior::Crash {
                return;
            }
            let out = self.node.flush_commits(ctx.now(), false);
            self.dispatch(out, ctx);
            // Not-yet-due deadline (stale timer): re-arm for the rest.
            self.commit_armed = None;
            self.arm_commit(ctx);
            return;
        }
        if token == RESTART_WIPE_TOKEN || token == RESTART_RECOVER_TOKEN {
            let mode = if token == RESTART_RECOVER_TOKEN {
                RestartMode::Recover
            } else {
                RestartMode::Wipe
            };
            self.restart(mode, ctx);
            return;
        }
        if token != GOSSIP_TOKEN || self.behavior == Behavior::Crash {
            return;
        }
        let now = ctx.now();
        let out = {
            let rng = ctx.rng();
            self.node.on_gossip_timer(now, rng)
        };
        self.dispatch(out, ctx);
        // Re-arm with ±10% jitter so servers do not gossip in lockstep.
        let period = self.node.gossip_period();
        let jitter = period.as_micros() / 10;
        let delay = if jitter > 0 {
            SimTime::from_micros(period.as_micros() - jitter + ctx.rng().gen_range(0..=2 * jitter))
        } else {
            period
        };
        ctx.set_timer(delay, GOSSIP_TOKEN);
    }

    fn as_any_mut(&mut self) -> Option<&mut dyn std::any::Any> {
        Some(self)
    }
}

/// One step of a client script.
#[derive(Debug, Clone)]
pub enum Step {
    /// Issue an operation and wait for it to complete.
    Do(ClientOp),
    /// Pause for the given simulated duration.
    Wait(SimTime),
    /// Lose all volatile state (context!) as if the process crashed.
    Crash,
}

/// Simulator actor wrapping a [`ClientCore`] plus a script driver.
pub struct ClientActor {
    core: ClientCore,
    book: AddrBook,
    script: VecDeque<Step>,
    results: Vec<OpResult>,
    inflight_script_op: bool,
}

impl ClientActor {
    /// Creates a scripted client.
    pub fn new(core: ClientCore, book: AddrBook, script: Vec<Step>) -> Self {
        ClientActor {
            core,
            book,
            script: script.into(),
            results: Vec::new(),
            inflight_script_op: false,
        }
    }

    /// Results of completed operations, in completion order.
    pub fn results(&self) -> &[OpResult] {
        &self.results
    }

    /// Whether the script has fully run and no operation is in flight.
    pub fn is_idle(&self) -> bool {
        self.script.is_empty() && !self.inflight_script_op && self.core.inflight() == 0
    }

    /// The wrapped client core (inspection hook).
    pub fn core(&self) -> &ClientCore {
        &self.core
    }

    fn apply(&mut self, out: Output, ctx: &mut SimContext<'_, Msg>) {
        for (to, msg) in out.sends {
            ctx.send(self.book.node_of(Addr::Server(to)), msg);
        }
        for (delay, token) in out.timers {
            ctx.set_timer(delay, token);
        }
        let completed = !out.done.is_empty();
        self.results.extend(out.done);
        if completed {
            self.inflight_script_op = false;
            self.advance_script(ctx);
        }
    }

    fn advance_script(&mut self, ctx: &mut SimContext<'_, Msg>) {
        while !self.inflight_script_op {
            match self.script.pop_front() {
                None => return,
                Some(Step::Crash) => {
                    self.core.crash();
                }
                Some(Step::Wait(d)) => {
                    ctx.set_timer(d, SCRIPT_TOKEN);
                    return;
                }
                Some(Step::Do(op)) => {
                    let now = ctx.now();
                    let (_, out) = {
                        let rng = ctx.rng();
                        self.core.begin(op, now, rng)
                    };
                    self.inflight_script_op = true;
                    self.apply(out, ctx);
                    // apply() clears the flag again if the op completed
                    // synchronously (it cannot today, but stay defensive).
                }
            }
        }
    }
}

impl Actor<Msg> for ClientActor {
    fn on_message(&mut self, from: NodeId, msg: Msg, ctx: &mut SimContext<'_, Msg>) {
        let Addr::Server(sid) = self.book.addr_of(from) else {
            return; // clients only talk to servers
        };
        let out = self.core.on_message(sid, msg, ctx.now());
        self.apply(out, ctx);
    }

    fn on_timer(&mut self, token: u64, ctx: &mut SimContext<'_, Msg>) {
        if token == SCRIPT_TOKEN {
            self.advance_script(ctx);
            return;
        }
        let out = self.core.on_timeout(token, ctx.now());
        self.apply(out, ctx);
    }

    fn as_any_mut(&mut self) -> Option<&mut dyn std::any::Any> {
        Some(self)
    }
}

/// Builder for a simulated secure-store cluster.
#[derive(Debug)]
pub struct ClusterBuilder {
    n: usize,
    b: usize,
    seed: u64,
    sim_config: Option<SimConfig>,
    server_config: ServerConfig,
    client_config: ClientConfig,
    behaviors: Vec<Behavior>,
    scripts: Vec<Vec<Step>>,
    durable: Option<StorageConfig>,
}

impl ClusterBuilder {
    /// Starts a builder for `n` servers tolerating `b` faults.
    pub fn new(n: usize, b: usize) -> Self {
        ClusterBuilder {
            n,
            b,
            seed: 42,
            sim_config: None,
            server_config: ServerConfig::default(),
            client_config: ClientConfig::default(),
            behaviors: vec![Behavior::Honest; n],
            scripts: Vec::new(),
            durable: None,
        }
    }

    /// Attaches a deterministic in-memory store to every server, so
    /// restarts can run in [`RestartMode::Recover`].
    pub fn durable(mut self, cfg: StorageConfig) -> Self {
        self.durable = Some(cfg);
        self
    }

    /// Sets the run seed (default 42).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Uses a custom network configuration (default: LAN with the seed).
    pub fn network(mut self, config: SimConfig) -> Self {
        self.sim_config = Some(config);
        self
    }

    /// Overrides the server configuration.
    pub fn server_config(mut self, config: ServerConfig) -> Self {
        self.server_config = config;
        self
    }

    /// Overrides the client configuration.
    pub fn client_config(mut self, config: ClientConfig) -> Self {
        self.client_config = config;
        self
    }

    /// Assigns a Byzantine behaviour to server `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx >= n`.
    pub fn behavior(mut self, idx: usize, behavior: Behavior) -> Self {
        self.behaviors[idx] = behavior;
        self
    }

    /// Adds a scripted client; clients get ids `C0, C1, …` in call order.
    pub fn client(mut self, script: Vec<Step>) -> Self {
        self.scripts.push(script);
        self
    }

    /// Builds the cluster.
    ///
    /// # Panics
    ///
    /// Panics if `(n, b)` is an invalid configuration.
    pub fn build(self) -> Cluster {
        let client_count = self.scripts.len().max(1) as u16;
        let (signing, verifying) = generate_client_keys(client_count, self.seed ^ 0xc11e);
        let dir = Directory::new(self.n, self.b, verifying);
        let book = AddrBook::new(self.n);
        let sim_config = self.sim_config.unwrap_or_else(|| SimConfig::lan(self.seed));
        let mut sim = Simulation::new(sim_config);
        for i in 0..self.n {
            let mut cfg = self.server_config.clone();
            if self.behaviors[i] == Behavior::Premature {
                cfg.multi_writer.validate_causal_deps = false;
            }
            let mut node = ServerNode::new(ServerId(i as u16), dir.clone(), cfg);
            if let Some(storage_cfg) = &self.durable {
                node.attach_store(Store::in_memory(storage_cfg.clone()));
            }
            let id = sim.add_node(ServerActor::new(node, book, self.behaviors[i]));
            // Stagger initial gossip across the first period.
            let period = self.server_config.gossip.period.as_micros().max(1);
            sim.schedule_timer(
                id,
                SimTime::from_micros((i as u64 * period) / self.n as u64),
                GOSSIP_TOKEN,
            );
        }
        let mut client_nodes = Vec::new();
        for (i, script) in self.scripts.into_iter().enumerate() {
            let cid = ClientId(i as u16);
            let key: SigningKey = signing[&cid].clone();
            let core = ClientCore::new(cid, dir.clone(), self.client_config.clone(), key);
            let id = sim.add_node(ClientActor::new(core, book, script));
            client_nodes.push(id);
            sim.schedule_timer(id, SimTime::ZERO, SCRIPT_TOKEN);
        }
        Cluster {
            sim,
            book,
            dir,
            n: self.n,
            client_nodes,
            signing_keys: signing,
        }
    }
}

/// A running simulated cluster.
pub struct Cluster {
    /// The underlying simulation (public for advanced manipulation such as
    /// partitions).
    pub sim: Simulation<Msg>,
    book: AddrBook,
    dir: Arc<Directory>,
    n: usize,
    client_nodes: Vec<NodeId>,
    signing_keys: std::collections::HashMap<ClientId, SigningKey>,
}

impl Cluster {
    /// Runs until every client script has completed and no client operation
    /// is in flight (periodic gossip keeps the raw event queue non-empty
    /// forever, so "drain the queue" is not a usable stop condition).
    ///
    /// # Panics
    ///
    /// Panics if clients are still busy after an hour of simulated time —
    /// that indicates a stuck protocol, not a slow one.
    pub fn run_to_quiescence(&mut self) {
        let deadline = self.sim.now() + SimTime::from_secs(3600);
        while !self.clients_idle() {
            assert!(
                self.sim.now() < deadline,
                "clients stuck after 1h simulated"
            );
            let chunk = self.sim.now() + SimTime::from_millis(100);
            self.sim.run_until(chunk);
        }
    }

    /// Runs until every client is idle or simulated time reaches
    /// `deadline`, whichever comes first. Returns whether the clients went
    /// idle — the non-panicking alternative to
    /// [`Cluster::run_to_quiescence`] for harnesses (like the chaos
    /// campaign engine) where a stuck run is a *finding*, not a bug.
    pub fn run_until_idle(&mut self, deadline: SimTime) -> bool {
        while !self.clients_idle() {
            if self.sim.now() >= deadline {
                return false;
            }
            let chunk = (self.sim.now() + SimTime::from_millis(100)).min(deadline);
            self.sim.run_until(chunk);
        }
        true
    }

    /// Whether every scripted client has finished all its work.
    pub fn clients_idle(&mut self) -> bool {
        let nodes = self.client_nodes.clone();
        nodes.iter().all(|&n| {
            self.sim.with_node(n, |a| {
                a.as_any_mut()
                    .and_then(|x| x.downcast_mut::<ClientActor>())
                    .map(|c| c.is_idle())
                    .expect("client node")
            })
        })
    }

    /// Runs until the given simulated time.
    pub fn run_until(&mut self, t: SimTime) {
        self.sim.run_until(t);
    }

    /// Lets the cluster run for an additional `d` of simulated time (e.g.
    /// to let dissemination settle after the scripts finish).
    pub fn drain(&mut self, d: SimTime) {
        let t = self.sim.now() + d;
        self.sim.run_until(t);
    }

    /// The cluster's directory.
    pub fn directory(&self) -> &Arc<Directory> {
        &self.dir
    }

    /// The address book.
    pub fn book(&self) -> AddrBook {
        self.book
    }

    /// Signing key of client `i` (for crafting adversarial writes in
    /// tests).
    pub fn signing_key(&self, client: u16) -> &SigningKey {
        &self.signing_keys[&ClientId(client)]
    }

    /// Completed operation results of client `i`.
    pub fn client_results(&mut self, i: usize) -> Vec<OpResult> {
        let node = self.client_nodes[i];
        self.sim.with_node(node, |a| {
            a.as_any_mut()
                .and_then(|x| x.downcast_mut::<ClientActor>())
                .map(|c| c.results().to_vec())
                .expect("client node")
        })
    }

    /// Crypto counters of client `i`.
    pub fn client_counters(&mut self, i: usize) -> CryptoCounters {
        let node = self.client_nodes[i];
        self.sim.with_node(node, |a| {
            a.as_any_mut()
                .and_then(|x| x.downcast_mut::<ClientActor>())
                .map(|c| c.core().counters())
                .expect("client node")
        })
    }

    /// Crypto counters of server `i`.
    pub fn server_counters(&mut self, i: usize) -> CryptoCounters {
        self.sim.with_node(NodeId(i), |a| {
            a.as_any_mut()
                .and_then(|x| x.downcast_mut::<ServerActor>())
                .map(|s| s.node().counters())
                .expect("server node")
        })
    }

    /// Runs `f` against server `i`'s state machine.
    pub fn with_server<R>(&mut self, i: usize, f: impl FnOnce(&ServerNode) -> R) -> R {
        self.sim.with_node(NodeId(i), |a| {
            let actor = a
                .as_any_mut()
                .and_then(|x| x.downcast_mut::<ServerActor>())
                .expect("server node");
            f(actor.node())
        })
    }

    /// Sum of crypto counters across all servers.
    pub fn total_server_counters(&mut self) -> CryptoCounters {
        (0..self.n).fold(CryptoCounters::new(), |acc, i| {
            acc.merged(self.server_counters(i))
        })
    }

    /// Schedules server `i` to go down at `from` and come back at `to`
    /// (times relative to now, which is setup time for fault schedules),
    /// restarting per `mode`. The down/up window drops deliveries as
    /// before; the restart itself fires as a timer right after the node
    /// comes back up, before any same-instant deliveries reach it.
    pub fn schedule_server_restart(
        &mut self,
        server: usize,
        from: SimTime,
        to: SimTime,
        mode: RestartMode,
    ) {
        let node = NodeId(server);
        self.sim.schedule_net_event(from, NetEvent::NodeDown(node));
        self.sim.schedule_net_event(to, NetEvent::NodeUp(node));
        let token = match mode {
            RestartMode::Wipe => RESTART_WIPE_TOKEN,
            RestartMode::Recover => RESTART_RECOVER_TOKEN,
        };
        self.sim.schedule_timer(node, to, token);
    }

    /// Posts a raw message from a (possibly malicious) client directly into
    /// the network — used to mount protocol-level attacks in tests.
    pub fn inject_from_client(&mut self, client: u16, to: ServerId, msg: Msg) {
        let from = self.book.node_of(Addr::Client(ClientId(client)));
        let to = self.book.node_of(Addr::Server(to));
        self.sim.post(from, to, msg);
    }
}
