//! Session and context edge cases: group isolation, session monotonicity,
//! unauthorized clients, empty reads, repeated sessions.

use sstore_core::client::{ClientOp, OpKind, Outcome};
use sstore_core::sim::{ClusterBuilder, Step};
use sstore_core::types::{ClientId, Consistency, DataId, GroupId, ServerId};
use sstore_core::wire::Msg;
use sstore_core::OpId;
use sstore_simnet::SimTime;

fn connect(g: u32) -> Step {
    Step::Do(ClientOp::Connect {
        group: GroupId(g),
        recover: false,
    })
}

fn disconnect(g: u32) -> Step {
    Step::Do(ClientOp::Disconnect { group: GroupId(g) })
}

fn write(g: u32, data: u64, value: &[u8]) -> Step {
    Step::Do(ClientOp::Write {
        data: DataId(data),
        group: GroupId(g),
        consistency: Consistency::Mrc,
        value: value.to_vec(),
    })
}

fn read(g: u32, data: u64) -> Step {
    Step::Do(ClientOp::Read {
        data: DataId(data),
        group: GroupId(g),
        consistency: Consistency::Mrc,
    })
}

#[test]
fn groups_have_independent_contexts() {
    // Items with the same DataId live in different groups; context from
    // one group must not leak into the other's acquisition.
    let mut cluster = ClusterBuilder::new(4, 1)
        .seed(1)
        .client(vec![
            connect(1),
            connect(2),
            write(1, 1, b"group1"),
            write(2, 7, b"group2"),
            disconnect(1),
            disconnect(2),
            connect(1),
            connect(2),
        ])
        .build();
    cluster.run_to_quiescence();
    let results = cluster.client_results(0);
    assert!(results.iter().all(|r| r.outcome.is_ok()), "{results:?}");
    let reconnects: Vec<&Outcome> = results.iter().skip(6).map(|r| &r.outcome).collect();
    assert_eq!(*reconnects[0], Outcome::Connected { context_len: 1 });
    assert_eq!(*reconnects[1], Outcome::Connected { context_len: 1 });
}

#[test]
fn read_of_never_written_item_reports_stale_or_empty() {
    let mut cluster = ClusterBuilder::new(4, 1)
        .seed(2)
        .client_config(sstore_core::ClientConfig {
            retry: sstore_core::RetryPolicy {
                phase_timeout: SimTime::from_millis(100),
                stale_retry_delay: SimTime::from_millis(50),
                max_rounds: 2,
                ..sstore_core::RetryPolicy::default()
            },
            ..Default::default()
        })
        .client(vec![connect(1), read(1, 42)])
        .build();
    cluster.run_to_quiescence();
    let results = cluster.client_results(0);
    // No value exists anywhere: the read must end Stale (best_seen: None),
    // never invent data.
    assert_eq!(
        results[1].outcome,
        Outcome::Stale { best_seen: None },
        "{results:?}"
    );
}

#[test]
fn many_sessions_monotonic_context() {
    // Ten sessions in a row, each adding one write; every reconnect must
    // see the full history so far.
    let mut script = Vec::new();
    for k in 0..10u64 {
        script.push(connect(1));
        script.push(write(1, k + 1, format!("v{k}").as_bytes()));
        script.push(disconnect(1));
    }
    script.push(connect(1));
    let mut cluster = ClusterBuilder::new(4, 1).seed(3).client(script).build();
    cluster.run_to_quiescence();
    let results = cluster.client_results(0);
    assert!(results.iter().all(|r| r.outcome.is_ok()), "{results:?}");
    let final_connect = results.last().unwrap();
    assert_eq!(final_connect.kind, OpKind::Connect);
    assert_eq!(
        final_connect.outcome,
        Outcome::Connected { context_len: 10 }
    );
}

#[test]
fn unauthorized_client_messages_are_ignored() {
    // ClientId(5) has no key in the directory; its context request must be
    // silently dropped by servers (paper §4's authorization assumption).
    let mut cluster = ClusterBuilder::new(4, 1).seed(4).client(vec![]).build();
    for s in 0..4u16 {
        cluster.inject_from_client(
            0, // routed from C0's node, but claiming ClientId(5)
            ServerId(s),
            Msg::CtxReadReq {
                op: OpId(1),
                client: ClientId(5),
                group: GroupId(1),
            },
        );
    }
    cluster.drain(SimTime::from_secs(1));
    assert_eq!(
        cluster.sim.stats().sent_by_kind("ctx-read-resp"),
        0,
        "unauthorized requests must draw no response"
    );
}

#[test]
fn reconstruction_batch_preverify_keeps_logical_verifies_exact() {
    // Reconstructing m items batch-verifies the newest candidate per item
    // up front (one RLC batch), then the adoption loop hits the seeded
    // cache. The batch must show up only in the batch_* telemetry: every
    // adopted meta still charges exactly one logical verify, so the §6
    // count tables are unchanged by batching.
    let mut cluster = ClusterBuilder::new(4, 1)
        .seed(11)
        .client(vec![
            connect(1),
            write(1, 1, b"a"),
            write(1, 2, b"b"),
            write(1, 3, b"c"),
            write(1, 4, b"d"),
            Step::Crash,
            Step::Do(ClientOp::Connect {
                group: GroupId(1),
                recover: true,
            }),
        ])
        .build();
    cluster.run_to_quiescence();
    let results = cluster.client_results(0);
    let rec = results
        .iter()
        .find(|r| r.kind == OpKind::Reconstruct)
        .expect("reconstruction ran");
    assert_eq!(
        rec.outcome,
        Outcome::Connected { context_len: 4 },
        "{results:?}"
    );
    let c = cluster.client_counters(0);
    assert_eq!(c.batch_ops, 1, "one RLC batch over the four heads: {c:?}");
    assert_eq!(c.batch_items, 4, "{c:?}");
    // Each adopted meta is charged once, from the seeded cache; seeding
    // itself charged nothing.
    assert!(c.verify_cached >= 4, "{c:?}");
    assert_eq!(c.logical_verifies(), c.verifies + c.verify_cached);
}

#[test]
fn reconstruction_finds_items_from_other_writers_in_group() {
    // CC groups can contain items written by others; reconstruction scans
    // per group, not per writer, so it must pick those up too.
    let writer_a = vec![
        connect(1),
        Step::Do(ClientOp::Write {
            data: DataId(1),
            group: GroupId(1),
            consistency: Consistency::Cc,
            value: b"from-a".to_vec(),
        }),
        disconnect(1),
    ];
    let writer_b = vec![
        Step::Wait(SimTime::from_millis(800)),
        connect(1),
        Step::Do(ClientOp::Write {
            data: DataId(2),
            group: GroupId(1),
            consistency: Consistency::Cc,
            value: b"from-b".to_vec(),
        }),
        Step::Crash,
        Step::Do(ClientOp::Connect {
            group: GroupId(1),
            recover: true,
        }),
    ];
    let mut cluster = ClusterBuilder::new(4, 1)
        .seed(5)
        .client(writer_a)
        .client(writer_b)
        .build();
    cluster.run_to_quiescence();
    let results = cluster.client_results(1);
    let rec = results
        .iter()
        .find(|r| r.kind == OpKind::Reconstruct)
        .expect("reconstruction ran");
    // Both items (dissemination willing) — at least B's own write plus,
    // after 800ms of gossip, A's item too.
    assert_eq!(
        rec.outcome,
        Outcome::Connected { context_len: 2 },
        "{results:?}"
    );
}

#[test]
fn disconnect_then_reconnect_has_higher_session() {
    // Stored sessions strictly increase; an old context can never clobber
    // a newer one even if replayed by a slow server.
    let mut cluster = ClusterBuilder::new(4, 1)
        .seed(6)
        .client(vec![
            connect(1),
            write(1, 1, b"s1"),
            disconnect(1),
            connect(1),
            write(1, 2, b"s2"),
            disconnect(1),
            connect(1),
        ])
        .build();
    cluster.run_to_quiescence();
    let results = cluster.client_results(0);
    assert!(results.iter().all(|r| r.outcome.is_ok()));
    assert_eq!(
        results.last().unwrap().outcome,
        Outcome::Connected { context_len: 2 }
    );
}

#[test]
fn interleaved_groups_in_one_session() {
    // Data ids are globally unique (paper §4.1: "each data item has a
    // unique identifier in the system"); two groups, disjoint ids.
    let mut cluster = ClusterBuilder::new(7, 2)
        .seed(7)
        .client(vec![
            connect(1),
            connect(2),
            write(1, 1, b"a1"),
            write(2, 4, b"b1"),
            write(1, 2, b"a2"),
            read(2, 4),
            read(1, 2),
            disconnect(2),
            disconnect(1),
        ])
        .build();
    cluster.run_to_quiescence();
    let results = cluster.client_results(0);
    assert!(results.iter().all(|r| r.outcome.is_ok()), "{results:?}");
    let values: Vec<&Vec<u8>> = results
        .iter()
        .filter_map(|r| match &r.outcome {
            Outcome::ReadOk { value, .. } => Some(value),
            _ => None,
        })
        .collect();
    assert_eq!(values, vec![&b"b1".to_vec(), &b"a2".to_vec()]);
}

#[test]
fn cross_group_data_id_reuse_is_rejected_at_read() {
    // A writer erroneously reuses a data id under a different group. The
    // group is part of the signed metadata, so a read in group 2 must not
    // accept group 1's item — it reports Stale instead of leaking.
    let mut cluster = ClusterBuilder::new(4, 1)
        .seed(8)
        .client_config(sstore_core::ClientConfig {
            retry: sstore_core::RetryPolicy {
                phase_timeout: SimTime::from_millis(100),
                stale_retry_delay: SimTime::from_millis(50),
                max_rounds: 2,
                ..sstore_core::RetryPolicy::default()
            },
            ..Default::default()
        })
        .client(vec![
            connect(1),
            connect(2),
            write(1, 1, b"group1-value"),
            read(2, 1),
        ])
        .build();
    cluster.run_to_quiescence();
    let results = cluster.client_results(0);
    match &results[3].outcome {
        Outcome::Stale { .. } => {}
        Outcome::ReadOk { value, .. } => {
            panic!("cross-group leak: {:?}", String::from_utf8_lossy(value))
        }
        other => panic!("unexpected: {other:?}"),
    }
}
