//! Property-based coverage for the canonical wire codec: arbitrary
//! messages round-trip exactly, and mangled inputs (truncated, corrupted,
//! extended) are rejected without panicking.

use std::sync::OnceLock;

use proptest::prelude::*;

use sstore_core::codec::{decode_msg, encode_msg};
use sstore_core::item::{ItemMeta, SignedContext, StoredItem};
use sstore_core::types::{ClientId, DataId, GroupId, OpId, Timestamp};
use sstore_core::wire::Msg;
use sstore_core::Context;
use sstore_crypto::schnorr::{SchnorrParams, Signature, SigningKey};
use sstore_crypto::sha256::Digest;

/// One deterministic key (micro parameters keep signing fast); signatures
/// only need to be canonical bytes here, not valid over the message.
fn test_key() -> &'static SigningKey {
    static KEY: OnceLock<SigningKey> = OnceLock::new();
    KEY.get_or_init(|| SigningKey::from_seed(&SchnorrParams::micro(), 42))
}

fn arb_signature() -> impl Strategy<Value = Signature> {
    proptest::collection::vec(any::<u8>(), 0..16).prop_map(|m| test_key().sign(&m))
}

fn arb_multi_ts() -> impl Strategy<Value = Timestamp> {
    (any::<u64>(), any::<u16>(), any::<[u8; 32]>()).prop_map(|(time, writer, digest)| {
        Timestamp::Multi {
            time,
            writer: ClientId(writer),
            digest: Digest::from(digest),
        }
    })
}

/// Any timestamp a message field may carry (GENESIS included).
fn arb_timestamp() -> impl Strategy<Value = Timestamp> {
    prop_oneof![any::<u64>().prop_map(Timestamp::Version), arb_multi_ts(),]
}

/// A timestamp that can live inside a context (strictly after GENESIS).
fn arb_ctx_timestamp() -> impl Strategy<Value = Timestamp> {
    prop_oneof![(1u64..).prop_map(Timestamp::Version), arb_multi_ts(),]
}

fn arb_context() -> impl Strategy<Value = Context> {
    (
        any::<u32>(),
        proptest::collection::btree_map(any::<u64>(), arb_ctx_timestamp(), 0..5),
    )
        .prop_map(|(group, entries)| {
            let mut ctx = Context::new(GroupId(group));
            for (d, ts) in entries {
                ctx.observe(DataId(d), ts);
            }
            ctx
        })
}

fn arb_meta() -> impl Strategy<Value = ItemMeta> {
    (
        any::<u64>(),
        any::<u32>(),
        arb_timestamp(),
        any::<u16>(),
        any::<[u8; 32]>(),
        proptest::option::of(arb_context()),
        arb_signature(),
    )
        .prop_map(
            |(data, group, ts, writer, digest, writer_ctx, signature)| ItemMeta {
                data: DataId(data),
                group: GroupId(group),
                ts,
                writer: ClientId(writer),
                value_digest: Digest::from(digest),
                writer_ctx,
                signature,
            },
        )
}

fn arb_item() -> impl Strategy<Value = StoredItem> {
    (arb_meta(), proptest::collection::vec(any::<u8>(), 0..64))
        .prop_map(|(meta, value)| StoredItem { meta, value })
}

fn arb_signed_context() -> impl Strategy<Value = SignedContext> {
    (any::<u16>(), any::<u64>(), arb_context(), arb_signature()).prop_map(
        |(client, session, ctx, signature)| SignedContext {
            client: ClientId(client),
            session,
            ctx,
            signature,
        },
    )
}

/// Every [`Msg`] variant, fields fully arbitrary.
fn arb_msg() -> impl Strategy<Value = Msg> {
    let op = any::<u64>().prop_map(OpId);
    prop_oneof![
        (op.clone(), any::<u16>(), any::<u32>()).prop_map(|(op, c, g)| Msg::CtxReadReq {
            op,
            client: ClientId(c),
            group: GroupId(g),
        }),
        (op.clone(), proptest::option::of(arb_signed_context()))
            .prop_map(|(op, stored)| Msg::CtxReadResp { op, stored }),
        (op.clone(), any::<u32>(), arb_signed_context()).prop_map(|(op, g, signed)| {
            Msg::CtxWriteReq {
                op,
                group: GroupId(g),
                signed,
            }
        }),
        op.clone().prop_map(|op| Msg::CtxWriteAck { op }),
        (op.clone(), any::<u32>()).prop_map(|(op, g)| Msg::TsScanReq {
            op,
            group: GroupId(g),
        }),
        (op.clone(), proptest::collection::vec(arb_meta(), 0..3))
            .prop_map(|(op, entries)| Msg::TsScanResp { op, entries }),
        (op.clone(), any::<u64>()).prop_map(|(op, d)| Msg::TsQueryReq {
            op,
            data: DataId(d),
        }),
        (
            op.clone(),
            any::<u64>(),
            proptest::option::of(arb_meta()),
            proptest::option::of(arb_item()),
        )
            .prop_map(|(op, d, meta, inline)| Msg::TsQueryResp {
                op,
                data: DataId(d),
                meta,
                inline,
            }),
        (op.clone(), any::<u64>(), arb_timestamp()).prop_map(|(op, d, ts)| Msg::ReadReq {
            op,
            data: DataId(d),
            ts,
        }),
        (op.clone(), proptest::option::of(arb_item()))
            .prop_map(|(op, item)| Msg::ReadResp { op, item }),
        (op.clone(), arb_item()).prop_map(|(op, item)| Msg::WriteReq { op, item }),
        (op.clone(), any::<bool>()).prop_map(|(op, accepted)| Msg::WriteAck { op, accepted }),
        (op.clone(), any::<u64>()).prop_map(|(op, d)| Msg::MwReadReq {
            op,
            data: DataId(d),
        }),
        (
            op.clone(),
            any::<u64>(),
            proptest::collection::vec(arb_item(), 0..3)
        )
            .prop_map(|(op, d, versions)| Msg::MwReadResp {
                op,
                data: DataId(d),
                versions,
            }),
        proptest::collection::vec(arb_item(), 0..3).prop_map(|items| Msg::GossipPush { items }),
        (
            proptest::collection::btree_map(any::<u64>(), arb_timestamp(), 0..4),
            any::<bool>(),
        )
            .prop_map(|(entries, want_reply)| Msg::GossipSummary {
                entries: entries.into_iter().map(|(d, ts)| (DataId(d), ts)).collect(),
                want_reply,
            }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn roundtrip_is_exact(msg in arb_msg()) {
        let bytes = encode_msg(&msg);
        let back = decode_msg(&bytes);
        prop_assert_eq!(back.as_ref(), Ok(&msg));
    }

    #[test]
    fn strict_prefixes_are_rejected(msg in arb_msg(), cut in any::<prop::sample::Index>()) {
        let bytes = encode_msg(&msg);
        let cut = cut.index(bytes.len());
        prop_assert!(decode_msg(&bytes[..cut]).is_err());
    }

    #[test]
    fn trailing_bytes_are_rejected(msg in arb_msg(), tail in proptest::collection::vec(any::<u8>(), 1..8)) {
        let mut bytes = encode_msg(&msg);
        bytes.extend_from_slice(&tail);
        prop_assert!(decode_msg(&bytes).is_err());
    }

    #[test]
    fn corrupted_bytes_never_panic_or_alias(
        msg in arb_msg(),
        at in any::<prop::sample::Index>(),
        mask in 1u8..,
    ) {
        let bytes = encode_msg(&msg);
        let mut corrupt = bytes.clone();
        let at = at.index(corrupt.len());
        corrupt[at] ^= mask;
        // Decoding must not panic. If the corrupted bytes still decode,
        // canonicality guarantees they decode to a *different* message —
        // otherwise two distinct byte strings would encode one message.
        if let Ok(other) = decode_msg(&corrupt) {
            prop_assert_ne!(other, msg);
        }
    }

    #[test]
    fn arbitrary_junk_never_panics(junk in proptest::collection::vec(any::<u8>(), 0..256)) {
        let _ = decode_msg(&junk);
    }
}
