//! Integration coverage for the chaos campaign engine: fresh seed ranges
//! through both oracles, deterministic byte-for-byte replay of shrunk
//! failures, and a directed multi-writer equivocation injected at the
//! wire level.

use sstore_core::chaos::{self, ChaosConfig, FailureClass, Schedule};
use sstore_core::client::{ClientOp, OpKind, Outcome};
use sstore_core::item::StoredItem;
use sstore_core::metrics::CryptoCounters;
use sstore_core::sim::{ClusterBuilder, Step};
use sstore_core::types::{ClientId, Consistency, DataId, GroupId, OpId, ServerId, Timestamp};
use sstore_core::wire::Msg;
use sstore_crypto::sha256::digest;
use sstore_simnet::SimTime;

/// Fresh seed range (disjoint from the unit tests' 0..15): every standard
/// schedule must satisfy both oracles.
#[test]
fn standard_campaign_fresh_seeds() {
    let cfg = ChaosConfig::standard(4, 1);
    for seed in 100..112 {
        let schedule = chaos::generate(seed, &cfg);
        let verdict = chaos::run(&schedule).expect("run");
        assert!(
            verdict.passed(),
            "seed {seed}: safety={:?} liveness={:?}",
            verdict.safety,
            verdict.liveness
        );
        assert!(verdict.idle, "seed {seed}: cluster not idle at deadline");
    }
}

/// A bigger cluster configuration exercises the quorum arithmetic beyond
/// the default `n = 4, b = 1`.
#[test]
fn standard_campaign_larger_cluster() {
    let cfg = ChaosConfig::standard(7, 2);
    for seed in 0..4 {
        let schedule = chaos::generate(seed, &cfg);
        let verdict = chaos::run(&schedule).expect("run");
        assert!(
            verdict.passed(),
            "n=7 b=2 seed {seed}: safety={:?} liveness={:?}",
            verdict.safety,
            verdict.liveness
        );
    }
}

/// The acceptance loop in one test: an over-budget seed is flagged by the
/// safety oracle, delta-debugging shrinks it while preserving the failure
/// class, the minimal schedule survives a text round-trip, and two replay
/// runs agree on every verdict field *and* on the network statistics.
#[test]
fn flagged_seed_shrinks_and_replays_deterministically() {
    let cfg = ChaosConfig::over_budget(4, 1);
    let flagged = (0..30)
        .map(|seed| chaos::generate(seed, &cfg))
        .find(|s| chaos::run(s).map(|v| !v.safety_ok()).unwrap_or(false))
        .expect("some over-budget seed in 0..30 must be flagged");

    let shrunk = chaos::shrink(&flagged, 300).expect("shrink");
    assert_eq!(
        shrunk.class,
        Some(FailureClass::Safety),
        "shrinking changed the failure class"
    );
    let steps = |s: &Schedule| -> usize { s.clients.iter().map(|c| c.steps.len()).sum() };
    assert!(
        steps(&shrunk.schedule) <= steps(&flagged),
        "shrinking grew the schedule"
    );

    // Byte-for-byte replay: text round-trip, then two independent runs.
    let text = shrunk.schedule.to_text();
    let parsed = Schedule::from_text(&text).expect("replay text parses");
    assert_eq!(
        parsed, shrunk.schedule,
        "text round-trip changed the schedule"
    );
    assert_eq!(parsed.to_text(), text, "re-serialization is not stable");

    let first = chaos::run(&parsed).expect("first replay");
    let second = chaos::run(&parsed).expect("second replay");
    assert!(!first.safety_ok(), "shrunk schedule no longer fails");
    assert_eq!(first.safety, second.safety, "safety verdicts diverged");
    assert_eq!(
        first.liveness, second.liveness,
        "liveness verdicts diverged"
    );
    assert_eq!(first.ops_ok, second.ops_ok, "op counts diverged");
    assert_eq!(
        first.stats, second.stats,
        "NetStats diverged across replays"
    );
}

const G: GroupId = GroupId(1);
const MW: DataId = DataId(1);

/// Directed equivocation: a malicious *client* signs two different values
/// under the same `(time, writer)` multi-writer timestamp and sends each
/// half of the cluster a different one. Both halves admit their copy (the
/// signatures are valid) — but an honest reader crossing the halves must
/// detect the split and report the faulty writer, never silently pick a
/// side.
#[test]
fn equivocating_writer_detected_by_honest_reader() {
    for seed in 0..6u64 {
        let mut cluster = ClusterBuilder::new(4, 1)
            .seed(900 + seed)
            .client(vec![
                Step::Do(ClientOp::Connect {
                    group: G,
                    recover: false,
                }),
                Step::Wait(SimTime::from_millis(500)),
                Step::Do(ClientOp::MwRead {
                    data: MW,
                    group: G,
                    consistency: Consistency::Mrc,
                }),
            ])
            // Client 1 is the equivocator: no script, only injected traffic.
            .client(vec![])
            .build();

        let key = cluster.signing_key(1).clone();
        let mut counters = CryptoCounters::new();
        let mut forge = |value: &[u8]| -> StoredItem {
            let ts = Timestamp::Multi {
                time: 1,
                writer: ClientId(1),
                digest: digest(value),
            };
            StoredItem::create(
                MW,
                G,
                ts,
                ClientId(1),
                None,
                value.to_vec(),
                &key,
                &mut counters,
            )
        };
        let side_a = forge(b"evil-a");
        let side_b = forge(b"evil-b");
        for s in [0u16, 1] {
            cluster.inject_from_client(
                1,
                ServerId(s),
                Msg::WriteReq {
                    op: OpId(9_000 + s as u64),
                    item: side_a.clone(),
                },
            );
        }
        for s in [2u16, 3] {
            cluster.inject_from_client(
                1,
                ServerId(s),
                Msg::WriteReq {
                    op: OpId(9_000 + s as u64),
                    item: side_b.clone(),
                },
            );
        }
        cluster.run_to_quiescence();

        let results = cluster.client_results(0);
        let mw_read = results
            .iter()
            .find(|r| r.kind == OpKind::MwRead)
            .expect("MwRead result");
        assert_eq!(
            mw_read.outcome,
            Outcome::FaultyWriterDetected { data: MW },
            "seed {seed}: equivocation not detected: {:?}",
            mw_read.outcome
        );
    }
}

/// The same split must also be caught when the reader only reaches one
/// side directly and learns the other side through gossip.
#[test]
fn equivocation_detected_after_gossip_mixes_the_sides() {
    let mut cluster = ClusterBuilder::new(4, 1)
        .seed(912)
        .client(vec![
            Step::Do(ClientOp::Connect {
                group: G,
                recover: false,
            }),
            // Long enough for several anti-entropy rounds to cross-pollinate.
            Step::Wait(SimTime::from_millis(3_000)),
            Step::Do(ClientOp::MwRead {
                data: MW,
                group: G,
                consistency: Consistency::Mrc,
            }),
        ])
        .client(vec![])
        .build();

    let key = cluster.signing_key(1).clone();
    let mut counters = CryptoCounters::new();
    let mut forge = |value: &[u8]| -> StoredItem {
        let ts = Timestamp::Multi {
            time: 7,
            writer: ClientId(1),
            digest: digest(value),
        };
        StoredItem::create(
            MW,
            G,
            ts,
            ClientId(1),
            None,
            value.to_vec(),
            &key,
            &mut counters,
        )
    };
    let side_a = forge(b"gossip-a");
    let side_b = forge(b"gossip-b");
    cluster.inject_from_client(
        1,
        ServerId(0),
        Msg::WriteReq {
            op: OpId(9_100),
            item: side_a,
        },
    );
    cluster.inject_from_client(
        1,
        ServerId(2),
        Msg::WriteReq {
            op: OpId(9_101),
            item: side_b,
        },
    );
    cluster.run_to_quiescence();

    let results = cluster.client_results(0);
    let mw_read = results
        .iter()
        .find(|r| r.kind == OpKind::MwRead)
        .expect("MwRead result");
    // Either the reader sees both sides and flags the writer, or (if the
    // accept rule starves both sides of `b+1` confirmations) it refuses to
    // return a value — it must never silently return one of the two.
    match &mw_read.outcome {
        Outcome::FaultyWriterDetected { data } => assert_eq!(*data, MW),
        Outcome::Stale { .. } => {}
        other => panic!("equivocation slipped through: {other:?}"),
    }
}
