//! Property-based coverage for the WAL record codec: arbitrary or
//! mangled bytes must never panic the frame reader, the stream scanner,
//! or the record decoder — every byte they look at comes off a disk that
//! crashed mid-write or rotted underneath us, so a reachable panic here
//! turns one bad sector into a server that cannot boot.

use proptest::prelude::*;

use std::sync::OnceLock;

use sstore_core::context::Context;
use sstore_core::item::{SignedContext, StoredItem};
use sstore_core::metrics::CryptoCounters;
use sstore_core::server::storage::{frame, read_frame, scan_stream, FrameError, Record};
use sstore_core::types::{ClientId, DataId, GroupId, Timestamp};
use sstore_crypto::schnorr::{SchnorrParams, SigningKey};

fn key() -> &'static SigningKey {
    static KEY: OnceLock<SigningKey> = OnceLock::new();
    KEY.get_or_init(|| SigningKey::from_seed(&SchnorrParams::micro(), 0x5eed))
}

/// Deterministically builds one of the four record kinds from a small
/// parameter tuple. Signing happens inside the test body: the codec
/// does not care whether signatures verify, only that bytes round-trip.
fn build_record(kind: u8, data: u64, time: u64, value: Vec<u8>) -> Record {
    let key = key();
    let mut counters = CryptoCounters::new();
    let group = GroupId((data % 7) as u32);
    let writer = ClientId((time % 5) as u16);
    if kind % 4 == 3 {
        let mut ctx = Context::new(group);
        ctx.observe(DataId(data), Timestamp::Version(time.max(1)));
        let signed = SignedContext::create(writer, time, ctx, key, &mut counters);
        return Record::Context(group, signed);
    }
    let ts = if kind.is_multiple_of(2) {
        Timestamp::Version(time.max(1))
    } else {
        Timestamp::Multi {
            time: time.max(1),
            writer,
            digest: sstore_crypto::sha256::digest(&value),
        }
    };
    let item = StoredItem::create(
        DataId(data),
        group,
        ts,
        writer,
        None,
        value,
        key,
        &mut counters,
    );
    match kind % 4 {
        0 => Record::Item(item),
        1 => Record::MwAdmit(item),
        _ => Record::Pending(item),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn record_decode_never_panics_on_junk(
        junk in proptest::collection::vec(any::<u8>(), 0..512),
    ) {
        let _ = Record::decode(&junk);
    }

    #[test]
    fn read_frame_never_panics_on_junk(
        junk in proptest::collection::vec(any::<u8>(), 0..512),
    ) {
        let _ = read_frame(&junk);
    }

    #[test]
    fn scan_stream_never_panics_on_junk(
        junk in proptest::collection::vec(any::<u8>(), 0..512),
    ) {
        let scan = scan_stream(&junk);
        if let Some(at) = scan.fault_at {
            prop_assert!(at <= junk.len());
        }
    }

    #[test]
    fn record_roundtrip_is_canonical(
        kind in 0u8..4,
        data in 0u64..1_000,
        time in 0u64..1_000,
        value in proptest::collection::vec(any::<u8>(), 0..96),
    ) {
        let record = build_record(kind, data, time, value);
        let bytes = record.encode();
        prop_assert_eq!(Record::decode(&bytes), Ok(record.clone()));
        // Canonical: re-encoding the decoded record reproduces the bytes.
        prop_assert_eq!(Record::decode(&bytes).unwrap().encode(), bytes);
    }

    #[test]
    fn truncated_frame_is_torn_never_served(
        kind in 0u8..4,
        data in 0u64..100,
        time in 0u64..100,
        cut in 0usize..64,
    ) {
        let framed = frame(&build_record(kind, data, time, b"torn".to_vec()).encode());
        prop_assume!(cut < framed.len());
        match read_frame(&framed[..cut]) {
            Err(FrameError::Torn) | Ok(None) => {}
            other => prop_assert!(false, "cut at {cut}: unexpected {other:?}"),
        }
    }

    #[test]
    fn mutated_frame_never_yields_a_wrong_record(
        kind in 0u8..4,
        data in 0u64..100,
        time in 0u64..100,
        at in 0usize..512,
        mask in 1u8..,
    ) {
        let record = build_record(kind, data, time, b"flip".to_vec());
        let mut framed = frame(&record.encode());
        prop_assume!(at < framed.len());
        framed[at] ^= mask;
        // A flipped byte may be detected as torn (length field grew past
        // the buffer) or corrupt (CRC mismatch), or — only if the flip
        // stayed inside the length field in a way that still frames a
        // CRC-valid payload, which CRC-32 makes unconstructible by a
        // single flip — decode to the original. What it must never do is
        // decode to a *different* record.
        if let Ok(Some((payload, _))) = read_frame(&framed) {
            prop_assert_eq!(Record::decode(payload), Ok(record));
        }
    }

    #[test]
    fn scan_stops_cleanly_at_stream_prefix(
        kinds in proptest::collection::vec(0u8..4, 1..6),
        cut in 0usize..600,
    ) {
        let mut stream = Vec::new();
        for (i, kind) in kinds.iter().enumerate() {
            let rec = build_record(*kind, i as u64, i as u64 + 1, vec![i as u8; 8]);
            stream.extend_from_slice(&frame(&rec.encode()));
        }
        prop_assume!(cut <= stream.len());
        let scan = scan_stream(&stream[..cut]);
        // Every record the scan returns must be one the stream actually
        // contains, in order, and the fault offset (if any) must lie
        // inside the truncated stream.
        prop_assert!(scan.records.len() <= kinds.len());
        if let Some(at) = scan.fault_at {
            prop_assert!(at <= cut);
        }
    }
}
