//! Dynamic-quorum extension tests (paper §3 cites Alvisi et al., "Dynamic
//! Byzantine Quorum Systems"): optimistic reads contact `b̂+1` servers,
//! growing `b̂` when faults are observed. Safety must never depend on the
//! estimate; only message cost does.

use sstore_core::client::{ClientOp, OpKind, Outcome};
use sstore_core::config::{ClientConfig, GossipConfig, ServerConfig};
use sstore_core::faults::Behavior;
use sstore_core::sim::{ClusterBuilder, Step};
use sstore_core::types::{Consistency, DataId, GroupId};

const G: GroupId = GroupId(1);

fn adaptive_cfg() -> ClientConfig {
    ClientConfig {
        adaptive_read_quorum: true,
        sticky_rotation: true,
        ..ClientConfig::default()
    }
}

fn quiet() -> ServerConfig {
    ServerConfig {
        gossip: GossipConfig {
            enabled: false,
            ..GossipConfig::default()
        },
        ..ServerConfig::default()
    }
}

fn session(reads: u64) -> Vec<Step> {
    let mut script = vec![
        Step::Do(ClientOp::Connect {
            group: G,
            recover: false,
        }),
        Step::Do(ClientOp::Write {
            data: DataId(1),
            group: G,
            consistency: Consistency::Mrc,
            value: b"adaptive".to_vec(),
        }),
    ];
    for _ in 0..reads {
        script.push(Step::Do(ClientOp::Read {
            data: DataId(1),
            group: G,
            consistency: Consistency::Mrc,
        }));
    }
    script
}

#[test]
fn fault_free_adaptive_reads_contact_one_server() {
    let mut cluster = ClusterBuilder::new(7, 2)
        .seed(1)
        .server_config(quiet())
        .client_config(adaptive_cfg())
        .client(session(6))
        .build();
    cluster.run_to_quiescence();
    let results = cluster.client_results(0);
    assert!(results.iter().all(|r| r.outcome.is_ok()), "{results:?}");
    let stats = cluster.sim.stats();
    // 6 reads × (b̂+1 = 1) timestamp queries — versus 18 at the static b+1.
    assert_eq!(stats.sent_by_kind("ts-query-req"), 6);
}

#[test]
fn static_reads_contact_b_plus_one() {
    let mut cluster = ClusterBuilder::new(7, 2)
        .seed(1)
        .server_config(quiet())
        .client_config(ClientConfig {
            sticky_rotation: true,
            ..ClientConfig::default()
        })
        .client(session(6))
        .build();
    cluster.run_to_quiescence();
    let stats = cluster.sim.stats();
    assert_eq!(stats.sent_by_kind("ts-query-req"), 18, "6 reads x (b+1=3)");
}

#[test]
fn estimate_rises_under_faults_and_reads_stay_correct() {
    // The sticky client's first-choice server serves corrupt values; the
    // optimistic single-server probe fails, the estimate rises, and reads
    // still return the true value.
    let mut cluster = ClusterBuilder::new(4, 1)
        .seed(3)
        .server_config(quiet())
        .behavior(0, Behavior::CorruptValue) // sticky C0 starts at S0
        .client_config(adaptive_cfg())
        .client(session(4))
        .build();
    cluster.run_to_quiescence();
    let results = cluster.client_results(0);
    for r in &results {
        assert!(r.outcome.is_ok(), "{results:?}");
        if let Outcome::ReadOk { value, .. } = &r.outcome {
            assert_eq!(value, b"adaptive");
        }
    }
    // The estimate must have risen after the corrupt responses.
    let reads: Vec<_> = results.iter().filter(|r| r.kind == OpKind::Read).collect();
    assert!(
        reads.iter().any(|r| r.rounds > 1),
        "faults forced escalation"
    );
}

#[test]
fn adaptive_never_exceeds_design_bound() {
    // Even with every contacted server lying, the estimate caps at b and
    // reads keep escalating via rounds rather than runaway quorums.
    let mut cluster = ClusterBuilder::new(4, 1)
        .seed(5)
        .behavior(0, Behavior::CorruptSig)
        .behavior(1, Behavior::CorruptSig) // beyond the bound on purpose
        .client_config(adaptive_cfg())
        .client(session(3))
        .build();
    cluster.run_to_quiescence();
    // Safety: no forged value is ever returned.
    for r in cluster.client_results(0) {
        if let Outcome::ReadOk { value, .. } = &r.outcome {
            assert_eq!(value, b"adaptive");
        }
    }
}

#[test]
fn adaptive_saves_messages_versus_static_under_no_faults() {
    let run = |adaptive: bool| {
        let cfg = if adaptive {
            adaptive_cfg()
        } else {
            ClientConfig {
                sticky_rotation: true,
                ..ClientConfig::default()
            }
        };
        let mut cluster = ClusterBuilder::new(10, 3)
            .seed(7)
            .server_config(quiet())
            .client_config(cfg)
            .client(session(10))
            .build();
        cluster.run_to_quiescence();
        assert!(cluster.client_results(0).iter().all(|r| r.outcome.is_ok()));
        cluster.sim.stats().total_messages
    };
    let adaptive = run(true);
    let static_q = run(false);
    assert!(
        adaptive < static_q,
        "adaptive ({adaptive}) should beat static ({static_q}) without faults"
    );
}
