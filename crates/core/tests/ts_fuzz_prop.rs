//! Property coverage for timestamp fuzzing (paper §5.2): version numbers
//! advanced by a random extra amount must stay strictly monotonic per
//! writer, and MRC/CC reads must never return a timestamp older than the
//! reader's context — fuzz gaps are not an excuse to travel backwards.

use proptest::prelude::*;
use proptest::test_runner::ProptestConfig;

use sstore_core::client::{ClientOp, OpKind, Outcome};
use sstore_core::sim::{ClusterBuilder, Step};
use sstore_core::types::{Consistency, DataId, GroupId, Timestamp};
use sstore_core::{ClientConfig, RetryPolicy};

const G: GroupId = GroupId(1);

/// Interleaved writes and reads of two items with fuzzing enabled.
fn fuzzed_script(writes: u64, cc: bool) -> Vec<Step> {
    let consistency = if cc {
        Consistency::Cc
    } else {
        Consistency::Mrc
    };
    let mut steps = vec![Step::Do(ClientOp::Connect {
        group: G,
        recover: false,
    })];
    for k in 1..=writes {
        for data in [1u64, 2] {
            steps.push(Step::Do(ClientOp::Write {
                data: DataId(data),
                group: G,
                consistency,
                value: format!("d{data}-g{k}").into_bytes(),
            }));
        }
        steps.push(Step::Do(ClientOp::Read {
            data: DataId(1),
            group: G,
            consistency,
        }));
    }
    steps.push(Step::Do(ClientOp::Read {
        data: DataId(2),
        group: G,
        consistency,
    }));
    steps.push(Step::Do(ClientOp::Disconnect { group: G }));
    steps
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// For any fuzz bound, seed, and workload length: per-item write
    /// timestamps are strictly increasing, every fuzz gap respects the
    /// configured bound, and no read ever returns a timestamp below the
    /// highest one this client previously observed for that item.
    #[test]
    fn fuzzed_timestamps_monotonic_and_reads_never_regress(
        fuzz in 1..64u64,
        writes in 1..5u64,
        seed in 0..1_000u64,
        cc in any::<bool>(),
    ) {
        let script = fuzzed_script(writes, cc);
        let issued: Vec<ClientOp> = script
            .iter()
            .filter_map(|s| match s {
                Step::Do(op) => Some(op.clone()),
                _ => None,
            })
            .collect();
        let mut cluster = ClusterBuilder::new(4, 1)
            .seed(seed)
            .client_config(ClientConfig {
                timestamp_fuzz: Some(fuzz),
                ..ClientConfig::default()
            })
            .client(script)
            .build();
        cluster.run_to_quiescence();
        let results = cluster.client_results(0);
        prop_assert_eq!(results.len(), issued.len());
        for r in &results {
            prop_assert!(
                r.outcome.is_ok(),
                "op {:?} failed: {:?} (fuzz={fuzz} seed={seed})",
                r.kind,
                r.outcome
            );
        }

        // Track the highest timestamp seen per item, from the client's
        // own completed operations. Results complete in script order.
        let mut high: std::collections::HashMap<u64, u64> = std::collections::HashMap::new();
        for (op, r) in issued.iter().zip(results.iter()) {
            let (data, ts) = match (op, &r.outcome) {
                (ClientOp::Write { data, .. }, Outcome::WriteOk { ts }) => (data.0, ts),
                (ClientOp::Read { data, .. }, Outcome::ReadOk { ts, .. }) => (data.0, ts),
                _ => continue,
            };
            let Timestamp::Version(v) = ts else {
                prop_assert!(false, "single-writer path produced non-version ts {ts:?}");
                return Ok(());
            };
            let prev = high.get(&data).copied().unwrap_or(0);
            match r.kind {
                OpKind::Write => {
                    prop_assert!(
                        *v > prev,
                        "write ts {v} not strictly above {prev} for item {data}"
                    );
                    prop_assert!(
                        *v <= prev + 1 + fuzz,
                        "write ts {v} jumped past the fuzz bound from {prev} (fuzz={fuzz})"
                    );
                }
                OpKind::Read => {
                    prop_assert!(
                        *v >= prev,
                        "read returned ts {v} older than context ts {prev} for item {data}"
                    );
                }
                _ => {}
            }
            high.insert(data, prev.max(*v));
        }
    }

    /// Fuzzing must also survive a Byzantine stale server: reads still
    /// never regress below the reader's context.
    #[test]
    fn fuzzed_reads_never_regress_with_stale_server(
        fuzz in 1..32u64,
        seed in 0..500u64,
    ) {
        let script = fuzzed_script(3, false);
        let issued: Vec<ClientOp> = script
            .iter()
            .filter_map(|s| match s {
                Step::Do(op) => Some(op.clone()),
                _ => None,
            })
            .collect();
        let mut cluster = ClusterBuilder::new(4, 1)
            .seed(seed)
            .behavior((seed % 4) as usize, sstore_core::faults::Behavior::Stale)
            .client_config(ClientConfig {
                timestamp_fuzz: Some(fuzz),
                retry: RetryPolicy::default(),
                ..ClientConfig::default()
            })
            .client(script)
            .build();
        cluster.run_to_quiescence();
        let results = cluster.client_results(0);
        let mut high: std::collections::HashMap<u64, u64> = std::collections::HashMap::new();
        for (op, r) in issued.iter().zip(results.iter()) {
            let (data, ts) = match (op, &r.outcome) {
                (ClientOp::Write { data, .. }, Outcome::WriteOk { ts }) => (data.0, ts),
                (ClientOp::Read { data, .. }, Outcome::ReadOk { ts, .. }) => (data.0, ts),
                _ => continue,
            };
            let Timestamp::Version(v) = ts else {
                prop_assert!(false, "non-version ts {ts:?}");
                return Ok(());
            };
            let prev = high.get(&data).copied().unwrap_or(0);
            if r.kind == OpKind::Read {
                prop_assert!(
                    *v >= prev,
                    "stale server made a fuzzed read regress: {v} < {prev} (seed={seed})"
                );
            }
            high.insert(data, prev.max(*v));
        }
    }
}
