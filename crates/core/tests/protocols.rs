//! End-to-end protocol tests: full clusters in the deterministic simulator.

use sstore_core::client::{ClientOp, OpKind, Outcome};
use sstore_core::config::{ClientConfig, GossipConfig, ServerConfig};
use sstore_core::faults::Behavior;
use sstore_core::quorum;
use sstore_core::sim::{ClusterBuilder, Step};
use sstore_core::types::{Consistency, DataId, GroupId, Timestamp};
use sstore_simnet::{SimConfig, SimTime};

const G: GroupId = GroupId(1);

fn connect() -> Step {
    Step::Do(ClientOp::Connect {
        group: G,
        recover: false,
    })
}

fn disconnect() -> Step {
    Step::Do(ClientOp::Disconnect { group: G })
}

fn write(data: u64, consistency: Consistency, value: &[u8]) -> Step {
    Step::Do(ClientOp::Write {
        data: DataId(data),
        group: G,
        consistency,
        value: value.to_vec(),
    })
}

fn read(data: u64, consistency: Consistency) -> Step {
    Step::Do(ClientOp::Read {
        data: DataId(data),
        group: G,
        consistency,
    })
}

fn mw_write(data: u64, value: &[u8]) -> Step {
    Step::Do(ClientOp::MwWrite {
        data: DataId(data),
        group: G,
        value: value.to_vec(),
    })
}

fn mw_read(data: u64) -> Step {
    Step::Do(ClientOp::MwRead {
        data: DataId(data),
        group: G,
        consistency: Consistency::Cc,
    })
}

/// Extracts the value of the first ReadOk in `results`, panicking if none.
fn first_read_value(results: &[sstore_core::OpResult]) -> Vec<u8> {
    results
        .iter()
        .find_map(|r| match &r.outcome {
            Outcome::ReadOk { value, .. } => Some(value.clone()),
            _ => None,
        })
        .expect("no successful read")
}

#[test]
fn session_write_read_roundtrip() {
    let mut cluster = ClusterBuilder::new(4, 1)
        .seed(1)
        .client(vec![
            connect(),
            write(1, Consistency::Mrc, b"v1"),
            read(1, Consistency::Mrc),
            disconnect(),
        ])
        .build();
    cluster.run_to_quiescence();
    let results = cluster.client_results(0);
    assert_eq!(results.len(), 4);
    assert!(results.iter().all(|r| r.outcome.is_ok()), "{results:?}");
    assert_eq!(first_read_value(&results), b"v1");
}

#[test]
fn context_persists_across_sessions() {
    let mut cluster = ClusterBuilder::new(4, 1)
        .seed(2)
        .client(vec![
            connect(),
            write(1, Consistency::Mrc, b"session1"),
            disconnect(),
            connect(),
            read(1, Consistency::Mrc),
            disconnect(),
        ])
        .build();
    cluster.run_to_quiescence();
    let results = cluster.client_results(0);
    assert!(results.iter().all(|r| r.outcome.is_ok()), "{results:?}");
    // The second connect must restore a context with the item.
    let second_connect = &results[3];
    assert_eq!(second_connect.kind, OpKind::Connect);
    assert_eq!(
        second_connect.outcome,
        Outcome::Connected { context_len: 1 }
    );
}

#[test]
fn crashed_client_reconstructs_context() {
    let mut cluster = ClusterBuilder::new(4, 1)
        .seed(3)
        .client(vec![
            connect(),
            write(1, Consistency::Mrc, b"precious"),
            write(2, Consistency::Mrc, b"also precious"),
            // Crash WITHOUT disconnect: the stored context is stale/absent.
            Step::Crash,
            Step::Do(ClientOp::Connect {
                group: G,
                recover: true,
            }),
            read(1, Consistency::Mrc),
            read(2, Consistency::Mrc),
            disconnect(),
        ])
        .build();
    cluster.run_to_quiescence();
    let results = cluster.client_results(0);
    assert!(results.iter().all(|r| r.outcome.is_ok()), "{results:?}");
    let reconstruct = results
        .iter()
        .find(|r| r.kind == OpKind::Reconstruct)
        .expect("reconstruction ran");
    assert_eq!(reconstruct.outcome, Outcome::Connected { context_len: 2 });
}

#[test]
fn mrc_reads_are_monotonic_under_byzantine_stale_server() {
    // Writer keeps updating; a stale Byzantine server serves old values.
    // A reader's successive reads must never go backwards.
    let writer = vec![
        connect(),
        write(1, Consistency::Mrc, b"v1"),
        write(1, Consistency::Mrc, b"v2"),
        write(1, Consistency::Mrc, b"v3"),
        disconnect(),
    ];
    let reader = vec![
        Step::Wait(SimTime::from_millis(50)),
        connect(),
        read(1, Consistency::Mrc),
        Step::Wait(SimTime::from_millis(300)),
        read(1, Consistency::Mrc),
        Step::Wait(SimTime::from_millis(300)),
        read(1, Consistency::Mrc),
        disconnect(),
    ];
    for seed in [1u64, 7, 23] {
        let mut cluster = ClusterBuilder::new(4, 1)
            .seed(seed)
            .behavior(0, Behavior::Stale)
            .client(writer.clone())
            .client(reader.clone())
            .build();
        cluster.run_to_quiescence();
        let results = cluster.client_results(1);
        let versions: Vec<Timestamp> = results
            .iter()
            .filter_map(|r| match &r.outcome {
                Outcome::ReadOk { ts, .. } => Some(*ts),
                _ => None,
            })
            .collect();
        for pair in versions.windows(2) {
            assert!(
                pair[1].is_at_least(&pair[0]),
                "seed {seed}: non-monotonic reads {versions:?}"
            );
        }
    }
}

#[test]
fn byzantine_corrupt_value_is_detected_and_masked() {
    for behavior in [
        Behavior::CorruptValue,
        Behavior::CorruptSig,
        Behavior::Equivocate,
    ] {
        let mut cluster = ClusterBuilder::new(4, 1)
            .seed(11)
            .behavior(1, behavior)
            .client(vec![
                connect(),
                write(1, Consistency::Mrc, b"truth"),
                read(1, Consistency::Mrc),
                disconnect(),
            ])
            .build();
        cluster.run_to_quiescence();
        let results = cluster.client_results(0);
        assert!(
            results.iter().all(|r| r.outcome.is_ok()),
            "{behavior:?}: {results:?}"
        );
        assert_eq!(first_read_value(&results), b"truth", "{behavior:?}");
    }
}

#[test]
fn survives_b_crash_faults() {
    let mut cluster = ClusterBuilder::new(7, 2)
        .seed(5)
        .behavior(2, Behavior::Crash)
        .behavior(5, Behavior::Crash)
        .client(vec![
            connect(),
            write(1, Consistency::Mrc, b"available"),
            read(1, Consistency::Mrc),
            disconnect(),
        ])
        .build();
    cluster.run_to_quiescence();
    let results = cluster.client_results(0);
    assert!(results.iter().all(|r| r.outcome.is_ok()), "{results:?}");
}

#[test]
fn cc_read_carries_causal_dependencies() {
    // Writer: x1=v1 then (after reading x1) x2=v2 — x2 causally depends on
    // x1. Reader reads x2 first; its context must then force a read of x1
    // to return v1 (not an older/absent value), even though the reader
    // contacts different servers.
    let writer = vec![
        connect(),
        write(1, Consistency::Cc, b"x1-v1"),
        write(2, Consistency::Cc, b"x2-v2"),
        disconnect(),
    ];
    let reader = vec![
        Step::Wait(SimTime::from_millis(400)),
        connect(),
        read(2, Consistency::Cc),
        read(1, Consistency::Cc),
        disconnect(),
    ];
    for seed in [3u64, 9, 31] {
        let mut cluster = ClusterBuilder::new(4, 1)
            .seed(seed)
            .client(writer.clone())
            .client(reader.clone())
            .build();
        cluster.run_to_quiescence();
        let results = cluster.client_results(1);
        let reads: Vec<&Outcome> = results
            .iter()
            .filter(|r| r.kind == OpKind::Read)
            .map(|r| &r.outcome)
            .collect();
        assert_eq!(reads.len(), 2, "seed {seed}: {results:?}");
        // If the x2 read succeeded, the x1 read must return v1 (CC).
        if let Outcome::ReadOk { value, .. } = reads[0] {
            assert_eq!(value, b"x2-v2");
            match reads[1] {
                Outcome::ReadOk { value, .. } => assert_eq!(value, b"x1-v1"),
                other => panic!("seed {seed}: causal read failed: {other:?}"),
            }
        }
    }
}

#[test]
fn multi_writer_roundtrip_two_writers() {
    let alice = vec![
        connect(),
        mw_write(1, b"alice-1"),
        Step::Wait(SimTime::from_millis(200)),
        mw_read(1),
        disconnect(),
    ];
    let bob = vec![
        Step::Wait(SimTime::from_millis(100)),
        connect(),
        mw_write(1, b"bob-1"),
        mw_read(1),
        disconnect(),
    ];
    let mut cluster = ClusterBuilder::new(7, 2)
        .seed(13)
        .client(alice)
        .client(bob)
        .build();
    cluster.run_to_quiescence();
    for i in 0..2 {
        let results = cluster.client_results(i);
        assert!(
            results.iter().all(|r| r.outcome.is_ok()),
            "client {i}: {results:?}"
        );
        if let Some(Outcome::ReadOk { confirmations, .. }) = results
            .iter()
            .find(|r| r.kind == OpKind::MwRead)
            .map(|r| &r.outcome)
        {
            assert!(
                *confirmations >= quorum::multi_writer_accept(2),
                "client {i}: too few confirmations"
            );
        }
    }
}

#[test]
fn multi_writer_survives_premature_reporting_servers() {
    // b=1 premature server reports values before causal preds arrive; the
    // b+1 matching rule must mask it.
    let alice = vec![
        connect(),
        mw_write(1, b"a"),
        mw_write(2, b"b"),
        disconnect(),
    ];
    let reader = vec![
        Step::Wait(SimTime::from_millis(300)),
        connect(),
        mw_read(2),
        mw_read(1),
        disconnect(),
    ];
    let mut cluster = ClusterBuilder::new(4, 1)
        .seed(17)
        .behavior(0, Behavior::Premature)
        .client(alice)
        .client(reader)
        .build();
    cluster.run_to_quiescence();
    let results = cluster.client_results(1);
    assert!(results.iter().all(|r| r.outcome.is_ok()), "{results:?}");
}

#[test]
fn spurious_context_attack_is_contained() {
    // A malicious client writes x9 with a context claiming a (nonexistent)
    // very new write of x1. Honest servers hold the write back, so honest
    // readers of x9 are not poisoned into chasing phantom timestamps.
    use sstore_core::item::StoredItem;
    use sstore_core::metrics::CryptoCounters;
    use sstore_core::types::{ClientId, ServerId};
    use sstore_core::wire::Msg;
    use sstore_crypto::sha256::digest;

    let honest = vec![
        connect(),
        mw_write(1, b"real"),
        Step::Wait(SimTime::from_millis(500)),
        mw_read(9), // will come up empty/stale: the attack write is held
        mw_read(1),
        disconnect(),
    ];
    let mut cluster = ClusterBuilder::new(4, 1)
        .seed(19)
        .client(honest)
        .client(vec![]) // C1: the attacker, driven manually below
        .build();

    // Craft the malicious write: context claims x1 at a phantom time 10^6.
    let mut phantom_ctx = sstore_core::Context::new(G);
    phantom_ctx.observe(
        DataId(1),
        Timestamp::Multi {
            time: 1_000_000,
            writer: ClientId(1),
            digest: digest(b"phantom"),
        },
    );
    let value = b"poison".to_vec();
    let ts = Timestamp::Multi {
        time: 1_000_001,
        writer: ClientId(1),
        digest: digest(&value),
    };
    let item = StoredItem::create(
        DataId(9),
        G,
        ts,
        ClientId(1),
        Some(phantom_ctx),
        value,
        cluster.signing_key(1),
        &mut CryptoCounters::new(),
    );
    for s in 0..4 {
        cluster.inject_from_client(
            1,
            ServerId(s),
            Msg::WriteReq {
                op: sstore_core::OpId(999),
                item: item.clone(),
            },
        );
    }
    cluster.run_to_quiescence();

    // Honest servers must be holding the write as pending, not serving it.
    for s in 0..4 {
        cluster.with_server(s, |node| {
            assert_eq!(node.log_len(DataId(9)), 0, "S{s} served the poison write");
            assert_eq!(node.pending_len(), 1, "S{s} should hold it pending");
        });
    }
    // The honest reader's x1 read still works and returns the real value.
    let results = cluster.client_results(0);
    let x1 = results
        .iter()
        .rev()
        .find(|r| r.kind == OpKind::MwRead)
        .unwrap();
    match &x1.outcome {
        Outcome::ReadOk { value, .. } => assert_eq!(value, b"real"),
        other => panic!("x1 read failed: {other:?}"),
    }
}

#[test]
fn message_costs_match_paper_formulas() {
    // Fault-free run, gossip disabled: the wire counts must equal §6.
    let n = 7;
    let b = 2;
    let server_cfg = ServerConfig {
        gossip: GossipConfig {
            enabled: false,
            ..GossipConfig::default()
        },
        ..ServerConfig::default()
    };
    // With gossip off and random per-op rotation, a read may miss the b+1
    // servers the write landed on and retry — the §6 formulas assume the
    // client revisits its own write set, so pin the rotation.
    let client_cfg = ClientConfig {
        sticky_rotation: true,
        ..ClientConfig::default()
    };
    let mut cluster = ClusterBuilder::new(n, b)
        .seed(29)
        .server_config(server_cfg)
        .client_config(client_cfg)
        .client(vec![
            connect(),
            write(1, Consistency::Mrc, b"v"),
            read(1, Consistency::Mrc),
            disconnect(),
        ])
        .build();
    cluster.run_to_quiescence();
    let results = cluster.client_results(0);
    assert!(results.iter().all(|r| r.outcome.is_ok()), "{results:?}");

    let stats = cluster.sim.stats().clone();
    let q = quorum::context_quorum(n, b);
    // Context read: q requests + q responses (paper: 2⌈(n+b+1)/2⌉).
    assert_eq!(stats.sent_by_kind("ctx-read-req"), q as u64);
    assert_eq!(stats.sent_by_kind("ctx-read-resp"), q as u64);
    // Context write: q requests, q acks.
    assert_eq!(stats.sent_by_kind("ctx-write-req"), q as u64);
    assert_eq!(stats.sent_by_kind("ctx-write-ack"), q as u64);
    // Data write: b+1 (paper: "a total of b+1 messages for write").
    assert_eq!(stats.sent_by_kind("write-req"), (b + 1) as u64);
    // Read phase 1: b+1 queries; phase 2: 1 fetch.
    assert_eq!(stats.sent_by_kind("ts-query-req"), (b + 1) as u64);
    assert_eq!(stats.sent_by_kind("read-req"), 1);
    assert_eq!(stats.sent_by_kind("read-resp"), 1);
}

#[test]
fn crypto_costs_match_paper_formulas() {
    let n = 7;
    let b = 2;
    let mut server_cfg = ServerConfig::default();
    server_cfg.gossip.enabled = false;
    // Pin the rotation for the same reason as the message-cost test above:
    // the formula counts assume the read revisits the written servers.
    let client_cfg = ClientConfig {
        sticky_rotation: true,
        ..ClientConfig::default()
    };
    let mut cluster = ClusterBuilder::new(n, b)
        .seed(31)
        .server_config(server_cfg)
        .client_config(client_cfg)
        .client(vec![
            connect(),
            write(1, Consistency::Mrc, b"v"),
            read(1, Consistency::Mrc),
            disconnect(),
        ])
        .build();
    cluster.run_to_quiescence();
    assert!(cluster.client_results(0).iter().all(|r| r.outcome.is_ok()));

    let client = cluster.client_counters(0);
    // Client: 1 sign for the data write + 1 sign for the context write.
    assert_eq!(client.signs, 2);
    // Client verifies: 1 for the read value. (Context read found no stored
    // context on a fresh client, so 0 there.)
    assert_eq!(client.verifies, 1);

    let servers = cluster.total_server_counters();
    // Servers verify the data write at b+1 servers and the context write
    // at ⌈(n+b+1)/2⌉ servers.
    let q = quorum::context_quorum(n, b) as u64;
    assert_eq!(servers.verifies, (b as u64 + 1) + q);
}

#[test]
fn dissemination_makes_wider_reads_succeed() {
    // Writer writes to b+1 servers; reader with a different rotation
    // eventually sees the value via gossip.
    let mut gossip_on = ServerConfig::default();
    gossip_on.gossip.period = SimTime::from_millis(50);
    let mut cluster = ClusterBuilder::new(7, 1)
        .seed(37)
        .server_config(gossip_on)
        .client(vec![
            connect(),
            write(1, Consistency::Mrc, b"spread"),
            disconnect(),
        ])
        .client(vec![
            Step::Wait(SimTime::from_secs(2)), // let gossip do its work
            connect(),
            read(1, Consistency::Mrc),
            disconnect(),
        ])
        .build();
    cluster.run_to_quiescence();
    let results = cluster.client_results(1);
    assert_eq!(first_read_value(&results), b"spread");
    // After 2s of 50ms gossip, every server must hold the item.
    for s in 0..7 {
        cluster.with_server(s, |node| {
            assert!(node.item(DataId(1)).is_some(), "S{s} missing item");
        });
    }
}

#[test]
fn unavailable_when_too_many_servers_crash() {
    // 3 of 4 crashed with b=1: even the b+1 write quorum cannot form.
    let mut cluster = ClusterBuilder::new(4, 1)
        .seed(41)
        .behavior(0, Behavior::Crash)
        .behavior(1, Behavior::Crash)
        .behavior(2, Behavior::Crash)
        .client_config(ClientConfig {
            retry: sstore_core::RetryPolicy {
                phase_timeout: SimTime::from_millis(100),
                stale_retry_delay: SimTime::from_millis(50),
                max_rounds: 3,
                ..sstore_core::RetryPolicy::default()
            },
            ..ClientConfig::default()
        })
        .client(vec![connect()])
        .build();
    cluster.run_to_quiescence();
    let results = cluster.client_results(0);
    assert_eq!(results.len(), 1);
    assert_eq!(results[0].outcome, Outcome::Unavailable);
}

#[test]
fn deterministic_across_identical_seeds() {
    let build = |seed| {
        let mut cluster = ClusterBuilder::new(4, 1)
            .seed(seed)
            .client(vec![
                connect(),
                write(1, Consistency::Mrc, b"d"),
                read(1, Consistency::Mrc),
                disconnect(),
            ])
            .build();
        cluster.run_to_quiescence();
        let stats = cluster.sim.stats().clone();
        let results: Vec<_> = cluster
            .client_results(0)
            .iter()
            .map(|r| (r.kind, r.latency()))
            .collect();
        (stats.total_messages, results)
    };
    assert_eq!(build(77), build(77));
    assert_ne!(build(77), build(78));
}

#[test]
fn wan_latency_dominates_op_time() {
    let run = |config: SimConfig| {
        let mut cluster = ClusterBuilder::new(4, 1)
            .seed(43)
            .network(config)
            .client(vec![
                connect(),
                write(1, Consistency::Mrc, b"v"),
                disconnect(),
            ])
            .build();
        cluster.run_to_quiescence();
        let results = cluster.client_results(0);
        assert!(results.iter().all(|r| r.outcome.is_ok()));
        results
            .iter()
            .map(|r| r.latency())
            .fold(SimTime::ZERO, |a, b| a + b)
    };
    let lan = run(SimConfig::lan(43));
    let wan = run(SimConfig::wan(43));
    assert!(
        wan.as_micros() > lan.as_micros() * 50,
        "WAN ({wan}) should dwarf LAN ({lan})"
    );
}

#[test]
fn gossip_message_sizes_accounted() {
    let mut cluster = ClusterBuilder::new(4, 1)
        .seed(47)
        .client(vec![
            connect(),
            write(1, Consistency::Mrc, b"payload"),
            disconnect(),
        ])
        .build();
    cluster.run_to_quiescence();
    cluster.drain(SimTime::from_secs(1));
    let stats = cluster.sim.stats();
    assert!(stats.sent_by_kind("gossip-summary") > 0);
    assert!(stats.bytes_by_kind("gossip-summary") > 0);
}
