//! Multi-writer causal order against Premature servers (paper §5.3).
//!
//! A Premature server skips the causal-dependency holdback and reports
//! multi-writer writes before their predecessors have arrived. The
//! `2b+1` read / `b+1` matching-accept rule masks it: an honest reader
//! only accepts a version vouched for by at least one honest server,
//! and honest servers admit a write only after its causal context is
//! satisfied locally — so a reader that accepts a write can always
//! resolve the write's dependencies afterwards.

use sstore_core::client::{ClientOp, OpKind, Outcome};
use sstore_core::faults::Behavior;
use sstore_core::sim::{ClusterBuilder, Step};
use sstore_core::types::{Consistency, DataId, GroupId};
use sstore_simnet::SimTime;

const G: GroupId = GroupId(1);

const SW_DATA: DataId = DataId(5);
const MW_DATA: DataId = DataId(1);

/// Writer: a single-writer item (the causal dependency), then a
/// multi-writer item whose writer context names it.
fn writer_script() -> Vec<Step> {
    vec![
        Step::Do(ClientOp::Connect {
            group: G,
            recover: false,
        }),
        Step::Do(ClientOp::Write {
            data: SW_DATA,
            group: G,
            consistency: Consistency::Cc,
            value: b"dependency".to_vec(),
        }),
        Step::Do(ClientOp::MwWrite {
            data: MW_DATA,
            group: G,
            value: b"dependent".to_vec(),
        }),
        Step::Do(ClientOp::Disconnect { group: G }),
    ]
}

/// Reader: a causally consistent multi-writer read racing the writer,
/// then a read of the dependency. If the first read observed the
/// dependent write, the second must observe the dependency.
fn reader_script(initial_wait_ms: u64) -> Vec<Step> {
    vec![
        Step::Do(ClientOp::Connect {
            group: G,
            recover: false,
        }),
        Step::Wait(SimTime::from_millis(initial_wait_ms)),
        Step::Do(ClientOp::MwRead {
            data: MW_DATA,
            group: G,
            consistency: Consistency::Cc,
        }),
        Step::Do(ClientOp::Read {
            data: SW_DATA,
            group: G,
            consistency: Consistency::Cc,
        }),
        Step::Do(ClientOp::Disconnect { group: G }),
    ]
}

/// Checks the §5.3 causal-order guarantee on the reader's results: the
/// reader may legitimately miss the dependent write (it raced it), but
/// once it *accepts* the dependent write, the dependency must be
/// readable — never `Stale`, never a forged value.
fn assert_causal_order(results: &[sstore_core::OpResult], label: &str) {
    let mw_read = results
        .iter()
        .find(|r| r.kind == OpKind::MwRead)
        .unwrap_or_else(|| panic!("{label}: no MwRead result"));
    let sw_read = results
        .iter()
        .find(|r| r.kind == OpKind::Read)
        .unwrap_or_else(|| panic!("{label}: no Read result"));
    match &mw_read.outcome {
        Outcome::ReadOk { value, .. } => {
            assert_eq!(
                value.as_slice(),
                b"dependent",
                "{label}: forged multi-writer value"
            );
            // Causal order: the dependency must now be visible.
            match &sw_read.outcome {
                Outcome::ReadOk { value, .. } => {
                    assert_eq!(
                        value.as_slice(),
                        b"dependency",
                        "{label}: dependency read out of causal order"
                    );
                }
                other => panic!(
                    "{label}: accepted the dependent write but the dependency \
                     read failed: {other:?}"
                ),
            }
        }
        // Racing the writer may leave the reader behind; that is a
        // consistency-preserving outcome, not a violation.
        Outcome::Stale { .. } | Outcome::Unavailable => {}
        other => panic!("{label}: unexpected MwRead outcome {other:?}"),
    }
}

/// Premature server at every placement, reader racing at several offsets:
/// no interleaving may surface the dependent write without its dependency.
#[test]
fn premature_server_never_breaks_causal_order() {
    for placement in 0..4usize {
        for wait_ms in [0u64, 20, 200, 2_000] {
            let mut cluster = ClusterBuilder::new(4, 1)
                .seed(11 + placement as u64 + wait_ms)
                .behavior(placement, Behavior::Premature)
                .client(writer_script())
                .client(reader_script(wait_ms))
                .build();
            cluster.run_to_quiescence();
            let writer = cluster.client_results(0);
            assert!(
                writer.iter().all(|r| r.outcome.is_ok()),
                "writer failed with Premature@S{placement}: {writer:?}"
            );
            let reader = cluster.client_results(1);
            assert_causal_order(&reader, &format!("Premature@S{placement}+{wait_ms}ms"));
        }
    }
}

/// Premature plus a crashed server (`b = 2`, `n = 7`): the accept rule
/// still masks the premature reports.
#[test]
fn premature_and_crash_still_masked() {
    for wait_ms in [0u64, 500] {
        let mut cluster = ClusterBuilder::new(7, 2)
            .seed(77 + wait_ms)
            .behavior(2, Behavior::Premature)
            .behavior(6, Behavior::Crash)
            .client(writer_script())
            .client(reader_script(wait_ms))
            .build();
        cluster.run_to_quiescence();
        let writer = cluster.client_results(0);
        assert!(writer.iter().all(|r| r.outcome.is_ok()), "{writer:?}");
        let reader = cluster.client_results(1);
        assert_causal_order(&reader, &format!("Premature+Crash+{wait_ms}ms"));
    }
}
