//! Deep multi-writer protocol tests (paper §5.3): causal holdback, log
//! garbage collection, equivocating writers, concurrent-writer ordering.

use sstore_core::client::{ClientOp, OpKind, Outcome};
use sstore_core::config::ServerConfig;
use sstore_core::item::StoredItem;
use sstore_core::metrics::CryptoCounters;
use sstore_core::sim::{ClusterBuilder, Step};
use sstore_core::types::{ClientId, Consistency, DataId, GroupId, ServerId, Timestamp};
use sstore_core::wire::Msg;
use sstore_core::OpId;
use sstore_crypto::sha256::digest;
use sstore_simnet::SimTime;

const G: GroupId = GroupId(1);

fn connect() -> Step {
    Step::Do(ClientOp::Connect {
        group: G,
        recover: false,
    })
}

fn mw_write(data: u64, value: &[u8]) -> Step {
    Step::Do(ClientOp::MwWrite {
        data: DataId(data),
        group: G,
        value: value.to_vec(),
    })
}

fn mw_read(data: u64) -> Step {
    Step::Do(ClientOp::MwRead {
        data: DataId(data),
        group: G,
        consistency: Consistency::Cc,
    })
}

/// Builds a signed multi-writer item directly (attacker toolbox).
fn craft(
    cluster: &sstore_core::sim::Cluster,
    writer: u16,
    data: u64,
    time: u64,
    value: &[u8],
    ctx: Option<sstore_core::Context>,
) -> StoredItem {
    StoredItem::create(
        DataId(data),
        G,
        Timestamp::Multi {
            time,
            writer: ClientId(writer),
            digest: digest(value),
        },
        ClientId(writer),
        ctx,
        value.to_vec(),
        cluster.signing_key(writer),
        &mut CryptoCounters::new(),
    )
}

#[test]
fn equivocating_writer_is_detected_by_readers() {
    // A malicious writer signs two different values under the same
    // timestamp and sends one half of the cluster each. Readers must
    // detect the fault instead of silently picking one.
    let reader = vec![Step::Wait(SimTime::from_millis(600)), connect(), mw_read(5)];
    let mut cluster = ClusterBuilder::new(4, 1)
        .seed(101)
        .client(reader)
        .client(vec![]) // attacker
        .build();
    let a = craft(&cluster, 1, 5, 10, b"left", None);
    let b = craft(&cluster, 1, 5, 10, b"right", None);
    for s in 0..2u16 {
        cluster.inject_from_client(
            1,
            ServerId(s),
            Msg::WriteReq {
                op: OpId(1),
                item: a.clone(),
            },
        );
    }
    for s in 2..4u16 {
        cluster.inject_from_client(
            1,
            ServerId(s),
            Msg::WriteReq {
                op: OpId(2),
                item: b.clone(),
            },
        );
    }
    cluster.run_to_quiescence();
    let results = cluster.client_results(0);
    let read = results.iter().find(|r| r.kind == OpKind::MwRead).unwrap();
    assert_eq!(
        read.outcome,
        Outcome::FaultyWriterDetected { data: DataId(5) },
        "split-brain write must surface as a writer fault"
    );
}

#[test]
fn equivocating_writes_survive_in_logs_as_evidence() {
    let mut cluster = ClusterBuilder::new(4, 1).seed(102).client(vec![]).build();
    let a = craft(&cluster, 0, 5, 10, b"left", None);
    let b = craft(&cluster, 0, 5, 10, b"right", None);
    for s in 0..4u16 {
        cluster.inject_from_client(
            0,
            ServerId(s),
            Msg::WriteReq {
                op: OpId(1),
                item: a.clone(),
            },
        );
        cluster.inject_from_client(
            0,
            ServerId(s),
            Msg::WriteReq {
                op: OpId(2),
                item: b.clone(),
            },
        );
    }
    // No scripted clients to wait for — just let the injected traffic land.
    cluster.drain(SimTime::from_secs(1));
    for s in 0..4 {
        cluster.with_server(s, |node| {
            assert_eq!(node.log_len(DataId(5)), 2, "S{s} keeps both as evidence");
        });
    }
}

#[test]
fn causal_holdback_releases_on_dissemination() {
    // A write whose predecessor is missing stays pending until gossip
    // delivers the predecessor, then is admitted and acked.
    let mut server_cfg = ServerConfig::default();
    server_cfg.gossip.period = SimTime::from_millis(50);
    let mut cluster = ClusterBuilder::new(4, 1)
        .seed(103)
        .server_config(server_cfg)
        .client(vec![])
        .build();

    // Predecessor x1@t1 goes only to server 0; dependent write x2@t2 (with
    // a context naming x1@t1) goes to servers 1..3.
    let pred = craft(&cluster, 0, 1, 1, b"first", None);
    let mut ctx = sstore_core::Context::new(G);
    ctx.observe(DataId(1), pred.meta.ts);
    let dep = craft(&cluster, 0, 2, 2, b"second", Some(ctx));
    cluster.inject_from_client(
        0,
        ServerId(0),
        Msg::WriteReq {
            op: OpId(1),
            item: pred,
        },
    );
    for s in 1..4u16 {
        cluster.inject_from_client(
            0,
            ServerId(s),
            Msg::WriteReq {
                op: OpId(2),
                item: dep.clone(),
            },
        );
    }
    // Immediately: servers 1..3 must hold x2 pending.
    cluster.run_until(SimTime::from_millis(5));
    let pending: usize = (1..4)
        .map(|s| cluster.with_server(s, |n| n.pending_len()))
        .sum();
    assert!(pending >= 1, "dependent write should be held back");
    // After gossip spreads x1, everything is admitted.
    cluster.run_until(SimTime::from_secs(3));
    for s in 0..4 {
        cluster.with_server(s, |node| {
            assert_eq!(node.pending_len(), 0, "S{s} still has pending writes");
        });
    }
    let served: usize = (0..4)
        .map(|s| cluster.with_server(s, |n| n.log_len(DataId(2))))
        .sum();
    assert!(served >= 3, "dependent write admitted after dissemination");
}

#[test]
fn log_gc_after_wide_replication() {
    // Write many versions of one item with gossip on; once newer versions
    // are known at 2b+1 servers, old log entries are erased.
    let mut server_cfg = ServerConfig::default();
    server_cfg.gossip.period = SimTime::from_millis(40);
    server_cfg.multi_writer.log_capacity = 64; // GC must come from the rule, not capacity
    let script: Vec<Step> = std::iter::once(connect())
        .chain((0..10).flat_map(|k| {
            vec![
                mw_write(1, format!("v{k}").as_bytes()),
                Step::Wait(SimTime::from_millis(300)),
            ]
        }))
        .collect();
    let mut cluster = ClusterBuilder::new(4, 1)
        .seed(104)
        .server_config(server_cfg)
        .client(script)
        .build();
    cluster.run_to_quiescence();
    cluster.drain(SimTime::from_secs(3));
    for s in 0..4 {
        let len = cluster.with_server(s, |n| n.log_len(DataId(1)));
        assert!(
            (1..=3).contains(&len),
            "S{s}: log should be GC'd down (got {len} of 10 writes)"
        );
    }
}

#[test]
fn concurrent_writers_converge_on_total_order() {
    // Two writers write the same item concurrently many times; afterwards
    // all servers agree on the same newest version, and a reader sees a
    // single winner with b+1 confirmations.
    let mk_writer = |tag: &'static str, delay_ms: u64| -> Vec<Step> {
        std::iter::once(Step::Wait(SimTime::from_millis(delay_ms)))
            .chain(std::iter::once(connect()))
            .chain((0..6).flat_map(move |k| {
                vec![
                    Step::Do(ClientOp::MwWrite {
                        data: DataId(1),
                        group: G,
                        value: format!("{tag}{k}").into_bytes(),
                    }),
                    Step::Wait(SimTime::from_millis(70)),
                ]
            }))
            .collect()
    };
    let reader = vec![Step::Wait(SimTime::from_secs(4)), connect(), mw_read(1)];
    let mut cluster = ClusterBuilder::new(4, 1)
        .seed(105)
        .client(mk_writer("a", 0))
        .client(mk_writer("b", 30))
        .client(reader)
        .build();
    cluster.run_to_quiescence();
    cluster.drain(SimTime::from_secs(2));
    // All servers agree on the newest item.
    let tss: Vec<Timestamp> = (0..4)
        .map(|s| cluster.with_server(s, |n| n.item(DataId(1)).unwrap().meta.ts))
        .collect();
    assert!(
        tss.windows(2).all(|w| w[0] == w[1]),
        "servers diverge: {tss:?}"
    );
    let results = cluster.client_results(2);
    match &results.last().unwrap().outcome {
        Outcome::ReadOk {
            ts, confirmations, ..
        } => {
            assert_eq!(*ts, tss[0], "reader saw the converged winner");
            assert!(*confirmations >= 2);
        }
        other => panic!("reader failed: {other:?}"),
    }
}

#[test]
fn mw_write_not_available_until_quorum_acks() {
    // With only b honest servers reachable (rest crashed), a multi-writer
    // write cannot reach its 2b+1 quorum and must report Unavailable.
    use sstore_core::faults::Behavior;
    let mut cluster = ClusterBuilder::new(4, 1)
        .seed(106)
        .behavior(0, Behavior::Crash)
        .behavior(1, Behavior::Crash)
        .behavior(2, Behavior::Crash)
        .client_config(sstore_core::ClientConfig {
            retry: sstore_core::RetryPolicy {
                phase_timeout: SimTime::from_millis(100),
                stale_retry_delay: SimTime::from_millis(50),
                max_rounds: 3,
                ..sstore_core::RetryPolicy::default()
            },
            ..Default::default()
        })
        .client(vec![mw_write(1, b"doomed")])
        .build();
    cluster.run_to_quiescence();
    let results = cluster.client_results(0);
    assert_eq!(results[0].outcome, Outcome::Unavailable);
}

#[test]
fn reader_rejects_value_below_its_context() {
    // A reader that already observed t=50 must not accept an older value
    // even if every server reports it.
    let mut cluster = ClusterBuilder::new(4, 1)
        .seed(107)
        .client(vec![
            connect(),
            mw_write(1, b"new"), // reader IS the writer here: context at its own write
            mw_read(1),
        ])
        .build();
    cluster.run_to_quiescence();
    let results = cluster.client_results(0);
    match &results[2].outcome {
        Outcome::ReadOk { value, .. } => assert_eq!(value, b"new"),
        other => panic!("{other:?}"),
    }
}

#[test]
fn premature_server_alone_cannot_make_poison_readable() {
    // One Premature server (skips causal validation) reports a poisoned
    // write; b+1 = 2 matching reports are required, so readers ignore it.
    use sstore_core::faults::Behavior;
    let reader = vec![Step::Wait(SimTime::from_millis(400)), connect(), mw_read(9)];
    let mut cluster = ClusterBuilder::new(4, 1)
        .seed(108)
        .behavior(3, Behavior::Premature)
        .client(reader)
        .client(vec![])
        .build();
    let mut phantom = sstore_core::Context::new(G);
    phantom.observe(
        DataId(1),
        Timestamp::Multi {
            time: 999,
            writer: ClientId(1),
            digest: digest(b"never"),
        },
    );
    let poison = craft(&cluster, 1, 9, 1000, b"poison", Some(phantom));
    for s in 0..4u16 {
        cluster.inject_from_client(
            1,
            ServerId(s),
            Msg::WriteReq {
                op: OpId(7),
                item: poison.clone(),
            },
        );
    }
    cluster.run_to_quiescence();
    let results = cluster.client_results(0);
    let read = results.iter().find(|r| r.kind == OpKind::MwRead).unwrap();
    // The only acceptable outcomes: stale/empty — never the poison value.
    match &read.outcome {
        Outcome::ReadOk { value, .. } => {
            assert_ne!(value, b"poison", "poison must not reach b+1 reports")
        }
        Outcome::Stale { .. } | Outcome::Unavailable => {}
        other => panic!("unexpected: {other:?}"),
    }
}

#[test]
fn fuzzed_timestamps_still_monotonic() {
    // Timestamp fuzzing (§5.2 confidentiality) must not break MRC.
    let mut cluster = ClusterBuilder::new(4, 1)
        .seed(109)
        .client_config(sstore_core::ClientConfig {
            timestamp_fuzz: Some(1000),
            sticky_rotation: true,
            ..Default::default()
        })
        .client(vec![
            connect(),
            Step::Do(ClientOp::Write {
                data: DataId(1),
                group: G,
                consistency: Consistency::Mrc,
                value: b"w1".to_vec(),
            }),
            Step::Do(ClientOp::Write {
                data: DataId(1),
                group: G,
                consistency: Consistency::Mrc,
                value: b"w2".to_vec(),
            }),
            Step::Do(ClientOp::Read {
                data: DataId(1),
                group: G,
                consistency: Consistency::Mrc,
            }),
        ])
        .build();
    cluster.run_to_quiescence();
    let results = cluster.client_results(0);
    assert!(results.iter().all(|r| r.outcome.is_ok()), "{results:?}");
    let versions: Vec<u64> = results
        .iter()
        .filter_map(|r| match &r.outcome {
            Outcome::WriteOk { ts } => Some(ts.time()),
            _ => None,
        })
        .collect();
    assert!(versions[1] > versions[0]);
    // Fuzzing actually fuzzes: the two increments are unlikely both 1.
    assert!(
        versions[1] - versions[0] > 1 || versions[0] > 1,
        "fuzz had no effect: {versions:?}"
    );
    match &results[3].outcome {
        Outcome::ReadOk { value, .. } => assert_eq!(value, b"w2"),
        other => panic!("{other:?}"),
    }
}
