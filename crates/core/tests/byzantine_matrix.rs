//! Exhaustive adversary matrix: every behaviour × every operation type ×
//! several placements, asserting safety (never a wrong value) and
//! liveness-within-bounds (ops succeed when faults ≤ b).

use sstore_core::client::{ClientOp, OpKind, Outcome};
use sstore_core::faults::Behavior;
use sstore_core::sim::{ClusterBuilder, Step};
use sstore_core::types::{Consistency, DataId, GroupId};
use sstore_simnet::SimTime;

const G: GroupId = GroupId(1);

const ALL_BEHAVIORS: [Behavior; 6] = [
    Behavior::Crash,
    Behavior::Stale,
    Behavior::CorruptValue,
    Behavior::CorruptSig,
    Behavior::Equivocate,
    Behavior::Premature,
];

fn full_session(consistency: Consistency) -> Vec<Step> {
    vec![
        Step::Do(ClientOp::Connect {
            group: G,
            recover: false,
        }),
        Step::Do(ClientOp::Write {
            data: DataId(1),
            group: G,
            consistency,
            value: b"alpha".to_vec(),
        }),
        Step::Do(ClientOp::Write {
            data: DataId(2),
            group: G,
            consistency,
            value: b"beta".to_vec(),
        }),
        Step::Do(ClientOp::Read {
            data: DataId(1),
            group: G,
            consistency,
        }),
        Step::Do(ClientOp::Read {
            data: DataId(2),
            group: G,
            consistency,
        }),
        Step::Do(ClientOp::Disconnect { group: G }),
    ]
}

fn mw_session() -> Vec<Step> {
    vec![
        Step::Do(ClientOp::Connect {
            group: G,
            recover: false,
        }),
        Step::Do(ClientOp::MwWrite {
            data: DataId(1),
            group: G,
            value: b"alpha".to_vec(),
        }),
        Step::Do(ClientOp::MwRead {
            data: DataId(1),
            group: G,
            consistency: Consistency::Cc,
        }),
        Step::Do(ClientOp::Disconnect { group: G }),
    ]
}

fn assert_session_safe(results: &[sstore_core::OpResult], label: &str) {
    for r in results {
        assert!(r.outcome.is_ok(), "{label}: {:?}", r.outcome);
        if let Outcome::ReadOk { value, .. } = &r.outcome {
            assert!(
                value == b"alpha" || value == b"beta",
                "{label}: forged value {value:?}"
            );
        }
    }
}

/// Single Byzantine server (b=1, n=4): every behaviour, every placement,
/// both consistency levels — all masked.
#[test]
fn single_byzantine_every_placement_and_behavior() {
    for behavior in ALL_BEHAVIORS {
        for placement in 0..4usize {
            for consistency in [Consistency::Mrc, Consistency::Cc] {
                let mut cluster = ClusterBuilder::new(4, 1)
                    .seed(7 + placement as u64)
                    .behavior(placement, behavior)
                    .client(full_session(consistency))
                    .build();
                cluster.run_to_quiescence();
                let results = cluster.client_results(0);
                assert_session_safe(
                    &results,
                    &format!("{behavior:?}@S{placement}/{consistency}"),
                );
            }
        }
    }
}

/// Two colluding Byzantine servers with b=2 (n=7): mixed behaviours.
#[test]
fn two_byzantine_mixed_behaviors() {
    let pairs = [
        (Behavior::Stale, Behavior::CorruptValue),
        (Behavior::Crash, Behavior::Equivocate),
        (Behavior::CorruptSig, Behavior::Stale),
        (Behavior::Equivocate, Behavior::Equivocate),
    ];
    for (b1, b2) in pairs {
        let mut cluster = ClusterBuilder::new(7, 2)
            .seed(21)
            .behavior(1, b1)
            .behavior(4, b2)
            .client(full_session(Consistency::Cc))
            .build();
        cluster.run_to_quiescence();
        let results = cluster.client_results(0);
        assert_session_safe(&results, &format!("{b1:?}+{b2:?}"));
    }
}

/// Multi-writer path under every single-fault behaviour.
#[test]
fn multi_writer_under_every_behavior() {
    for behavior in ALL_BEHAVIORS {
        let mut cluster = ClusterBuilder::new(4, 1)
            .seed(33)
            .behavior(2, behavior)
            .client(mw_session())
            .build();
        cluster.run_to_quiescence();
        let results = cluster.client_results(0);
        for r in &results {
            assert!(r.outcome.is_ok(), "{behavior:?}: {:?}", r.outcome);
            if let Outcome::ReadOk { value, .. } = &r.outcome {
                assert_eq!(value, b"alpha", "{behavior:?}");
            }
        }
    }
}

/// Context operations under every behaviour: the stored context survives a
/// lying server because the client picks the highest *validly signed*
/// session.
#[test]
fn context_round_trips_under_every_behavior() {
    for behavior in ALL_BEHAVIORS {
        let mut cluster = ClusterBuilder::new(4, 1)
            .seed(55)
            .behavior(0, behavior)
            .client(vec![
                Step::Do(ClientOp::Connect {
                    group: G,
                    recover: false,
                }),
                Step::Do(ClientOp::Write {
                    data: DataId(1),
                    group: G,
                    consistency: Consistency::Mrc,
                    value: b"persisted".to_vec(),
                }),
                Step::Do(ClientOp::Disconnect { group: G }),
                Step::Wait(SimTime::from_millis(100)),
                Step::Do(ClientOp::Connect {
                    group: G,
                    recover: false,
                }),
                Step::Do(ClientOp::Read {
                    data: DataId(1),
                    group: G,
                    consistency: Consistency::Mrc,
                }),
                Step::Do(ClientOp::Disconnect { group: G }),
            ])
            .build();
        cluster.run_to_quiescence();
        let results = cluster.client_results(0);
        assert!(
            results.iter().all(|r| r.outcome.is_ok()),
            "{behavior:?}: {results:?}"
        );
        // The reconnect must restore the full context despite the liar.
        let reconnect = results
            .iter()
            .filter(|r| r.kind == OpKind::Connect)
            .nth(1)
            .unwrap();
        assert_eq!(
            reconnect.outcome,
            Outcome::Connected { context_len: 1 },
            "{behavior:?}"
        );
    }
}

/// Reconstruction under every behaviour: metadata signatures protect the
/// scan path too.
#[test]
fn reconstruction_under_every_behavior() {
    for behavior in ALL_BEHAVIORS {
        let mut cluster = ClusterBuilder::new(4, 1)
            .seed(77)
            .behavior(1, behavior)
            .client(vec![
                Step::Do(ClientOp::Connect {
                    group: G,
                    recover: false,
                }),
                Step::Do(ClientOp::Write {
                    data: DataId(1),
                    group: G,
                    consistency: Consistency::Mrc,
                    value: b"v1".to_vec(),
                }),
                Step::Do(ClientOp::Write {
                    data: DataId(1),
                    group: G,
                    consistency: Consistency::Mrc,
                    value: b"v2".to_vec(),
                }),
                Step::Crash,
                Step::Do(ClientOp::Connect {
                    group: G,
                    recover: true,
                }),
                Step::Do(ClientOp::Read {
                    data: DataId(1),
                    group: G,
                    consistency: Consistency::Mrc,
                }),
            ])
            .build();
        cluster.run_to_quiescence();
        let results = cluster.client_results(0);
        assert!(
            results.iter().all(|r| r.outcome.is_ok()),
            "{behavior:?}: {results:?}"
        );
        // The post-recovery read must return the latest version, not a
        // stale one smuggled in via a forged scan entry.
        match &results.last().unwrap().outcome {
            Outcome::ReadOk { value, .. } => assert_eq!(value, b"v2", "{behavior:?}"),
            other => panic!("{behavior:?}: {other:?}"),
        }
    }
}

/// Network partition: a client partitioned from b servers still completes;
/// healing restores full dissemination.
#[test]
fn partition_then_heal() {
    let mut cluster = ClusterBuilder::new(4, 1)
        .seed(91)
        .client(full_session(Consistency::Mrc))
        .build();
    // Cut the client off from server 0 in both directions.
    let client_node = sstore_simnet::NodeId(4);
    let s0 = sstore_simnet::NodeId(0);
    cluster.sim.partition_pair(client_node, s0);
    cluster.run_to_quiescence();
    let results = cluster.client_results(0);
    assert!(results.iter().all(|r| r.outcome.is_ok()), "{results:?}");
    cluster.sim.heal_all();
    cluster.drain(SimTime::from_secs(2));
    // After healing, gossip must deliver the items to server 0 as well.
    cluster.with_server(0, |node| {
        assert!(node.item(DataId(1)).is_some());
        assert!(node.item(DataId(2)).is_some());
    });
}
