//! Context reconstruction after a client crash, under every Byzantine
//! server behaviour: with at most `b` faulty servers the recovered
//! context must equal the pre-crash context, and the post-recovery reads
//! must return the latest generations the client wrote.

use sstore_core::client::{ClientOp, OpKind, Outcome};
use sstore_core::faults::Behavior;
use sstore_core::sim::{ClusterBuilder, Step};
use sstore_core::types::{Consistency, DataId, GroupId, Timestamp};
use sstore_simnet::{NetEvent, NodeId, SimTime};

const G: GroupId = GroupId(1);

const ALL_BEHAVIORS: [Behavior; 6] = [
    Behavior::Crash,
    Behavior::Stale,
    Behavior::CorruptValue,
    Behavior::CorruptSig,
    Behavior::Equivocate,
    Behavior::Premature,
];

fn write(data: u64, value: &[u8]) -> Step {
    Step::Do(ClientOp::Write {
        data: DataId(data),
        group: G,
        consistency: Consistency::Mrc,
        value: value.to_vec(),
    })
}

fn read(data: u64) -> Step {
    Step::Do(ClientOp::Read {
        data: DataId(data),
        group: G,
        consistency: Consistency::Mrc,
    })
}

/// Three items (one with two generations), a settle window for gossip,
/// then crash + recovery + reads of everything.
fn crash_recovery_script() -> Vec<Step> {
    vec![
        Step::Do(ClientOp::Connect {
            group: G,
            recover: false,
        }),
        write(1, b"one-v1"),
        write(1, b"one-v2"),
        write(2, b"two"),
        write(3, b"three"),
        Step::Wait(SimTime::from_millis(1_500)),
        Step::Crash,
        Step::Do(ClientOp::Connect {
            group: G,
            recover: true,
        }),
        read(1),
        read(2),
        read(3),
    ]
}

fn assert_recovery(results: &[sstore_core::OpResult], label: &str) {
    assert!(
        results.iter().all(|r| r.outcome.is_ok()),
        "{label}: {results:?}"
    );
    // The reconstructed context must cover exactly the three items the
    // client wrote before crashing — amnesia recovery is complete.
    let recovered = results
        .iter()
        .find(|r| r.kind == OpKind::Reconstruct)
        .expect("recovery connect result");
    assert_eq!(
        recovered.outcome,
        Outcome::Connected { context_len: 3 },
        "{label}: reconstructed context differs from pre-crash context"
    );
    // And the reads must see the latest generation of each item.
    let reads: Vec<_> = results.iter().filter(|r| r.kind == OpKind::Read).collect();
    let expected: [&[u8]; 3] = [b"one-v2", b"two", b"three"];
    assert_eq!(reads.len(), 3, "{label}");
    for (r, want) in reads.iter().zip(expected) {
        match &r.outcome {
            Outcome::ReadOk { value, ts, .. } => {
                assert_eq!(value.as_slice(), want, "{label}: wrong generation");
                assert!(
                    ts.is_newer_than(&Timestamp::GENESIS),
                    "{label}: genesis timestamp on a written item"
                );
            }
            other => panic!("{label}: post-recovery read failed: {other:?}"),
        }
    }
}

/// Every behaviour × two placements: recovery with `b` faulty servers is
/// both safe (latest generations) and complete (full context).
#[test]
fn crash_recovery_under_every_behavior() {
    for behavior in ALL_BEHAVIORS {
        for placement in [0usize, 2] {
            let mut cluster = ClusterBuilder::new(4, 1)
                .seed(101 + placement as u64)
                .behavior(placement, behavior)
                .client(crash_recovery_script())
                .build();
            cluster.run_to_quiescence();
            let results = cluster.client_results(0);
            assert_recovery(&results, &format!("{behavior:?}@S{placement}"));
        }
    }
}

/// Recovery with `b = 2` faulty servers out of `n = 7`, mixed behaviours.
#[test]
fn crash_recovery_two_faults_mixed() {
    let pairs = [
        (Behavior::Stale, Behavior::Stale),
        (Behavior::Crash, Behavior::Stale),
        (Behavior::CorruptSig, Behavior::Equivocate),
    ];
    for (b1, b2) in pairs {
        let mut cluster = ClusterBuilder::new(7, 2)
            .seed(202)
            .behavior(1, b1)
            .behavior(5, b2)
            .client(crash_recovery_script())
            .build();
        cluster.run_to_quiescence();
        let results = cluster.client_results(0);
        assert_recovery(&results, &format!("{b1:?}+{b2:?}"));
    }
}

/// A server that is *down* (not Byzantine — simply unreachable) during
/// recovery: the context scan reaches `n - b` responses, arms its grace
/// round, and must still finish with the full context rather than wait
/// forever for the missing server.
#[test]
fn crash_recovery_with_one_server_down() {
    let mut cluster = ClusterBuilder::new(4, 1)
        .seed(303)
        .client(crash_recovery_script())
        .build();
    // Take server 1 down just before the settle window ends, so writes
    // and gossip complete first but the recovery scan sees only three
    // servers.
    cluster
        .sim
        .schedule_net_event(SimTime::from_millis(1_400), NetEvent::NodeDown(NodeId(1)));
    cluster.run_to_quiescence();
    let results = cluster.client_results(0);
    assert_recovery(&results, "node-down@S1");
}

/// The same scan-grace path with a Byzantine server too: `n = 4, b = 1`
/// tolerates one fault, and a crashed (silent) server is the worst case
/// for scan liveness because only `n - b` responses can ever arrive.
#[test]
fn crash_recovery_with_silent_byzantine_server() {
    let mut cluster = ClusterBuilder::new(4, 1)
        .seed(404)
        .behavior(3, Behavior::Crash)
        .client(crash_recovery_script())
        .build();
    cluster.run_to_quiescence();
    let results = cluster.client_results(0);
    assert_recovery(&results, "crash@S3");
}
